"""Shared fixtures for the GR-T reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.recorder import OURS_MDS, RecordSession
from repro.core.speculation import CommitHistory
from repro.driver.bus import LocalBus
from repro.driver.driver import KbaseDevice, LocalPlatform
from repro.hw.gpu import MaliGpu
from repro.hw.memory import PhysicalMemory
from repro.hw.sku import HIKEY960_G71
from repro.kernel.env import KernelEnv
from repro.ml.graph import Graph
from repro.ml.layers import Conv2D, Dense, MaxPool, Softmax
from repro.sim.clock import VirtualClock


def build_micro_graph() -> Graph:
    """A 2-conv micro NN used where full MNIST would be overkill."""
    g = Graph("micro", (1, 8, 8))
    g.add("conv1", Conv2D(4, 3, pad=1, activation="relu"), ["input"])
    g.add("pool1", MaxPool(2), ["conv1"])
    g.add("fc", Dense(5), ["pool1"])
    g.add("softmax", Softmax(), ["fc"])
    g.validate()
    return g


@pytest.fixture
def micro_graph() -> Graph:
    return build_micro_graph()


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def small_mem() -> PhysicalMemory:
    return PhysicalMemory(size=32 << 20)


@pytest.fixture
def gpu_setup(clock, small_mem):
    """(gpu, env, platform, bus, kbdev) wired natively, probed."""
    gpu = MaliGpu(HIKEY960_G71, small_mem, clock)
    env = KernelEnv(clock)
    platform = LocalPlatform(gpu, env)
    bus = LocalBus(gpu, clock)
    kbdev = KbaseDevice(env, bus, small_mem)
    platform.attach(kbdev)
    kbdev.probe()
    return gpu, env, platform, bus, kbdev


@pytest.fixture(scope="session")
def recorded_micro():
    """One OursMDS recording of the micro graph, reused across tests."""
    graph = build_micro_graph()
    session = RecordSession(graph, config=OURS_MDS)
    result = session.run()
    return graph, session, result


@pytest.fixture(scope="session")
def warm_history():
    """A commit history warmed on the micro graph (3 runs, k=3)."""
    graph = build_micro_graph()
    history = CommitHistory()
    for _ in range(3):
        RecordSession(graph, config=OURS_MDS, history=history).run()
    return history
