"""Integration: record/replay of a NON-GPU device through the unchanged
GR-T core — §3's "broader applicability" claim, proven in code.

The mini-driver below programs a crypto DMA accelerator purely through
DriverShim (deferral + polling offload); GPUShim applies the commits and
keeps the log; the standard replay engine reproduces the encryption on a
fresh device with *new plaintext* injected at the recorded address.
"""

import numpy as np
import pytest

from repro.core.drivershim import DriverShim, ShimModes
from repro.core.gpushim import GpuShim
from repro.core.memsync import MemorySynchronizer, SyncPolicy
from repro.core.recording import RegRead, RegWrite
from repro.core.replayer import replay_entries
from repro.driver.bus import PollCondition, PollSpec
from repro.hw import accel as A
from repro.hw.accel import CryptoAccelerator, keystream
from repro.hw.memory import PhysicalMemory
from repro.kernel.env import KernelEnv
from repro.sim.clock import VirtualClock
from repro.sim.network import Link, WIFI
from repro.tee.optee import OpTeeOS

KEY = (0x1111_1111, 0x2222_2222, 0x3333_3333, 0x4444_4444)
NONCE = 0xA5A5
LENGTH = 4096


def accel_driver(bus, src_pa: int, dst_pa: int) -> None:
    """A minimal accelerator driver: probe, program, start, poll, clear.

    Written against the same RegisterBus abstraction as the GPU driver;
    it has no idea whether the device is local or behind GR-T's shims.
    """
    ident = int(bus.read32(A.ACCEL_ID))
    assert ident == A.ACCEL_ID_VALUE, "wrong device"
    bus.write32(A.IRQ_MASK, A.IRQ_DONE | A.IRQ_ERROR)
    for i, word in enumerate(KEY):
        bus.write32(A.KEY0 + 4 * i, word)
    bus.write32(A.NONCE, NONCE)
    bus.write64(A.SRC_LO, A.SRC_HI, src_pa)
    bus.write64(A.DST_LO, A.DST_HI, dst_pa)
    bus.write32(A.LEN, LENGTH)
    bus.write32(A.CMD, A.CMD_START)
    result = bus.poll(PollSpec(
        offset=A.IRQ_RAWSTAT, condition=PollCondition.BITS_SET,
        operand=A.IRQ_DONE, max_iters=1000, delay_per_iter_s=5e-6))
    assert result.success, "accelerator never finished"
    status = int(bus.read32(A.IRQ_RAWSTAT))
    assert not status & A.IRQ_ERROR, "DMA error"
    bus.write32(A.IRQ_CLEAR, status)


@pytest.fixture
def recorded_accel():
    """Record the accelerator workload via the GR-T shims."""
    clock = VirtualClock()
    client_mem = PhysicalMemory(size=4 << 20)
    cloud_mem = PhysicalMemory(size=4 << 20)
    device = CryptoAccelerator(client_mem, clock)
    optee = OpTeeOS()
    shim_client = GpuShim(optee, device, clock)
    shim_client.begin_session()

    src = client_mem.alloc(LENGTH, "plaintext")
    dst = client_mem.alloc(LENGTH, "ciphertext")
    client_mem.clear_dirty()

    link = Link(WIFI, clock)
    memsync = MemorySynchronizer(cloud_mem, client_mem,
                                 SyncPolicy.META_ONLY)
    shim = DriverShim(link, shim_client, memsync,
                      ShimModes(defer=True, speculate=False,
                                offload_polls=True))
    env = KernelEnv(clock)
    shim.attach(env)
    # The whole driver body counts as one hot region for deferral.
    shim.on_hot_enter(env, "accel_driver", "other")
    accel_driver(shim, src.base, dst.base)
    shim.on_hot_exit(env, "accel_driver", "other")
    shim.finish()
    shim_client.end_session()
    return (list(shim_client.log), src.base, dst.base,
            link.stats.blocking_round_trips)


class TestAccelRecord:
    def test_dry_run_produces_log(self, recorded_accel):
        log, src_pa, dst_pa, rtts = recorded_accel
        kinds = {type(e).__name__ for e in log}
        assert "RegWrite" in kinds and "RegRead" in kinds
        assert "PollEntry" in kinds  # the offloaded completion poll

    def test_deferral_batches_accel_accesses(self, recorded_accel):
        log, src_pa, dst_pa, rtts = recorded_accel
        accesses = sum(1 for e in log
                       if isinstance(e, (RegRead, RegWrite)))
        # ~12 register accesses travelled in far fewer round trips.
        assert accesses > 10
        assert rtts < accesses / 2


class TestAccelReplay:
    def test_replay_encrypts_new_plaintext(self, recorded_accel):
        """Input independence for a non-GPU device: the recorded register
        program re-encrypts arbitrary new data."""
        log, src_pa, dst_pa, rtts = recorded_accel
        clock = VirtualClock()
        mem = PhysicalMemory(size=4 << 20)
        device = CryptoAccelerator(mem, clock)

        rng = np.random.RandomState(50)
        plaintext = rng.bytes(LENGTH)
        mem.write(src_pa, plaintext)  # inject confidential data

        src_pfns = set(range(src_pa >> 12, ((src_pa + LENGTH - 1) >> 12) + 1))
        stats = replay_entries(device, mem, clock, log, skip_pfns=src_pfns)
        assert stats.polls == 1

        ciphertext = mem.read(dst_pa, LENGTH)
        expected = bytes(a ^ b for a, b in
                         zip(plaintext, keystream(KEY, NONCE, LENGTH)))
        assert ciphertext == expected

    def test_replay_is_deterministic(self, recorded_accel):
        log, src_pa, dst_pa, rtts = recorded_accel
        outputs = []
        for _ in range(2):
            clock = VirtualClock()
            mem = PhysicalMemory(size=4 << 20)
            device = CryptoAccelerator(mem, clock)
            mem.write(src_pa, b"\x5c" * LENGTH)
            replay_entries(device, mem, clock, log)
            outputs.append(mem.read(dst_pa, LENGTH))
        assert outputs[0] == outputs[1]

    def test_two_record_runs_identical(self):
        """Device-agnostic determinism: same claim the GPU path makes."""
        logs = []
        for _ in range(2):
            clock = VirtualClock()
            client_mem = PhysicalMemory(size=4 << 20)
            cloud_mem = PhysicalMemory(size=4 << 20)
            device = CryptoAccelerator(client_mem, clock)
            optee = OpTeeOS()
            gpushim = GpuShim(optee, device, clock)
            gpushim.begin_session()
            src = client_mem.alloc(LENGTH, "src")
            dst = client_mem.alloc(LENGTH, "dst")
            link = Link(WIFI, clock)
            memsync = MemorySynchronizer(cloud_mem, client_mem,
                                         SyncPolicy.META_ONLY)
            shim = DriverShim(link, gpushim, memsync,
                              ShimModes(defer=False))
            env = KernelEnv(clock)
            shim.attach(env)
            accel_driver(shim, src.base, dst.base)
            gpushim.end_session()
            logs.append([
                (type(e).__name__, getattr(e, "offset", None),
                 getattr(e, "value", None)) for e in gpushim.log])
        assert logs[0] == logs[1]


class TestAccelDevice:
    def test_reset_clears_keys(self):
        clock = VirtualClock()
        mem = PhysicalMemory(size=1 << 20)
        device = CryptoAccelerator(mem, clock)
        device.write_reg(A.KEY0, 0xDEAD)
        device.write_reg(A.CMD, A.CMD_RESET)
        assert device.read_reg(A.KEY0) == 0

    def test_bad_dma_address_raises_error_irq(self):
        clock = VirtualClock()
        mem = PhysicalMemory(size=1 << 20)
        device = CryptoAccelerator(mem, clock)
        device.write_reg(A.IRQ_MASK, A.IRQ_ERROR)
        device.write_reg(A.SRC_LO, 0x10)  # below the memory base
        device.write_reg(A.LEN, 64)
        device.write_reg(A.CMD, A.CMD_START)
        clock.advance(1e-3)
        assert device.read_reg(A.IRQ_RAWSTAT) & A.IRQ_ERROR

    def test_busy_status_during_job(self):
        clock = VirtualClock()
        mem = PhysicalMemory(size=1 << 20)
        device = CryptoAccelerator(mem, clock)
        region = mem.alloc(4096, "buf")
        device.write_reg(A.SRC_LO, region.base & 0xFFFFFFFF)
        device.write_reg(A.SRC_HI, region.base >> 32)
        device.write_reg(A.DST_LO, region.base & 0xFFFFFFFF)
        device.write_reg(A.DST_HI, region.base >> 32)
        device.write_reg(A.LEN, 4096)
        device.write_reg(A.CMD, A.CMD_START)
        assert device.read_reg(A.STATUS) & A.STATUS_BUSY
        clock.advance(1e-3)
        assert not device.read_reg(A.STATUS) & A.STATUS_BUSY
