"""Integration: the job-serialization constraint (§2.3 determinism, §5).

"We configure the driver's job queue length to be 1 ... the driver and
the client GPU will never access the shared memory simultaneously."
These tests show the constraint is enforced, and what breaks without it:
emitting the next job's commands while the GPU still owns the memory is
exactly the §5 race the unmap-and-trap safety net catches.
"""

import pytest

from repro.core.drivershim import DriverShim, ShimModes
from repro.core.gpushim import GpuShim
from repro.core.memsync import (
    MemorySynchronizer,
    MemorySyncViolation,
    SyncPolicy,
)
from repro.driver.bus import LocalBus
from repro.driver.driver import KbaseDevice, LocalPlatform
from repro.hw import regs
from repro.hw.gpu import MaliGpu
from repro.hw.memory import PhysicalMemory
from repro.hw.sku import HIKEY960_G71
from repro.kernel.env import KernelEnv
from repro.runtime.api import GpuContext
from repro.sim.clock import VirtualClock
from repro.sim.network import Link, WIFI
from repro.tee.optee import OpTeeOS


class TestDriverSerialization:
    def test_double_submit_same_slot_rejected(self):
        """The driver enforces queue depth 1 per slot."""
        clock = VirtualClock()
        mem = PhysicalMemory(size=32 << 20)
        gpu = MaliGpu(HIKEY960_G71, mem, clock)
        env = KernelEnv(clock)
        platform = LocalPlatform(gpu, env)
        kbdev = KbaseDevice(env, LocalBus(gpu, clock), mem)
        platform.attach(kbdev)
        kbdev.probe()
        ctx = GpuContext(kbdev, mem)
        a = ctx.alloc_data("a", 4096)
        out = ctx.alloc_data("o", 4096)
        from repro.hw.shader import JobBuffer, ROLE_INPUT, ROLE_OUTPUT
        emitted = ctx.commands.emit_job(
            *ctx._place_shader(ctx.compiler.compile(
                "relu", {"shape": [2]}, cache_key="r"), "r"),
            [JobBuffer(a.va, 8, ROLE_INPUT), JobBuffer(out.va, 8,
                                                       ROLE_OUTPUT)])
        kbdev.pm.power_up()
        kbdev.mmu_configure()
        kbdev.jobs.submit(emitted.descriptor_va, slot=0)
        with pytest.raises(RuntimeError, match="queue length is 1"):
            kbdev.jobs.submit(emitted.descriptor_va, slot=0)


class TestMemsyncEnforcesSerialization:
    def test_emitting_next_job_mid_flight_traps(self):
        """During a record session, preparing job B's commands while job
        A still owns the shared memory triggers §5's trap at the next
        sync point — the mechanical reason for queue depth 1."""
        clock = VirtualClock()
        client_mem = PhysicalMemory(size=8 << 20)
        cloud_mem = PhysicalMemory(size=8 << 20)
        gpu = MaliGpu(HIKEY960_G71, client_mem, clock)
        optee = OpTeeOS()
        gpushim = GpuShim(optee, gpu, clock)
        gpushim.begin_session()
        link = Link(WIFI, clock)
        memsync = MemorySynchronizer(cloud_mem, client_mem,
                                     SyncPolicy.META_ONLY)
        shim = DriverShim(link, gpushim, memsync, ShimModes())
        env = KernelEnv(clock)
        shim.attach(env)

        cmd_region = cloud_mem.alloc(8192, "commands")
        meta_pfns = set(range(cmd_region.base >> 12,
                              (cmd_region.end - 1 >> 12) + 1))
        shim.metastate_provider = lambda: meta_pfns

        # Job A: emit commands, start the job (push happens inside).
        cloud_mem.write(cmd_region.base, b"job-A-commands")
        shim.write32(regs.js_reg(0, regs.JS_COMMAND_NEXT),
                     regs.JsCommand.START)
        # Job B emitted while A's memory is GPU-owned: the next job-start
        # push detects the overlap.
        cloud_mem.write(cmd_region.base + 64, b"job-B-commands")
        with pytest.raises(MemorySyncViolation):
            shim.write32(regs.js_reg(1, regs.JS_COMMAND_NEXT),
                         regs.JsCommand.START)

    def test_serialized_flow_never_traps(self, recorded_micro):
        """The production flow (submit, wait, pull, repeat) records whole
        workloads without a single ownership violation."""
        graph, session, result = recorded_micro
        assert result.stats.gpu_jobs > 0  # completed cleanly
