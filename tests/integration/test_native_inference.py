"""Integration: native execution of NN workloads through the full GPU
stack must agree with the pure-numpy reference forward pass."""

import numpy as np
import pytest

from repro.core.testbed import native_run
from repro.ml.models import build_model
from repro.ml.runner import generate_weights, reference_forward


def _run_and_compare(name, seed=0):
    graph = build_model(name)
    rng = np.random.RandomState(seed + 100)
    inp = rng.rand(*graph.input_shape).astype(np.float32)
    weights = generate_weights(graph, seed)
    result = native_run(graph, inp, seed=seed, weights=weights)
    expected = reference_forward(graph, weights, inp)
    assert result.output.shape == expected.shape
    np.testing.assert_allclose(result.output, expected, atol=1e-3, rtol=1e-3)
    return result


class TestNativeCorrectness:
    def test_mnist(self):
        result = _run_and_compare("mnist")
        assert result.jobs >= 10

    def test_squeezenet(self):
        _run_and_compare("squeezenet")

    def test_resnet12(self):
        _run_and_compare("resnet12")

    @pytest.mark.slow
    def test_alexnet(self):
        _run_and_compare("alexnet")

    @pytest.mark.slow
    def test_mobilenet(self):
        _run_and_compare("mobilenet")

    @pytest.mark.slow
    def test_vgg16(self):
        _run_and_compare("vgg16")


class TestNativeProperties:
    def test_deterministic_across_runs(self):
        graph = build_model("mnist")
        rng = np.random.RandomState(0)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        a = native_run(graph, inp, seed=0)
        b = native_run(build_model("mnist"), inp, seed=0)
        np.testing.assert_array_equal(a.output, b.output)
        assert a.delay_s == pytest.approx(b.delay_s)

    def test_different_input_different_output(self):
        graph = build_model("mnist")
        rng = np.random.RandomState(0)
        a = native_run(graph, rng.rand(1, 28, 28).astype(np.float32))
        b = native_run(build_model("mnist"),
                       rng.rand(1, 28, 28).astype(np.float32))
        assert not np.allclose(a.output, b.output)

    def test_softmax_output_is_distribution(self):
        graph = build_model("mnist")
        rng = np.random.RandomState(0)
        result = native_run(graph, rng.rand(1, 28, 28).astype(np.float32))
        assert result.output.sum() == pytest.approx(1.0, rel=1e-4)
        assert (result.output >= 0).all()

    def test_delay_and_energy_positive(self):
        graph = build_model("mnist")
        rng = np.random.RandomState(0)
        result = native_run(graph, rng.rand(1, 28, 28).astype(np.float32))
        assert 0 < result.delay_s < 1.0
        assert result.energy_j > 0

    def test_micro_graph(self, micro_graph):
        rng = np.random.RandomState(1)
        inp = rng.rand(*micro_graph.input_shape).astype(np.float32)
        w = generate_weights(micro_graph, 0)
        result = native_run(micro_graph, inp, weights=w)
        np.testing.assert_allclose(
            result.output, reference_forward(micro_graph, w, inp),
            atol=1e-4)
