"""Integration: end-to-end tracing through record, replay, and the CLI.

The obs layer must (1) capture all four paper phases during a traced
record run — deferral commits (§4.1), speculation windows (§4.2),
polling offloads (§4.3), memsync epochs (§5); (2) agree with itself
across the record/replay boundary: the segment markers a record run
emits are the same phase boundaries a streamed replay traces, for any
workload; (3) export something ``chrome://tracing`` would load, gated
by the checked-in ``benchmarks/trace_schema.json``; and (4) cost
nothing when disabled — the hooks are ``tracer=None`` guards, so an
untraced run records byte-identically with or without the obs import.
"""

import json
import os

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.ml.models import build_model
from repro.ml.runner import generate_weights
from repro.obs import Tracer, to_chrome_trace, validate_schema

SCHEMA_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "trace_schema.json"
)

PHASE_CATEGORIES = ("deferral", "speculation", "polling", "memsync")


@pytest.fixture(scope="module")
def schema():
    with open(SCHEMA_PATH) as fh:
        return json.load(fh)


def traced_record(workload, tracer=None):
    tracer = tracer if tracer is not None else Tracer()
    result = repro.record(workload, trace=tracer)
    return result, tracer


class TestTracedRecord:
    @pytest.fixture(scope="class")
    def mnist_trace(self):
        return traced_record("mnist")

    def test_all_four_paper_phases_present(self, mnist_trace):
        _, tracer = mnist_trace
        for cat in PHASE_CATEGORIES:
            assert tracer.by_category(cat), f"no {cat} records in trace"

    def test_phase_spans_nest_inside_the_attempt(self, mnist_trace):
        _, tracer = mnist_trace
        commits = [s for s in tracer.spans() if s.cat == "deferral"]
        assert commits
        # commits open under the attempt span (depth >= 2: record >
        # attempt > commit), never at top level
        assert all(s.depth >= 2 for s in commits)
        session = [s for s in tracer.spans() if s.name == "record"]
        assert len(session) == 1
        assert session[0].depth == 0

    def test_no_spans_left_open(self, mnist_trace):
        _, tracer = mnist_trace
        assert tracer.depth() == 0
        assert tracer.finish_open() == 0

    def test_mispredictions_match_stats(self, mnist_trace):
        result, tracer = mnist_trace
        events = [e for e in tracer.events() if e.name == "misprediction"]
        assert len(events) == result.stats.commits.mispredictions

    def test_export_validates(self, mnist_trace, schema):
        _, tracer = mnist_trace
        assert validate_schema(to_chrome_trace(tracer), schema) == []

    def test_untraced_record_is_byte_identical(self, mnist_trace):
        traced, _ = mnist_trace
        plain = repro.record("mnist")
        assert plain.recording.digest() == traced.recording.digest()


@pytest.mark.parametrize("workload", ["mnist", "alexnet"])
def test_record_and_replay_agree_on_phase_boundaries(workload, schema):
    """The segment markers recorded on the cloud side are the phase
    boundaries the client's streamed replay walks — same labels, same
    order, on both sides of one shared trace."""
    tracer = Tracer()
    result, _ = traced_record(workload, tracer)
    record_segments = [e.name for e in tracer.events()
                       if e.cat == "segment" and e.pid == "record"]
    assert record_segments  # one marker per graph node

    graph = build_model(workload)
    device = ClientDevice.for_workload(graph)
    tracer.set_clock(device.clock, domain="replay")
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=result.verify_key, tracer=tracer)
    session = replayer.open(result.recording,
                            generate_weights(graph, seed=0))
    session.run_streamed(np.zeros(graph.input_shape, dtype=np.float32))

    replay_segments = [s.name for s in tracer.spans()
                       if s.cat == "segment" and s.pid == "replay"]
    # the replay log carries a prologue segment (device bring-up)
    # before the first recorded node boundary
    assert replay_segments[0] == "prologue"
    assert replay_segments[1:] == record_segments

    # both domains in one document, distinct process rows
    doc = to_chrome_trace(tracer)
    assert validate_schema(doc, schema) == []
    meta = {e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"}
    assert {"record", "replay"} <= meta


class TestFacade:
    def test_record_replay_roundtrip_with_trace_path(self, tmp_path, schema):
        out = tmp_path / "facade_trace.json"
        result = repro.record("mnist", trace=str(out))
        assert out.exists()
        with open(out) as fh:
            assert validate_schema(json.load(fh), schema) == []

        replay_out = tmp_path / "replay_trace.json"
        replayed = repro.replay(result, trace=str(replay_out))
        assert replayed.output is not None
        with open(replay_out) as fh:
            doc = json.load(fh)
        assert validate_schema(doc, schema) == []
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "session" in cats

    def test_engine_parameter_ab_identity(self):
        result = repro.record("mnist")
        rng = np.random.default_rng(3)
        inp = rng.standard_normal(
            build_model("mnist").input_shape).astype(np.float32)
        legacy = repro.replay(result, inp, engine="legacy")
        compiled = repro.replay(result, inp, engine="compiled")
        assert np.array_equal(legacy.output, compiled.output)
        assert legacy.stats == compiled.stats

    def test_replay_from_file_with_key_sibling(self, tmp_path):
        path = tmp_path / "m.grt"
        assert main(["record", "--workload", "mnist", "--warm", "1",
                     "--out", str(path)]) == 0
        out = repro.replay(str(path))
        assert out.output is not None

    def test_ring_buffer_tracer_through_record(self):
        tracer = Tracer(capacity=64)
        _, tracer = traced_record("mnist", tracer)
        assert len(tracer) == 64
        assert tracer.dropped > 0


class TestTraceCli:
    def test_trace_quick_writes_valid_file(self, tmp_path, capsys, schema):
        out = tmp_path / "trace.json"
        assert main(["trace", "mnist", "--quick", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "schema: valid" in text
        with open(out) as fh:
            doc = json.load(fh)
        assert validate_schema(doc, schema) == []
        cats = {e.get("cat") for e in doc["traceEvents"] if "cat" in e}
        for cat in PHASE_CATEGORIES:
            assert cat in cats, f"CLI trace missing {cat} phase"

    def test_trace_json_format(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "mnist", "--quick", "--format", "json",
                     "--out", str(out)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "trace"
        assert doc["data"]["schema_valid"] is True
        assert doc["data"]["workload"] == "mnist"
        assert doc["data"]["spans"] > 0
