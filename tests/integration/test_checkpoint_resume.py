"""Integration: checkpointed recording sessions survive disconnects.

The paper's determinism requirement (§2.3/§6) extended to link faults: a
session interrupted by a WAN disconnect resumes from its last commit-log
watermark checkpoint and still produces a recording byte-identical to a
fault-free run — verified here down to the TEE replaying the resumed
recording under full signature verification.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.check.specsan import SpecSan
from repro.core.recorder import OURS_MDS, RecordSession
from repro.core.replayer import Replayer
from repro.core.speculation import CommitHistory
from repro.core.testbed import ClientDevice
from repro.ml.runner import generate_weights, reference_forward
from repro.resilience.checkpoint import (
    CheckpointIntegrityError,
    RecordingCheckpoint,
    SessionCheckpointer,
    log_prefix_digest,
)
from repro.resilience.faults import DisconnectWindow, FaultPlan
from tests.conftest import build_micro_graph

# The micro graph's shim traffic runs roughly t=1.3s..2.7s (bring-up and
# JIT come first); the window must cut into live traffic to force a
# mid-session disconnect.
DISCONNECT = FaultPlan(name="disc", seed=0,
                       windows=(DisconnectWindow(1.8, 0.5),))


def warmed_history(graph, rounds=2):
    history = CommitHistory()
    for _ in range(rounds):
        RecordSession(graph, config=OURS_MDS, history=history).run()
    return history


class TestCheckpointResume:
    @pytest.fixture(scope="class")
    def runs(self):
        """(baseline, faulty session, faulty result) on the micro graph,
        both starting from identical warmed history state."""
        graph = build_micro_graph()
        warm = warmed_history(graph)
        snapshot = warm.snapshot()

        def fresh():
            h = CommitHistory()
            h.restore(snapshot)
            return h

        baseline = RecordSession(graph, config=OURS_MDS,
                                 history=fresh()).run()
        session = RecordSession(graph, config=OURS_MDS, history=fresh(),
                                fault_plan=DISCONNECT,
                                sanitizer=SpecSan(strict=True))
        result = session.run()
        return graph, baseline, session, result

    def test_disconnect_resumed(self, runs):
        _, _, session, result = runs
        assert result.stats.resumes >= 1
        assert result.stats.checkpoints >= 1

    def test_recording_byte_identical(self, runs):
        _, baseline, _, result = runs
        assert (result.recording.body_bytes()
                == baseline.recording.body_bytes())

    def test_sanitizer_checked_checkpoints(self, runs):
        _, _, session, _ = runs
        by_rule = session.sanitizer.state.checks_by_rule
        assert by_rule.get("checkpoint-quiescent", 0) >= 1
        assert by_rule.get("checkpoint-watermark", 0) >= 1
        assert not session.sanitizer.violations

    def test_resumed_recording_replays_in_tee(self, runs):
        """The resumed session's recording passes signature verification
        and reproduces the reference forward pass in the client TEE."""
        graph, _, session, result = runs
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock,
                            verify_key=session.service.recording_key)
        weights = generate_weights(graph, seed=3)
        replay = replayer.open(result.recording, weights)
        image = np.random.RandomState(11).rand(
            *graph.input_shape).astype(np.float32)
        out = replay.run(image)
        expected = reference_forward(graph, weights, image)
        np.testing.assert_allclose(out.output, expected,
                                   rtol=1e-4, atol=1e-5)

    def test_disconnect_wait_on_timeline(self, runs):
        _, _, _, result = runs
        assert result.stats.timeline_by_label.get("disconnect", 0.0) > 0


class TestCheckpointIntegrity:
    def test_tampered_checkpoint_fails_verification(self):
        graph = build_micro_graph()
        checkpointer = SessionCheckpointer()
        RecordSession(graph, config=OURS_MDS,
                      fault_plan=FaultPlan(name="clean", seed=0),
                      checkpointer=checkpointer).run()
        assert checkpointer.captures >= 1
        good = checkpointer.latest()
        assert good.verify() is None
        evil = RecordingCheckpoint(
            position=good.position,
            entries=good.entries[:-1] + (good.entries[0],),
            log_digest=good.log_digest,
            memsync_digest=good.memsync_digest,
            history=good.history, created_at=good.created_at,
            trigger=good.trigger)
        with pytest.raises(CheckpointIntegrityError):
            evil.verify()

    def test_resume_prefix_matches_digest(self):
        graph = build_micro_graph()
        checkpointer = SessionCheckpointer()
        RecordSession(graph, config=OURS_MDS,
                      fault_plan=FaultPlan(name="clean", seed=0),
                      checkpointer=checkpointer).run()
        prefix = checkpointer.resume_prefix()
        assert log_prefix_digest(prefix) == checkpointer.latest().log_digest

    def test_fresh_checkpointer_resumes_from_scratch(self):
        assert SessionCheckpointer().resume_prefix() == []


class TestMaxResumeAttempts:
    def test_unrecoverable_plan_raises(self):
        graph = build_micro_graph()
        # Loses everything forever: resume can never make progress.
        plan = FaultPlan(name="dead", seed=0, loss_p=1.0)
        from repro.resilience.channel import ChannelDisconnected
        with pytest.raises(ChannelDisconnected):
            RecordSession(graph, config=OURS_MDS, fault_plan=plan,
                          max_resume_attempts=2).run()
