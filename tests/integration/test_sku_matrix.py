"""Integration: the record/replay loop across a matrix of GPU SKUs.

One driver serves a whole family (§3); recordings bind to exactly one SKU
(§2.4).  Every Mali SKU here runs the full loop: record via the cloud,
replay in the TEE, match the numpy reference.
"""

import numpy as np
import pytest

from repro.core.recorder import OURS_MD, RecordSession
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.hw.sku import find_sku
from repro.ml.runner import generate_weights, reference_forward
from tests.conftest import build_micro_graph

# A Bifrost spread (tiny to huge core counts) plus two Midgard parts.
MATRIX_SKUS = (
    "Mali-G52 MP2",
    "Mali-G71 MP8",
    "Mali-G72 MP12",
    "Mali-G78 MP24",
    "Mali-T760 MP4",
    "Mali-T880 MP12",
)


@pytest.mark.parametrize("sku_name", MATRIX_SKUS)
def test_record_replay_loop_per_sku(sku_name):
    sku = find_sku(sku_name)
    graph = build_micro_graph()
    session = RecordSession(graph, config=OURS_MD, sku=sku)
    result = session.run()
    assert result.recording.sku_fingerprint == sku.fingerprint()

    device = ClientDevice.for_workload(graph, sku=sku)
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=session.service.recording_key)
    recording = replayer.load(result.recording.to_bytes())
    rng = np.random.RandomState(60)
    inp = rng.rand(*graph.input_shape).astype(np.float32)
    weights = generate_weights(graph, 0)
    out = replayer.replay(recording, inp, weights)
    np.testing.assert_allclose(
        out.output, reference_forward(graph, weights, inp), atol=1e-3)


def test_recordings_differ_across_skus():
    """The same workload produces observably different recordings per
    SKU (different probed features, core masks, shader binaries) — the
    reason one recording cannot serve two SKUs."""
    graph = build_micro_graph()
    bodies = set()
    for name in ("Mali-G52 MP2", "Mali-G71 MP8", "Mali-G78 MP24"):
        session = RecordSession(build_micro_graph(), config=OURS_MD,
                                sku=find_sku(name))
        result = session.run()
        bodies.add(result.recording.body_bytes())
    assert len(bodies) == 3


def test_faster_sku_records_faster_gpu_time():
    """Wider GPUs finish jobs sooner: the 24-core G78's GPU time is
    below the 2-core G52's for the same workload."""
    graph = build_micro_graph()
    times = {}
    for name in ("Mali-G52 MP2", "Mali-G78 MP24"):
        result = RecordSession(build_micro_graph(), config=OURS_MD,
                               sku=find_sku(name)).run()
        times[name] = result.stats.timeline_by_label.get("gpu", 0.0)
    assert times["Mali-G78 MP24"] < times["Mali-G52 MP2"]
