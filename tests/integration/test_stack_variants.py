"""Integration: multiple GPU-stack variants in the cloud (§3.1)."""

import numpy as np
import pytest

from repro.core.recorder import OURS_MD, RecordSession
from repro.core.recording import MemWrite
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.ml.runner import generate_weights, reference_forward
from repro.runtime.flavors import ACL_OPENCL, TFLITE_GLES, flavor_for_image
from tests.conftest import build_micro_graph


class TestFlavors:
    def test_flavor_lookup(self):
        assert flavor_for_image("acl-opencl") is ACL_OPENCL
        assert flavor_for_image("tflite-gles") is TFLITE_GLES
        with pytest.raises(KeyError):
            flavor_for_image("cuda-stack")

    def test_cache_policy(self):
        assert ACL_OPENCL.cache_key_for("k") == "k"
        assert TFLITE_GLES.cache_key_for("k") is None


@pytest.fixture(scope="module")
def both_recordings():
    results = {}
    for image in ("acl-opencl", "tflite-gles"):
        session = RecordSession(build_micro_graph(), config=OURS_MD,
                                image=image)
        results[image] = (session, session.run())
    return results


class TestStackVariants:
    def test_both_stacks_record(self, both_recordings):
        for image, (session, result) in both_recordings.items():
            assert result.stats.gpu_jobs > 0
            assert result.recording.recorder == "OursMD"

    def test_both_stacks_replay_correctly(self, both_recordings):
        """Different userspace stacks, same math: both recordings replay
        to the numpy reference — GR-T is stack-agnostic by design."""
        graph = build_micro_graph()
        rng = np.random.RandomState(70)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        weights = generate_weights(graph, 0)
        expected = reference_forward(graph, weights, inp)
        for image, (session, result) in both_recordings.items():
            device = ClientDevice.for_workload(graph)
            replayer = Replayer(device.optee, device.gpu, device.mem,
                                device.clock,
                                session.service.recording_key)
            recording = replayer.load(result.recording.to_bytes())
            out = replayer.replay(recording, inp, weights)
            np.testing.assert_allclose(out.output, expected, atol=1e-3,
                                       err_msg=image)

    def test_stacks_produce_different_metastate(self, both_recordings):
        """The stacks genuinely differ: TFLite's per-node programs and
        GLES state make its shader metastate larger."""
        def meta_bytes(result):
            return sum(e.nbytes for e in result.recording.entries
                       if isinstance(e, MemWrite))

        acl = both_recordings["acl-opencl"][1]
        tfl = both_recordings["tflite-gles"][1]
        assert meta_bytes(tfl) > meta_bytes(acl)
        assert acl.recording.body_bytes() != tfl.recording.body_bytes()

    def test_tflite_pays_more_jit_time(self):
        """No kernel cache: every node recompiles, so cloud-side CPU time
        (and hence recording delay) grows under the TFLite stack."""
        acl = RecordSession(build_micro_graph(), config=OURS_MD,
                            image="acl-opencl").run()
        tfl = RecordSession(build_micro_graph(), config=OURS_MD,
                            image="tflite-gles").run()
        assert tfl.stats.timeline_by_label["cpu"] > \
            acl.stats.timeline_by_label["cpu"]

    def test_unknown_image_rejected(self):
        from repro.cloud.service import ServiceError
        session = RecordSession(build_micro_graph(), config=OURS_MD,
                                image="cuda-stack")
        with pytest.raises(ServiceError):
            session.run()
