"""Integration tests: RaceSan over the real serve layer.

A sanitized 2-worker burst must behave exactly like an unsanitized one
(bit-identical outputs, all requests completed) with zero reports — the
wrappers are observers, not schedulers.  A deliberately broken toy
(inverted lock order, unordered shared access) must be caught.  Also
covers the close() hardening that rode along: double close, concurrent
close, close racing the watchdog's respawn, and __del__ safety.
"""

import threading
import time

import pytest

from repro.check import RaceSan, RaceSanViolation
from repro.serve import ServeCatalog, ShardPool, make_burst, serve_burst


@pytest.fixture(scope="module")
def catalog():
    cat = ServeCatalog()
    cat.record("mnist")
    return cat


class TestServeUnderRaceSan:
    def test_burst_clean_and_bit_identical(self, catalog):
        """2-worker burst under a strict sanitizer: completes, matches
        the single-process reference bit for bit, zero reports — and the
        check counter proves the sanitizer actually ran."""
        san = RaceSan(strict=True)
        requests = make_burst(["mnist"], 8, tenants=2, seed=0)
        report = serve_burst(requests, catalog=catalog, workers=2,
                             verify=True, sanitizer=san)
        assert report.ok
        assert report.summary["bit_identical"] is True
        assert report.summary["requests"]["completed"] == 8
        assert san.violations == []
        assert san.checks_performed > 0
        assert san.state.checks_by_rule.get("racesan-race", 0) > 0

    def test_sanitized_digest_matches_unsanitized(self, catalog):
        """The sanitizer must not perturb results: same burst with and
        without RaceSan produces the same identity digest."""
        requests = make_burst(["mnist"], 6, tenants=2, seed=1)
        plain = serve_burst(requests, catalog=catalog, workers=2)
        san = RaceSan(strict=True)
        sanitized = serve_burst(requests, catalog=catalog, workers=2,
                                sanitizer=san)
        assert plain.identity_digest == sanitized.identity_digest
        assert san.violations == []

    def test_worker_death_under_sanitizer(self, catalog):
        """Kill a worker mid-life: watchdog respawn + failover path run
        under the sanitizer without a single report."""
        san = RaceSan(strict=True)
        requests = make_burst(["mnist"], 6, tenants=1, seed=2)
        with ShardPool(workers=2, sanitizer=san) as pool:
            for spec in catalog.warm_specs(requests):
                pool.warm(spec)
            assert pool.kill_worker(0)
            deadline = time.perf_counter() + 30.0
            while time.perf_counter() < deadline:
                if pool.stats.respawns >= 1 and pool.alive_workers == 2:
                    break
                time.sleep(0.02)
            report = serve_burst(requests, catalog=catalog, pool=pool,
                                 sanitizer=san)
        assert report.ok
        assert san.violations == []


class TestBrokenToyIsCaught:
    """The negative control: RaceSan on code that is actually broken."""

    def test_double_lock_inversion_raises(self):
        san = RaceSan(strict=True)
        pool_lock = san.wrap_lock(threading.Lock(), "pool")
        registry_lock = san.wrap_lock(threading.Lock(), "registry")

        def credit():
            with pool_lock:
                with registry_lock:
                    pass

        def debit():
            with registry_lock:
                with pool_lock:
                    pass

        credit()
        with pytest.raises(RaceSanViolation, match="racesan-lock-cycle"):
            debit()

    def test_unordered_stat_bump_is_reported(self):
        """A stats counter bumped outside the lock from a worker thread
        — exactly the bug class the shards fixes removed."""
        san = RaceSan(strict=False)
        lock = san.wrap_lock(threading.Lock(), "stats_lock")

        def locked_bump():
            with lock:
                san.note("stats", write=True)

        def unlocked_bump():
            san.note("stats", write=True)

        locked_bump()
        t = threading.Thread(target=unlocked_bump)  # no fork edge either
        t.start()
        t.join()
        races = [v for v in san.violations if "racesan-race" in v]
        assert len(races) >= 1
        assert "'stats'" in races[0]


class TestCloseIdempotency:
    def test_double_close(self):
        pool = ShardPool(workers=1)
        pool.start()
        pool.close()
        pool.close()  # second call: immediate no-op, no error
        assert not pool._watchdog.is_alive()
        assert not pool._collector.is_alive()

    def test_close_without_start(self):
        pool = ShardPool(workers=1)
        pool.close()  # never started: nothing to reap

    def test_concurrent_close_single_teardown(self):
        """N racing closers: exactly one tears down, the rest block
        until it finishes, and every worker is gone afterwards."""
        pool = ShardPool(workers=2)
        pool.start()
        errors = []

        def closer():
            try:
                pool.close()
            except Exception as exc:  # noqa: BLE001 - test harness
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert errors == []
        assert all(not t.is_alive() for t in threads)
        assert pool.alive_workers == 2  # handles still marked, but...
        assert all(not w.process.is_alive() for w in pool._workers)

    def test_close_during_respawn_leaks_no_worker(self):
        """Kill a worker and close while the watchdog may be mid-respawn:
        after close every process the pool ever spawned is dead."""
        pool = ShardPool(workers=2)
        pool.start()
        pool.kill_worker(0)
        pool.close()
        assert all(not w.process.is_alive() for w in pool._workers)

    def test_del_closes_started_pool(self):
        pool = ShardPool(workers=1)
        pool.start()
        procs = list(pool._workers)
        pool.__del__()
        assert all(not w.process.is_alive() for w in procs)
