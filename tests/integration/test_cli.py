"""Integration: the command-line interface."""

import json
import os

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def recorded_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "mnist.grt"
    rc = main(["record", "--workload", "mnist", "--out", str(path),
               "--warm", "1"])
    assert rc == 0
    return str(path)


class TestCli:
    def test_skus_listing(self, capsys):
        assert main(["skus"]) == 0
        out = capsys.readouterr().out
        assert "Mali-G71 MP8" in out
        assert "Adreno 630" in out

    def test_skus_family_filter(self, capsys):
        assert main(["skus", "--family", "powervr"]) == 0
        out = capsys.readouterr().out
        assert "PowerVR" in out
        assert "Mali" not in out

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("mnist", "alexnet", "vgg16"):
            assert name in out

    def test_record_writes_artifacts(self, recorded_file, capsys):
        assert os.path.exists(recorded_file)
        assert os.path.exists(recorded_file + ".key")
        stats = json.load(open(recorded_file + ".stats.json"))
        assert stats["workload"] == "mnist"
        assert stats["gpu_jobs"] > 0

    def test_replay_runs(self, recorded_file, capsys):
        rc = main(["replay", "-r", recorded_file, "--runs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "run 0" in out and "run 1" in out
        assert "ms" in out

    def test_inspect(self, recorded_file, capsys):
        assert main(["inspect", recorded_file]) == 0
        out = capsys.readouterr().out
        assert "workload     : mnist" in out
        assert "segments" in out
        assert "conv1" in out

    def test_diff_identical(self, recorded_file, capsys):
        rc = main(["diff", recorded_file, recorded_file])
        assert rc == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_different(self, recorded_file, tmp_path, capsys):
        other = tmp_path / "naive.grt"
        assert main(["record", "--workload", "mnist", "--recorder",
                     "Naive", "--out", str(other), "--warm", "0"]) == 0
        capsys.readouterr()
        rc = main(["diff", recorded_file, str(other)])
        # Naive traces poll via raw reads -> structural divergence.
        assert rc == 2
        assert "divergence" in capsys.readouterr().out

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["record", "--workload", "gpt", "--out", "/tmp/x.grt"])


class TestFleetCli:
    def test_fleet_runs_and_reports(self, capsys):
        rc = main(["fleet", "--clients", "60", "--seed", "7",
                   "--arrival-rate", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fleet overview" in out
        assert "cache hit rate" in out
        # p50/p95/p99 per link type.
        assert "p50" in out and "p99" in out
        assert "wifi" in out and "cellular" in out

    def test_fleet_json_is_deterministic(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["fleet", "--clients", "80", "--seed", "7",
                     "--json", str(a)]) == 0
        assert main(["fleet", "--clients", "80", "--seed", "7",
                     "--json", str(b)]) == 0
        capsys.readouterr()
        assert a.read_text() == b.read_text()
        doc = json.loads(a.read_text())
        assert doc["sessions"]["offered"] == 80
        assert doc["cache"]["hit_rate"] > 0
        for link in doc["latency_s"]["by_link"].values():
            assert {"p50", "p95", "p99"} <= set(link)

    def test_fleet_different_seed_differs(self, tmp_path, capsys):
        a = tmp_path / "s1.json"
        b = tmp_path / "s2.json"
        assert main(["fleet", "--clients", "60", "--seed", "1",
                     "--json", str(a)]) == 0
        assert main(["fleet", "--clients", "60", "--seed", "2",
                     "--json", str(b)]) == 0
        capsys.readouterr()
        assert a.read_text() != b.read_text()


class TestJsonFormat:
    """Every subcommand's ``--format json`` output is one machine-safe
    envelope: ``{"command", "schema", "data"}``."""

    def envelope(self, capsys, command):
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == command
        assert doc["schema"] == 1
        return doc["data"]

    def test_workloads_json(self, capsys):
        assert main(["workloads", "--format", "json"]) == 0
        data = self.envelope(capsys, "workloads")
        assert any(row["name"] == "mnist" for row in data)

    def test_skus_json(self, capsys):
        assert main(["skus", "--format", "json"]) == 0
        data = self.envelope(capsys, "skus")
        assert any("Mali" in row["name"] for row in data)

    def test_replay_json(self, recorded_file, capsys):
        assert main(["replay", "-r", recorded_file, "--runs", "2",
                     "--format", "json"]) == 0
        data = self.envelope(capsys, "replay")
        assert len(data["runs"]) == 2
        assert data["runs"][0]["delay_s"] > 0

    def test_inspect_json(self, recorded_file, capsys):
        assert main(["inspect", recorded_file, "--format", "json"]) == 0
        data = self.envelope(capsys, "inspect")
        assert data["workload"] == "mnist"
        assert sum(data["entries"].values()) > 0
        assert data["jobs"] > 0

    def test_check_json(self, capsys):
        assert main(["check", "--format", "json"]) == 0
        data = self.envelope(capsys, "check")
        assert data["ok"] is True
        assert data["findings"] == []

    def test_text_remains_default(self, capsys):
        assert main(["workloads"]) == 0
        with pytest.raises(json.JSONDecodeError):
            json.loads(capsys.readouterr().out)


class TestTraceFlag:
    def test_replay_trace_writes_chrome_json(self, recorded_file,
                                             tmp_path, capsys):
        out = tmp_path / "replay_trace.json"
        assert main(["replay", "-r", recorded_file,
                     "--trace", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert "traceEvents" in doc
        names = {e["name"] for e in doc["traceEvents"]}
        assert "replay" in names  # the session span
