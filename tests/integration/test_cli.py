"""Integration: the command-line interface."""

import json
import os

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def recorded_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "mnist.grt"
    rc = main(["record", "--workload", "mnist", "--out", str(path),
               "--warm", "1"])
    assert rc == 0
    return str(path)


class TestCli:
    def test_skus_listing(self, capsys):
        assert main(["skus"]) == 0
        out = capsys.readouterr().out
        assert "Mali-G71 MP8" in out
        assert "Adreno 630" in out

    def test_skus_family_filter(self, capsys):
        assert main(["skus", "--family", "powervr"]) == 0
        out = capsys.readouterr().out
        assert "PowerVR" in out
        assert "Mali" not in out

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("mnist", "alexnet", "vgg16"):
            assert name in out

    def test_record_writes_artifacts(self, recorded_file, capsys):
        assert os.path.exists(recorded_file)
        assert os.path.exists(recorded_file + ".key")
        stats = json.load(open(recorded_file + ".stats.json"))
        assert stats["workload"] == "mnist"
        assert stats["gpu_jobs"] > 0

    def test_replay_runs(self, recorded_file, capsys):
        rc = main(["replay", "-r", recorded_file, "--runs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "run 0" in out and "run 1" in out
        assert "ms" in out

    def test_inspect(self, recorded_file, capsys):
        assert main(["inspect", recorded_file]) == 0
        out = capsys.readouterr().out
        assert "workload     : mnist" in out
        assert "segments" in out
        assert "conv1" in out

    def test_diff_identical(self, recorded_file, capsys):
        rc = main(["diff", recorded_file, recorded_file])
        assert rc == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_different(self, recorded_file, tmp_path, capsys):
        other = tmp_path / "naive.grt"
        assert main(["record", "--workload", "mnist", "--recorder",
                     "Naive", "--out", str(other), "--warm", "0"]) == 0
        capsys.readouterr()
        rc = main(["diff", recorded_file, str(other)])
        # Naive traces poll via raw reads -> structural divergence.
        assert rc == 2
        assert "divergence" in capsys.readouterr().out

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["record", "--workload", "gpt", "--out", "/tmp/x.grt"])


class TestFleetCli:
    def test_fleet_runs_and_reports(self, capsys):
        rc = main(["fleet", "--clients", "60", "--seed", "7",
                   "--arrival-rate", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fleet overview" in out
        assert "cache hit rate" in out
        # p50/p95/p99 per link type.
        assert "p50" in out and "p99" in out
        assert "wifi" in out and "cellular" in out

    def test_fleet_json_is_deterministic(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["fleet", "--clients", "80", "--seed", "7",
                     "--json", str(a)]) == 0
        assert main(["fleet", "--clients", "80", "--seed", "7",
                     "--json", str(b)]) == 0
        capsys.readouterr()
        assert a.read_text() == b.read_text()
        doc = json.loads(a.read_text())
        assert doc["sessions"]["offered"] == 80
        assert doc["cache"]["hit_rate"] > 0
        for link in doc["latency_s"]["by_link"].values():
            assert {"p50", "p95", "p99"} <= set(link)

    def test_fleet_different_seed_differs(self, tmp_path, capsys):
        a = tmp_path / "s1.json"
        b = tmp_path / "s2.json"
        assert main(["fleet", "--clients", "60", "--seed", "1",
                     "--json", str(a)]) == 0
        assert main(["fleet", "--clients", "60", "--seed", "2",
                     "--json", str(b)]) == 0
        capsys.readouterr()
        assert a.read_text() != b.read_text()


class TestJsonFormat:
    """Every subcommand's ``--format json`` output is one machine-safe
    envelope: ``{"command", "schema", "data"}``."""

    def envelope(self, capsys, command):
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == command
        assert doc["schema"] == 1
        return doc["data"]

    def test_workloads_json(self, capsys):
        assert main(["workloads", "--format", "json"]) == 0
        data = self.envelope(capsys, "workloads")
        assert any(row["name"] == "mnist" for row in data)

    def test_skus_json(self, capsys):
        assert main(["skus", "--format", "json"]) == 0
        data = self.envelope(capsys, "skus")
        assert any("Mali" in row["name"] for row in data)

    def test_replay_json(self, recorded_file, capsys):
        assert main(["replay", "-r", recorded_file, "--runs", "2",
                     "--format", "json"]) == 0
        data = self.envelope(capsys, "replay")
        assert len(data["runs"]) == 2
        assert data["runs"][0]["delay_s"] > 0

    def test_inspect_json(self, recorded_file, capsys):
        assert main(["inspect", recorded_file, "--format", "json"]) == 0
        data = self.envelope(capsys, "inspect")
        assert data["workload"] == "mnist"
        assert sum(data["entries"].values()) > 0
        assert data["jobs"] > 0

    def test_check_json(self, capsys):
        assert main(["check", "--format", "json"]) == 0
        data = self.envelope(capsys, "check")
        assert data["ok"] is True
        assert data["findings"] == []

    def test_text_remains_default(self, capsys):
        assert main(["workloads"]) == 0
        with pytest.raises(json.JSONDecodeError):
            json.loads(capsys.readouterr().out)


class TestTraceFlag:
    def test_replay_trace_writes_chrome_json(self, recorded_file,
                                             tmp_path, capsys):
        out = tmp_path / "replay_trace.json"
        assert main(["replay", "-r", recorded_file,
                     "--trace", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert "traceEvents" in doc
        names = {e["name"] for e in doc["traceEvents"]}
        assert "replay" in names  # the session span


class TestStoreCli:
    """python -m repro store {ls,gc,verify,rm} + --store on replay."""

    @pytest.fixture(scope="class")
    def store_root(self, recorded_file, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-store") / "artifacts"
        # Forced compile publishes even mnist's low-benefit program.
        rc = main(["replay", "-r", recorded_file, "--engine", "compiled",
                   "--store", str(root)])
        assert rc == 0
        return str(root)

    def test_replay_reports_store_traffic(self, recorded_file, store_root,
                                          capsys):
        capsys.readouterr()
        assert main(["replay", "-r", recorded_file, "--engine", "compiled",
                     "--store", store_root]) == 0
        out = capsys.readouterr().out
        assert "store: 1 hit(s), 0 miss(es), 0 publish(es)" in out

    def test_replay_json_embeds_store_stats(self, recorded_file,
                                            store_root, capsys):
        assert main(["replay", "-r", recorded_file, "--engine", "compiled",
                     "--store", store_root, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "replay"
        assert doc["data"]["store"]["hits"] == 1
        assert doc["data"]["store"]["publishes"] == 0

    def test_store_ls(self, store_root, capsys):
        assert main(["store", "ls", store_root]) == 0
        out = capsys.readouterr().out
        assert "Artifact store" in out and "mnist" in out

    def test_store_ls_json(self, store_root, capsys):
        assert main(["store", "ls", store_root, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "store-ls"
        (entry,) = doc["data"]["entries"]
        assert entry["workload"] == "mnist"
        assert entry["tenant_id"] == "local"
        assert doc["data"]["total_bytes"] == entry["nbytes"]

    def test_store_verify_clean(self, store_root, capsys):
        assert main(["store", "verify", store_root]) == 0
        assert "0 failed" in capsys.readouterr().out

    def test_store_verify_flags_corruption(self, store_root, tmp_path,
                                           capsys):
        import shutil
        bad_root = tmp_path / "bad"
        shutil.copytree(store_root, bad_root)
        victim = next(bad_root.rglob("*.grta"))
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        assert main(["store", "verify", str(bad_root)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_store_gc_and_rm(self, store_root, tmp_path, capsys):
        import shutil
        root = tmp_path / "gc"
        shutil.copytree(store_root, root)
        assert main(["store", "gc", str(root), "--max-bytes", "1"]) == 0
        out = capsys.readouterr().out
        assert "evicted" in out
        assert main(["store", "rm", str(root), "--tenant", "local"]) == 0
        capsys.readouterr()
        assert list(root.rglob("*.grta")) == []

    def test_store_requires_path_or_env(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert main(["store", "ls"]) == 2
        assert "REPRO_STORE" in capsys.readouterr().err

    def test_store_env_fallback(self, store_root, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE", store_root)
        monkeypatch.setattr("repro.core.config._warned_store_env", True)
        assert main(["store", "ls"]) == 0
        assert "mnist" in capsys.readouterr().out
