"""Integration: the unrolled RNN workload (§2.3: "CNN and RNN ... have
static graphs of GPU jobs"), with tied recurrent cell weights."""

import numpy as np
import pytest

from repro.core.recorder import OURS_MDS, RecordSession
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice, native_run
from repro.ml.models import rnn
from repro.ml.runner import generate_weights, reference_forward


@pytest.fixture(scope="module")
def rnn_recording():
    graph = rnn()
    session = RecordSession(graph, config=OURS_MDS)
    return graph, session, session.run()


class TestWeightTying:
    def test_cell_weights_shared(self):
        graph = rnn(steps=4)
        weights = generate_weights(graph, 0)
        assert "cell.wx.weight" in weights
        assert "cell.uh.weight" in weights
        assert "wx0.weight" not in weights
        assert "uh2.weight" not in weights

    def test_manifest_has_one_binding_per_tied_weight(self, rnn_recording):
        graph, session, result = rnn_recording
        names = [b.name for b in result.recording.manifest.weight_bindings()]
        assert names.count("cell.wx.weight") == 1
        assert names.count("cell.uh.weight") == 1
        # Untied head keeps its own.
        assert "logits.weight" in names

    def test_tying_actually_shares_memory(self, rnn_recording):
        """Every timestep's Dense reads the same physical weight buffer —
        changing the cell weights changes every step."""
        graph = rnn(steps=3)
        w1 = generate_weights(graph, 0)
        w2 = dict(w1)
        w2["cell.wx.weight"] = w1["cell.wx.weight"] * 2.0
        rng = np.random.RandomState(9)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        a = reference_forward(graph, w1, inp)
        b = reference_forward(graph, w2, inp)
        assert not np.allclose(a, b)

    def test_conflicting_tie_shapes_rejected(self):
        from repro.ml.graph import Graph, INPUT
        from repro.ml import layers as L
        g = Graph("bad", (8,))
        g.add("a", L.Dense(4, tie="shared"), [INPUT])
        g.add("b", L.Dense(4, tie="shared"), ["a"])  # in_features 8 vs 4
        with pytest.raises(ValueError, match="conflicting shapes"):
            generate_weights(g, 0)


class TestRnnRecordReplay:
    def test_rnn_records(self, rnn_recording):
        graph, session, result = rnn_recording
        assert result.stats.gpu_jobs > 30

    def test_rnn_replays_correctly(self, rnn_recording):
        graph, session, result = rnn_recording
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        recording = replayer.load(result.recording.to_bytes())
        weights = generate_weights(graph, 0)
        replay = replayer.open(recording, weights)
        rng = np.random.RandomState(10)
        for _ in range(2):
            seq = rng.rand(*graph.input_shape).astype(np.float32)
            out = replay.run(seq)
            np.testing.assert_allclose(
                out.output, reference_forward(graph, weights, seq),
                atol=1e-3)

    def test_rnn_sequences_distinguish_outputs(self, rnn_recording):
        """Recurrence is live: reordering timesteps changes the output
        (the network is not just a bag of features)."""
        graph, session, result = rnn_recording
        weights = generate_weights(graph, 0)
        rng = np.random.RandomState(11)
        seq = rng.rand(*graph.input_shape).astype(np.float32)
        reversed_seq = seq[::-1].copy()
        a = reference_forward(graph, weights, seq)
        b = reference_forward(graph, weights, reversed_seq)
        assert not np.allclose(a, b)

    def test_rnn_native_matches_reference(self):
        graph = rnn()
        weights = generate_weights(graph, 0)
        rng = np.random.RandomState(12)
        seq = rng.rand(*graph.input_shape).astype(np.float32)
        result = native_run(graph, seq, weights=weights)
        np.testing.assert_allclose(
            result.output, reference_forward(graph, weights, seq),
            atol=1e-4)
