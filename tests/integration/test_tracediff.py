"""Integration: trace diffing for remote debugging (§3)."""

import pytest

from repro.analysis.tracediff import diff_recordings
from repro.core.recorder import OURS_M, OURS_MDS, RecordSession
from repro.core.recording import RegRead, RegWrite
from repro.hw.sku import find_sku
from tests.conftest import build_micro_graph


@pytest.fixture(scope="module")
def two_identical_runs():
    a = RecordSession(build_micro_graph(), config=OURS_M,
                      client_id="a").run()
    b = RecordSession(build_micro_graph(), config=OURS_M,
                      client_id="b").run()
    return a.recording, b.recording


class TestDiff:
    def test_identical_devices_identical_traces(self, two_identical_runs):
        """Determinism (§2.3): two record runs of the same workload on
        the same SKU produce byte-identical interaction logs."""
        a, b = two_identical_runs
        report = diff_recordings(a, b)
        assert report.identical, report.summary()
        assert report.entries_compared > 500

    def test_recorder_variants_equivalent_register_traces(self):
        """Deferral/speculation change transport, not semantics: the
        register sequence the GPU sees is the same (§4.1 correctness)."""
        a = RecordSession(build_micro_graph(), config=OURS_M).run()
        from repro.core.speculation import CommitHistory
        hist = CommitHistory()
        for _ in range(3):
            RecordSession(build_micro_graph(), config=OURS_MDS,
                          history=hist).run()
        b = RecordSession(build_micro_graph(), config=OURS_MDS,
                          history=hist).run()

        def reg_ops(recording):
            return [(type(e).__name__, e.offset, e.value)
                    for e in recording.entries
                    if isinstance(e, (RegRead, RegWrite))]

        # Poll loops surface differently (inline reads vs PollEntry), so
        # compare the write sequences, which fully determine GPU state.
        writes_a = [(e.offset, e.value) for e in a.recording.entries
                    if isinstance(e, RegWrite)]
        writes_b = [(e.offset, e.value) for e in b.recording.entries
                    if isinstance(e, RegWrite)]
        assert writes_a == writes_b

    def test_detects_value_divergence(self, two_identical_runs):
        a, b = two_identical_runs
        # Simulate a flaky device: corrupt one read value in b's trace.
        entries = list(b.entries)
        for i, entry in enumerate(entries):
            if isinstance(entry, RegRead):
                entries[i] = RegRead(offset=entry.offset,
                                     value=entry.value ^ 0x4)
                break
        from repro.core.recording import Recording
        mutated = Recording(workload=b.workload, recorder=b.recorder,
                            sku_fingerprint=b.sku_fingerprint,
                            manifest=b.manifest, data_pfns=b.data_pfns,
                            entries=entries)
        report = diff_recordings(a, mutated)
        assert not report.identical
        assert report.divergences[0].kind == "value"

    def test_detects_sku_divergence(self):
        """Traces from different SKUs diverge at hardware discovery —
        how the cloud would notice a device lying about its GPU."""
        a = RecordSession(build_micro_graph(), config=OURS_M,
                          sku=find_sku("Mali-G71 MP8")).run()
        b = RecordSession(build_micro_graph(), config=OURS_M,
                          sku=find_sku("Mali-G72 MP12")).run()
        report = diff_recordings(a.recording, b.recording)
        assert not report.identical
        first = report.divergences[0]
        assert first.segment == "prologue"  # probe-time divergence

    def test_length_divergence_reported(self, two_identical_runs):
        a, b = two_identical_runs
        from repro.core.recording import Recording
        truncated = Recording(workload=b.workload, recorder=b.recorder,
                              sku_fingerprint=b.sku_fingerprint,
                              manifest=b.manifest, data_pfns=b.data_pfns,
                              entries=list(b.entries[:-5]))
        report = diff_recordings(a, truncated)
        assert any(d.kind == "length" for d in report.divergences)

    def test_divergence_cap(self, two_identical_runs):
        a, b = two_identical_runs
        from repro.core.recording import Recording
        mutated_entries = [
            RegRead(offset=e.offset, value=e.value ^ 1)
            if isinstance(e, RegRead) else e for e in b.entries]
        mutated = Recording(workload=b.workload, recorder=b.recorder,
                            sku_fingerprint=b.sku_fingerprint,
                            manifest=b.manifest, data_pfns=b.data_pfns,
                            entries=mutated_entries)
        report = diff_recordings(a, mutated, max_divergences=4)
        assert len(report.divergences) == 4

    def test_summary_strings(self, two_identical_runs):
        a, b = two_identical_runs
        assert "identical" in diff_recordings(a, b).summary()
