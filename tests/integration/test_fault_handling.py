"""Integration: GPU job faults and the driver's recovery path."""

import numpy as np
import pytest

from repro.driver.bus import LocalBus
from repro.driver.driver import KbaseDevice, LocalPlatform
from repro.driver.jobs import JobFault
from repro.hw.gpu import MaliGpu
from repro.hw.memory import PhysicalMemory
from repro.hw.sku import HIKEY960_G71
from repro.kernel.env import KernelEnv
from repro.runtime.api import GpuContext
from repro.sim.clock import VirtualClock


@pytest.fixture
def stack():
    clock = VirtualClock()
    mem = PhysicalMemory(size=32 << 20)
    gpu = MaliGpu(HIKEY960_G71, mem, clock)
    env = KernelEnv(clock)
    platform = LocalPlatform(gpu, env)
    kbdev = KbaseDevice(env, LocalBus(gpu, clock), mem)
    platform.attach(kbdev)
    kbdev.probe()
    ctx = GpuContext(kbdev, mem)
    return gpu, kbdev, ctx


def good_job(ctx, tag):
    a = ctx.alloc_data(f"a{tag}", 4096)
    out = ctx.alloc_data(f"o{tag}", 4096)
    ctx.upload(a, np.array([-1.0, 2.0], dtype=np.float32))
    ctx.enqueue("relu", {"shape": [2]}, inputs=[a], outputs=[out],
                cache_key=f"relu-{tag}")
    return ctx.download(out, (2,))


class TestJobFaults:
    def test_bad_descriptor_raises_job_fault(self, stack):
        gpu, kbdev, ctx = stack
        # Point the job slot at unmapped VA: descriptor fetch faults.
        with pytest.raises(JobFault):
            kbdev.run_compute_job(0xDEAD_0000)
        assert gpu.jobs_faulted == 1

    def test_fault_logged_by_irq_handler(self, stack):
        gpu, kbdev, ctx = stack
        with pytest.raises(JobFault):
            kbdev.run_compute_job(0xDEAD_0000)
        assert any("job fault" in line for line in kbdev.env.log)

    def test_driver_recovers_and_runs_next_job(self, stack):
        """The kbase fault path: reset, re-arm, carry on."""
        gpu, kbdev, ctx = stack
        assert np.array_equal(good_job(ctx, 0), [0.0, 2.0])
        with pytest.raises(JobFault):
            kbdev.run_compute_job(0xDEAD_0000)
        # The context must be fully usable again.
        assert np.array_equal(good_job(ctx, 1), [0.0, 2.0])

    def test_repeated_faults_each_recovered(self, stack):
        gpu, kbdev, ctx = stack
        for _ in range(3):
            with pytest.raises(JobFault):
                kbdev.run_compute_job(0xDEAD_0000)
        assert np.array_equal(good_job(ctx, 2), [0.0, 2.0])
        assert gpu.jobs_faulted == 3

    def test_fault_count_does_not_grow_on_success(self, stack):
        gpu, kbdev, ctx = stack
        good_job(ctx, 3)
        assert gpu.jobs_faulted == 0
