"""Integration: the artifact store round-trip on every paper workload.

serialize -> publish -> (simulated restart) -> memmap open -> replay
must be observationally invisible: a store-hit replay produces the same
output bits, virtual delay, and stats as the fresh-compile replay that
published the artifact.  Also covers the two-call facade
(``repro.record(store=...)`` / ``repro.replay(store=...)``) including
the cost-model gate: recordings the model judges not worth compiling
are neither compiled nor published.
"""

import numpy as np
import pytest

import repro
from repro.core.recorder import NAIVE, OURS_MDS, RecordSession
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.fleet.registry import RecordingRegistry
from repro.ml.models import PAPER_WORKLOADS, build_model
from repro.ml.runner import generate_weights
from repro.store import DiskStore


def _run(graph, recording, key, registry, inp, weights):
    device = ClientDevice.for_workload(graph)
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=key, engine="compiled",
                        compiled_cache=registry, tenant_id="t-rt")
    return replayer.open(recording, weights).run(inp)


@pytest.mark.parametrize("workload", sorted(PAPER_WORKLOADS))
def test_store_hit_replay_is_bit_identical(workload, tmp_path):
    graph = build_model(workload)
    session = RecordSession(graph, config=OURS_MDS)
    recording = session.run().recording
    digest = recording.digest()
    key = session.service.recording_key
    weights = generate_weights(graph, seed=0)
    rng = np.random.default_rng(11)
    inp = rng.standard_normal(graph.input_shape).astype(np.float32)

    cold_reg = RecordingRegistry(store=DiskStore(tmp_path))
    cold = _run(graph, recording, key, cold_reg, inp, weights)
    assert cold_reg.artifact_store.stats.publishes == 1

    # Restart: new registry + new DiskStore over the same root; drop
    # the recording's compile memo so only the artifact can serve it.
    recording._compiled = None
    hit_reg = RecordingRegistry(store=DiskStore(tmp_path))
    hit = _run(graph, recording, key, hit_reg, inp, weights)
    assert hit_reg.artifact_store.stats.hits == 1
    assert hit_reg.artifact_store.stats.publishes == 0

    assert np.array_equal(cold.output, hit.output)
    assert cold.delay_s == hit.delay_s
    assert cold.stats == hit.stats
    assert cold.energy_j == pytest.approx(hit.energy_j, rel=1e-12)
    # Publishing must never touch the signed recording.
    assert recording.digest() == digest


class TestFacade:
    def test_record_skips_publish_when_not_beneficial(self, tmp_path):
        """mnist/OursMDS predicts ~1.2x: the cost model keeps it on the
        interpreter, so nothing is compiled or published."""
        res = repro.record("mnist", store=tmp_path)
        assert len(DiskStore(tmp_path)) == 0
        out = repro.replay(res, store=tmp_path)
        assert out.stats.compile_decision == "skipped:low-benefit"
        assert DiskStore(tmp_path).persisted_stats().get("publishes", 0) == 0

    def test_record_publishes_beneficial_recording(self, tmp_path):
        """alexnet/Naive (predicted ~3.2x) is pre-published at record
        time; the first replay in a new process is already a store hit."""
        res = repro.record("alexnet", recorder=NAIVE, store=tmp_path,
                           tenant_id="t-api")
        store = DiskStore(tmp_path)
        (row,) = store.entries()
        assert row["tenant_id"] == "t-api"
        assert row["workload"] == "alexnet"
        assert row["recording_digest"] == res.recording.digest()

        plain = repro.replay(res, engine="compiled")
        res.recording._compiled = None
        hit = repro.replay(res, store=tmp_path, tenant_id="t-api",
                           engine="compiled")
        assert np.array_equal(plain.output, hit.output)
        assert plain.delay_s == hit.delay_s
        assert store.persisted_stats()["hits"] >= 1

    def test_store_classes_reexported(self):
        assert repro.DiskStore is DiskStore
        assert repro.MemoryStore is not None
        assert "DiskStore" in repro.__all__
        assert "MemoryStore" in repro.__all__
