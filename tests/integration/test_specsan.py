"""Integration: live runs under the runtime invariant sanitizer.

The static rules in ``repro.check`` prove source-level conformance;
these tests prove the corresponding *dynamic* invariants hold on real
runs — a full record→replay loop with SpecSan installed on the cloud
session, and a multi-tenant fleet run with FleetSpecSan shadowing the
recording registry.
"""

import numpy as np

from repro.check import FleetSpecSan, SpecSan
from repro.core.recorder import RecordSession
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.fleet import FleetSimulation, WorkloadGenerator
from repro.ml.runner import generate_weights, reference_forward
from tests.conftest import build_micro_graph


class TestSpecSanRecordReplay:
    def test_record_replay_under_sanitizer(self):
        """A clean record run passes every dynamic invariant, and the
        recording it produced still replays correctly."""
        graph = build_micro_graph()
        san = SpecSan()
        session = RecordSession(graph, seed=3, sanitizer=san)
        result = session.run()

        assert san.violations == []
        assert san.checks_performed > 100
        # every invariant family was actually exercised, not vacuously true
        for rule in ("release-consistency", "externalize-validated",
                     "no-speculative-spill", "meta-only"):
            assert san.state.checks_by_rule.get(rule, 0) > 0, rule

        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock,
                            verify_key=session.service.recording_key)
        rec = replayer.load(result.recording.to_bytes())
        weights = generate_weights(graph, seed=3)
        rng = np.random.RandomState(11)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        out = replayer.replay(rec, inp, weights)
        np.testing.assert_allclose(
            out.output, reference_forward(graph, weights, inp), atol=1e-3)

    def test_sanitizer_requires_attached_shim(self):
        """install() refuses to observe an env the shim is not hooked to
        — post-conditions of an absent shim would be meaningless."""
        import pytest

        from repro.kernel.env import KernelEnv
        from repro.sim.clock import VirtualClock

        env = KernelEnv(VirtualClock())
        with pytest.raises(RuntimeError):
            SpecSan().install(env, shim=object())


class TestFleetSpecSan:
    def test_fleet_run_under_sanitizer(self):
        requests = WorkloadGenerator(seed=7, arrival_rate_hz=4.0,
                                     tenants=6).generate(60)
        sim = FleetSimulation(requests, capacity=8, warm_target=4,
                              queue_limit=12)
        san = FleetSpecSan().install(sim.registry)
        sim.run()
        checked = san.finish()

        assert san.violations == []
        assert checked > 0
        assert san.checks_performed > checked  # live checks + final sweep
        # cache hits occurred, so the lookup path was really exercised
        assert sim.summary()["cache"]["hits"] > 0
