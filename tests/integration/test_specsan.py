"""Integration: live runs under the runtime invariant sanitizer.

The static rules in ``repro.check`` prove source-level conformance;
these tests prove the corresponding *dynamic* invariants hold on real
runs — a full record→replay loop with SpecSan installed on the cloud
session, and a multi-tenant fleet run with FleetSpecSan shadowing the
recording registry.
"""

import numpy as np

from repro.check import FleetSpecSan, SpecSan, SpecSanViolation
from repro.core.recorder import RecordSession
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.fleet import FleetSimulation, WorkloadGenerator
from repro.ml.runner import generate_weights, reference_forward
from tests.conftest import build_micro_graph


class TestSpecSanRecordReplay:
    def test_record_replay_under_sanitizer(self):
        """A clean record run passes every dynamic invariant, and the
        recording it produced still replays correctly."""
        graph = build_micro_graph()
        san = SpecSan()
        session = RecordSession(graph, seed=3, sanitizer=san)
        result = session.run()

        assert san.violations == []
        assert san.checks_performed > 100
        # every invariant family was actually exercised, not vacuously true
        for rule in ("release-consistency", "externalize-validated",
                     "no-speculative-spill", "meta-only"):
            assert san.state.checks_by_rule.get(rule, 0) > 0, rule

        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock,
                            verify_key=session.service.recording_key)
        rec = replayer.load(result.recording.to_bytes())
        weights = generate_weights(graph, seed=3)
        rng = np.random.RandomState(11)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        out = replayer.replay(rec, inp, weights)
        np.testing.assert_allclose(
            out.output, reference_forward(graph, weights, inp), atol=1e-3)

    def test_sanitizer_requires_attached_shim(self):
        """install() refuses to observe an env the shim is not hooked to
        — post-conditions of an absent shim would be meaningless."""
        import pytest

        from repro.kernel.env import KernelEnv
        from repro.sim.clock import VirtualClock

        env = KernelEnv(VirtualClock())
        with pytest.raises(RuntimeError):
            SpecSan().install(env, shim=object())


class TestFleetSpecSan:
    def test_fleet_run_under_sanitizer(self):
        requests = WorkloadGenerator(seed=7, arrival_rate_hz=4.0,
                                     tenants=6).generate(60)
        sim = FleetSimulation(requests, capacity=8, warm_target=4,
                              queue_limit=12)
        san = FleetSpecSan().install(sim.registry)
        sim.run()
        checked = san.finish()

        assert san.violations == []
        assert checked > 0
        assert san.checks_performed > checked  # live checks + final sweep
        # cache hits occurred, so the lookup path was really exercised
        assert sim.summary()["cache"]["hits"] > 0


class TestFleetSpecSanStore:
    """install_store(): the same independent §7.1 oracle, extended to
    the compiled-artifact tier (publishes and store hits)."""

    @staticmethod
    def _recording():
        from repro.core.recorder import OURS_MDS
        return RecordSession(build_micro_graph(),
                             config=OURS_MDS).run().recording

    def test_store_backed_replay_flow_is_clean(self, tmp_path):
        from repro.fleet.registry import RecordingRegistry
        from repro.store import DiskStore

        recording = self._recording()
        store = DiskStore(tmp_path)
        san = FleetSpecSan().install_store(store)
        registry = RecordingRegistry(store=store)
        # Publish (miss -> compile -> put), then restart-style hit from
        # a registry with a cold memory tier.
        registry.compiled_for("t0", recording.digest(), recording.compile,
                              recording=recording)
        fresh = RecordingRegistry(store=store)
        got = fresh.compiled_for("t0", recording.digest(),
                                 recording.compile, recording=recording)
        assert got is not None
        checked = san.finish()
        assert san.violations == []
        assert checked >= 1  # the store audit really swept entries
        assert san.state.checks_by_rule.get("tenant-isolation", 0) > 0

    def test_cross_tenant_publish_is_flagged(self, tmp_path):
        from repro.core.compiled import to_artifact
        from repro.store import ArtifactKey, MemoryStore

        recording = self._recording()
        store = MemoryStore()
        san = FleetSpecSan().install_store(store)
        blob = to_artifact(recording.compile(), tenant_id="t0",
                           recording=recording)
        import pytest
        with pytest.raises(SpecSanViolation, match="§7.1|t0"):
            store.put("t-other", ArtifactKey.current(recording.digest()),
                      blob)
        assert san.violations != []

    def test_oracle_catches_a_leaky_store(self):
        """A (buggy) store that serves tenant A's program to tenant B
        passes its own checks but not the sanitizer's shadow oracle."""
        from repro.core.compiled import from_artifact, to_artifact
        from repro.store import ArtifactKey

        recording = self._recording()
        blob = to_artifact(recording.compile(), tenant_id="t0",
                           recording=recording)
        leaked = from_artifact(blob)

        class LeakyStore:
            def get(self, tenant_id, key):
                return leaked  # ignores tenant_id: the §7.1 bug

            def put(self, tenant_id, key, blob):
                return []

            def audit_isolation(self):
                return 0

        san = FleetSpecSan(strict=False).install_store(LeakyStore())
        key = ArtifactKey.current(recording.digest())
        assert san.store.get("t0", key) is leaked      # owner: clean
        assert san.violations == []
        san.store.get("t-other", key)                  # leak: flagged
        assert any("§7.1" in v or "owned by" in v for v in san.violations)
