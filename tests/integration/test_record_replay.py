"""Integration: the full GR-T loop — record in the cloud session, replay
in the client TEE, verify numerical correctness and input independence."""

import numpy as np
import pytest

from repro.core.recorder import (
    NAIVE,
    OURS_M,
    OURS_MD,
    OURS_MDS,
    RecordSession,
)
from repro.core.replayer import Replayer, ReplayError
from repro.core.testbed import ClientDevice
from repro.ml.models import build_model
from repro.ml.runner import generate_weights, reference_forward
from tests.conftest import build_micro_graph


def make_replayer(graph, session):
    device = ClientDevice.for_workload(graph)
    return device, Replayer(device.optee, device.gpu, device.mem,
                            device.clock,
                            verify_key=session.service.recording_key)


class TestRecordingContents:
    def test_recording_counts(self, recorded_micro):
        graph, session, result = recorded_micro
        counts = result.recording.counts()
        assert counts["writes"] > 50
        assert counts["irqs"] >= result.stats.gpu_jobs
        assert counts["mem_writes"] >= result.stats.gpu_jobs
        assert counts["markers"] == len(graph.nodes)

    def test_manifest_has_all_data_bindings(self, recorded_micro):
        graph, session, result = recorded_micro
        manifest = result.recording.manifest
        names = {b.name for b in manifest.bindings}
        assert "input" in names and "output" in names
        assert "conv1.weight" in names and "fc.weight" in names

    def test_serialization_roundtrip(self, recorded_micro):
        graph, session, result = recorded_micro
        blob = result.recording.to_bytes()
        from repro.core.recording import Recording
        back = Recording.from_bytes(blob, session.service.recording_key)
        assert back.entries == result.recording.entries

    def test_dry_run_data_is_zero(self, recorded_micro):
        """§7.1 confidentiality: no real input/weights during recording.
        The dry-run output is the all-zeros network's output."""
        graph, session, result = recorded_micro
        # With zero weights+input, logits are all equal -> uniform softmax.
        assert np.allclose(result.output, result.output[0])

    def test_segments_match_layers(self, recorded_micro):
        graph, session, result = recorded_micro
        labels = [label for label, _ in result.recording.segments()]
        assert labels[0] == "prologue"
        assert labels[1:] == [n.name for n in graph.nodes]


class TestReplayCorrectness:
    def test_replay_matches_reference(self, recorded_micro):
        graph, session, result = recorded_micro
        device, replayer = make_replayer(graph, session)
        rec = replayer.load(result.recording.to_bytes())
        rng = np.random.RandomState(5)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        weights = generate_weights(graph, 0)
        out = replayer.replay(rec, inp, weights)
        np.testing.assert_allclose(
            out.output, reference_forward(graph, weights, inp), atol=1e-3)

    def test_input_independence(self, recorded_micro):
        """§2.3: one recording serves arbitrarily many new inputs."""
        graph, session, result = recorded_micro
        device, replayer = make_replayer(graph, session)
        rec = replayer.load(result.recording.to_bytes())
        weights = generate_weights(graph, 0)
        rng = np.random.RandomState(6)
        for _ in range(3):
            inp = rng.rand(*graph.input_shape).astype(np.float32)
            out = replayer.replay(rec, inp, weights)
            np.testing.assert_allclose(
                out.output, reference_forward(graph, weights, inp),
                atol=1e-3)

    def test_different_weights_at_replay(self, recorded_micro):
        """Model parameters are injected at replay, not baked into the
        recording — the recording carries only addresses."""
        graph, session, result = recorded_micro
        device, replayer = make_replayer(graph, session)
        rec = replayer.load(result.recording.to_bytes())
        rng = np.random.RandomState(7)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        w2 = generate_weights(graph, seed=99)
        out = replayer.replay(rec, inp, w2)
        np.testing.assert_allclose(
            out.output, reference_forward(graph, w2, inp), atol=1e-3)

    def test_missing_weights_rejected(self, recorded_micro):
        graph, session, result = recorded_micro
        device, replayer = make_replayer(graph, session)
        rec = replayer.load(result.recording.to_bytes())
        inp = np.zeros(graph.input_shape, dtype=np.float32)
        with pytest.raises(ReplayError):
            replayer.replay(rec, inp, weights={})

    def test_wrong_input_shape_rejected(self, recorded_micro):
        graph, session, result = recorded_micro
        device, replayer = make_replayer(graph, session)
        rec = replayer.load(result.recording.to_bytes())
        with pytest.raises(ReplayError):
            replayer.replay(rec, np.zeros((3, 3, 3), dtype=np.float32),
                            generate_weights(graph, 0))

    def test_mnist_full_loop(self):
        graph = build_model("mnist")
        session = RecordSession(graph, config=OURS_MDS)
        result = session.run()
        device, replayer = make_replayer(graph, session)
        rec = replayer.load(result.recording.to_bytes())
        rng = np.random.RandomState(8)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        weights = generate_weights(graph, 0)
        out = replayer.replay(rec, inp, weights)
        expected = reference_forward(graph, weights, inp)
        np.testing.assert_allclose(out.output, expected, atol=1e-3)
        assert out.output.argmax() == expected.argmax()


class TestReplayAcrossRecorders:
    @pytest.mark.parametrize("config", [NAIVE, OURS_M, OURS_MD, OURS_MDS],
                             ids=lambda c: c.name)
    def test_every_recorder_variant_replays(self, config):
        """All four recorders must produce *equivalent* recordings: the
        optimizations change how interactions travel, not what the GPU
        experiences."""
        graph = build_micro_graph()
        session = RecordSession(graph, config=config)
        result = session.run()
        device, replayer = make_replayer(graph, session)
        rec = replayer.load(result.recording.to_bytes())
        rng = np.random.RandomState(9)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        weights = generate_weights(graph, 0)
        out = replayer.replay(rec, inp, weights)
        np.testing.assert_allclose(
            out.output, reference_forward(graph, weights, inp), atol=1e-3)


class TestReplayPerformance:
    def test_replay_faster_than_native_for_small_nn(self, recorded_micro):
        """Table 2: replay removes the GPU stack's per-job overheads."""
        from repro.core.testbed import native_run
        graph, session, result = recorded_micro
        device, replayer = make_replayer(graph, session)
        rec = replayer.load(result.recording.to_bytes())
        rng = np.random.RandomState(10)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        weights = generate_weights(graph, 0)
        replay = replayer.replay(rec, inp, weights)
        native = native_run(graph, inp, weights=weights)
        assert replay.delay_s < native.delay_s

    def test_replay_delay_stable(self, recorded_micro):
        graph, session, result = recorded_micro
        device, replayer = make_replayer(graph, session)
        rec = replayer.load(result.recording.to_bytes())
        weights = generate_weights(graph, 0)
        inp = np.zeros(graph.input_shape, dtype=np.float32)
        d1 = replayer.replay(rec, inp, weights).delay_s
        d2 = replayer.replay(rec, inp, weights).delay_s
        assert d1 == pytest.approx(d2, rel=0.01)
