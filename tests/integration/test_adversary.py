"""Integration: a privileged normal-world adversary attacks a live
session (§7.1's local threat model), and every attack is stopped by a
mechanism the model actually enforces."""

import pytest

from repro.core.gpushim import GpuShim
from repro.core.recorder import OURS_MDS, RecordSession
from repro.core.recording import RecordingFormatError
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.tee.worlds import (
    GpuMmioGuard,
    ProtectedMemoryView,
    SecurityViolation,
    World,
)
from tests.conftest import build_micro_graph


class Adversary:
    """The compromised OS: normal-world views of every shared resource."""

    def __init__(self, device: ClientDevice):
        self.mmio = GpuMmioGuard(device.gpu, device.optee.tzasc,
                                 World.NORMAL)
        self.memory = ProtectedMemoryView(device.mem, device.optee.tzasc,
                                          World.NORMAL)
        self.clk = device.clk
        self.device = device


@pytest.fixture
def armed_device():
    """A device with GPUShim holding an active session."""
    device = ClientDevice()
    shim = GpuShim(device.optee, device.gpu, device.clock, clk=device.clk)
    device.optee.load_module(shim)
    shim.begin_session()
    yield device, shim, Adversary(device)
    shim.end_session()


class TestLocalAdversary:
    def test_cannot_read_gpu_registers(self, armed_device):
        device, shim, adv = armed_device
        with pytest.raises(SecurityViolation):
            adv.mmio.read_reg(0x0)

    def test_cannot_inject_gpu_commands(self, armed_device):
        device, shim, adv = armed_device
        with pytest.raises(SecurityViolation):
            adv.mmio.write_reg(0x30, 0x1)  # GPU_COMMAND soft reset

    def test_cannot_read_tee_memory(self, armed_device):
        """The client memory carveout is statically reserved for the
        secure world (§6's Hikey960 workaround)."""
        device, shim, adv = armed_device
        with pytest.raises(SecurityViolation):
            adv.memory.read(device.mem.base, 64)

    def test_cannot_tamper_tee_memory(self, armed_device):
        device, shim, adv = armed_device
        with pytest.raises(SecurityViolation):
            adv.memory.write(device.mem.base + 4096, b"\xEE" * 8)

    def test_cannot_glitch_gpu_clock(self, armed_device):
        device, shim, adv = armed_device
        with pytest.raises(SecurityViolation):
            adv.clk.set_rate(178, world=World.NORMAL)

    def test_violations_are_counted(self, armed_device):
        device, shim, adv = armed_device
        before = device.optee.tzasc.violations
        for attack in (lambda: adv.mmio.read_reg(0),
                       lambda: adv.memory.read(device.mem.base, 4)):
            with pytest.raises(SecurityViolation):
                attack()
        assert device.optee.tzasc.violations == before + 2

    def test_access_restored_after_session(self):
        device = ClientDevice()
        shim = GpuShim(device.optee, device.gpu, device.clock,
                       clk=device.clk)
        device.optee.load_module(shim)
        adv = Adversary(device)
        shim.begin_session()
        shim.end_session()
        adv.mmio.read_reg(0x0)  # MMIO back with the OS
        adv.clk.set_rate(533, world=World.NORMAL)  # DVFS back with the OS


class TestStorageAdversary:
    def test_recording_swap_detected(self, recorded_micro):
        """The OS controls flash: it may swap the stored recording for a
        recording of a *different* workload it obtained legitimately.
        The signature still verifies (it is a real cloud signature), but
        the TEE's workload/manifest check catches the swap."""
        graph, session, result = recorded_micro
        other_graph = build_micro_graph()
        other = RecordSession("mnist", config=OURS_MDS,
                              service=session.service).run()
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        swapped = replayer.load(other.recording.to_bytes())
        # The app asked for the micro workload; it must notice the swap.
        assert swapped.workload != result.recording.workload

    def test_bitflip_in_storage_detected(self, recorded_micro):
        graph, session, result = recorded_micro
        device = ClientDevice.for_workload(graph)
        device.optee.store("rec", result.recording.to_bytes())
        blob = bytearray(device.optee.load("rec"))
        blob[len(blob) // 2] ^= 0x20
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        with pytest.raises(RecordingFormatError):
            replayer.load(bytes(blob))
