"""Integration: a real classification task through the full TEE path.

Not just numerics: a trained digit classifier must reach the same
above-chance accuracy whether it runs natively on the GPU stack, via the
pure-numpy reference, or replayed inside the TEE — demonstrating that
GR-T preserves end-task quality, and that retraining the model (new
weights) needs no re-recording.
"""

import numpy as np
import pytest

from repro.core.recorder import OURS_MDS, RecordSession
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.ml.datasets import accuracy, fit_readout, synthetic_digits
from repro.ml.models import mnist
from repro.ml.runner import generate_weights, reference_forward


@pytest.fixture(scope="module")
def trained_setup():
    graph = mnist()
    base_weights = generate_weights(graph, seed=0)
    train_x, train_y = synthetic_digits(300, seed=1)
    weights = fit_readout(graph, base_weights, train_x, train_y)
    test_x, test_y = synthetic_digits(80, seed=2)
    session = RecordSession(graph, config=OURS_MDS)
    record = session.run()
    return graph, weights, (test_x, test_y), session, record


class TestTaskAccuracy:
    def test_reference_accuracy_above_chance(self, trained_setup):
        graph, weights, (test_x, test_y), session, record = trained_setup
        outputs = np.stack([reference_forward(graph, weights, img)
                            for img in test_x])
        acc = accuracy(outputs, test_y)
        assert acc > 0.6, f"readout failed to learn: accuracy {acc:.2f}"

    def test_tee_replay_matches_reference_accuracy(self, trained_setup):
        """The headline claim, at task level: TEE inference is exactly as
        good as insecure inference."""
        graph, weights, (test_x, test_y), session, record = trained_setup
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        recording = replayer.load(record.recording.to_bytes())
        replay = replayer.open(recording, weights)
        results = replay.run_batch(list(test_x))
        tee_outputs = np.stack([r.output for r in results])
        ref_outputs = np.stack([reference_forward(graph, weights, img)
                                for img in test_x])
        assert accuracy(tee_outputs, test_y) == \
            accuracy(ref_outputs, test_y)
        np.testing.assert_allclose(tee_outputs, ref_outputs, atol=1e-3)

    def test_retraining_needs_no_rerecording(self, trained_setup):
        """§2.3: model parameters are injected data.  A model retrained
        on different data replays through the *same* recording."""
        graph, weights, (test_x, test_y), session, record = trained_setup
        retrain_x, retrain_y = synthetic_digits(300, seed=7)
        new_weights = fit_readout(graph, generate_weights(graph, 0),
                                  retrain_x, retrain_y)
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        recording = replayer.load(record.recording.to_bytes())
        replay = replayer.open(recording, new_weights)
        results = replay.run_batch(list(test_x[:30]))
        acc = accuracy(np.stack([r.output for r in results]), test_y[:30])
        assert acc > 0.5


class TestDataset:
    def test_shapes_and_range(self):
        x, y = synthetic_digits(10, seed=0)
        assert x.shape == (10, 1, 28, 28)
        assert x.min() >= 0.0 and x.max() <= 1.0
        assert set(np.unique(y)) <= set(range(10))

    def test_deterministic(self):
        a = synthetic_digits(5, seed=3)
        b = synthetic_digits(5, seed=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_digits_are_distinguishable(self):
        """Noise-free glyphs of different digits differ substantially."""
        rng = np.random.RandomState(0)
        from repro.ml.datasets import render_digit
        glyphs = [render_digit(d, np.random.RandomState(1), noise=0.0,
                               max_shift=0) for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.abs(glyphs[i] - glyphs[j]).sum() > 10
