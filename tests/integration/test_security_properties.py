"""Integration: the security properties §7.1 claims, enforced not narrated.

Threat model: a local privileged adversary controlling the client OS
(normal world), and a network adversary.  These tests check integrity of
recording and replay, confidentiality of ML data, and SKU binding.
"""

import numpy as np
import pytest

from repro.core.gpushim import GpuShim
from repro.core.recorder import OURS_MDS, RecordSession
from repro.core.recording import MemWrite, Recording, RecordingFormatError
from repro.core.replayer import Replayer, ReplayError
from repro.core.testbed import ClientDevice
from repro.hw.sku import find_sku
from repro.ml.runner import generate_weights
from repro.tee.crypto import SigningKey
from repro.tee.worlds import GpuMmioGuard, SecurityViolation, World
from tests.conftest import build_micro_graph


class TestRecordingIntegrity:
    def test_tampered_recording_rejected(self, recorded_micro):
        graph, session, result = recorded_micro
        blob = bytearray(result.recording.to_bytes())
        blob[len(blob) // 2] ^= 0x80
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        with pytest.raises(RecordingFormatError):
            replayer.load(bytes(blob))

    def test_recording_from_unknown_cloud_rejected(self, recorded_micro):
        """The replayer only accepts recordings signed by *its* cloud."""
        graph, session, result = recorded_micro
        forged = Recording(
            workload=result.recording.workload,
            recorder=result.recording.recorder,
            sku_fingerprint=result.recording.sku_fingerprint,
            manifest=result.recording.manifest,
            data_pfns=result.recording.data_pfns,
            entries=list(result.recording.entries),
        )
        blob = forged.sign(SigningKey.generate("evil-cloud", b"x"))
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        with pytest.raises(RecordingFormatError):
            replayer.load(blob)


class TestGpuIsolation:
    def test_normal_world_locked_out_during_recording(self):
        """GPUShim locks the GPU MMIO region during recording."""
        device = ClientDevice()
        optee = device.optee
        shim = GpuShim(optee, device.gpu, device.clock)
        optee.load_module(shim)
        shim.begin_session()
        normal_view = GpuMmioGuard(device.gpu, optee.tzasc, World.NORMAL)
        with pytest.raises(SecurityViolation):
            normal_view.read_reg(0x000)
        with pytest.raises(SecurityViolation):
            normal_view.write_reg(0x030, 1)  # no GPU_COMMAND injection
        shim.end_session()
        normal_view.read_reg(0x000)  # released afterwards

    def test_gpu_reset_before_and_after_session(self):
        device = ClientDevice()
        shim = GpuShim(device.optee, device.gpu, device.clock)
        device.optee.load_module(shim)
        resets_before = device.gpu.resets
        shim.begin_session()
        shim.end_session()
        assert device.gpu.resets >= resets_before + 2

    def test_session_discipline(self):
        device = ClientDevice()
        shim = GpuShim(device.optee, device.gpu, device.clock)
        with pytest.raises(RuntimeError):
            shim.execute_poll(None)  # no session
        shim.begin_session()
        with pytest.raises(RuntimeError):
            shim.begin_session()  # double begin


class TestConfidentiality:
    def test_no_real_data_in_recording(self, recorded_micro):
        """§7.1: model parameters and inputs never leave the TEE.  The
        recording's memory images must not contain data pages at all, and
        the dry run used zeros."""
        graph, session, result = recorded_micro
        data_pfns = set(result.recording.data_pfns)
        for entry in result.recording.entries:
            if isinstance(entry, MemWrite):
                for pfn, raw in entry.pages:
                    assert pfn not in data_pfns

    def test_replay_requires_no_network(self, recorded_micro):
        """Replay happens entirely inside the TEE: the replayer object has
        no link/cloud dependency by construction."""
        graph, session, result = recorded_micro
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        rec = replayer.load(result.recording.to_bytes())
        out = replayer.replay(
            rec, np.zeros(graph.input_shape, dtype=np.float32),
            generate_weights(graph, 0))
        assert out.output.shape == graph.output_shape


class TestSkuBinding:
    def test_replay_on_wrong_sku_rejected(self, recorded_micro):
        """§2.4: even subtle SKU differences break replay; the replayer
        refuses upfront via the fingerprint."""
        graph, session, result = recorded_micro
        device = ClientDevice.for_workload(graph,
                                           sku=find_sku("Mali-G72 MP12"))
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        rec = replayer.load(result.recording.to_bytes())
        with pytest.raises(ReplayError):
            replayer.replay(rec, np.zeros(graph.input_shape,
                                          dtype=np.float32),
                            generate_weights(graph, 0))

    def test_same_product_different_core_count_rejected(self, recorded_micro):
        graph, session, result = recorded_micro
        device = ClientDevice.for_workload(graph,
                                           sku=find_sku("Mali-G71 MP20"))
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        rec = replayer.load(result.recording.to_bytes())
        with pytest.raises(ReplayError):
            replayer.check_sku(rec)


class TestCloudSessionHygiene:
    def test_vms_not_shared_between_clients(self):
        from repro.cloud.service import CloudService
        from repro.kernel.devicetree import board_device_tree
        from repro.hw.sku import HIKEY960_G71
        service = CloudService()
        tree = board_device_tree(HIKEY960_G71)
        t1 = service.open_session("alice", "acl-opencl", tree, b"n1")
        t2 = service.open_session("bob", "acl-opencl", tree, b"n2")
        assert t1.vm is not t2.vm
        assert t1.vm.client_id != t2.vm.client_id

    def test_recordings_not_cached_across_clients(self):
        """§3.1: the cloud never reuses recordings across clients, even
        for identical SKUs.  Two clients' sessions produce independent
        recordings (same semantics, separate objects and sessions)."""
        graph = build_micro_graph()
        r1 = RecordSession(graph, config=OURS_MDS, client_id="alice").run()
        r2 = RecordSession(build_micro_graph(), config=OURS_MDS,
                           client_id="bob").run()
        assert r1.recording is not r2.recording
        # Equivalent content (determinism), independently produced.
        assert r1.recording.counts() == r2.recording.counts()

    def test_fault_injection_never_silently_corrupts(self):
        """A corrupted register value either lands in a synchronous commit
        (consumed as ground truth, as on real flaky hardware) or triggers
        detection+recovery — it must never abort the session."""
        graph = build_micro_graph()
        from repro.core.speculation import CommitHistory
        history = CommitHistory()
        for _ in range(3):
            RecordSession(graph, config=OURS_MDS, history=history).run()
        session = RecordSession(graph, config=OURS_MDS, history=history)
        session.inject_fault_at_read(50)
        result = session.run()  # must complete
        assert result.recording.entries
