"""Integration: legacy per-entry replay vs the columnar compiled program.

The compiled fast path (core.compiled + replay_entries' dispatch table)
must be an *observationally invisible* optimization: for every seed
workload the two engines have to produce bit-identical outputs, the same
virtual-clock delay, and equal ReplayStats.  Engine selection is the
``engine="legacy"|"compiled"`` parameter on :class:`Replayer`; the old
``REPRO_LEGACY_REPLAY`` environment toggle is still honored under
``engine="auto"`` but warns (tested at the bottom).
"""

import os
import warnings

import numpy as np
import pytest

from repro.core import config
from repro.core.recorder import NAIVE, OURS_MDS, RecordSession
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.ml.models import PAPER_WORKLOADS, build_model
from repro.ml.runner import generate_weights


def open_session(graph, recording, weights, verify_key, engine):
    device = ClientDevice.for_workload(graph)
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=verify_key, engine=engine)
    return replayer.open(recording, weights)


CASES = [(name, OURS_MDS) for name in sorted(PAPER_WORKLOADS)]
# The streaming regime: Naive re-pushes the full memory image per job,
# which is exactly the path the compiled page groups accelerate.
CASES.append(("alexnet", NAIVE))


@pytest.mark.parametrize(
    "workload,recorder", CASES,
    ids=[f"{w}-{r.name}" for w, r in CASES])
def test_engines_agree_on_every_seed_workload(workload, recorder):
    graph = build_model(workload)
    session = RecordSession(graph, config=recorder)
    recording = session.run().recording
    digest = recording.digest()
    weights = generate_weights(graph, seed=0)
    rng = np.random.default_rng(7)
    inp = rng.standard_normal(graph.input_shape).astype(np.float32)

    legacy = open_session(graph, recording, weights,
                          session.service.recording_key, "legacy").run(inp)
    compiled = open_session(graph, recording, weights,
                            session.service.recording_key, "compiled").run(inp)

    assert np.array_equal(legacy.output, compiled.output)
    assert legacy.delay_s == compiled.delay_s
    assert legacy.stats == compiled.stats
    assert legacy.energy_j == pytest.approx(compiled.energy_j, rel=1e-9)
    # Compiling must never mutate the signed blob.
    assert recording.digest() == digest


def test_compiled_session_reuses_the_cached_program():
    graph = build_model("mnist")
    session = RecordSession(graph, config=OURS_MDS)
    recording = session.run().recording
    compiled = recording.compile()
    assert recording.compile() is compiled
    weights = generate_weights(graph, seed=0)
    inp = np.zeros(graph.input_shape, dtype=np.float32)
    first = open_session(graph, recording, weights,
                         session.service.recording_key, "compiled").run(inp)
    second = open_session(graph, recording, weights,
                          session.service.recording_key, "compiled").run(inp)
    assert np.array_equal(first.output, second.output)
    assert first.stats == second.stats


def test_invalid_engine_rejected():
    graph = build_model("mnist")
    device = ClientDevice.for_workload(graph)
    with pytest.raises(ValueError, match="engine"):
        Replayer(device.optee, device.gpu, device.mem, device.clock,
                 verify_key=None, engine="turbo")


class TestDeprecatedEnvToggle:
    """REPRO_LEGACY_REPLAY=1 still pins the legacy engine under
    ``engine="auto"``, but emits a one-time DeprecationWarning."""

    @pytest.fixture
    def legacy_env(self):
        prior = os.environ.get("REPRO_LEGACY_REPLAY")
        os.environ["REPRO_LEGACY_REPLAY"] = "1"
        config._warned_legacy_env = False  # re-arm the one-time warning
        try:
            yield
        finally:
            if prior is None:
                os.environ.pop("REPRO_LEGACY_REPLAY", None)
            else:
                os.environ["REPRO_LEGACY_REPLAY"] = prior
            config._warned_legacy_env = False

    def test_env_toggle_warns_and_is_honored(self, legacy_env):
        with pytest.warns(DeprecationWarning, match="engine='legacy'"):
            assert config.legacy_replay_env() is True
        # one-time: a second consult stays quiet
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert config.legacy_replay_env() is True

    def test_env_toggle_matches_explicit_legacy(self, legacy_env):
        graph = build_model("mnist")
        session = RecordSession(graph, config=OURS_MDS)
        recording = session.run().recording
        weights = generate_weights(graph, seed=0)
        inp = np.zeros(graph.input_shape, dtype=np.float32)
        config._warned_legacy_env = False  # record may have consumed it
        with pytest.warns(DeprecationWarning):
            auto = open_session(graph, recording, weights,
                                session.service.recording_key, "auto").run(inp)
        explicit = open_session(graph, recording, weights,
                                session.service.recording_key, "legacy").run(inp)
        assert np.array_equal(auto.output, explicit.output)
        assert auto.stats == explicit.stats

    def test_unset_env_means_compiled(self):
        assert os.environ.get("REPRO_LEGACY_REPLAY") != "1"
        assert config.legacy_replay_env() is False
