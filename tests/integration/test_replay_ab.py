"""Integration: legacy per-entry replay vs the columnar compiled program.

The compiled fast path (core.compiled + replay_entries' dispatch table)
must be an *observationally invisible* optimization: for every seed
workload the two engines have to produce bit-identical outputs, the same
virtual-clock delay, and equal ReplayStats.  ``REPRO_LEGACY_REPLAY`` is
consulted on every ``replay_entries`` call, so the pin wraps each run.
"""

import os
from contextlib import contextmanager

import numpy as np
import pytest

from repro.core.recorder import NAIVE, OURS_MDS, RecordSession
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.ml.models import PAPER_WORKLOADS, build_model
from repro.ml.runner import generate_weights


@contextmanager
def engine(legacy):
    prior = os.environ.get("REPRO_LEGACY_REPLAY")
    os.environ["REPRO_LEGACY_REPLAY"] = "1" if legacy else ""
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_LEGACY_REPLAY", None)
        else:
            os.environ["REPRO_LEGACY_REPLAY"] = prior


def open_session(graph, recording, weights, verify_key):
    device = ClientDevice.for_workload(graph)
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=verify_key)
    return replayer.open(recording, weights)


CASES = [(name, OURS_MDS) for name in sorted(PAPER_WORKLOADS)]
# The streaming regime: Naive re-pushes the full memory image per job,
# which is exactly the path the compiled page groups accelerate.
CASES.append(("alexnet", NAIVE))


@pytest.mark.parametrize(
    "workload,recorder", CASES,
    ids=[f"{w}-{r.name}" for w, r in CASES])
def test_engines_agree_on_every_seed_workload(workload, recorder):
    graph = build_model(workload)
    session = RecordSession(graph, config=recorder)
    recording = session.run().recording
    digest = recording.digest()
    weights = generate_weights(graph, seed=0)
    rng = np.random.default_rng(7)
    inp = rng.standard_normal(graph.input_shape).astype(np.float32)

    with engine(legacy=True):
        legacy = open_session(graph, recording, weights,
                              session.service.recording_key).run(inp)
    with engine(legacy=False):
        compiled = open_session(graph, recording, weights,
                                session.service.recording_key).run(inp)

    assert np.array_equal(legacy.output, compiled.output)
    assert legacy.delay_s == compiled.delay_s
    assert legacy.stats == compiled.stats
    assert legacy.energy_j == pytest.approx(compiled.energy_j, rel=1e-9)
    # Compiling must never mutate the signed blob.
    assert recording.digest() == digest


def test_compiled_session_reuses_the_cached_program():
    graph = build_model("mnist")
    session = RecordSession(graph, config=OURS_MDS)
    recording = session.run().recording
    compiled = recording.compile()
    assert recording.compile() is compiled
    weights = generate_weights(graph, seed=0)
    inp = np.zeros(graph.input_shape, dtype=np.float32)
    with engine(legacy=False):
        first = open_session(graph, recording, weights,
                             session.service.recording_key).run(inp)
        second = open_session(graph, recording, weights,
                              session.service.recording_key).run(inp)
    assert np.array_equal(first.output, second.output)
    assert first.stats == second.stats
