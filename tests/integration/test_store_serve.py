"""Integration: the serve pool sharing one on-disk artifact store.

A burst publishes each (tenant, recording) artifact as its workers
warm; a second burst over the same root — a simulated pool restart —
must warm entirely from store hits (zero new publishes) and stay
bit-identical to the single-process reference.  The whole flow runs
under a strict RaceSan, since concurrent workers race publishes on the
shared root.
"""

import pytest

from repro.check import RaceSan
from repro.serve import ServeCatalog, make_burst, serve_burst
from repro.store import DiskStore


@pytest.fixture(scope="module")
def catalog():
    cat = ServeCatalog()
    cat.record("mnist")
    return cat


class TestServeWithSharedStore:
    def test_restarted_pool_warms_from_store(self, catalog, tmp_path):
        root = tmp_path / "store"
        requests = make_burst(["mnist"], 8, tenants=2, seed=3)

        san = RaceSan(strict=True)
        first = serve_burst(requests, catalog=catalog, workers=2,
                            verify=True, store=root, sanitizer=san)
        assert first.ok
        assert first.summary["bit_identical"] is True
        assert san.violations == []

        store = DiskStore(root)
        # One artifact per tenant (same recording digest, §7.1 buckets).
        assert len(store) == 2
        assert {row["tenant_id"] for row in store.entries()} == \
            {"tenant-0", "tenant-1"}
        stats = store.persisted_stats()
        assert stats["publishes"] >= 2

        # "Restart": a fresh pool over the same root warms from hits.
        san2 = RaceSan(strict=True)
        second = serve_burst(requests, catalog=catalog, workers=2,
                             verify=True, store=root, sanitizer=san2)
        assert second.ok
        assert second.summary["bit_identical"] is True
        assert san2.violations == []
        assert second.identity_digest == first.identity_digest

        after = DiskStore(root).persisted_stats()
        assert after["publishes"] == stats["publishes"]  # no recompiles
        assert after["hits"] > stats.get("hits", 0)
        for row in DiskStore(root).verify_all():
            assert row["ok"], row["error"]

    def test_store_and_storeless_bursts_agree(self, tmp_path):
        """The store is a cache, not a semantic knob: identical burst
        with and without it yields the same identity digest."""
        # Fresh catalog: a reused one would keep the store_path the
        # previous test attached, making the "plain" burst store-backed.
        cat = ServeCatalog()
        cat.record("mnist")
        requests = make_burst(["mnist"], 6, tenants=2, seed=5)
        plain = serve_burst(requests, catalog=cat, workers=2)
        assert cat.store_path == ""
        stored = serve_burst(requests, catalog=cat, workers=2,
                             store=tmp_path / "s")
        assert plain.identity_digest == stored.identity_digest
