"""Integration: the qualitative relationships of §7.2/§7.3 between the
four recorder variants must hold on every run."""

import pytest

from repro.core.recorder import NAIVE, OURS_M, OURS_MD, OURS_MDS, RecordSession
from repro.core.speculation import CommitHistory
from repro.driver.hotfuncs import CommitCategory
from repro.sim.network import CELLULAR, WIFI
from tests.conftest import build_micro_graph


@pytest.fixture(scope="module")
def variant_results():
    """One record run per variant on the micro graph (WiFi), with a warm
    history for the speculating variant."""
    results = {}
    for config in (NAIVE, OURS_M, OURS_MD):
        results[config.name] = RecordSession(
            build_micro_graph(), config=config).run()
    history = CommitHistory()
    for _ in range(4):
        mds = RecordSession(build_micro_graph(), config=OURS_MDS,
                            history=history).run()
    results[OURS_MDS.name] = mds
    return results


class TestDelayOrdering:
    def test_each_technique_improves_delay(self, variant_results):
        """Figure 7's ordering: Naive >= OursM > OursMD > OursMDS."""
        d = {k: v.stats.recording_delay_s for k, v in variant_results.items()}
        assert d["Naive"] >= d["OursM"] * 0.99
        assert d["OursM"] > d["OursMD"]
        assert d["OursMD"] > d["OursMDS"]

    def test_full_stack_speedup_substantial(self, variant_results):
        """The paper reports >=~10x Naive->OursMDS; require a large factor."""
        d = variant_results
        speedup = (d["Naive"].stats.recording_delay_s
                   / d["OursMDS"].stats.recording_delay_s)
        assert speedup > 3.0

    def test_cellular_slower_than_wifi(self):
        wifi = RecordSession(build_micro_graph(), config=OURS_M,
                             link_profile=WIFI).run()
        cell = RecordSession(build_micro_graph(), config=OURS_M,
                             link_profile=CELLULAR).run()
        assert cell.stats.recording_delay_s > wifi.stats.recording_delay_s


class TestRttReduction:
    def test_deferral_reduces_round_trips(self, variant_results):
        """§7.3: deferral cuts blocking RTTs substantially (paper: 73%)."""
        m = variant_results["OursM"].stats.blocking_rtts
        md = variant_results["OursMD"].stats.blocking_rtts
        assert md < 0.7 * m

    def test_speculation_reduces_round_trips_further(self, variant_results):
        md = variant_results["OursMD"].stats.blocking_rtts
        mds = variant_results["OursMDS"].stats.blocking_rtts
        assert mds < 0.5 * md

    def test_naive_rtts_track_register_accesses(self, variant_results):
        stats = variant_results["Naive"].stats
        # Every register access is one blocking round trip (+ handshake).
        assert abs(stats.blocking_rtts - stats.reg_accesses) <= 5

    def test_deferral_batches_accesses(self, variant_results):
        stats = variant_results["OursMD"].stats
        assert stats.accesses_per_commit > 1.5


class TestMemorySyncReduction:
    def test_meta_only_cuts_traffic(self, variant_results):
        """Table 1: 72-99% memsync traffic reduction."""
        naive = variant_results["Naive"].stats.memsync.wire_total_bytes
        ours = variant_results["OursM"].stats.memsync.wire_total_bytes
        assert ours < 0.3 * naive

    def test_meta_only_never_ships_data_pages(self, variant_results):
        result = variant_results["OursMDS"]
        data_pfns = set(result.recording.data_pfns)
        from repro.core.recording import MemWrite
        for entry in result.recording.entries:
            if isinstance(entry, MemWrite):
                assert not data_pfns & {pfn for pfn, _ in entry.pages}

    def test_naive_ships_data_pages(self, variant_results):
        result = variant_results["Naive"]
        data_pfns = set(result.recording.data_pfns)
        from repro.core.recording import MemWrite
        shipped = set()
        for entry in result.recording.entries:
            if isinstance(entry, MemWrite):
                shipped |= {pfn for pfn, _ in entry.pages}
        assert shipped & data_pfns


class TestSpeculationBehaviour:
    def test_high_speculation_rate_when_warm(self, variant_results):
        """§7.3: ~95% of commits satisfy the criteria once history is
        warm; require a clear majority."""
        stats = variant_results["OursMDS"].stats.commits
        assert stats.speculation_rate > 0.75

    def test_figure8_categories_present(self, variant_results):
        cats = variant_results["OursMDS"].stats.commits.speculated_by_category
        assert cats.get(CommitCategory.POWER, 0) > 0
        assert cats.get(CommitCategory.INTERRUPT, 0) > 0
        assert cats.get(CommitCategory.POLLING, 0) > 0

    def test_polls_offloaded_only_in_mds(self, variant_results):
        assert variant_results["OursMDS"].stats.commits.polls_offloaded > 0
        assert variant_results["OursMD"].stats.commits.polls_offloaded == 0

    def test_no_natural_mispredictions(self, variant_results):
        """§7.3: no mispredictions observed without injection."""
        assert variant_results["OursMDS"].stats.recoveries == 0

    def test_history_transfers_across_workloads(self):
        """§4.2: recurring segments recur *across* workloads (MNIST and
        AlexNet share them), so history warmed on one workload lets the
        first run of another speculate immediately."""
        history = CommitHistory()
        for _ in range(4):
            RecordSession(build_micro_graph(), config=OURS_MDS,
                          history=history).run()
        cold = RecordSession("mnist", config=OURS_MDS).run()
        warm = RecordSession("mnist", config=OURS_MDS,
                             history=history).run()
        assert warm.stats.commits.speculation_rate > \
            cold.stats.commits.speculation_rate


class TestTimeouts:
    def test_naive_violates_timing_assumptions(self):
        """§3.3: naive forwarding breaks the stack's timing assumptions.
        Under cellular RTTs, jobs exceed the nominal driver timeout."""
        naive = RecordSession(build_micro_graph(), config=NAIVE,
                              link_profile=CELLULAR).run()
        mds_hist = CommitHistory()
        for _ in range(4):
            mds = RecordSession(build_micro_graph(), config=OURS_MDS,
                                link_profile=CELLULAR,
                                history=mds_hist).run()
        assert naive.stats.timeout_violations >= 0  # tracked
        assert mds.stats.recording_delay_s < naive.stats.recording_delay_s


class TestEnergy:
    def test_ours_saves_energy(self, variant_results):
        """Figure 9: GR-T cuts record energy 84-99% vs Naive."""
        naive = variant_results["Naive"].stats.client_energy_j
        mds = variant_results["OursMDS"].stats.client_energy_j
        assert mds < 0.5 * naive

    def test_energy_positive(self, variant_results):
        for result in variant_results.values():
            assert result.stats.client_energy_j > 0
