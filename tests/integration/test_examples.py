"""Integration: every example script must run end to end.

Examples are documentation that executes; this harness keeps them from
rotting as the library evolves.
"""

import runpy

import pytest

EXAMPLES = [
    "quickstart",
    "secure_inference",
    "sku_diversity",
    "layer_streaming",
    "io_device_replay",
    "digit_recognition",
]

SLOW_EXAMPLES = ["network_conditions"]


def _run_example(name, capsys):
    path = f"examples/{name}.py"
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    out = _run_example(name, capsys)
    assert out.strip(), f"{name} produced no output"
    assert "Traceback" not in out


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs(name, capsys):
    out = _run_example(name, capsys)
    assert out.strip()


class TestExampleClaims:
    """Spot-check the load-bearing lines the examples print."""

    def test_quickstart_claims_agreement(self, capsys):
        out = _run_example("quickstart", capsys)
        assert "correct=True" in out
        assert "outputs agree" in out

    def test_secure_inference_all_checks_pass(self, capsys):
        out = _run_example("secure_inference", capsys)
        assert out.count("[ok]") == 4
        assert "All security properties held" in out

    def test_digit_recognition_accuracies_match(self, capsys):
        out = _run_example("digit_recognition", capsys)
        assert "0 prediction mismatches" in out
