"""Integration: per-layer (segmented) replay — Figure 2's granularity."""

import numpy as np
import pytest

from repro.core.replayer import Replayer, ReplayError
from repro.core.testbed import ClientDevice
from repro.ml.runner import generate_weights, reference_activations


@pytest.fixture
def open_session(recorded_micro):
    graph, session, result = recorded_micro
    device = ClientDevice.for_workload(graph)
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=session.service.recording_key)
    recording = replayer.load(result.recording.to_bytes())
    weights = generate_weights(graph, 0)
    return graph, weights, replayer.open(recording, weights)


class TestSegments:
    def test_segment_labels_match_layers(self, open_session):
        graph, weights, session = open_session
        labels = session.segment_labels()
        assert labels[0] == "prologue"
        assert labels[1:] == [n.name for n in graph.nodes]

    def test_prefix_replay_yields_intermediate(self, open_session):
        """Replaying through layer k returns layer k's activation,
        numerically matching the reference forward pass."""
        graph, weights, session = open_session
        rng = np.random.RandomState(20)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        expected = reference_activations(graph, weights, inp)
        for node in graph.nodes[:2]:
            out = session.run_prefix(inp, upto=node.name)
            np.testing.assert_allclose(
                out.output, expected[node.name], atol=1e-3,
                err_msg=f"activation mismatch at {node.name}")

    def test_prefix_cheaper_than_full(self, open_session):
        graph, weights, session = open_session
        inp = np.zeros(graph.input_shape, dtype=np.float32)
        first = session.run_prefix(inp, upto=graph.nodes[0].name)
        full = session.run(inp)
        assert first.delay_s < full.delay_s
        assert first.stats.entries < full.stats.entries

    def test_full_prefix_equals_full_run(self, open_session):
        graph, weights, session = open_session
        rng = np.random.RandomState(21)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        last = graph.output.name
        prefix = session.run_prefix(inp, upto=last)
        full = session.run(inp)
        np.testing.assert_allclose(prefix.output.reshape(-1),
                                   full.output.reshape(-1), atol=1e-5)

    def test_unknown_segment_rejected(self, open_session):
        graph, weights, session = open_session
        inp = np.zeros(graph.input_shape, dtype=np.float32)
        with pytest.raises(ReplayError):
            session.run_prefix(inp, upto="layer-42")

    def test_prefix_then_full_still_correct(self, open_session):
        """Partial replays must not corrupt subsequent full replays (the
        GPU is reset around every run)."""
        graph, weights, session = open_session
        rng = np.random.RandomState(22)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        session.run_prefix(inp, upto=graph.nodes[0].name)
        full = session.run(inp)
        from repro.ml.runner import reference_forward
        np.testing.assert_allclose(
            full.output, reference_forward(graph, weights, inp), atol=1e-3)
