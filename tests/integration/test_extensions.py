"""Integration tests for the extensions beyond the headline system:
streamed replay, secure-memory limits, cloud cost accounting, Midgard
(second driver family) support, and OP-TEE secure storage of recordings.
"""

import numpy as np
import pytest

from repro.cloud.service import CostModel
from repro.core.recorder import (
    InsufficientSecureMemory,
    NAIVE,
    OURS_MDS,
    RecordSession,
)
from repro.core.replayer import Replayer
from repro.core.speculation import CommitHistory
from repro.core.testbed import ClientDevice
from repro.hw.sku import find_sku
from repro.ml.runner import (
    generate_weights,
    reference_activations,
    reference_forward,
    required_memory_bytes,
)
from tests.conftest import build_micro_graph


class TestStreamedReplay:
    @pytest.fixture
    def session(self, recorded_micro):
        graph, record_session, result = recorded_micro
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock,
                            verify_key=record_session.service.recording_key)
        recording = replayer.load(result.recording.to_bytes())
        weights = generate_weights(graph, 0)
        return graph, weights, replayer.open(recording, weights)

    def test_callback_sees_every_layer(self, session):
        graph, weights, replay = session
        rng = np.random.RandomState(30)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        expected = reference_activations(graph, weights, inp)
        seen = []

        def on_segment(label, activation):
            seen.append(label)
            np.testing.assert_allclose(activation, expected[label],
                                       atol=1e-3)
            return False

        result = replay.run_streamed(inp, on_segment)
        assert seen == [n.name for n in graph.nodes]
        np.testing.assert_allclose(result.output,
                                   reference_forward(graph, weights, inp),
                                   atol=1e-3)

    def test_early_exit_stops_and_saves_time(self, session):
        graph, weights, replay = session
        inp = np.zeros(graph.input_shape, dtype=np.float32)
        stop_at = graph.nodes[0].name

        early = replay.run_streamed(
            inp, lambda label, act: label == stop_at)
        full = replay.run_streamed(inp, None)
        assert early.delay_s < full.delay_s
        assert early.stats.entries < full.stats.entries
        assert early.output.shape == graph.nodes[0].out_shape

    def test_single_pass_cheaper_than_repeated_prefixes(self, session):
        """Streaming inspects every layer in one pass; run_prefix
        re-executes the prefix per inspection point."""
        graph, weights, replay = session
        inp = np.zeros(graph.input_shape, dtype=np.float32)
        streamed = replay.run_streamed(inp, lambda l, a: False)
        prefix_total = sum(
            replay.run_prefix(inp, upto=n.name).delay_s
            for n in graph.nodes)
        assert streamed.delay_s < prefix_total


class TestBatchReplay:
    @pytest.fixture
    def session(self, recorded_micro):
        graph, record_session, result = recorded_micro
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock,
                            verify_key=record_session.service.recording_key)
        recording = replayer.load(result.recording.to_bytes())
        weights = generate_weights(graph, 0)
        return graph, weights, replayer.open(recording, weights)

    def test_batch_outputs_correct(self, session):
        graph, weights, replay = session
        rng = np.random.RandomState(80)
        frames = [rng.rand(*graph.input_shape).astype(np.float32)
                  for _ in range(4)]
        results = replay.run_batch(frames)
        assert len(results) == 4
        for frame, result in zip(frames, results):
            np.testing.assert_allclose(
                result.output, reference_forward(graph, weights, frame),
                atol=1e-3)

    def test_batch_frames_cheaper_than_separate_runs(self, session):
        """Per-frame delay inside a batch beats one-shot run() — the GPU
        acquisition/reset is amortized (video-analytics use case)."""
        graph, weights, replay = session
        inp = np.zeros(graph.input_shape, dtype=np.float32)
        single = replay.run(inp)
        batch = replay.run_batch([inp, inp, inp])
        assert batch[-1].delay_s < single.delay_s

    def test_empty_batch(self, session):
        graph, weights, replay = session
        assert replay.run_batch([]) == []

    def test_gpu_released_after_batch(self, session):
        graph, weights, replay = session
        from repro.tee.worlds import World
        replay.run_batch([np.zeros(graph.input_shape, dtype=np.float32)])
        assert replay.replayer.optee.tzasc.gpu_mmio_owner == World.NORMAL


class TestSecureMemoryLimit:
    def test_workload_exceeding_carveout_rejected(self):
        graph = build_micro_graph()
        need = required_memory_bytes(graph)
        with pytest.raises(InsufficientSecureMemory):
            RecordSession(graph, config=OURS_MDS,
                          secure_mem_limit=need // 2)

    def test_sufficient_carveout_accepted(self):
        graph = build_micro_graph()
        need = required_memory_bytes(graph)
        session = RecordSession(graph, config=OURS_MDS,
                                secure_mem_limit=need * 2)
        result = session.run()
        assert result.recording.entries

    def test_error_names_the_fix(self):
        graph = build_micro_graph()
        with pytest.raises(InsufficientSecureMemory, match="firmware"):
            RecordSession(graph, secure_mem_limit=1 << 20)


class TestCloudCost:
    def test_vm_seconds_tracked(self, recorded_micro):
        graph, session, result = recorded_micro
        assert 0 < result.stats.vm_seconds <= \
            result.stats.recording_delay_s

    def test_ours_cheaper_than_naive(self):
        """§3.3: long Naive record runs hold a dedicated VM for hundreds
        of seconds — GR-T's optimizations also cut the cloud bill."""
        graph = build_micro_graph()
        naive = RecordSession(graph, config=NAIVE).run()
        history = CommitHistory()
        for _ in range(4):
            mds = RecordSession(graph, config=OURS_MDS,
                                history=history).run()
        cost = CostModel()
        naive_usd = cost.record_run_usd(naive.stats.vm_seconds)
        mds_usd = cost.record_run_usd(mds.stats.vm_seconds)
        assert mds_usd < 0.5 * naive_usd

    def test_cost_model_arithmetic(self):
        model = CostModel(vm_usd_per_hour=3.6)
        assert model.record_run_usd(1000) == pytest.approx(1.0)


class TestMidgardFamily:
    """The second driver family: Mali-T880 (Midgard, PTE format 0)."""

    @pytest.fixture(scope="class")
    def midgard_run(self):
        graph = build_micro_graph()
        sku = find_sku("Mali-T880 MP4")
        session = RecordSession(graph, config=OURS_MDS, sku=sku)
        return graph, sku, session, session.run()

    def test_records_on_midgard(self, midgard_run):
        graph, sku, session, result = midgard_run
        assert result.stats.gpu_jobs == len(
            [1 for _, n in result.recording.manifest.jobs_per_node
             for _ in range(n)])

    def test_replays_on_midgard(self, midgard_run):
        graph, sku, session, result = midgard_run
        device = ClientDevice.for_workload(graph, sku=sku)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        recording = replayer.load(result.recording.to_bytes())
        rng = np.random.RandomState(31)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        weights = generate_weights(graph, 0)
        out = replayer.replay(recording, inp, weights)
        np.testing.assert_allclose(
            out.output, reference_forward(graph, weights, inp), atol=1e-3)

    def test_no_bifrost_quirk_applied(self, midgard_run):
        """Per-family quirk divergence: Midgard parts skip the early-Z
        tiler quirk the Bifrost path sets (Listing 1(a) branching)."""
        graph, sku, session, result = midgard_run
        from repro.core.recording import RegWrite
        from repro.hw import regs
        from repro.driver.probe import TILER_CONFIG_EARLY_Z
        tiler_writes = [e.value for e in result.recording.entries
                        if isinstance(e, RegWrite)
                        and e.offset == regs.TILER_CONFIG]
        assert tiler_writes
        assert all(not v & TILER_CONFIG_EARLY_Z for v in tiler_writes)


class TestSecureStorage:
    def test_recording_persisted_and_replayed_from_storage(self,
                                                           recorded_micro):
        """The TEE stores the downloaded recording in secure storage and
        replays from it later (app restarts, reboots)."""
        graph, session, result = recorded_micro
        device = ClientDevice.for_workload(graph)
        device.optee.store("recording:micro", result.recording.to_bytes())

        blob = device.optee.load("recording:micro")
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        recording = replayer.load(blob)
        rng = np.random.RandomState(32)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        weights = generate_weights(graph, 0)
        out = replayer.replay(recording, inp, weights)
        np.testing.assert_allclose(
            out.output, reference_forward(graph, weights, inp), atol=1e-3)
