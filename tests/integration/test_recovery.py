"""Integration: misprediction detection and replay-based recovery (§4.2,
§7.3 "Misprediction cost")."""

import numpy as np
import pytest

from repro.core.recorder import OURS_MDS, RecordSession
from repro.core.recovery import run_misprediction_experiment
from repro.core.replayer import Replayer
from repro.core.speculation import CommitHistory
from repro.core.testbed import ClientDevice
from repro.ml.runner import generate_weights, reference_forward
from tests.conftest import build_micro_graph


@pytest.fixture(scope="module")
def injected_run():
    graph = build_micro_graph()
    history = CommitHistory()
    for _ in range(3):
        RecordSession(graph, config=OURS_MDS, history=history).run()
    clean = RecordSession(graph, config=OURS_MDS, history=history).run()
    # Scan for an index that lands on a *speculated* read: corruptions in
    # synchronous commits are consumed as ground truth (flaky hardware),
    # not detected as mispredictions.
    start = int(clean.stats.client_reads_applied * 0.5)
    injected = None
    session = None
    for index in range(start, start + 60):
        session = RecordSession(graph, config=OURS_MDS, history=history)
        session.inject_fault_at_read(index)
        result = session.run()
        if result.stats.recoveries:
            injected = result
            break
    assert injected is not None, "no speculated read found to corrupt"
    return graph, session, clean, injected


class TestDetection:
    def test_injection_detected_and_recovered(self, injected_run):
        graph, session, clean, injected = injected_run
        assert injected.stats.recoveries >= 1

    def test_rollback_costs_time(self, injected_run):
        """§7.3: rollback is seconds, dominated by driver reload and job
        recompilation on the cloud side."""
        graph, session, clean, injected = injected_run
        cost = (injected.stats.recording_delay_s
                - clean.stats.recording_delay_s)
        assert 0.1 < cost < 30.0

    def test_recovered_recording_replays_correctly(self, injected_run):
        """Recovery must yield a recording indistinguishable in function
        from an unperturbed one."""
        graph, session, clean, injected = injected_run
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        rec = replayer.load(injected.recording.to_bytes())
        rng = np.random.RandomState(11)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        weights = generate_weights(graph, 0)
        out = replayer.replay(rec, inp, weights)
        np.testing.assert_allclose(
            out.output, reference_forward(graph, weights, inp), atol=1e-3)

    def test_recovered_recording_equivalent_to_clean(self, injected_run):
        graph, session, clean, injected = injected_run
        assert injected.recording.counts() == clean.recording.counts()


class TestExperimentDriver:
    def test_experiment_reports_detection(self):
        report = run_misprediction_experiment("mnist", warm_rounds=3,
                                              fault_read_fraction=0.6)
        assert report.detected
        assert report.recoveries >= 1
        assert report.rollback_cost_s > 0
        assert report.injected_delay_s > report.clean_delay_s

    def test_repeated_faults_capped(self):
        """A persistently faulty client cannot loop forever: the session
        gives up after max_recovery_attempts."""
        graph = build_micro_graph()
        history = CommitHistory()
        for _ in range(3):
            RecordSession(graph, config=OURS_MDS, history=history).run()
        session = RecordSession(graph, config=OURS_MDS, history=history,
                                max_recovery_attempts=2)
        # Injecting on every attempt is not supported by design (injection
        # is first-attempt only), so recovery always converges.
        session.inject_fault_at_read(60)
        result = session.run()
        assert result.stats.recoveries <= 2


class TestDisconnectRecoveryDriver:
    def test_disconnect_experiment_byte_identical(self):
        from repro.core.recovery import run_disconnect_recovery_experiment

        report = run_disconnect_recovery_experiment("mnist", warm_rounds=2)
        assert report.resumes >= 1
        assert report.checkpoints >= 1
        assert report.byte_identical
        # Resume pays real time: reconnect wait + fast-forward replay.
        assert report.recovery_cost_s > 0
