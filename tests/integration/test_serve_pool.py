"""Integration tests: the serving engine over real worker processes.

These spawn actual shard workers (multiprocessing "spawn"), so they
cover what the unit tests fake: cross-process warm + execute, bit-exact
outputs vs the in-process reference, worker-death respawn, and in-flight
failover requeue.  mnist keeps warm and replay times small.
"""

import time

import pytest

from repro.serve import (
    ServeCatalog,
    ShardError,
    ShardPool,
    ShardTask,
    execute_inline,
    make_burst,
    serve_burst,
)


@pytest.fixture(scope="module")
def catalog():
    cat = ServeCatalog()
    cat.record("mnist")
    return cat


class TestServeBurst:
    def test_burst_completes_bit_identical(self, catalog):
        requests = make_burst(["mnist"], 12, tenants=2, seed=0)
        report = serve_burst(requests, catalog=catalog, workers=2,
                             verify=True)
        assert report.ok
        assert report.summary["bit_identical"] is True
        assert report.summary["requests"]["completed"] == 12
        assert report.summary["workers"]["distinct_pids"] == 2
        assert report.summary["throughput_rps"] > 0

    def test_paced_arrivals_and_oracle(self, catalog):
        requests = make_burst(["mnist"], 8, tenants=2, seed=1,
                              arrival_rate_hz=200.0)
        report = serve_burst(requests, catalog=catalog, workers=2)
        assert report.ok
        # Every request carries a calibrated, non-zero prediction.
        assert all(r.predicted_s > 0 for r in report.results)
        oracle = report.summary["oracle"]["overall"]
        assert oracle["predicted_s"]["count"] == 8

    def test_two_sessions_same_recording_share_digest(self, catalog):
        """Two tenants serving the same workload use the same recording
        digest but warm separate per-tenant entries (§7.1)."""
        requests = make_burst(["mnist"], 4, tenants=2, seed=2)
        specs = catalog.warm_specs(requests)
        assert len(specs) == 2  # one per tenant
        assert len({s.digest() for s in specs}) == 1  # same content


class TestWorkerDeath:
    def test_respawn_then_serve(self, catalog):
        """Kill a worker; the watchdog respawns and re-warms it, and the
        pool serves the next burst across both shards, bit-identically."""
        requests = make_burst(["mnist"], 8, tenants=2, seed=3)
        with ShardPool(workers=2) as pool:
            for spec in catalog.warm_specs(requests):
                pool.warm(spec)
            before = set(pool.worker_pids())
            assert pool.kill_worker(0)
            deadline = time.perf_counter() + 30.0
            while time.perf_counter() < deadline:
                if (pool.stats.respawns >= 1
                        and pool.alive_workers == 2
                        and set(pool.worker_pids()) != before):
                    break
                time.sleep(0.02)
            assert pool.stats.worker_deaths == 1
            assert pool.alive_workers == 2
            report = serve_burst(requests, catalog=catalog, pool=pool,
                                 verify=True)
        assert report.ok
        assert report.summary["bit_identical"] is True

    def test_inflight_tasks_failover_to_surviving_worker(self, catalog):
        """Tasks lost to a worker death requeue onto a live shard and
        resolve with attempts=2; the ledger counts the failover."""
        spec = catalog.warm_spec("tenant-0", "mnist")
        long_tasks = [
            ShardTask(task_id=f"long-{i}", tenant_id="tenant-0",
                      digest=spec.digest(), input_seed=i, runs=400)
            for i in range(2)]
        with ShardPool(workers=2) as pool:
            pool.warm(spec)
            futures = pool.submit([long_tasks[0]])
            futures += pool.submit([long_tasks[1]])
            # Both workers are now busy on a long task; kill one while
            # its task is in flight.
            time.sleep(0.05)
            assert pool.kill_worker(0)
            results = [f.result(timeout=60) for f in futures]
            assert pool.stats.worker_deaths == 1
            assert pool.stats.failover_requeues >= 1
            assert {r.task_id for r in results} == {"long-0", "long-1"}
            retried = [r for r in results if r.attempts == 2]
            assert len(retried) >= 1
            # The retried output is bit-identical to the reference.
            reference = {
                r.task_id: r.output_sha256
                for r in execute_inline([spec], long_tasks)}
            for r in results:
                assert r.output_sha256 == reference[r.task_id]

    def test_abort_after_retry_budget(self, catalog):
        """A task that keeps losing its worker aborts once attempts
        exceed max_retries instead of retrying forever."""
        spec = catalog.warm_spec("tenant-0", "mnist")
        task = ShardTask(task_id="doomed", tenant_id="tenant-0",
                         digest=spec.digest(), input_seed=0, runs=4000)
        with ShardPool(workers=1, max_retries=0) as pool:
            pool.warm(spec)
            (future,) = pool.submit([task])
            time.sleep(0.05)
            assert pool.kill_worker(0)
            with pytest.raises(ShardError):
                future.result(timeout=60)
            assert pool.stats.tasks_failed >= 1


class TestShardGuards:
    def test_unwarmed_tenant_cannot_execute(self, catalog):
        """A task naming a tenant the pool never warmed fails — there is
        no cross-tenant fallback entry to serve it from (§7.1)."""
        spec = catalog.warm_spec("tenant-0", "mnist")
        task = ShardTask(task_id="foreign", tenant_id="tenant-1",
                         digest=spec.digest(), input_seed=0)
        with ShardPool(workers=1) as pool:
            pool.warm(spec)
            (future,) = pool.submit([task])
            with pytest.raises(ShardError, match="no warmed program"):
                future.result(timeout=60)

    def test_pool_requires_start(self, catalog):
        pool = ShardPool(workers=1)
        with pytest.raises(ShardError, match="not started"):
            pool.warm(catalog.warm_spec("tenant-0", "mnist"))
