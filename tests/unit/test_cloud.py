"""Unit tests for the cloud service: VM images, device trees, sessions."""

import pytest

from repro.cloud.service import CloudService, ServiceError
from repro.cloud.vm import DEFAULT_IMAGES, VmError, VmInstance
from repro.hw.sku import HIKEY960_G71, find_sku
from repro.kernel.devicetree import board_device_tree
from repro.sim.clock import VirtualClock


class TestVmImages:
    def test_default_images_cover_mali(self):
        image = DEFAULT_IMAGES["acl-opencl"]
        assert image.supports("arm,mali-bifrost")
        assert image.supports("arm,mali-midgard")

    def test_measurement_stable(self):
        image = DEFAULT_IMAGES["acl-opencl"]
        assert image.measurement() == image.measurement()
        assert image.measurement() != DEFAULT_IMAGES["tflite-gles"].measurement()


class TestVmBoot:
    def test_boot_binds_matching_driver(self):
        """§6: one image, many drivers, selected by the device tree."""
        clock = VirtualClock()
        vm = VmInstance(image=DEFAULT_IMAGES["acl-opencl"],
                        device_tree=board_device_tree(HIKEY960_G71),
                        client_id="c")
        vm.boot(clock)
        assert vm.bound_driver == "arm,mali-bifrost"
        assert vm.gpu_model == "Mali-G71 MP8"
        assert clock.now > 1.0  # boot is not free

    def test_midgard_tree_binds_midgard_driver(self):
        clock = VirtualClock()
        vm = VmInstance(image=DEFAULT_IMAGES["acl-opencl"],
                        device_tree=board_device_tree(
                            find_sku("Mali-T880 MP4")),
                        client_id="c")
        vm.boot(clock)
        assert vm.bound_driver == "arm,mali-midgard"

    def test_unsupported_gpu_rejected(self):
        clock = VirtualClock()
        vm = VmInstance(image=DEFAULT_IMAGES["tflite-gles"],
                        device_tree=board_device_tree(
                            find_sku("Adreno 630")),
                        client_id="c")
        with pytest.raises(VmError):
            vm.boot(clock)

    def test_double_boot_rejected(self):
        clock = VirtualClock()
        vm = VmInstance(image=DEFAULT_IMAGES["acl-opencl"],
                        device_tree=board_device_tree(HIKEY960_G71),
                        client_id="c")
        vm.boot(clock)
        with pytest.raises(VmError):
            vm.boot(clock)


class TestCloudService:
    def test_session_lifecycle(self):
        service = CloudService()
        ticket = service.open_session(
            "client-1", "acl-opencl", board_device_tree(HIKEY960_G71),
            nonce=b"n1")
        assert ticket.session_id in service.active_sessions
        service.close_session(ticket.session_id)
        assert ticket.session_id not in service.active_sessions

    def test_sessions_get_distinct_vms(self):
        """§3.1: neither a VM nor a recording is shared across clients."""
        service = CloudService()
        tree = board_device_tree(HIKEY960_G71)
        t1 = service.open_session("client-1", "acl-opencl", tree, b"n1")
        t2 = service.open_session("client-2", "acl-opencl", tree, b"n2")
        assert t1.vm is not t2.vm
        assert t1.session_id != t2.session_id

    def test_attestation_included(self):
        service = CloudService()
        ticket = service.open_session(
            "c", "acl-opencl", board_device_tree(HIKEY960_G71), b"nonce")
        assert ticket.attestation.nonce == b"nonce"

    def test_unknown_image(self):
        service = CloudService()
        with pytest.raises(ServiceError):
            service.open_session("c", "cuda-stack",
                                 board_device_tree(HIKEY960_G71), b"n")

    def test_image_for_family(self):
        service = CloudService()
        assert service.image_for_family("arm,mali-bifrost") == "acl-opencl"
        with pytest.raises(ServiceError):
            service.image_for_family("nvidia,ampere")

    def test_recording_signature(self):
        service = CloudService()
        sig = service.sign_recording(b"body")
        service.recording_key.verify(b"body", sig)
        assert service.recordings_served == 1
