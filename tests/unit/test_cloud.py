"""Unit tests for the cloud service: VM images, device trees, sessions."""

import pytest

from repro.cloud.service import CloudService, CostModel, ServiceError
from repro.cloud.vm import DEFAULT_IMAGES, VmError, VmInstance
from repro.hw.sku import HIKEY960_G71, find_sku
from repro.kernel.devicetree import (
    DeviceTreeNode,
    board_device_tree,
    gpu_device_node,
)
from repro.sim.clock import VirtualClock


def nested_device_tree(sku=HIKEY960_G71) -> DeviceTreeNode:
    """A realistic tree with the GPU nested under a soc bus node."""
    return DeviceTreeNode(
        name="/",
        properties={"model": "nested-board"},
        children=[
            DeviceTreeNode("cpus", {"cpu-count": 8}),
            DeviceTreeNode("soc", {"compatible": "simple-bus"},
                           children=[gpu_device_node(sku)]),
        ],
    )


class TestVmImages:
    def test_default_images_cover_mali(self):
        image = DEFAULT_IMAGES["acl-opencl"]
        assert image.supports("arm,mali-bifrost")
        assert image.supports("arm,mali-midgard")

    def test_measurement_stable(self):
        image = DEFAULT_IMAGES["acl-opencl"]
        assert image.measurement() == image.measurement()
        assert image.measurement() != DEFAULT_IMAGES["tflite-gles"].measurement()


class TestVmBoot:
    def test_boot_binds_matching_driver(self):
        """§6: one image, many drivers, selected by the device tree."""
        clock = VirtualClock()
        vm = VmInstance(image=DEFAULT_IMAGES["acl-opencl"],
                        device_tree=board_device_tree(HIKEY960_G71),
                        client_id="c")
        vm.boot(clock)
        assert vm.bound_driver == "arm,mali-bifrost"
        assert vm.gpu_model == "Mali-G71 MP8"
        assert clock.now > 1.0  # boot is not free

    def test_midgard_tree_binds_midgard_driver(self):
        clock = VirtualClock()
        vm = VmInstance(image=DEFAULT_IMAGES["acl-opencl"],
                        device_tree=board_device_tree(
                            find_sku("Mali-T880 MP4")),
                        client_id="c")
        vm.boot(clock)
        assert vm.bound_driver == "arm,mali-midgard"

    def test_unsupported_gpu_rejected(self):
        clock = VirtualClock()
        vm = VmInstance(image=DEFAULT_IMAGES["tflite-gles"],
                        device_tree=board_device_tree(
                            find_sku("Adreno 630")),
                        client_id="c")
        with pytest.raises(VmError):
            vm.boot(clock)

    def test_double_boot_rejected(self):
        clock = VirtualClock()
        vm = VmInstance(image=DEFAULT_IMAGES["acl-opencl"],
                        device_tree=board_device_tree(HIKEY960_G71),
                        client_id="c")
        vm.boot(clock)
        with pytest.raises(VmError):
            vm.boot(clock)

    def test_gpu_node_found_under_bus_node(self):
        """Regression: traversal must recurse past bus nodes (soc/gpu@...),
        not just scan the root's direct children."""
        clock = VirtualClock()
        vm = VmInstance(image=DEFAULT_IMAGES["acl-opencl"],
                        device_tree=nested_device_tree(),
                        client_id="c")
        vm.boot(clock)
        assert vm.bound_driver == "arm,mali-bifrost"
        assert vm.gpu_model == "Mali-G71 MP8"

    def test_tree_without_gpu_rejected(self):
        vm = VmInstance(image=DEFAULT_IMAGES["acl-opencl"],
                        device_tree=DeviceTreeNode(
                            "/", children=[DeviceTreeNode("cpus")]),
                        client_id="c")
        with pytest.raises(VmError, match="no GPU node"):
            vm.boot(VirtualClock())


class TestCloudService:
    def test_session_lifecycle(self):
        service = CloudService()
        ticket = service.open_session(
            "client-1", "acl-opencl", board_device_tree(HIKEY960_G71),
            nonce=b"n1")
        assert ticket.session_id in service.active_sessions
        service.close_session(ticket.session_id)
        assert ticket.session_id not in service.active_sessions

    def test_sessions_get_distinct_vms(self):
        """§3.1: neither a VM nor a recording is shared across clients."""
        service = CloudService()
        tree = board_device_tree(HIKEY960_G71)
        t1 = service.open_session("client-1", "acl-opencl", tree, b"n1")
        t2 = service.open_session("client-2", "acl-opencl", tree, b"n2")
        assert t1.vm is not t2.vm
        assert t1.session_id != t2.session_id

    def test_attestation_included(self):
        service = CloudService()
        ticket = service.open_session(
            "c", "acl-opencl", board_device_tree(HIKEY960_G71), b"nonce")
        assert ticket.attestation.nonce == b"nonce"

    def test_unknown_image(self):
        service = CloudService()
        with pytest.raises(ServiceError):
            service.open_session("c", "cuda-stack",
                                 board_device_tree(HIKEY960_G71), b"n")

    def test_image_for_family(self):
        service = CloudService()
        assert service.image_for_family("arm,mali-bifrost") == "acl-opencl"
        with pytest.raises(ServiceError):
            service.image_for_family("nvidia,ampere")

    def test_recording_signature(self):
        service = CloudService()
        sig = service.sign_recording(b"body")
        service.recording_key.verify(b"body", sig)
        assert service.recordings_served == 1


class TestSessionLifecycle:
    """The full open -> boot -> sign -> close path, with VM accounting."""

    def test_full_lifecycle_with_accounting(self):
        clock = VirtualClock()
        service = CloudService()
        tree = board_device_tree(HIKEY960_G71)
        ticket = service.open_session("client-1", "acl-opencl", tree,
                                      nonce=b"n1", clock=clock)
        assert ticket.opened_at == 0.0
        assert service.sessions_opened == 1

        ticket.vm.boot(clock)  # advances the clock: boot is billed
        sig = service.sign_recording(b"recording-body")
        service.recording_key.verify(b"recording-body", sig)

        clock.advance(10.0, label="gpu")  # the dry run
        service.close_session(ticket.session_id, clock=clock)
        assert ticket.session_id not in service.active_sessions
        assert ticket.closed_at == pytest.approx(clock.now)
        assert service.total_vm_seconds == pytest.approx(clock.now)
        expected = CostModel().record_run_usd(clock.now)
        assert service.total_cost_usd == pytest.approx(expected)

    def test_vm_seconds_accumulate_across_sessions(self):
        clock = VirtualClock()
        service = CloudService()
        tree = board_device_tree(HIKEY960_G71)
        for i in range(3):
            ticket = service.open_session(f"c{i}", "acl-opencl", tree,
                                          nonce=b"n", clock=clock)
            clock.advance(2.0, label="cpu")
            service.close_session(ticket.session_id, clock=clock)
        assert service.total_vm_seconds == pytest.approx(6.0)

    def test_legacy_callers_without_clock_still_work(self):
        service = CloudService()
        tree = board_device_tree(HIKEY960_G71)
        ticket = service.open_session("c", "acl-opencl", tree, nonce=b"n")
        service.close_session(ticket.session_id)
        assert service.total_vm_seconds == 0.0

    def test_close_unknown_session_is_a_noop(self):
        service = CloudService()
        service.close_session("grt-999-deadbeef", clock=VirtualClock())
        assert service.total_vm_seconds == 0.0

    def test_open_unknown_image_raises(self):
        service = CloudService()
        with pytest.raises(ServiceError, match="no VM image"):
            service.open_session("c", "cuda-stack",
                                 board_device_tree(HIKEY960_G71), b"n",
                                 clock=VirtualClock())

    def test_image_for_family_miss_raises(self):
        with pytest.raises(ServiceError, match="no image supports"):
            CloudService().image_for_family("img,powervr")

    def test_boot_failure_still_allows_clean_close(self):
        """An image/device-tree mismatch surfaces at boot; the session can
        still be closed and billed for its (short) lifetime."""
        clock = VirtualClock()
        service = CloudService()
        tree = board_device_tree(find_sku("Adreno 630"))
        ticket = service.open_session("c", "tflite-gles", tree, b"n",
                                      clock=clock)
        with pytest.raises(VmError):
            ticket.vm.boot(clock)
        service.close_session(ticket.session_id, clock=clock)
        assert ticket.session_id not in service.active_sessions

    def test_double_boot_via_service_ticket(self):
        clock = VirtualClock()
        service = CloudService()
        ticket = service.open_session(
            "c", "acl-opencl", board_device_tree(HIKEY960_G71), b"n",
            clock=clock)
        ticket.vm.boot(clock)
        with pytest.raises(VmError, match="already booted"):
            ticket.vm.boot(clock)
