"""Unit tests for the GPU SKU database (Figure 3's substrate)."""

import pytest

from repro.hw.sku import (
    HIKEY960_G71,
    SKU_DATABASE,
    driver_supported_skus,
    find_sku,
    new_skus_per_year,
    skus_in_family,
)


class TestDatabase:
    def test_database_is_large_and_diverse(self):
        """Figure 3: around 80 SKUs across vendors."""
        assert len(SKU_DATABASE) >= 70
        families = {s.family for s in SKU_DATABASE}
        assert {"mali-bifrost", "mali-midgard", "adreno",
                "powervr"} <= families

    def test_no_dominant_family(self):
        """No family holds a large majority (Figure 3's point)."""
        by_family = {}
        for sku in SKU_DATABASE:
            fam = "mali" if sku.family.startswith("mali") else sku.family
            by_family[fam] = by_family.get(fam, 0) + 1
        assert max(by_family.values()) < 0.6 * len(SKU_DATABASE)

    def test_new_skus_every_year(self):
        counts = new_skus_per_year()
        years = sorted(counts)
        assert years[0] <= 2012 and years[-1] >= 2021
        assert all(counts[y] >= 3 for y in range(2013, 2022))

    def test_per_family_counts(self):
        mali = new_skus_per_year("mali-bifrost")
        assert sum(mali.values()) == len(skus_in_family("mali-bifrost"))

    def test_find_sku(self):
        assert find_sku("Mali-G71 MP8") is HIKEY960_G71

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            find_sku("Mali-G999")

    def test_unique_names(self):
        names = [s.name for s in SKU_DATABASE]
        assert len(names) == len(set(names))


class TestSkuParameters:
    def test_hikey960_matches_paper_platform(self):
        """The paper's client: Mali G71 MP8."""
        assert HIKEY960_G71.core_count == 8
        assert HIKEY960_G71.family == "mali-bifrost"
        assert HIKEY960_G71.shader_present_mask == 0xFF

    def test_fingerprint_distinguishes_core_counts(self):
        g71_8 = find_sku("Mali-G71 MP8")
        g71_20 = find_sku("Mali-G71 MP20")
        # Same product, different core count: replay must not transfer.
        assert g71_8.gpu_id == g71_20.gpu_id
        assert g71_8.fingerprint() != g71_20.fingerprint()

    def test_fingerprint_distinguishes_pte_format(self):
        bifrost = find_sku("Mali-G71 MP8")
        midgard = find_sku("Mali-T880 MP4")
        assert bifrost.pte_format != midgard.pte_format

    def test_present_masks(self):
        sku = find_sku("Mali-G76 MP10")
        assert bin(sku.shader_present_mask).count("1") == 10
        assert sku.tiler_present_mask == 0x1

    def test_driver_supported_is_mali_only(self):
        supported = driver_supported_skus()
        assert supported
        assert all(s.family.startswith("mali") for s in supported)
        # One driver supports many SKUs of a family (§3).
        assert len(skus_in_family("mali-bifrost")) >= 6
