"""Unit tests for the columnar compiled-recording format (core.compiled).

These pin down the lowering rules the replay fast path relies on:
batching of pure register writes, speculative observation batches,
noop coalescing, sorted page groups with cached skip filtering, and the
columnar arrays + bounds that the fleet registry caches per digest.
"""

import numpy as np
import pytest

from repro.core.compiled import (
    OBS_MIN_BATCH,
    OBS_POLL,
    OBS_READ,
    OP_IRQ,
    OP_MEMW,
    OP_NOOP,
    OP_OBS,
    OP_POLL,
    OP_READ,
    OP_WBATCH,
    OP_WRITE,
    PageGroup,
    compile_entries,
    compile_recording,
)
from repro.core.recording import (
    IrqEntry,
    Marker,
    MemUpload,
    MemWrite,
    PollEntry,
    Recording,
    RegRead,
    RegWrite,
    _COND_CODES,
    _IRQ_CODES,
)
from repro.hw import regs
from repro.hw.gpu import EFFECTFUL_WRITE_OFFSETS
from repro.hw.memory import PAGE_SIZE
from repro.ml.runner import DataBinding, RunManifest

# A register offset whose writes are pure state updates (batchable) and
# one that schedules an event (never batched).  Tests use runs of
# BATCHABLE + 8*i for i in range(5), so the whole run must stay pure.
BATCHABLE = next(
    base for base in range(0x100, 0x4000, 8)
    if all(base + 8 * i not in EFFECTFUL_WRITE_OFFSETS for i in range(5)))
EFFECTFUL = regs.GPU_COMMAND


def page(fill, n=PAGE_SIZE):
    return bytes([fill]) * n


class TestWriteBatching:
    def test_consecutive_batchable_writes_become_one_wbatch(self):
        entries = [RegWrite(BATCHABLE + 8 * i, i) for i in range(5)]
        program = compile_entries(entries)
        assert program == [(OP_WBATCH,
                            tuple(BATCHABLE + 8 * i for i in range(5)),
                            tuple(range(5)), 5)]

    def test_single_write_stays_plain(self):
        program = compile_entries([RegWrite(BATCHABLE, 7)])
        assert program == [(OP_WRITE, BATCHABLE, 7)]

    def test_effectful_write_is_never_batched(self):
        entries = [RegWrite(BATCHABLE, 1), RegWrite(BATCHABLE + 8, 2),
                   RegWrite(EFFECTFUL, 3), RegWrite(BATCHABLE, 4)]
        program = compile_entries(entries)
        assert program == [
            (OP_WBATCH, (BATCHABLE, BATCHABLE + 8), (1, 2), 2),
            (OP_WRITE, EFFECTFUL, 3),
            (OP_WRITE, BATCHABLE, 4),
        ]

    def test_job_doorbell_offsets_are_effectful(self):
        doorbell = regs.JOB_SLOT_BASE + regs.JS_COMMAND
        entries = [RegWrite(BATCHABLE, 1), RegWrite(doorbell, 1)]
        program = compile_entries(entries)
        assert (OP_WRITE, doorbell, 1) in program
        assert all(op[0] != OP_WBATCH for op in program)


class TestObservationBatching:
    def test_short_read_runs_stay_individual(self):
        entries = [RegRead(0x140 + 4 * i, i)
                   for i in range(OBS_MIN_BATCH - 1)]
        program = compile_entries(entries)
        assert program == [(OP_READ, 0x140 + 4 * i, i)
                           for i in range(OBS_MIN_BATCH - 1)]

    def test_long_read_run_becomes_one_obs_batch(self):
        entries = [RegRead(0x140 + 4 * i, i) for i in range(OBS_MIN_BATCH)]
        program = compile_entries(entries)
        assert len(program) == 1
        op, offsets, items, n_reads = program[0]
        assert op == OP_OBS
        assert offsets == tuple(0x140 + 4 * i for i in range(OBS_MIN_BATCH))
        assert n_reads == OBS_MIN_BATCH
        assert all(item[0] == OBS_READ for item in items)

    def test_satisfied_poll_joins_the_obs_batch(self):
        entries = [RegRead(0x140 + 4 * i, 0) for i in range(3)]
        entries.append(PollEntry(offset=0x2428, condition="bits_clear",
                                 operand=1, value=0, iterations=1))
        program = compile_entries(entries)
        assert len(program) == 1
        op, offsets, items, n_reads = program[0]
        assert op == OP_OBS and n_reads == 3
        assert items[-1] == (OBS_POLL, 0x2428, _COND_CODES["bits_clear"],
                             1, 0, 1)

    def test_waiting_poll_stays_solo(self):
        entries = [RegRead(0x140 + 4 * i, 0) for i in range(OBS_MIN_BATCH)]
        entries.append(PollEntry(offset=0x2428, condition="bits_set",
                                 operand=4, value=4, iterations=9))
        program = compile_entries(entries)
        assert program[0][0] == OP_OBS
        assert program[1] == (OP_POLL, 0x2428, _COND_CODES["bits_set"],
                              4, 4, 9)

    def test_write_splits_an_observation_run(self):
        entries = ([RegRead(0x140, 0)] * OBS_MIN_BATCH
                   + [RegWrite(BATCHABLE, 1)]
                   + [RegRead(0x140, 0)] * OBS_MIN_BATCH)
        program = compile_entries(entries)
        assert [op[0] for op in program] == [OP_OBS, OP_WRITE, OP_OBS]


class TestNoopsAndOrder:
    def test_markers_and_uploads_coalesce_with_count(self):
        entries = [Marker("l0"), MemUpload(nbytes=64), Marker("l1"),
                   RegWrite(BATCHABLE, 1)]
        program = compile_entries(entries)
        assert program == [(OP_NOOP, 3), (OP_WRITE, BATCHABLE, 1)]

    def test_irq_maps_one_to_one(self):
        program = compile_entries([RegWrite(BATCHABLE, 1), IrqEntry("job"),
                                   RegWrite(BATCHABLE, 2)])
        assert program == [(OP_WRITE, BATCHABLE, 1), (OP_IRQ, "job"),
                           (OP_WRITE, BATCHABLE, 2)]

    def test_unknown_entry_is_rejected(self):
        with pytest.raises(ValueError):
            compile_entries([object()])


class TestPageGroup:
    def test_memwrite_pages_are_sorted_by_pfn(self):
        entry = MemWrite(pages=((0x80003, page(3)), (0x80001, page(1)),
                                (0x80002, page(2))))
        (program,) = [compile_entries([entry])[0]]
        assert program[0] == OP_MEMW
        group = program[1]
        assert list(group.pfns) == [0x80001, 0x80002, 0x80003]
        assert group.pages[0][0] == 1 and group.pages[2][0] == 3

    def test_select_without_skip_returns_everything(self):
        group = PageGroup(np.array([1, 2], dtype=np.uint64),
                          np.zeros((2, PAGE_SIZE), dtype=np.uint8))
        pfns, pages, skipped = group.select(None)
        assert pfns is group.pfns and pages is group.pages and skipped == 0

    def test_select_filters_and_counts_skipped(self):
        group = PageGroup(np.arange(4, dtype=np.uint64),
                          np.arange(4 * PAGE_SIZE,
                                    dtype=np.uint8).reshape(4, PAGE_SIZE))
        pfns, pages, skipped = group.select(frozenset({1, 3}))
        assert list(pfns) == [0, 2] and skipped == 2
        assert np.array_equal(pages, group.pages[[0, 2]])

    def test_select_caches_per_skip_key(self):
        group = PageGroup(np.arange(4, dtype=np.uint64),
                          np.zeros((4, PAGE_SIZE), dtype=np.uint8))
        key = frozenset({2})
        first = group.select(key)
        second = group.select(key)
        assert first[0] is second[0] and first[1] is second[1]


def make_recording():
    manifest = RunManifest(
        workload="mnist", input_shape=(1, 4), output_shape=(2,),
        bindings=[DataBinding("input", "input", 0x4000_0000, 0x8000_0000,
                              16, (1, 4))],
        jobs_per_node=[("conv1", 1)])
    return Recording(
        workload="mnist", recorder="OursMDS",
        sku_fingerprint=(0x60000010, 8, 2, 39, 1, ("q1",)),
        manifest=manifest, data_pfns=(0x80000,),
        entries=[
            Marker("conv1"),
            RegWrite(BATCHABLE, 0xFF),
            RegWrite(BATCHABLE + 8, 0xAA),
            RegRead(0x140, 0xFF),
            PollEntry(offset=0x2428, condition="bits_clear", operand=1,
                      value=0, iterations=3),
            MemWrite(pages=((0x80002, page(2)), (0x80001, page(1)))),
            IrqEntry(line="job"),
            Marker("softmax"),
            MemWrite(pages=((0x80005, page(5)),)),
            MemUpload(nbytes=512),
        ])


class TestCompileRecording:
    def test_columnar_arrays_mirror_the_entry_stream(self):
        compiled = compile_recording(make_recording())
        assert compiled.entry_count == 10
        assert [(int(r["offset"]), int(r["value"]))
                for r in compiled.writes] == [(BATCHABLE, 0xFF),
                                              (BATCHABLE + 8, 0xAA)]
        assert [(int(r["offset"]), int(r["value"]))
                for r in compiled.reads] == [(0x140, 0xFF)]
        (poll,) = compiled.polls
        assert (int(poll["offset"]), int(poll["cond"]), int(poll["operand"]),
                int(poll["value"]), int(poll["iterations"])) == (
            0x2428, _COND_CODES["bits_clear"], 1, 0, 3)
        assert list(compiled.irq_lines) == [_IRQ_CODES["job"]]

    def test_page_table_indexes_every_page_once(self):
        compiled = compile_recording(make_recording())
        assert compiled.n_pages == 3
        assert list(compiled.page_pfns) == [0x80001, 0x80002, 0x80005]
        assert compiled.memw_bounds.tolist() == [[0, 2], [2, 3]]
        lo, hi = compiled.memw_bounds[1]
        assert compiled.page_table[lo:hi][0][0] == 5

    def test_segment_programs_split_at_markers(self):
        compiled = compile_recording(make_recording())
        labels = [label for label, _ in compiled.segment_programs]
        assert labels == ["prologue", "conv1", "softmax"]
        conv1 = dict(compiled.segment_programs)["conv1"]
        assert conv1[0][0] == OP_WBATCH

    def test_compile_is_cached_and_leaves_digest_stable(self):
        rec = make_recording()
        before = rec.digest()
        compiled = rec.compile()
        assert rec.compile() is compiled
        assert rec.digest() == before
        assert rec.body_bytes() == make_recording().body_bytes()

    def test_nbytes_counts_columnar_arrays(self):
        compiled = compile_recording(make_recording())
        assert compiled.nbytes() >= 3 * PAGE_SIZE
