"""Unit tests for deferral queues and speculation history (§4.1, §4.2)."""

import pytest

from repro.core.deferral import DeferralQueue
from repro.core.speculation import (
    CommitHistory,
    MispredictionDetected,
    OutstandingCommit,
    SpeculationStats,
)
from repro.core.symbolic import SymVal


class TestDeferralQueue:
    def test_program_order_preserved(self):
        q = DeferralQueue("main")
        s1 = SymVal(1, None)
        q.add_read(0x20, s1)
        q.add_write(0x24, s1 | 0x10, tainted=False)
        q.add_write(0x28, 5, tainted=False)
        req = q.request()
        assert [op[0] for op in req.ops] == ["r", "w", "w"]
        assert req.ops[0] == ("r", 0x20, 1)
        assert req.ops[2] == ("w", 0x28, 5)

    def test_symbolic_write_lowered_to_wire(self):
        q = DeferralQueue("main")
        s1 = SymVal(1, None)
        q.add_read(0x20, s1)
        q.add_write(0x24, s1 | 0x10, tainted=False)
        wire = q.request().ops[1][2]
        assert wire == ("bin", "or", ("sym", 1), 0x10)

    def test_resolved_symbolic_write_is_concrete(self):
        q = DeferralQueue("main")
        s1 = SymVal(1, None)
        s1.resolve(0x3)
        q.add_write(0x24, s1 | 0x10, tainted=False)
        assert q.request().ops[0] == ("w", 0x24, 0x13)

    def test_foreign_symbol_rejected(self):
        """A write depending on an unresolved symbol from an *earlier*
        batch is a commit-ordering bug and must fail loudly."""
        q = DeferralQueue("main")
        foreign = SymVal(99, None)  # never queued here
        q.add_write(0x24, foreign | 1, tainted=False)
        with pytest.raises(RuntimeError):
            q.request()

    def test_signature_ignores_write_values(self):
        q1, q2 = DeferralQueue("a"), DeferralQueue("b")
        q1.add_write(0x10, 111, tainted=False)
        q2.add_write(0x10, 222, tainted=False)
        assert q1.signature() == q2.signature()

    def test_signature_distinguishes_offsets(self):
        q1, q2 = DeferralQueue("a"), DeferralQueue("b")
        q1.add_read(0x10, SymVal(1, None))
        q2.add_read(0x14, SymVal(2, None))
        assert q1.signature() != q2.signature()

    def test_tainted_detection(self):
        q = DeferralQueue("main")
        q.add_write(0x10, 1, tainted=True)
        assert q.any_tainted()

    def test_tainted_via_symbol(self):
        q = DeferralQueue("main")
        s = SymVal(1, None)
        s.resolve(1, tainted=True)
        q2 = DeferralQueue("main")
        q2.add_write(0x10, s | 1, tainted=False)
        assert q2.any_tainted()

    def test_request_sizes(self):
        q = DeferralQueue("main")
        q.add_read(0x10, SymVal(1, None))
        q.add_read(0x14, SymVal(2, None))
        q.add_write(0x18, 1, tainted=False)
        req = q.request()
        assert req.read_count == 2
        assert req.payload_bytes == 3 * 12
        assert req.response_bytes == 2 * 8

    def test_take_empties(self):
        q = DeferralQueue("main")
        q.add_write(0x10, 1, tainted=False)
        assert len(q.take()) == 1
        assert len(q) == 0


class TestCommitHistory:
    def test_no_prediction_with_short_history(self):
        h = CommitHistory(window=3)
        sig = (("r", 0x20),)
        h.record(sig, (5,))
        h.record(sig, (5,))
        assert h.predict(sig) is None

    def test_predicts_after_k_identical(self):
        h = CommitHistory(window=3)
        sig = (("r", 0x20),)
        for _ in range(3):
            h.record(sig, (5,))
        assert h.predict(sig) == (5,)

    def test_disagreement_blocks_prediction(self):
        """§4.2's conservative criteria: any disagreement in the last k
        instances means no speculation."""
        h = CommitHistory(window=3)
        sig = (("r", 0x38),)  # LATEST_FLUSH-like
        h.record(sig, (1,))
        h.record(sig, (2,))
        h.record(sig, (3,))
        assert h.predict(sig) is None

    def test_sliding_window_recovers(self):
        h = CommitHistory(window=3)
        sig = (("r", 0x20),)
        h.record(sig, (9,))  # old outlier
        for _ in range(3):
            h.record(sig, (5,))
        assert h.predict(sig) == (5,)

    def test_unknown_signature(self):
        assert CommitHistory().predict((("r", 1),)) is None

    def test_window_validation(self):
        with pytest.raises(ValueError):
            CommitHistory(window=0)

    def test_instances_counted(self):
        h = CommitHistory(window=3)
        sig = (("r", 1),)
        h.record(sig, (0,))
        assert h.instances(sig) == 1
        assert len(h) == 1


class TestOutstandingCommit:
    def _oc(self, predicted, actual):
        return OutstandingCommit(
            signature=(("r", 0x20),), category="power",
            predicted=predicted, actual=actual, completion_time=1.0,
            read_syms=[], safe_log_position=10)

    def test_matching_validates(self):
        self._oc((5,), (5,)).validate()

    def test_mismatch_raises_with_rollback_position(self):
        with pytest.raises(MispredictionDetected) as exc:
            self._oc((5,), (6,)).validate()
        assert exc.value.safe_log_position == 10
        assert exc.value.predicted == (5,)
        assert exc.value.actual == (6,)

    def test_validate_untaints_symbols(self):
        sym = SymVal(1, None)
        sym.resolve(5, tainted=True)
        oc = OutstandingCommit(
            signature=(), category="power", predicted=(5,), actual=(5,),
            completion_time=0.0, read_syms=[sym], safe_log_position=0)
        oc.validate()
        assert not sym.taint


class TestSpeculationStats:
    def test_note_commit_accumulates(self):
        stats = SpeculationStats()
        stats.note_commit("power", speculated=True, reads=3)
        stats.note_commit("power", speculated=False, reads=1)
        stats.note_commit("init", speculated=True, reads=10)
        assert stats.commits_total == 3
        assert stats.commits_speculated == 2
        assert stats.commits_by_category["power"] == 2
        assert stats.speculated_by_category == {"power": 1, "init": 1}
        assert stats.reads_total == 14
        assert stats.speculation_rate == pytest.approx(2 / 3)

    def test_rate_empty(self):
        assert SpeculationStats().speculation_rate == 0.0
