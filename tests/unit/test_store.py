"""Unit tests for the artifact store tier (repro.store).

MemoryStore is the protocol's reference implementation; DiskStore adds
atomic publish, persistence across instances, and on-disk integrity.
Both must enforce the same contract: per-tenant buckets that never leak
across tenants (§7.1), LRU eviction with receipts when size-bounded,
and corrupt/stale entries rejected (counted, dropped) instead of
served.
"""

import os

import pytest

from repro.core.compiled import from_artifact, to_artifact
from repro.core.recorder import OURS_MDS, RecordSession
from repro.store import (
    ArtifactKey,
    DiskStore,
    MemoryStore,
    StoreStats,
    TenantIsolationError,
    resolve_store,
    resolve_store_path,
)
from repro.store.disk import tenant_bucket
from tests.conftest import build_micro_graph


@pytest.fixture(scope="module")
def recording():
    return RecordSession(build_micro_graph(), config=OURS_MDS) \
        .run().recording


def make_blob(recording, tenant, digest=None):
    """A valid artifact blob for ``tenant``, optionally under a fake
    digest (distinct keys from one cheap compile)."""
    return to_artifact(recording.compile(), tenant_id=tenant,
                       recording=recording,
                       recording_digest=digest or recording.digest())


FAKE_A = "a" * 64
FAKE_B = "b" * 64
FAKE_C = "c" * 64


class TestMemoryStore:
    def test_put_get_roundtrip(self, recording):
        store = MemoryStore()
        key = ArtifactKey.current(recording.digest())
        receipts = store.put("t0", key, make_blob(recording, "t0"))
        assert receipts == []
        compiled = store.get("t0", key)
        assert compiled is not None
        assert compiled.entry_count == len(recording.entries)
        assert store.stats.hits == 1 and store.stats.publishes == 1

    def test_miss_is_counted(self, recording):
        store = MemoryStore()
        assert store.get("t0", ArtifactKey.current(FAKE_A)) is None
        assert store.stats.misses == 1 and store.stats.hit_rate == 0.0

    def test_same_key_other_tenant_is_a_miss(self, recording):
        store = MemoryStore()
        key = ArtifactKey.current(recording.digest())
        store.put("t0", key, make_blob(recording, "t0"))
        assert store.get("t1", key) is None
        assert store.stats.misses == 1

    def test_put_under_wrong_tenant_raises(self, recording):
        """A blob embedding tenant A never lands in B's bucket."""
        store = MemoryStore()
        key = ArtifactKey.current(recording.digest())
        with pytest.raises(TenantIsolationError):
            store.put("t-other", key, make_blob(recording, "t0"))
        assert len(store) == 0

    def test_put_under_wrong_digest_raises(self, recording):
        from repro.store import StoreError
        store = MemoryStore()
        with pytest.raises(StoreError, match="recording"):
            store.put("t0", ArtifactKey.current(FAKE_A),
                      make_blob(recording, "t0"))

    def test_lru_eviction_emits_receipts(self, recording):
        blob = make_blob(recording, "t0", FAKE_A)
        store = MemoryStore(max_bytes=2 * len(blob) + 10)
        store.put("t0", ArtifactKey.current(FAKE_A),
                  make_blob(recording, "t0", FAKE_A))
        store.put("t0", ArtifactKey.current(FAKE_B),
                  make_blob(recording, "t0", FAKE_B))
        # Touch A so B is the LRU victim when C lands.
        assert store.get("t0", ArtifactKey.current(FAKE_A)) is not None
        receipts = store.put("t0", ArtifactKey.current(FAKE_C),
                             make_blob(recording, "t0", FAKE_C))
        assert [r.recording_digest for r in receipts] == [FAKE_B]
        assert receipts[0].reason == "size"
        assert receipts[0].nbytes > 0
        assert store.stats.evictions == 1
        assert store.stats.bytes_evicted == receipts[0].nbytes
        assert store.receipts == receipts
        assert store.get("t0", ArtifactKey.current(FAKE_A)) is not None
        assert store.get("t0", ArtifactKey.current(FAKE_B)) is None

    def test_evict_tenant_clears_only_that_tenant(self, recording):
        store = MemoryStore()
        store.put("t0", ArtifactKey.current(FAKE_A),
                  make_blob(recording, "t0", FAKE_A))
        store.put("t1", ArtifactKey.current(FAKE_A),
                  make_blob(recording, "t1", FAKE_A))
        receipts = store.evict_tenant("t0")
        assert len(receipts) == 1 and receipts[0].reason == "tenant"
        assert store.get("t0", ArtifactKey.current(FAKE_A)) is None
        assert store.get("t1", ArtifactKey.current(FAKE_A)) is not None

    def test_audit_isolation_counts_entries(self, recording):
        store = MemoryStore()
        store.put("t0", ArtifactKey.current(FAKE_A),
                  make_blob(recording, "t0", FAKE_A))
        store.put("t1", ArtifactKey.current(FAKE_B),
                  make_blob(recording, "t1", FAKE_B))
        assert store.audit_isolation() == 2

    def test_stats_schema(self):
        assert StoreStats.SCHEMA == "repro.store"
        stats = StoreStats(hits=3, misses=1)
        assert stats.lookups == 4 and stats.hit_rate == 0.75
        assert stats.as_dict()["hits"] == 3


class TestDiskStore:
    def test_publish_lands_in_tenant_bucket(self, recording, tmp_path):
        store = DiskStore(tmp_path)
        key = ArtifactKey.current(recording.digest())
        store.put("t0", key, make_blob(recording, "t0"))
        path = tmp_path / tenant_bucket("t0") / key.filename()
        assert path.is_file()
        # No temp files left behind by the write-then-rename publish.
        leftovers = [p for p in tmp_path.rglob("*")
                     if p.is_file() and not p.name.endswith(".grta")
                     and p.name != "store_stats.json"]
        assert leftovers == []

    def test_hit_after_reopen(self, recording, tmp_path):
        key = ArtifactKey.current(recording.digest())
        DiskStore(tmp_path).put("t0", key, make_blob(recording, "t0"))
        fresh = DiskStore(tmp_path)  # simulated restart
        compiled = fresh.get("t0", key)
        assert compiled is not None
        assert fresh.stats.hits == 1

    def test_corrupt_artifact_rejected_and_dropped(self, recording,
                                                   tmp_path):
        store = DiskStore(tmp_path)
        key = ArtifactKey.current(recording.digest())
        store.put("t0", key, make_blob(recording, "t0"))
        path = tmp_path / tenant_bucket("t0") / key.filename()
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert store.get("t0", key) is None
        assert store.stats.corrupt_rejected == 1
        assert not path.exists()  # dropped, not left to fail forever

    def test_truncated_artifact_rejected(self, recording, tmp_path):
        store = DiskStore(tmp_path)
        key = ArtifactKey.current(recording.digest())
        store.put("t0", key, make_blob(recording, "t0"))
        path = tmp_path / tenant_bucket("t0") / key.filename()
        path.write_bytes(path.read_bytes()[:200])
        assert store.get("t0", key) is None
        assert store.stats.corrupt_rejected == 1

    def test_cross_tenant_same_digest_isolated(self, recording, tmp_path):
        store = DiskStore(tmp_path)
        key = ArtifactKey.current(recording.digest())
        store.put("t0", key, make_blob(recording, "t0"))
        store.put("t1", key, make_blob(recording, "t1"))
        assert len(store) == 2
        a = store.get("t0", key)
        b = store.get("t1", key)
        assert a.artifact_meta["tenant_id"] == "t0"
        assert b.artifact_meta["tenant_id"] == "t1"
        assert store.audit_isolation() == 2

    def test_opening_other_tenants_file_raises(self, recording, tmp_path):
        store = DiskStore(tmp_path)
        key = ArtifactKey.current(recording.digest())
        store.put("t0", key, make_blob(recording, "t0"))
        path = tmp_path / tenant_bucket("t0") / key.filename()
        with pytest.raises(TenantIsolationError):
            from_artifact(path, expected_tenant="t1")

    def test_size_budget_evicts_lru_with_receipts(self, recording,
                                                  tmp_path):
        blob = make_blob(recording, "t0", FAKE_A)
        store = DiskStore(tmp_path, max_bytes=2 * len(blob) + 10)
        store.put("t0", ArtifactKey.current(FAKE_A),
                  make_blob(recording, "t0", FAKE_A))
        store.put("t0", ArtifactKey.current(FAKE_B),
                  make_blob(recording, "t0", FAKE_B))
        receipts = store.put("t0", ArtifactKey.current(FAKE_C),
                             make_blob(recording, "t0", FAKE_C))
        assert len(receipts) == 1
        assert receipts[0].reason == "size"
        assert store.nbytes() <= 2 * len(blob) + 10
        assert store.stats.evictions == 1

    def test_gc_budget_and_remove(self, recording, tmp_path):
        store = DiskStore(tmp_path)
        for digest in (FAKE_A, FAKE_B):
            store.put("t0", ArtifactKey.current(digest),
                      make_blob(recording, "t0", digest))
        receipts = store.gc(max_bytes=store.nbytes() // 2)
        assert len(receipts) == 1
        assert len(store) == 1
        removed = store.remove("t0", store.entries()[0]["recording_digest"])
        assert len(removed) == 1 and len(store) == 0

    def test_gc_sweeps_stale_versions(self, recording, tmp_path):
        store = DiskStore(tmp_path)
        key = ArtifactKey.current(recording.digest())
        store.put("t0", key, make_blob(recording, "t0"))
        path = tmp_path / tenant_bucket("t0") / key.filename()
        stale = path.with_name(
            ArtifactKey(recording.digest(), compiler_version=0).filename())
        stale.write_bytes(path.read_bytes())
        receipts = store.gc()
        assert [r.recording_digest for r in receipts] == \
            [recording.digest()]
        assert not stale.exists() and path.exists()

    def test_verify_all_flags_corruption(self, recording, tmp_path):
        store = DiskStore(tmp_path)
        for tenant, digest in (("t0", FAKE_A), ("t1", FAKE_B)):
            store.put(tenant, ArtifactKey.current(digest),
                      make_blob(recording, tenant, digest))
        path = tmp_path / tenant_bucket("t1") / \
            ArtifactKey.current(FAKE_B).filename()
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        rows = store.verify_all()
        by_path = {r["path"]: r for r in rows}
        assert len(rows) == 2
        bad = by_path[str(path)]
        assert bad["ok"] is False and bad["error"]
        (good,) = [r for r in rows if r["path"] != str(path)]
        assert good["ok"] is True
        assert good["recording_digest"] == FAKE_A

    def test_persisted_stats_survive_restart(self, recording, tmp_path):
        key = ArtifactKey.current(recording.digest())
        first = DiskStore(tmp_path)
        first.put("t0", key, make_blob(recording, "t0"))
        first.get("t0", key)
        persisted = DiskStore(tmp_path).persisted_stats()
        assert persisted["publishes"] >= 1
        assert persisted["hits"] >= 1

    def test_entries_shape(self, recording, tmp_path):
        store = DiskStore(tmp_path)
        key = ArtifactKey.current(recording.digest())
        store.put("t0", key, make_blob(recording, "t0"))
        (row,) = store.entries()
        assert row["tenant_id"] == "t0"
        assert row["recording_digest"] == recording.digest()
        assert row["compiler_version"] == key.compiler_version
        assert row["schema_version"] == key.schema_version
        assert row["workload"] == recording.workload
        assert row["nbytes"] > 0
        assert os.path.isfile(row["path"])


class TestResolveStore:
    def test_path_becomes_disk_store(self, tmp_path):
        store = resolve_store(tmp_path / "s")
        assert isinstance(store, DiskStore)
        assert resolve_store(str(tmp_path / "s")).root == store.root

    def test_store_object_passes_through(self):
        store = MemoryStore()
        assert resolve_store(store) is store

    def test_none_without_env_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert resolve_store(None) is None
        assert resolve_store_path(None) == ""

    def test_env_fallback_warns_once(self, monkeypatch, tmp_path):
        import warnings

        from repro.core import config
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        monkeypatch.setattr(config, "_warned_store_env", False)
        with pytest.warns(DeprecationWarning, match="REPRO_STORE"):
            store = resolve_store(None)
        assert isinstance(store, DiskStore)
        # One-time: the second read is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_store_path(None) == str(tmp_path / "envstore")

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_store(42)

    def test_memory_store_has_no_shareable_path(self):
        with pytest.raises(TypeError, match="path"):
            resolve_store_path(MemoryStore())

    def test_disk_store_path_is_its_root(self, tmp_path):
        assert resolve_store_path(DiskStore(tmp_path)) == \
            os.fspath(DiskStore(tmp_path).root)
