"""Unit tests for physical memory: allocation, access, dirty tracking."""

import numpy as np
import pytest

from repro.hw.memory import (
    OutOfMemoryError,
    PAGE_SIZE,
    PhysicalMemory,
    align_up,
    page_of,
    pages_spanning,
)


class TestHelpers:
    def test_align_up(self):
        assert align_up(1) == PAGE_SIZE
        assert align_up(PAGE_SIZE) == PAGE_SIZE
        assert align_up(PAGE_SIZE + 1) == 2 * PAGE_SIZE

    def test_pages_spanning_single(self):
        assert len(pages_spanning(0, 1)) == 1

    def test_pages_spanning_boundary(self):
        assert len(pages_spanning(PAGE_SIZE - 1, 2)) == 2

    def test_pages_spanning_empty(self):
        assert len(pages_spanning(0, 0)) == 0

    def test_page_of(self):
        assert page_of(PAGE_SIZE * 3 + 17) == 3


class TestAllocation:
    def test_alloc_is_page_aligned(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(100, "x")
        assert region.base % PAGE_SIZE == 0
        assert region.size == PAGE_SIZE

    def test_alloc_regions_disjoint(self):
        mem = PhysicalMemory(size=1 << 20)
        a = mem.alloc(PAGE_SIZE, "a")
        b = mem.alloc(PAGE_SIZE, "b")
        assert a.end <= b.base

    def test_out_of_memory(self):
        mem = PhysicalMemory(size=1 << 20)
        with pytest.raises(OutOfMemoryError):
            mem.alloc(2 << 20, "too-big")

    def test_unaligned_size_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(size=100)

    def test_region_lookup(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(PAGE_SIZE, "target")
        assert mem.region_for(region.base + 10).label == "target"
        assert mem.region_for(mem.base + mem.size - 1) is None

    def test_bytes_allocated(self):
        mem = PhysicalMemory(size=1 << 20)
        mem.alloc(PAGE_SIZE, "a")
        mem.alloc(3 * PAGE_SIZE, "b")
        assert mem.bytes_allocated() == 4 * PAGE_SIZE


class TestAccess:
    def test_write_read_roundtrip(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(PAGE_SIZE, "x")
        mem.write(region.base, b"hello world")
        assert mem.read(region.base, 11) == b"hello world"

    def test_u64_roundtrip(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(PAGE_SIZE, "x")
        mem.write_u64(region.base, 0xDEAD_BEEF_CAFE_F00D)
        assert mem.read_u64(region.base) == 0xDEAD_BEEF_CAFE_F00D

    def test_u32_roundtrip(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(PAGE_SIZE, "x")
        mem.write_u32(region.base + 4, 0x1234_5678)
        assert mem.read_u32(region.base + 4) == 0x1234_5678

    def test_out_of_range_access(self):
        mem = PhysicalMemory(size=1 << 20)
        with pytest.raises(ValueError):
            mem.read(mem.base - 8, 4)
        with pytest.raises(ValueError):
            mem.read(mem.base + mem.size, 4)

    def test_array_roundtrip(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(PAGE_SIZE, "x")
        data = np.arange(64, dtype=np.float32)
        mem.write_array(region.base, data)
        view = mem.view(region.base, (64,), np.float32)
        assert np.array_equal(view, data)

    def test_view_is_writable_alias(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(PAGE_SIZE, "x")
        view = mem.view(region.base, (4,), np.float32)
        view[:] = 7.0
        assert mem.view(region.base, (4,), np.float32)[0] == 7.0

    def test_fill(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(PAGE_SIZE, "x")
        mem.fill(region.base, 16, 0xAB)
        assert mem.read(region.base, 16) == b"\xab" * 16


class TestDirtyTracking:
    def test_write_marks_dirty(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(PAGE_SIZE, "x")
        mem.write(region.base, b"abc")
        assert page_of(region.base) in mem.dirty_pages()

    def test_take_dirty_clears(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(PAGE_SIZE, "x")
        mem.write(region.base, b"abc")
        taken = mem.take_dirty()
        assert taken
        assert not mem.dirty_pages()

    def test_spanning_write_dirties_all_pages(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(3 * PAGE_SIZE, "x")
        mem.write(region.base, b"\x01" * (2 * PAGE_SIZE + 10))
        assert len(mem.dirty_pages()) == 3

    def test_view_writes_need_explicit_marking(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(PAGE_SIZE, "x")
        mem.clear_dirty()
        view = mem.view(region.base, (4,), np.float32)
        view[:] = 1.0
        assert not mem.dirty_pages()  # raw views bypass tracking...
        mem.mark_dirty_range(region.base, 16)
        assert mem.dirty_pages()  # ...until marked, as the executor does

    def test_page_roundtrip(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(PAGE_SIZE, "x")
        pfn = page_of(region.base)
        data = bytes(range(256)) * 16
        mem.write_page(pfn, data)
        assert mem.page_bytes(pfn) == data

    def test_write_page_requires_full_page(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(PAGE_SIZE, "x")
        with pytest.raises(ValueError):
            mem.write_page(page_of(region.base), b"short")

    def test_snapshot_pages(self):
        mem = PhysicalMemory(size=1 << 20)
        region = mem.alloc(2 * PAGE_SIZE, "x")
        mem.write(region.base, b"\x05" * 8)
        pfns = list(mem.pages_of_region(region))
        snap = mem.snapshot_pages(pfns)
        assert set(snap) == set(pfns)
        assert snap[page_of(region.base)][:8] == b"\x05" * 8
