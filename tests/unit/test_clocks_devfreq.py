"""Unit tests for SoC clock control and the devfreq governor (§6)."""

import numpy as np
import pytest

from repro.driver.devfreq import DevfreqGovernor, GovernorConfig
from repro.hw.clocks import GPU_CLOCK, SocClockController
from repro.hw.gpu import MaliGpu
from repro.hw.memory import PhysicalMemory
from repro.hw.sku import HIKEY960_G71
from repro.sim.clock import VirtualClock
from repro.tee.worlds import SecurityViolation, TrustZoneController, World


@pytest.fixture
def gpu():
    return MaliGpu(HIKEY960_G71, PhysicalMemory(size=4 << 20),
                   VirtualClock())


@pytest.fixture
def clk(gpu):
    return SocClockController(gpu, TrustZoneController())


class TestClockController:
    def test_starts_at_max(self, clk, gpu):
        assert clk.rate_mhz == GPU_CLOCK.max_mhz
        assert gpu.clock_scale == pytest.approx(1.0)

    def test_set_rate_scales_gpu(self, clk, gpu):
        clk.set_rate(533)
        assert gpu.clock_scale == pytest.approx(533 / GPU_CLOCK.max_mhz)

    def test_invalid_opp_rejected(self, clk):
        with pytest.raises(ValueError):
            clk.set_rate(600)

    def test_pin_blocks_normal_world(self, clk):
        clk.pin_max()
        with pytest.raises(SecurityViolation):
            clk.set_rate(533, world=World.NORMAL)
        assert clk.rate_mhz == GPU_CLOCK.max_mhz

    def test_secure_world_can_change_while_pinned(self, clk):
        clk.pin_max()
        clk.set_rate(533, world=World.SECURE)
        assert clk.rate_mhz == 533

    def test_unpin_restores_normal_control(self, clk):
        clk.pin_max()
        clk.unpin()
        clk.set_rate(178, world=World.NORMAL)
        assert clk.rate_mhz == 178

    def test_rate_change_counted(self, clk):
        before = clk.rate_changes
        clk.set_rate(533)
        clk.set_rate(533)  # no-op
        assert clk.rate_changes == before + 1

    def test_clock_scale_slows_jobs(self):
        """Half the clock, double the job duration."""
        clock = VirtualClock()
        mem = PhysicalMemory(size=4 << 20)
        gpu = MaliGpu(HIKEY960_G71, mem, clock)
        gpu.clock_scale = 0.5
        from repro.hw import regs
        gpu.write_reg(regs.GPU_COMMAND, regs.GpuCommand.CLEAN_INV_CACHES)
        # Cache flush events aren't clock-scaled; job durations are —
        # verified end to end in the devfreq integration test below.
        assert gpu.clock_scale == 0.5


class TestGovernor:
    def _clk(self):
        gpu = MaliGpu(HIKEY960_G71, PhysicalMemory(size=4 << 20),
                      VirtualClock())
        return SocClockController(gpu, TrustZoneController())

    def test_high_utilization_boosts(self):
        clk = self._clk()
        clk.set_rate(533)
        gov = DevfreqGovernor(clk)
        gov.update(busy_s=0.9, window_s=1.0)
        assert clk.rate_mhz > 533
        assert gov.boost_events == 1

    def test_low_utilization_throttles(self):
        clk = self._clk()
        gov = DevfreqGovernor(clk)
        gov.update(busy_s=0.05, window_s=1.0)
        assert clk.rate_mhz < GPU_CLOCK.max_mhz
        assert gov.throttle_events == 1

    def test_mid_utilization_holds(self):
        clk = self._clk()
        clk.set_rate(533)
        gov = DevfreqGovernor(clk)
        gov.update(busy_s=0.5, window_s=1.0)
        assert clk.rate_mhz == 533

    def test_performance_mode_pins_max(self):
        clk = self._clk()
        clk.set_rate(178)
        gov = DevfreqGovernor(clk, GovernorConfig(mode="performance"))
        gov.update(busy_s=0.0, window_s=1.0)
        assert clk.rate_mhz == GPU_CLOCK.max_mhz

    def test_governor_tolerates_tee_pinning(self):
        """While the TEE holds the clock the governor's set_rate fails
        like clk_set_rate returning -EPERM — silently, not fatally."""
        clk = self._clk()
        clk.pin_max()
        gov = DevfreqGovernor(clk)
        gov.update(busy_s=0.0, window_s=1.0)  # must not raise
        assert clk.rate_mhz == GPU_CLOCK.max_mhz

    def test_bounded_at_extremes(self):
        clk = self._clk()
        gov = DevfreqGovernor(clk)
        for _ in range(20):
            gov.update(busy_s=1.0, window_s=1.0)
        assert clk.rate_mhz == GPU_CLOCK.max_mhz
        for _ in range(20):
            gov.update(busy_s=0.0, window_s=1.0)
        assert clk.rate_mhz == GPU_CLOCK.min_mhz


class TestDvfsEndToEnd:
    def test_ondemand_throttles_light_native_workload(self, micro_graph):
        """The micro NN leaves the GPU mostly idle between jobs: ondemand
        steps the clock down, and the GPU spends longer per job."""
        from repro.core.testbed import native_run
        rng = np.random.RandomState(40)
        inp = rng.rand(*micro_graph.input_shape).astype(np.float32)
        pinned = native_run(micro_graph, inp)
        ondemand = native_run(micro_graph, inp, devfreq_mode="ondemand")
        np.testing.assert_allclose(pinned.output, ondemand.output,
                                   atol=1e-5)
        assert ondemand.delay_s >= pinned.delay_s

    def test_record_pins_clock(self):
        """GPUShim pins the clock during recording (§6): the recorded
        trace is identical whether or not the device was mid-throttle."""
        from repro.analysis.tracediff import diff_recordings
        from repro.core.recorder import OURS_M, RecordSession
        from tests.conftest import build_micro_graph
        a = RecordSession(build_micro_graph(), config=OURS_M).run()
        b = RecordSession(build_micro_graph(), config=OURS_M).run()
        assert diff_recordings(a.recording, b.recording).identical
