"""Unit tests for the userspace runtime: allocator, compiler, commands."""

import numpy as np
import pytest

from repro.driver.bus import LocalBus
from repro.driver.driver import KbaseDevice, LocalPlatform
from repro.hw.gpu import MaliGpu
from repro.hw.memory import PhysicalMemory
from repro.hw.shader import JobBuffer, ROLE_INPUT, ROLE_OUTPUT
from repro.hw.sku import HIKEY960_G71
from repro.kernel.env import KernelEnv
from repro.runtime.allocator import MapFlags
from repro.runtime.api import BufferSlice, GpuContext, RuntimeError_
from repro.runtime.compiler import CompilerTarget, JitCompiler
from repro.sim.clock import VirtualClock


@pytest.fixture
def ctx():
    clock = VirtualClock()
    mem = PhysicalMemory(size=32 << 20)
    gpu = MaliGpu(HIKEY960_G71, mem, clock)
    env = KernelEnv(clock)
    platform = LocalPlatform(gpu, env)
    kbdev = KbaseDevice(env, LocalBus(gpu, clock), mem)
    platform.attach(kbdev)
    kbdev.probe()
    return GpuContext(kbdev, mem)


class TestAllocator:
    def test_zones_have_correct_flags(self, ctx):
        aspace = ctx.aspace
        shader = aspace.get("shader-zone")
        cmd = aspace.get("command-zone")
        assert shader.map_flags & MapFlags.PROT_EXEC
        assert not shader.map_flags & MapFlags.PROT_WRITE
        assert cmd.map_flags & MapFlags.FLAG_COMMAND_MEMORY

    def test_data_buffer_not_metastate(self, ctx):
        buf = ctx.alloc_data("tensor", 4096)
        assert not buf.is_metastate
        assert ctx.aspace.get("shader-zone").is_metastate

    def test_metastate_vs_data_pfns_disjoint(self, ctx):
        ctx.alloc_data("tensor", 8192)
        meta = set(ctx.aspace.metastate_pfns())
        data = set(ctx.aspace.data_pfns())
        assert meta and data
        assert not meta & data

    def test_duplicate_name_rejected(self, ctx):
        ctx.alloc_data("x", 4096)
        with pytest.raises(ValueError):
            ctx.alloc_data("x", 4096)

    def test_zero_size_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.alloc_data("empty", 0)

    def test_vas_do_not_overlap(self, ctx):
        a = ctx.alloc_data("a", 10000)
        b = ctx.alloc_data("b", 10000)
        assert a.va + a.size <= b.va

    def test_buffers_are_gpu_mapped(self, ctx):
        buf = ctx.alloc_data("mapped", 4096)
        gpu_mmu = ctx.kbdev.env.platform.gpu.mmu
        # AS not yet configured on hardware; walk the tables directly.
        from repro.hw.mmu import PageTableWalker
        walker = PageTableWalker(ctx.mem, 1)
        result = walker.walk(ctx.kbdev.mmu_tables.root_pa, buf.va)
        assert result is not None
        assert result.pa == buf.pa

    def test_prot_flag_mapping(self):
        pte = MapFlags.to_pte_flags(MapFlags.PROT_READ | MapFlags.PROT_EXEC)
        from repro.hw.mmu import PteFlags
        assert pte == PteFlags.READ | PteFlags.EXECUTE


class TestCompiler:
    def test_binary_carries_sku_identity(self):
        target = CompilerTarget(gpu_id=0x1234, core_count=8)
        compiler = JitCompiler(target)
        binary = compiler.compile("relu", {"shape": [4]})
        assert binary.target_gpu_id == 0x1234
        assert binary.tile_size == 16 * 8

    def test_tile_size_scales_with_cores(self):
        """§2.4: core count steers codegen, making binaries SKU-specific."""
        small = JitCompiler(CompilerTarget(1, 2)).compile("relu", {"shape": [4]})
        big = JitCompiler(CompilerTarget(1, 20)).compile("relu", {"shape": [4]})
        assert small.tile_size != big.tile_size
        assert small.serialize() != big.serialize()

    def test_cache_reuses_binaries(self):
        compiler = JitCompiler(CompilerTarget(1, 8))
        a = compiler.compile("relu", {"shape": [4]}, cache_key="k")
        b = compiler.compile("relu", {"shape": [4]}, cache_key="k")
        assert a is b
        assert compiler.shaders_compiled == 1

    def test_compile_charges_time(self):
        clock = VirtualClock()
        compiler = JitCompiler(CompilerTarget(1, 8), clock=clock)
        compiler.compile("relu", {"shape": [4]})
        assert clock.now > 0


class TestCommandStream:
    def test_emits_descriptor_in_command_zone(self, ctx):
        emitted = ctx.commands.emit_job(0x1000_0000, 64, [
            JobBuffer(0x4000_0000, 256, ROLE_INPUT),
            JobBuffer(0x4000_1000, 256, ROLE_OUTPUT),
        ])
        cmd = ctx.aspace.get("command-zone")
        assert cmd.va <= emitted.descriptor_va < cmd.va + cmd.size
        assert emitted.ring_words >= 4  # shader + binds + dispatch + barrier

    def test_overflow_detected(self, ctx):
        builder = ctx.commands
        with pytest.raises(MemoryError):
            for i in range(100000):
                builder.emit_job(0x1000_0000, 64,
                                 [JobBuffer(0x4000_0000, 64, ROLE_OUTPUT)])

    def test_descriptor_parseable_from_memory(self, ctx):
        from repro.hw.shader import JobDescriptor
        emitted = ctx.commands.emit_job(0x1000_0000, 64, [
            JobBuffer(0x4000_0000, 128, ROLE_OUTPUT)])
        raw = ctx.mem.read(emitted.descriptor_pa, 64)
        desc = JobDescriptor.deserialize(raw)
        assert desc.shader_va == 0x1000_0000
        assert desc.buffers[0].role == ROLE_OUTPUT


class TestGpuContextApi:
    def test_upload_download_roundtrip(self, ctx):
        buf = ctx.alloc_data("t", 4096)
        data = np.arange(32, dtype=np.float32)
        ctx.upload(buf, data)
        assert np.array_equal(ctx.download(buf, (32,)), data)

    def test_upload_overflow_rejected(self, ctx):
        buf = ctx.alloc_data("t", 4096)
        with pytest.raises(RuntimeError_):
            ctx.upload(buf, np.zeros(5000, dtype=np.float32))

    def test_buffer_slice_addressing(self, ctx):
        buf = ctx.alloc_data("t", 8192)
        s = BufferSlice(buf, offset=128, length=256)
        assert s.va == buf.va + 128
        assert s.nbytes == 256

    def test_slice_defaults_to_rest_of_buffer(self, ctx):
        buf = ctx.alloc_data("t", 8192)
        s = BufferSlice(buf, offset=4096)
        assert s.nbytes == buf.size - 4096

    def test_enqueue_runs_to_completion(self, ctx):
        a = ctx.alloc_data("a", 4096)
        out = ctx.alloc_data("out", 4096)
        ctx.upload(a, np.array([-2.0, 3.0], dtype=np.float32))
        ctx.enqueue("relu", {"shape": [2]}, inputs=[a], outputs=[out],
                    cache_key="relu2")
        assert np.array_equal(ctx.download(out, (2,)), [0.0, 3.0])
        assert ctx.ops_enqueued == 1

    def test_compiler_target_derived_from_probe(self, ctx):
        assert ctx.target.gpu_id == HIKEY960_G71.gpu_id
        assert ctx.target.core_count == HIKEY960_G71.core_count
