"""Unit tests for the ML framework layer: layers, graphs, the six models."""

import numpy as np
import pytest

from repro.ml import layers as L
from repro.ml.graph import Graph, GraphError, INPUT
from repro.ml.models import PAPER_WORKLOADS, build_model, mnist, vgg16
from repro.ml.runner import generate_weights, required_memory_bytes


class TestLayers:
    def test_conv_shape(self):
        conv = L.Conv2D(16, 3, stride=1, pad=1)
        assert conv.infer_shape([(3, 32, 32)]) == (16, 32, 32)

    def test_conv_stride_shape(self):
        conv = L.Conv2D(8, 3, stride=2, pad=1)
        assert conv.infer_shape([(3, 32, 32)]) == (8, 16, 16)

    def test_conv_collapse_rejected(self):
        conv = L.Conv2D(8, 11, stride=4)
        with pytest.raises(L.ShapeError):
            conv.infer_shape([(3, 8, 8)])

    def test_conv_weight_shape(self):
        conv = L.Conv2D(16, 5)
        assert conv.weight_shape([(3, 32, 32)]) == (16, 3, 5, 5)
        assert conv.bias_shape([(3, 32, 32)]) == (16,)

    def test_conv_channel_groups(self):
        assert L.Conv2D(256, 3, channel_split=64).n_channel_groups() == 4
        assert L.Conv2D(100, 3, channel_split=64).n_channel_groups() == 2

    def test_conv_flops(self):
        conv = L.Conv2D(4, 3, pad=1)
        # 2 * out_c * oh * ow * in_c * kh * kw
        assert conv.flops([(2, 8, 8)]) == 2 * 4 * 8 * 8 * 2 * 3 * 3

    def test_dwconv_preserves_channels(self):
        dw = L.DWConv2D(3, stride=2, pad=1)
        assert dw.infer_shape([(32, 16, 16)]) == (32, 8, 8)
        assert dw.weight_shape([(32, 16, 16)]) == (32, 3, 3)

    def test_dense_flattens_input(self):
        d = L.Dense(10)
        assert d.infer_shape([(4, 5, 5)]) == (10,)
        assert d.weight_shape([(4, 5, 5)]) == (10, 100)

    def test_pool_default_stride(self):
        p = L.MaxPool(2)
        assert p.stride == 2
        assert p.infer_shape([(8, 16, 16)]) == (8, 8, 8)

    def test_global_pool(self):
        assert L.GlobalAvgPool().infer_shape([(64, 7, 7)]) == (64,)

    def test_add_requires_matching_shapes(self):
        add = L.Add()
        with pytest.raises(L.ShapeError):
            add.infer_shape([(4, 8, 8), (4, 4, 4)])

    def test_concat_channels(self):
        c = L.Concat()
        assert c.infer_shape([(16, 8, 8), (16, 8, 8)]) == (32, 8, 8)

    def test_concat_spatial_mismatch(self):
        with pytest.raises(L.ShapeError):
            L.Concat().infer_shape([(16, 8, 8), (16, 4, 4)])

    def test_batchnorm_params_per_channel(self):
        bn = L.BatchNorm()
        assert bn.weight_shape([(32, 8, 8)]) == (32,)
        assert bn.param_count([(32, 8, 8)]) == 64

    def test_param_count_conv(self):
        conv = L.Conv2D(4, 3)
        assert conv.param_count([(2, 8, 8)]) == 4 * 2 * 9 + 4


class TestGraph:
    def test_shape_propagation(self):
        g = Graph("t", (1, 8, 8))
        g.add("c", L.Conv2D(2, 3, pad=1), [INPUT])
        assert g.shape_of("c") == (2, 8, 8)

    def test_duplicate_node_rejected(self):
        g = Graph("t", (1, 8, 8))
        g.add("c", L.ReLU(), [INPUT])
        with pytest.raises(GraphError):
            g.add("c", L.ReLU(), [INPUT])

    def test_undefined_input_rejected(self):
        g = Graph("t", (1, 8, 8))
        with pytest.raises(GraphError):
            g.add("c", L.ReLU(), ["ghost"])

    def test_output_is_last_node(self):
        g = Graph("t", (1, 8, 8))
        g.add("a", L.ReLU(), [INPUT])
        g.add("b", L.ReLU(), ["a"])
        assert g.output.name == "b"

    def test_empty_graph_has_no_output(self):
        with pytest.raises(GraphError):
            Graph("t", (1,)).output

    def test_validate_detects_drift(self):
        g = Graph("t", (1, 8, 8))
        node = g.add("c", L.Conv2D(2, 3, pad=1), [INPUT])
        node.out_shape = (999, 1, 1)
        with pytest.raises(GraphError):
            g.validate()

    def test_total_flops_includes_scale(self):
        g = Graph("t", (1, 8, 8))
        g.add("r", L.ReLU(), [INPUT], flops_scale=4.0)
        assert g.total_flops() == 4.0 * 64


class TestPaperModels:
    def test_all_six_build_and_validate(self):
        for name in PAPER_WORKLOADS:
            graph = build_model(name)
            graph.validate()
            assert graph.output_shape[-1] in (10, 1000)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("gpt4")

    def test_mnist_is_lenet_shaped(self):
        g = mnist()
        assert g.input_shape == (1, 28, 28)
        assert g.output_shape == (10,)
        assert g.total_params() < 1_000_000

    def test_vgg16_has_13_convs_3_fcs(self):
        g = vgg16()
        convs = [n for n in g.nodes if isinstance(n.layer, L.Conv2D)]
        fcs = [n for n in g.nodes if isinstance(n.layer, L.Dense)]
        assert len(convs) == 13
        assert len(fcs) == 3

    def test_resnet12_has_12_convs(self):
        g = build_model("resnet12")
        convs = [n for n in g.nodes if isinstance(n.layer, L.Conv2D)]
        assert len(convs) == 12

    def test_relative_model_sizes(self):
        """VGG16 is the heavyweight; MNIST the lightweight (Table 1)."""
        flops = {n: build_model(n).total_flops() for n in PAPER_WORKLOADS}
        assert flops["vgg16"] == max(flops.values())
        assert flops["mnist"] == min(flops.values())

    def test_mobilenet_cheaper_than_vgg(self):
        assert build_model("mobilenet").total_flops() < \
            build_model("vgg16").total_flops() / 5


class TestWeights:
    def test_deterministic(self):
        g = mnist()
        a = generate_weights(g, seed=7)
        b = generate_weights(g, seed=7)
        assert set(a) == set(b)
        for k in a:
            assert np.array_equal(a[k], b[k])

    def test_seed_changes_weights(self):
        g = mnist()
        a = generate_weights(g, seed=1)
        b = generate_weights(g, seed=2)
        assert any(not np.array_equal(a[k], b[k]) for k in a)

    def test_every_parametric_node_covered(self):
        g = mnist()
        w = generate_weights(g)
        for node in g.nodes:
            in_shapes = [g.shape_of(i) for i in node.inputs]
            if node.layer.weight_shape(in_shapes) is not None:
                assert f"{node.name}.weight" in w

    def test_required_memory_covers_params(self):
        g = build_model("alexnet")
        assert required_memory_bytes(g) > 4 * g.total_params()
