"""Unit tests for the concurrency half of repro.check.

Static rules (``--concurrency``): each ``bad_conc_*`` corpus snippet
fires its rule exactly once at the marked line and ``clean_conc`` is
quiet; suppressions and the JSON profile envelope behave as documented.
Runtime sanitizer (:class:`~repro.check.racesan.RaceSan`): vector-clock
ordering through locks/queues/fork/publish, RLock re-entrancy, and
lock-order cycle detection — each proven on small deterministic
schedules, no real races needed.
"""

import json
import os
import queue
import threading

import pytest

from repro.check import RaceSan, RaceSanViolation, run_check

CORPUS = os.path.join(os.path.dirname(__file__), "..", "check_corpus")


def corpus(name):
    return os.path.join(CORPUS, name)


class TestConcCorpus:
    """Each snippet fires its own rule exactly once, at the marked line."""

    EXPECTED = {
        "bad_conc_unlocked.py": ("conc-unlocked-shared", 24),
        "bad_conc_lock_order.py": ("conc-lock-order", 25),
        "bad_conc_await_lock.py": ("conc-await-holding-lock", 20),
        "bad_conc_unjoined.py": ("conc-unjoined-thread", 18),
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_rule_fires_exactly_once(self, name):
        report = run_check([corpus(name)], concurrency=True)
        rule, line = self.EXPECTED[name]
        assert [(f.rule, f.line) for f in report.findings] == [(rule, line)]

    def test_clean_conc_is_quiet(self):
        report = run_check([corpus("clean_conc.py")], concurrency=True)
        assert report.findings == []

    def test_conc_rules_off_by_default(self):
        """Without --concurrency the same snippets scan clean, so the
        flag is a strict opt-in and existing corpus counts hold."""
        for name in self.EXPECTED:
            report = run_check([corpus(name)])
            assert report.findings == []

    def test_shipped_tree_is_conc_clean(self):
        report = run_check(concurrency=True)
        conc = [f for f in report.findings if f.rule.startswith("conc-")]
        assert conc == []


class TestConcSuppression:
    def test_pragma_suppresses_with_reason(self, tmp_path):
        src = open(corpus("bad_conc_unlocked.py")).read()
        src = src.replace(
            "self.tasks_done += 1",
            "# repro-check: allow[conc-unlocked-shared] -- test pragma\n"
            "        self.tasks_done += 1")
        target = tmp_path / "patched.py"
        target.write_text(src)
        report = run_check([str(target)], concurrency=True)
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["conc-unlocked-shared"]
        assert report.suppressed[0].suppress_reason == "test pragma"


class TestProfileEnvelope:
    def test_json_has_per_rule_timing(self):
        report = run_check([corpus("clean_conc.py")], concurrency=True)
        payload = json.loads(report.to_json())
        assert "concurrency" in payload["profile"]
        assert "lock-order" in payload["profile"]
        for entry in payload["profile"].values():
            assert entry["seconds"] >= 0.0
            assert entry["files"] >= 0

    def test_no_conc_profile_without_flag(self):
        report = run_check([corpus("clean_conc.py")])
        payload = json.loads(report.to_json())
        assert "concurrency" not in payload["profile"]


class TestRaceSanClocks:
    def test_lock_protected_counter_is_clean(self):
        san = RaceSan(strict=True)
        lock = san.wrap_lock(threading.Lock(), "L")
        counter = [0]

        def work():
            for _ in range(25):
                with lock:
                    san.note("counter", write=True)
                    counter[0] += 1

        threads = [threading.Thread(target=san.fork(work, str(i)))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter[0] == 75
        assert san.violations == []
        assert san.state.checks_by_rule["racesan-race"] == 75

    def test_unlocked_conflicting_access_is_a_race(self):
        san = RaceSan(strict=False)
        san.note("shared", write=True)
        # Deliberately NOT fork-wrapped: the child has no edge from the
        # parent's write, so the conflicting write is unordered.
        t = threading.Thread(target=lambda: san.note("shared", write=True))
        t.start()
        t.join()
        assert any("racesan-race" in v for v in san.violations)
        assert [f.rule for f in san.findings()] == ["racesan-race"]

    def test_read_read_is_never_a_race(self):
        san = RaceSan(strict=True)
        san.note("ro", write=False)
        t = threading.Thread(target=lambda: san.note("ro", write=False))
        t.start()
        t.join()
        assert san.violations == []

    def test_fork_edge_orders_child_after_parent(self):
        san = RaceSan(strict=True)
        san.note("x", write=True)
        t = threading.Thread(
            target=san.fork(lambda: san.note("x", write=True), "child"))
        t.start()
        t.join()
        assert san.violations == []

    def test_queue_transfer_orders_producer_before_consumer(self):
        san = RaceSan(strict=True)
        q = san.wrap_queue(queue.Queue(), "q")
        san.note("z", write=True)
        q.put(1)

        def consumer():
            q.get()
            san.note("z", write=True)

        t = threading.Thread(target=consumer)
        t.start()
        t.join()
        assert san.violations == []

    def test_publish_consume_is_an_edge(self):
        san = RaceSan(strict=True)
        san.note("w", write=True)
        san.publish("handoff")

        def callback():
            san.consume("handoff")
            san.note("w", write=True)

        t = threading.Thread(target=callback)
        t.start()
        t.join()
        assert san.violations == []


class TestRaceSanLockOrder:
    def _inverted(self, strict):
        san = RaceSan(strict=strict)
        a = san.wrap_lock(threading.Lock(), "A")
        b = san.wrap_lock(threading.Lock(), "B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        return san

    def test_inverted_order_is_a_cycle(self):
        san = self._inverted(strict=False)
        cycles = [v for v in san.violations if "racesan-lock-cycle" in v]
        assert len(cycles) == 1
        assert "A" in cycles[0] and "B" in cycles[0]

    def test_strict_raises_at_the_inverting_acquire(self):
        with pytest.raises(RaceSanViolation):
            self._inverted(strict=True)

    def test_consistent_order_is_quiet(self):
        san = RaceSan(strict=True)
        a = san.wrap_lock(threading.Lock(), "A")
        b = san.wrap_lock(threading.Lock(), "B")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert san.violations == []

    def test_rlock_reentry_is_not_a_cycle(self):
        san = RaceSan(strict=True)
        r = san.wrap_lock(threading.RLock(), "R")
        with r:
            with r:
                san.note("y", write=True)
        assert san.violations == []

    def test_wrap_is_idempotent(self):
        san = RaceSan()
        lock = san.wrap_lock(threading.Lock(), "L")
        assert san.wrap_lock(lock, "L") is lock
        q = san.wrap_queue(queue.Queue(), "q")
        assert san.wrap_queue(q, "q") is q

    def test_release_acquire_edge_orders_across_threads(self):
        """Two threads alternating under one lock: every access ordered
        by the release->acquire chain, zero violations, and the check
        counter proves the sanitizer evaluated each access."""
        san = RaceSan(strict=True)
        lock = san.wrap_lock(threading.Lock(), "L")
        before = san.checks_performed

        def bump():
            with lock:
                san.note("v", write=True)

        bump()
        t = threading.Thread(target=bump)
        t.start()
        t.join()
        assert san.violations == []
        assert san.checks_performed > before
