"""Unit tests for the signed recording format."""

import pytest

from repro.core.recording import (
    IrqEntry,
    Marker,
    MemUpload,
    MemWrite,
    PollEntry,
    Recording,
    RecordingFormatError,
    RegRead,
    RegWrite,
)
from repro.ml.runner import DataBinding, RunManifest
from repro.tee.crypto import SigningKey


def make_manifest():
    return RunManifest(
        workload="mnist",
        input_shape=(1, 28, 28),
        output_shape=(10,),
        bindings=[
            DataBinding("input", "input", 0x4000_0000, 0x8000_0000,
                        3136, (1, 28, 28)),
            DataBinding("output", "output", 0x4000_2000, 0x8000_2000,
                        40, (10,)),
        ],
        jobs_per_node=[("conv1", 2), ("softmax", 1)],
    )


def make_recording():
    return Recording(
        workload="mnist",
        recorder="OursMDS",
        sku_fingerprint=(0x60000010, 8, 2, 39, 1, ("q1", "q2")),
        manifest=make_manifest(),
        data_pfns=(0x80000, 0x80001),
        entries=[
            Marker("conv1"),
            RegWrite(offset=0x180, value=0xFF),
            RegRead(offset=0x140, value=0xFF),
            PollEntry(offset=0x2428, condition="bits_clear", operand=1,
                      value=0, iterations=3),
            MemWrite(pages=((0x80002, bytes(4096)),
                            (0x80003, bytes(2000) + b"\x07" * 96
                             + bytes(2000)))),
            IrqEntry(line="job"),
            MemUpload(nbytes=512),
        ],
    )


class TestSerialization:
    def test_roundtrip(self):
        rec = make_recording()
        key = SigningKey.generate("svc")
        blob = rec.sign(key)
        back = Recording.from_bytes(blob, verify_key=key)
        assert back.workload == rec.workload
        assert back.recorder == rec.recorder
        assert back.sku_fingerprint == rec.sku_fingerprint
        assert back.data_pfns == rec.data_pfns
        assert back.entries == rec.entries
        assert back.manifest.to_dict() == rec.manifest.to_dict()

    def test_unsigned_cannot_serialize(self):
        with pytest.raises(RecordingFormatError):
            make_recording().to_bytes()

    def test_bad_magic(self):
        with pytest.raises(RecordingFormatError):
            Recording.from_bytes(b"NOPE" + bytes(64))

    def test_tamper_detected(self):
        """§7.1: the replayer only accepts recordings signed by the
        cloud; any bit flip breaks verification."""
        key = SigningKey.generate("svc")
        blob = bytearray(make_recording().sign(key))
        blob[60] ^= 0x01
        with pytest.raises(RecordingFormatError):
            Recording.from_bytes(bytes(blob), verify_key=key)

    def test_wrong_key_rejected(self):
        blob = make_recording().sign(SigningKey.generate("svc", b"a"))
        with pytest.raises(RecordingFormatError):
            Recording.from_bytes(blob,
                                 verify_key=SigningKey.generate("svc", b"b"))

    def test_no_key_skips_verification(self):
        blob = make_recording().sign(SigningKey.generate("svc"))
        rec = Recording.from_bytes(blob)  # inspection tools may do this
        assert rec.workload == "mnist"

    def test_mem_pages_compressed_in_blob(self):
        rec = make_recording()
        blob = rec.sign(SigningKey.generate("svc"))
        # Two 4 KiB pages are carried; zeros/constants compress well.
        assert len(blob) < 4096

    def test_trailing_garbage_rejected(self):
        key = SigningKey.generate("svc")
        rec = make_recording()
        body = rec.body_bytes() + b"extra"
        sig = key.sign(body)
        with pytest.raises(RecordingFormatError):
            Recording.from_bytes(body + sig, verify_key=key)


class TestSummaries:
    def test_counts(self):
        counts = make_recording().counts()
        assert counts["writes"] == 1
        assert counts["reads"] == 1
        assert counts["polls"] == 1
        assert counts["irqs"] == 1
        assert counts["mem_writes"] == 1
        assert counts["markers"] == 1

    def test_segments_split_at_markers(self):
        rec = make_recording()
        segments = rec.segments()
        labels = [label for label, _ in segments]
        assert labels == ["prologue", "conv1"]
        assert len(segments[1][1]) == len(rec.entries) - 1

    def test_memwrite_nbytes(self):
        entry = MemWrite(pages=((1, bytes(4096)), (2, bytes(4096))))
        assert entry.nbytes == 8192


class TestManifest:
    def test_roundtrip(self):
        m = make_manifest()
        back = RunManifest.from_dict(m.to_dict())
        assert back.workload == m.workload
        assert back.binding("input").va == m.binding("input").va
        assert back.total_jobs == 3

    def test_missing_binding(self):
        with pytest.raises(KeyError):
            make_manifest().binding("ghost")

    def test_weight_bindings_filter(self):
        m = make_manifest()
        m.bindings.append(DataBinding("c.weight", "weight", 1, 2, 4, (1,)))
        m.bindings.append(DataBinding("c.bias", "bias", 3, 4, 4, (1,)))
        assert {b.name for b in m.weight_bindings()} == {"c.weight", "c.bias"}
