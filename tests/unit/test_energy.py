"""Unit tests for the client energy model (§7.4)."""

import pytest

from repro.sim.clock import Timeline
from repro.sim.energy import EnergyMeter, HIKEY960_POWER, PowerModel
from repro.sim.network import NetworkStats


def _timeline(spans):
    tl = Timeline()
    t = 0.0
    for duration, label in spans:
        tl.add(t, t + duration, label)
        t += duration
    return tl


class TestEnergyMeter:
    def test_timeline_energy_uses_label_power(self):
        meter = EnergyMeter()
        tl = _timeline([(1.0, "gpu")])
        assert meter.timeline_energy_j(tl) == pytest.approx(
            HIKEY960_POWER.gpu_w)

    def test_radio_energy_per_byte(self):
        meter = EnergyMeter()
        stats = NetworkStats(bytes_to_cloud=1_000_000, bytes_to_client=0)
        expected = 1_000_000 * HIKEY960_POWER.tx_nj_per_byte * 1e-9
        assert meter.radio_energy_j(stats) == pytest.approx(expected)

    def test_record_energy_scales_with_duration(self):
        meter = EnergyMeter()
        short = meter.record_energy_j(_timeline([(1.0, "network")]),
                                      NetworkStats())
        long = meter.record_energy_j(_timeline([(10.0, "network")]),
                                     NetworkStats())
        assert long == pytest.approx(10 * short)

    def test_record_energy_includes_gpu_power(self):
        meter = EnergyMeter()
        without_gpu = meter.record_energy_j(_timeline([(1.0, "idle")]),
                                            NetworkStats())
        with_gpu = meter.record_energy_j(_timeline([(1.0, "gpu")]),
                                         NetworkStats())
        assert with_gpu > without_gpu

    def test_execution_energy_no_radio(self):
        meter = EnergyMeter()
        tl = _timeline([(1.0, "cpu"), (1.0, "gpu")])
        expected = (HIKEY960_POWER.idle_w * 2
                    + HIKEY960_POWER.cpu_w + HIKEY960_POWER.gpu_w)
        assert meter.execution_energy_j(tl) == pytest.approx(expected)

    def test_breakdown_sums_to_total(self):
        meter = EnergyMeter()
        tl = _timeline([(1.0, "cpu"), (2.0, "network"), (0.5, "gpu")])
        stats = NetworkStats(bytes_to_client=1000, bytes_to_cloud=500)
        breakdown = meter.breakdown_j(tl, stats)
        assert sum(breakdown.values()) == pytest.approx(
            meter.total_energy_j(tl, stats))

    def test_custom_power_model(self):
        model = PowerModel(name="test", idle_w=1.0, cpu_w=2.0, gpu_w=3.0,
                           network_idle_w=0.5, tx_nj_per_byte=0.0,
                           rx_nj_per_byte=0.0)
        meter = EnergyMeter(model)
        assert meter.timeline_energy_j(_timeline([(1.0, "cpu")])) == 2.0

    def test_power_for_unknown_label_falls_back_to_idle(self):
        assert HIKEY960_POWER.power_for("mystery") == HIKEY960_POWER.idle_w
