"""Unit tests for memory synchronization policies (§5)."""

import pytest

from repro.core.memsync import (
    MemorySyncViolation,
    MemorySynchronizer,
    SyncPolicy,
)
from repro.hw.memory import PAGE_SIZE, PhysicalMemory, page_of


@pytest.fixture
def pair():
    cloud = PhysicalMemory(size=4 << 20)
    client = PhysicalMemory(size=4 << 20)
    return cloud, client


def dirty_page(mem, label="x"):
    region = mem.alloc(PAGE_SIZE, label)
    mem.write(region.base, b"\x11" * 64)
    return page_of(region.base)


class TestPolicies:
    def test_full_pushes_all_dirty(self, pair):
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL)
        data_pfn = dirty_page(cloud, "data")
        meta_pfn = dirty_page(cloud, "meta")
        pages, _ = sync.push(metastate_pfns={meta_pfn})
        assert set(pages) == {data_pfn, meta_pfn}

    def test_meta_only_filters_data(self, pair):
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.META_ONLY)
        dirty_page(cloud, "data")
        meta_pfn = dirty_page(cloud, "meta")
        pages, _ = sync.push(metastate_pfns={meta_pfn})
        assert set(pages) == {meta_pfn}

    def test_unknown_policy_rejected(self, pair):
        cloud, client = pair
        with pytest.raises(ValueError):
            MemorySynchronizer(cloud, client, "telepathy")

    def test_clean_push_is_empty(self, pair):
        cloud, client = pair
        cloud.clear_dirty()
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL)
        cloud.take_dirty()
        pages, wire = sync.push(metastate_pfns=set())
        assert not pages and wire == 0


class TestTransfer:
    def test_apply_push_installs_pages(self, pair):
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL)
        pfn = dirty_page(cloud)
        pages, _ = sync.push(metastate_pfns=set())
        sync.apply_push(pages)
        assert client.page_bytes(pfn) == cloud.page_bytes(pfn)

    def test_pull_returns_gpu_writes(self, pair):
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL)
        cloud.take_dirty()
        sync.push(metastate_pfns=set())
        pfn = dirty_page(client, "gpu-out")
        pages, _ = sync.pull(metastate_pfns=set())
        assert pfn in pages
        sync.apply_pull(pages)
        assert cloud.page_bytes(pfn) == client.page_bytes(pfn)

    def test_pull_apply_does_not_echo_back(self, pair):
        """GPU writes pulled into cloud memory must not be re-pushed."""
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL)
        cloud.take_dirty()
        sync.push(metastate_pfns=set())
        dirty_page(client)
        pages, _ = sync.pull(metastate_pfns=set())
        sync.apply_pull(pages)
        next_pages, _ = sync.push(metastate_pfns=set())
        assert not next_pages


class TestCompression:
    def test_wire_smaller_than_raw_for_sparse(self, pair):
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL)
        dirty_page(cloud)
        _, wire = sync.push(metastate_pfns=set())
        assert wire < PAGE_SIZE

    def test_compression_disabled_ships_raw(self, pair):
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL,
                                  compress_enabled=False)
        dirty_page(cloud)
        _, wire = sync.push(metastate_pfns=set())
        assert wire == PAGE_SIZE

    def test_second_push_uses_delta(self, pair):
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL)
        region = cloud.alloc(PAGE_SIZE, "x")
        import os
        cloud.write(region.base, os.urandom(PAGE_SIZE))
        _, first_wire = sync.push(metastate_pfns=set())
        sync.pull(metastate_pfns=set())  # job ends; cloud may write again
        # One byte changes: the delta should be far smaller.
        cloud.write(region.base + 5, b"\xFF")
        _, second_wire = sync.push(metastate_pfns=set())
        assert second_wire < first_wire / 10

    def test_stats_accumulate(self, pair):
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL)
        dirty_page(cloud)
        sync.push(metastate_pfns=set())
        # A genuine GPU update: same page, different bytes.
        region = client.regions()[0] if client.regions() else \
            client.alloc(PAGE_SIZE, "x")
        client.write(region.base, b"\x22" * 64)
        sync.pull(metastate_pfns=set())
        assert sync.stats.pushes == 1
        assert sync.stats.pulls == 1
        assert sync.stats.raw_total_bytes == 2 * PAGE_SIZE
        assert 0 < sync.stats.wire_total_bytes < 2 * PAGE_SIZE
        assert sync.stats.encodes == 2

    def test_unchanged_dirty_page_is_skipped(self, pair):
        """A page re-written with identical bytes is dirty but needs no
        transfer: the peer already holds that exact content."""
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL)
        pfn = dirty_page(cloud)
        pages, _ = sync.push(metastate_pfns=set())
        assert pfn in pages
        sync.pull(metastate_pfns=set())
        # Rewrite the same content: dirty again, but nothing should move.
        region = cloud.regions()[0]
        cloud.write(region.base, b"\x11" * 64)
        pages, wire = sync.push(metastate_pfns=set())
        assert pages == {} and wire == 0
        assert sync.stats.pages_skipped == 1


class TestNoEcho:
    def test_pushed_pages_do_not_echo_back(self, pair):
        """apply_push installs cloud state on the client; the next pull
        must carry only genuine GPU writes, not the push reflected."""
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL)
        dirty_page(cloud)
        pages, _ = sync.push(metastate_pfns=set())
        sync.apply_push(pages)
        pulled, wire = sync.pull(metastate_pfns=set())
        assert not pulled and wire == 0

    def test_pull_apply_does_not_lose_cloud_writes(self, pair):
        """apply_pull must unmark only the pages it installed: a cloud
        write racing the job end must still propagate at the next push,
        not vanish from the dirty set."""
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL)
        pfn = dirty_page(cloud)
        sync.push(metastate_pfns=set())
        client.alloc(PAGE_SIZE, "spacer")  # keep PFNs distinct
        gpu_pfn = dirty_page(client, "gpu-out")
        assert gpu_pfn != pfn
        pages, _ = sync.pull(metastate_pfns=set())
        cloud.write(pfn << 12, b"late write")  # lands just before apply
        sync.apply_pull(pages)
        next_pages, _ = sync.push(metastate_pfns=set())
        assert pfn in next_pages  # not erased by the pull's bookkeeping
        assert gpu_pfn not in next_pages  # the installed page *is* clean


class TestContinuousValidation:
    def test_cloud_write_during_job_trapped(self, pair):
        """§5's unmap-and-trap: touching GPU-owned memory is an error."""
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL)
        pfn = dirty_page(cloud)
        sync.push(metastate_pfns=set())  # GPU now owns the pushed pages
        cloud.write(pfn << 12, b"spurious")
        with pytest.raises(MemorySyncViolation):
            sync.push(metastate_pfns=set())

    def test_pull_releases_ownership(self, pair):
        cloud, client = pair
        sync = MemorySynchronizer(cloud, client, SyncPolicy.FULL)
        pfn = dirty_page(cloud)
        sync.push(metastate_pfns=set())
        sync.pull(metastate_pfns=set())
        cloud.write(pfn << 12, b"now fine")
        sync.push(metastate_pfns=set())  # no violation after the pull
