"""Unit tests for lazy symbolic register values (§4.1)."""

import pytest

from repro.core.symbolic import (
    SymVal,
    UnresolvedValueError,
    concrete,
    evaluate_wire,
    is_unresolved,
)


class FakeShim:
    """Resolves forced symbols with canned values, counting commits."""

    def __init__(self, values=None):
        self.values = values or {}
        self.commits = 0

    def force_resolution(self, lazy):
        self.commits += 1
        for sym in lazy.symbols():
            if not sym.resolved:
                sym.resolve(self.values.get(sym.sym_id, 0))


class TestSymVal:
    def test_unresolved_by_default(self):
        sym = SymVal(1, FakeShim())
        assert not sym.resolved
        assert is_unresolved(sym)

    def test_resolve_then_evaluate(self):
        sym = SymVal(1, FakeShim())
        sym.resolve(42)
        assert sym.evaluate() == 42

    def test_evaluate_unresolved_raises(self):
        with pytest.raises(UnresolvedValueError):
            SymVal(1, FakeShim()).evaluate()

    def test_bool_forces_commit(self):
        shim = FakeShim({1: 5})
        sym = SymVal(1, shim)
        assert bool(sym)
        assert shim.commits == 1
        assert sym.evaluate() == 5

    def test_int_coercion_forces(self):
        shim = FakeShim({1: 7})
        assert int(SymVal(1, shim)) == 7

    def test_index_supports_hex_format(self):
        shim = FakeShim({1: 255})
        assert f"{SymVal(1, shim):#x}" == "0xff"

    def test_taint_flag(self):
        sym = SymVal(1, FakeShim())
        sym.resolve(1, tainted=True)
        assert sym.tainted
        sym.untaint()
        assert not sym.tainted


class TestSymExpr:
    def test_or_with_constant(self):
        sym = SymVal(1, FakeShim())
        expr = sym | 0x10
        sym.resolve(0x01)
        assert expr.evaluate() == 0x11

    def test_reverse_operators(self):
        sym = SymVal(1, FakeShim())
        expr = 0x10 | sym
        sym.resolve(0x01)
        assert expr.evaluate() == 0x11

    def test_nested_expression(self):
        a, b = SymVal(1, FakeShim()), SymVal(2, FakeShim())
        expr = ((a << 32) | b) & 0xFFFF_FFFF_FFFF_FFFF
        a.resolve(0x1)
        b.resolve(0x2)
        assert expr.evaluate() == 0x1_0000_0002

    def test_all_binary_ops(self):
        a = SymVal(1, FakeShim())
        a.resolve(12)
        assert (a + 3).evaluate() == 15
        assert (a - 2).evaluate() == 10
        assert (a ^ 0xF).evaluate() == 3
        assert (a >> 2).evaluate() == 3
        assert (a << 1).evaluate() == 24

    def test_unary_ops(self):
        a = SymVal(1, FakeShim())
        a.resolve(0)
        assert (~a).evaluate() == -1
        assert (-a).evaluate() == 0

    def test_taint_propagates_through_expressions(self):
        a, b = SymVal(1, FakeShim()), SymVal(2, FakeShim())
        a.resolve(1, tainted=True)
        b.resolve(2, tainted=False)
        assert (a | b).tainted
        assert not (b | 1).tainted

    def test_symbols_collection(self):
        a, b = SymVal(1, FakeShim()), SymVal(2, FakeShim())
        expr = (a | 1) + (b << 2)
        ids = {s.sym_id for s in expr.symbols()}
        assert ids == {1, 2}

    def test_expr_bool_forces_via_any_shim(self):
        shim = FakeShim({1: 0x10})
        expr = SymVal(1, shim) & 0x10
        assert bool(expr)
        assert shim.commits == 1

    def test_unsupported_operand(self):
        sym = SymVal(1, FakeShim())
        with pytest.raises(TypeError):
            sym | "string"


class TestWireFormat:
    def test_sym_wire(self):
        assert SymVal(7, FakeShim()).wire() == ("sym", 7)

    def test_expr_wire_and_evaluate(self):
        a = SymVal(1, FakeShim())
        expr = (a | 0x10) << 2
        wire = expr.wire()
        assert evaluate_wire(wire, {1: 0x01}) == 0x44

    def test_listing_1a_pattern(self):
        """WRITE(MMU_CONFIG, S2 | 0x10): client evaluates against this
        batch's read values."""
        s2 = SymVal(2, FakeShim())
        write_value = s2 | 0x10
        assert evaluate_wire(write_value.wire(), {2: 0x03}) == 0x13

    def test_missing_symbol_rejected(self):
        with pytest.raises(UnresolvedValueError):
            evaluate_wire(("sym", 9), {1: 0})

    def test_constant_wire(self):
        assert evaluate_wire(5, {}) == 5

    def test_malformed_wire(self):
        with pytest.raises(ValueError):
            evaluate_wire(("teleport", 1), {})

    def test_unary_wire(self):
        a = SymVal(1, FakeShim())
        assert evaluate_wire((~a).wire(), {1: 0}) == -1


class TestConcrete:
    def test_concrete_of_int(self):
        assert concrete(5) == 5

    def test_concrete_of_resolved(self):
        sym = SymVal(1, FakeShim())
        sym.resolve(9)
        assert concrete(sym) == 9

    def test_concrete_forces_unresolved(self):
        shim = FakeShim({1: 3})
        assert concrete(SymVal(1, shim)) == 3
        assert shim.commits == 1
