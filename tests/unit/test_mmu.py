"""Unit tests for GPU page tables, translation, permissions, and the TLB."""

import pytest

from repro.driver.mmu_driver import MmuMapError, MmuTables
from repro.hw.memory import PAGE_SIZE, PhysicalMemory
from repro.hw.mmu import (
    GpuMmu,
    GpuPageFault,
    PageTableWalker,
    PteFlags,
    ate_flags,
    level_index,
    make_ate,
    make_table_entry,
)


@pytest.fixture
def mem():
    return PhysicalMemory(size=16 << 20)


@pytest.fixture
def tables(mem):
    return MmuTables(mem, pte_format=1)


@pytest.fixture
def mmu(mem, tables):
    m = GpuMmu(mem, pte_format=1)
    m.configure(tables.root_pa)
    return m


RWX = PteFlags.READ | PteFlags.WRITE | PteFlags.EXECUTE
RW = PteFlags.READ | PteFlags.WRITE
RX = PteFlags.READ | PteFlags.EXECUTE


class TestPteEncoding:
    def test_ate_roundtrip_format1(self):
        entry = make_ate(0x1234_5000, RW, pte_format=1)
        assert ate_flags(entry, 1) == RW

    def test_ate_roundtrip_format0(self):
        entry = make_ate(0x1234_5000, RW, pte_format=0)
        assert ate_flags(entry, 0) == RW

    def test_formats_differ(self):
        """§2.4: page-table format variations across SKUs break replay."""
        e0 = make_ate(0x5000, RX, pte_format=0)
        e1 = make_ate(0x5000, RX, pte_format=1)
        assert e0 != e1
        assert ate_flags(e0, 1) != RX  # misread under the wrong format

    def test_table_entry_address(self):
        from repro.hw.mmu import entry_address
        entry = make_table_entry(0xABCD_E000)
        assert entry_address(entry) == 0xABCD_E000

    def test_level_index_partition(self):
        va = 0x12_3456_7000
        total = (level_index(va, 0) << 30) | (level_index(va, 1) << 21) \
            | (level_index(va, 2) << 12)
        assert total == va & ~0xFFF


class TestMapping:
    def test_map_and_translate(self, mem, tables, mmu):
        region = mem.alloc(PAGE_SIZE, "buf")
        tables.insert_pages(0x10000, region.base, PAGE_SIZE, RW)
        mmu.flush_tlb()
        assert mmu.translate(0x10000, "r") == region.base
        assert mmu.translate(0x10010, "r") == region.base + 0x10

    def test_unmapped_faults(self, mmu):
        with pytest.raises(GpuPageFault):
            mmu.translate(0xDEAD_0000, "r")

    def test_permission_enforced(self, mem, tables, mmu):
        region = mem.alloc(PAGE_SIZE, "ro")
        tables.insert_pages(0x20000, region.base, PAGE_SIZE, PteFlags.READ)
        mmu.flush_tlb()
        mmu.translate(0x20000, "r")
        with pytest.raises(GpuPageFault):
            mmu.translate(0x20000, "w")

    def test_execute_permission(self, mem, tables, mmu):
        region = mem.alloc(PAGE_SIZE, "code")
        tables.insert_pages(0x30000, region.base, PAGE_SIZE, RX)
        mmu.flush_tlb()
        mmu.translate(0x30000, "x")
        with pytest.raises(GpuPageFault):
            mmu.translate(0x30000, "w")

    def test_double_map_rejected(self, mem, tables):
        region = mem.alloc(PAGE_SIZE, "x")
        tables.insert_pages(0x10000, region.base, PAGE_SIZE, RW)
        with pytest.raises(MmuMapError):
            tables.insert_pages(0x10000, region.base, PAGE_SIZE, RW)

    def test_unaligned_map_rejected(self, tables):
        with pytest.raises(MmuMapError):
            tables.insert_pages(0x10001, 0x5000, PAGE_SIZE, RW)

    def test_unmap(self, mem, tables, mmu):
        region = mem.alloc(PAGE_SIZE, "x")
        tables.insert_pages(0x10000, region.base, PAGE_SIZE, RW)
        mmu.flush_tlb()
        mmu.translate(0x10000, "r")
        assert tables.unmap_pages(0x10000, PAGE_SIZE) == 1
        mmu.flush_tlb()
        with pytest.raises(GpuPageFault):
            mmu.translate(0x10000, "r")

    def test_multi_page_mapping_contiguous(self, mem, tables, mmu):
        region = mem.alloc(8 * PAGE_SIZE, "big")
        tables.insert_pages(0x100000, region.base, 8 * PAGE_SIZE, RW)
        mmu.flush_tlb()
        base = mmu.translate_contiguous(0x100000, 8 * PAGE_SIZE, "r")
        assert base == region.base

    def test_non_contiguous_detected(self, mem, tables, mmu):
        a = mem.alloc(PAGE_SIZE, "a")
        mem.alloc(PAGE_SIZE, "gap")
        b = mem.alloc(PAGE_SIZE, "b")
        tables.insert_pages(0x100000, a.base, PAGE_SIZE, RW)
        tables.insert_pages(0x100000 + PAGE_SIZE, b.base, PAGE_SIZE, RW)
        mmu.flush_tlb()
        with pytest.raises(GpuPageFault):
            mmu.translate_contiguous(0x100000, 2 * PAGE_SIZE, "r")


class TestTlb:
    def test_stale_tlb_hides_new_mapping(self, mem, tables, mmu):
        """Mapping changes are invisible until the driver flushes — the
        behaviour that forces the LOCK/FLUSH/UNLOCK register dance."""
        region = mem.alloc(PAGE_SIZE, "x")
        tables.insert_pages(0x40000, region.base, PAGE_SIZE, RW)
        # Deliberately no flush: a prior failed walk is not cached, but a
        # previously-cached translation survives table changes.
        mmu.flush_tlb()
        assert mmu.translate(0x40000, "r") == region.base
        tables.unmap_pages(0x40000, PAGE_SIZE)
        # Still translates from the TLB.
        assert mmu.translate(0x40000, "r") == region.base
        mmu.flush_tlb()
        with pytest.raises(GpuPageFault):
            mmu.translate(0x40000, "r")

    def test_disabled_mmu_faults(self, mem):
        mmu = GpuMmu(mem, pte_format=1)
        with pytest.raises(GpuPageFault):
            mmu.translate(0x1000, "r")

    def test_fault_latches_status(self, mmu):
        with pytest.raises(GpuPageFault):
            mmu.translate(0xBEEF_0000, "w")
        assert mmu.fault_status != 0
        assert mmu.fault_address == 0xBEEF_0000


class TestWalkerInventory:
    def test_table_pages_enumerated(self, mem, tables):
        region = mem.alloc(PAGE_SIZE, "x")
        tables.insert_pages(0x10000, region.base, PAGE_SIZE, RW)
        walker = PageTableWalker(mem, 1)
        pfns = walker.table_pages(tables.root_pa)
        assert set(pfns) == tables.metastate_pfns()
        assert len(pfns) == 3  # root + L1 + L2 tables

    def test_mapped_pages_listing(self, mem, tables):
        r1 = mem.alloc(PAGE_SIZE, "a")
        r2 = mem.alloc(PAGE_SIZE, "b")
        tables.insert_pages(0x10000, r1.base, PAGE_SIZE, RW)
        tables.insert_pages(0x9000000, r2.base, PAGE_SIZE, RX)
        walker = PageTableWalker(mem, 1)
        mappings = walker.mapped_pages(tables.root_pa)
        assert (0x10000, r1.base, RW) in mappings
        assert (0x9000000, r2.base, RX) in mappings
