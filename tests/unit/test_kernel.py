"""Unit tests for the kernel environment, locks, and device trees."""

import pytest

from repro.hw.sku import HIKEY960_G71, find_sku
from repro.kernel.devicetree import (
    DeviceTreeNode,
    board_device_tree,
    gpu_device_node,
)
from repro.kernel.env import KernelEnv, KernelHooks, Platform, WaitTimeout
from repro.kernel.locks import LockError, Mutex, SpinLock
from repro.sim.clock import VirtualClock


class RecordingHooks(KernelHooks):
    def __init__(self):
        self.events = []

    def on_kernel_api(self, env, name):
        self.events.append(("api", name))

    def on_lock(self, env, lock_name):
        self.events.append(("lock", lock_name))

    def on_unlock(self, env, lock_name):
        self.events.append(("unlock", lock_name))

    def on_delay(self, env, seconds):
        self.events.append(("delay", seconds))

    def on_thread_switch(self, env, ctx):
        self.events.append(("switch", ctx.name))


class TestKernelEnv:
    def test_default_context_is_main(self):
        env = KernelEnv(VirtualClock())
        assert env.current.name == "main"

    def test_run_in_context_nests(self):
        env = KernelEnv(VirtualClock())
        names = []

        def handler():
            names.append(env.current.name)

        env.run_in_context("irq", handler)
        assert names == ["irq"]
        assert env.current.name == "main"

    def test_context_restored_on_exception(self):
        env = KernelEnv(VirtualClock())
        with pytest.raises(RuntimeError):
            env.run_in_context("irq", lambda: (_ for _ in ()).throw(
                RuntimeError("boom")))
        assert env.current.name == "main"

    def test_printk_formats_and_logs(self):
        env = KernelEnv(VirtualClock())
        msg = env.printk("value=%x", 0xAB)
        assert msg == "value=ab"
        assert env.log == ["value=ab"]

    def test_printk_fires_hook_before_formatting(self):
        env = KernelEnv(VirtualClock())
        hooks = RecordingHooks()
        env.hooks.append(hooks)
        env.printk("x=%d", 1)
        assert ("api", "printk") in hooks.events

    def test_kernel_api_counts(self):
        env = KernelEnv(VirtualClock())
        env.kernel_api("schedule")
        env.kernel_api("schedule")
        assert env.api_calls["schedule"] == 2

    def test_delay_advances_clock_and_notifies(self):
        clock = VirtualClock()
        env = KernelEnv(clock)
        hooks = RecordingHooks()
        env.hooks.append(hooks)
        env.delay(1e-3)
        assert clock.now >= 1e-3
        assert ("delay", 1e-3) in hooks.events

    def test_wait_event_immediate(self):
        env = KernelEnv(VirtualClock())
        env.platform = None
        env.wait_event(lambda: True)  # no platform needed

    def test_wait_event_timeout(self):
        class DeadPlatform(Platform):
            def wait_for_event(self, env, timeout_s):
                env.clock.advance(timeout_s)
                return True

        env = KernelEnv(VirtualClock(), platform=DeadPlatform())
        with pytest.raises(WaitTimeout):
            env.wait_event(lambda: False, timeout_s=0.1)

    def test_wait_event_no_more_events(self):
        class EmptyPlatform(Platform):
            def wait_for_event(self, env, timeout_s):
                return False

        env = KernelEnv(VirtualClock(), platform=EmptyPlatform())
        with pytest.raises(WaitTimeout):
            env.wait_event(lambda: False, timeout_s=1.0)

    def test_wait_event_satisfied_by_platform(self):
        state = {"done": False}

        class OneShotPlatform(Platform):
            def wait_for_event(self, env, timeout_s):
                state["done"] = True
                return True

        env = KernelEnv(VirtualClock(), platform=OneShotPlatform())
        env.wait_event(lambda: state["done"], timeout_s=1.0)


class TestLocks:
    def test_lock_unlock(self):
        env = KernelEnv(VirtualClock())
        m = Mutex(env, "m")
        m.lock()
        assert m.held
        m.unlock()
        assert not m.held

    def test_context_manager(self):
        env = KernelEnv(VirtualClock())
        m = Mutex(env, "m")
        with m:
            assert m.held
        assert not m.held

    def test_double_lock_rejected(self):
        env = KernelEnv(VirtualClock())
        m = Mutex(env, "m")
        m.lock()
        with pytest.raises(LockError):
            m.lock()

    def test_unlock_unheld_rejected(self):
        env = KernelEnv(VirtualClock())
        with pytest.raises(LockError):
            Mutex(env, "m").unlock()

    def test_foreign_unlock_rejected(self):
        env = KernelEnv(VirtualClock())
        m = Mutex(env, "m")
        m.lock()
        with pytest.raises(LockError):
            env.run_in_context("irq", m.unlock)

    def test_unlock_hook_fires_before_release(self):
        """§4.1: the shim commits while the lock is still held."""
        env = KernelEnv(VirtualClock())
        m = Mutex(env, "m")
        held_at_hook = []

        class Check(KernelHooks):
            def on_unlock(self, env_, name):
                held_at_hook.append(m.held)

        env.hooks.append(Check())
        with m:
            pass
        assert held_at_hook == [True]

    def test_spinlock_is_a_lock(self):
        env = KernelEnv(VirtualClock())
        s = SpinLock(env, "hw")
        with s:
            assert s.held


class TestDeviceTree:
    def test_gpu_node_compatible(self):
        node = gpu_device_node(HIKEY960_G71)
        assert node.compatible == "arm,mali-bifrost"
        assert node.properties["gpu-id"] == HIKEY960_G71.gpu_id

    def test_midgard_compatible(self):
        node = gpu_device_node(find_sku("Mali-T880 MP4"))
        assert node.compatible == "arm,mali-midgard"

    def test_board_tree_structure(self):
        tree = board_device_tree(HIKEY960_G71)
        assert tree.find_compatible("arm,mali-bifrost") is not None
        assert tree.find("cpus") is not None

    def test_serialization_roundtrip(self):
        tree = board_device_tree(HIKEY960_G71)
        doc = tree.to_dict()
        rebuilt = DeviceTreeNode.from_dict(doc)
        assert rebuilt.find_compatible("arm,mali-bifrost").properties == \
            tree.find_compatible("arm,mali-bifrost").properties

    def test_find_missing_returns_none(self):
        tree = board_device_tree(HIKEY960_G71)
        assert tree.find("npu@0") is None
        assert tree.find_compatible("nvidia,gv100") is None
