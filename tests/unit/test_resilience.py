"""Unit tests for repro.resilience: fault plans, the reliable channel,
checkpoints, and the GPU hold primitive they rely on."""

from __future__ import annotations

import pytest

from repro.hw.gpu import MaliGpu
from repro.hw.memory import PhysicalMemory
from repro.hw.sku import HIKEY960_G71
from repro.resilience.channel import (
    RECONNECT_COST_S,
    RETRY_LABEL,
    ChannelDisconnected,
    ReliableChannel,
)
from repro.resilience.faults import (
    DisconnectWindow,
    FaultInjector,
    FaultPlan,
    PRESETS,
)
from repro.sim.clock import VirtualClock
from repro.sim.network import Link, Message, NetworkStats, WIFI


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(name="x", seed=3, loss_p=0.2, dup_p=0.1,
                      reorder_p=0.1, jitter_p=0.1, jitter_s=0.01)
        b = FaultPlan(name="x", seed=3, loss_p=0.2, dup_p=0.1,
                      reorder_p=0.1, jitter_p=0.1, jitter_s=0.01)
        assert [a.fate(i) for i in range(200)] == \
               [b.fate(i) for i in range(200)]

    def test_different_seed_differs(self):
        a = FaultPlan(name="x", seed=3, loss_p=0.2)
        b = FaultPlan(name="x", seed=4, loss_p=0.2)
        assert [a.fate(i) for i in range(200)] != \
               [b.fate(i) for i in range(200)]

    def test_fate_is_a_pure_function_of_index(self):
        plan = FaultPlan(name="x", seed=9, loss_p=0.3, dup_p=0.2)
        assert plan.fate(17) == plan.fate(17)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(name="bad", seed=0, loss_p=1.5)
        with pytest.raises(ValueError):
            FaultPlan(name="bad", seed=0, dup_p=-0.1)

    def test_window_containment(self):
        w = DisconnectWindow(start_s=2.0, duration_s=1.5)
        assert w.end_s == 3.5
        assert w.contains(2.0) and w.contains(3.4)
        assert not w.contains(3.5) and not w.contains(1.9)

    def test_spec_parse_roundtrip(self):
        for name, preset in PRESETS.items():
            back = FaultPlan.parse(preset.spec(), name=name,
                                   seed=preset.seed)
            assert back == preset, name

    def test_parse_custom_spec(self):
        plan = FaultPlan.parse("loss=0.05,jitter=0.01@0.03,window=1+2",
                               name="custom", seed=5)
        assert plan.loss_p == 0.05
        assert plan.jitter_p == 0.01 and plan.jitter_s == 0.03
        assert plan.windows == (DisconnectWindow(1.0, 2.0),)
        assert plan.seed == 5

    def test_parse_preset_reseeds(self):
        plan = FaultPlan.parse("loss-only", seed=42)
        assert plan.seed == 42
        assert plan.loss_p == PRESETS["loss-only"].loss_p

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("loss=0.01,frobnicate=1")

    def test_injector_counter_survives_reconstruction(self):
        """Resuming a session reuses the injector: transmission N after a
        reconnect must see the same fate as transmission N of an
        uninterrupted run."""
        plan = FaultPlan(name="x", seed=1, loss_p=0.3)
        straight = FaultInjector(plan)
        fates = [straight.next_fate() for i in range(50)]
        inj = FaultInjector(plan)
        got = [inj.next_fate() for _ in range(20)]
        # ... session disconnects and resumes; injector object survives.
        got += [inj.next_fate() for _ in range(30)]
        assert got == fates


def make_channel(plan, profile=WIFI, **kwargs):
    clock = VirtualClock()
    link = Link(profile, clock)
    held = []
    chan = ReliableChannel(link, FaultInjector(plan),
                           hold=held.append, **kwargs)
    return chan, clock, held


class TestReliableChannel:
    def test_lossless_plan_is_transparent(self):
        plan = FaultPlan(name="clean", seed=0)
        chan, clock, held = make_channel(plan)
        baseline = Link(WIFI, VirtualClock())
        req, rsp = Message("commit", 64), Message("ack", 16)
        out = chan.rpc(req, rsp, apply=lambda: "applied")
        baseline.round_trip(req, rsp)
        assert out == "applied"
        assert clock.now == pytest.approx(baseline.clock.now)
        assert held == []
        assert chan.stats.retries == 0 and chan.stats.timeouts == 0

    def test_lost_message_retries_and_holds(self):
        plan = FaultPlan(name="lossy", seed=0, loss_p=1.0)
        chan, clock, held = make_channel(plan, max_retries=3)
        with pytest.raises(ChannelDisconnected) as err:
            chan.rpc(Message("commit", 64), Message("ack", 16))
        # Every retry charged wall time, all of it held on the GPU.
        assert chan.stats.retries == 3
        assert chan.stats.timeouts == 4  # 3 retries + the final give-up
        assert sum(held) == pytest.approx(clock.now)
        assert err.value.resume_at_s == pytest.approx(
            clock.now + RECONNECT_COST_S)
        assert clock.timeline.by_label()[RETRY_LABEL] > 0

    def test_duplicate_applies_exactly_once(self):
        plan = FaultPlan(name="dupey", seed=0, dup_p=1.0)
        chan, clock, held = make_channel(plan)
        applied = []
        chan.rpc(Message("commit", 64), Message("ack", 16),
                 apply=lambda: applied.append(1) or len(applied))
        assert applied == [1]  # delivered twice, applied once
        assert chan.cstats.duplicates_delivered == 1
        assert chan.stats.redundant_bytes > 0

    def test_duplicate_returns_cached_reply(self):
        plan = FaultPlan(name="dupey", seed=0, dup_p=1.0)
        chan, _, _ = make_channel(plan)
        calls = []
        out = chan.rpc(Message("commit", 64), Message("ack", 16),
                       apply=lambda: calls.append(1) or "reply")
        assert out == "reply" and calls == [1]

    def test_backoff_is_deterministic(self):
        plan = FaultPlan(name="lossy", seed=7, loss_p=1.0)
        waits = []
        for _ in range(2):
            chan, clock, _ = make_channel(plan, max_retries=4)
            with pytest.raises(ChannelDisconnected):
                chan.rpc(Message("commit", 64), Message("ack", 16))
            waits.append(clock.now)
        assert waits[0] == waits[1]

    def test_disconnect_window_raises_until_end(self):
        plan = FaultPlan(name="win", seed=0,
                         windows=(DisconnectWindow(0.0, 2.0),))
        chan, clock, _ = make_channel(plan)
        with pytest.raises(ChannelDisconnected) as err:
            chan.rpc(Message("commit", 64), Message("ack", 16))
        assert err.value.resume_at_s == pytest.approx(2.0)
        assert chan.cstats.disconnects == 1

    def test_jitter_is_held_not_observed(self):
        plan = FaultPlan(name="jit", seed=0, jitter_p=1.0, jitter_s=0.05)
        chan, clock, held = make_channel(plan)
        baseline = Link(WIFI, VirtualClock())
        baseline.round_trip(Message("commit", 64), Message("ack", 16))
        chan.rpc(Message("commit", 64), Message("ack", 16))
        assert sum(held) == pytest.approx(0.05)
        assert clock.now == pytest.approx(baseline.clock.now + 0.05)


class TestNetworkStatsMerge:
    def test_merge_sums_resilience_counters(self):
        a = NetworkStats(retries=2, timeouts=3, redundant_bytes=100,
                         time_blocked_s=1.0)
        b = NetworkStats(retries=1, timeouts=1, redundant_bytes=50,
                         time_blocked_s=0.5)
        m = a.merged_with(b)
        assert (m.retries, m.timeouts, m.redundant_bytes) == (3, 4, 150)
        assert m.time_blocked_s == pytest.approx(1.5)


class TestShiftEvents:
    def make_gpu(self):
        clock = VirtualClock()
        return MaliGpu(HIKEY960_G71, PhysicalMemory(size=8 << 20),
                       clock), clock

    def test_shifts_pending_events(self):
        gpu, clock = self.make_gpu()
        gpu._schedule(0.010, lambda: None)
        gpu._schedule(0.020, lambda: None)
        before = sorted(when for when, _, _ in gpu._events)
        gpu.shift_events(0.5)
        after = sorted(when for when, _, _ in gpu._events)
        assert after == pytest.approx([t + 0.5 for t in before])

    def test_zero_or_negative_shift_is_a_noop(self):
        gpu, _ = self.make_gpu()
        gpu._schedule(0.010, lambda: None)
        before = list(gpu._events)
        gpu.shift_events(0.0)
        gpu.shift_events(-1.0)
        assert gpu._events == before

    def test_heap_order_preserved(self):
        gpu, _ = self.make_gpu()
        for delay in (0.030, 0.010, 0.020):
            gpu._schedule(delay, lambda: None)
        gpu.shift_events(0.25)
        assert gpu.next_event_time() == pytest.approx(0.26)
