"""Unit tests for repro.obs — tracer, exporters, stats protocol, registry.

Four layers: (1) the Tracer's stack discipline (nesting depth, parent
links, exception unwinding, ring-buffer eviction); (2) Chrome-trace /
JSONL export, validated against the checked-in
``benchmarks/trace_schema.json``; (3) the StatsProtocol contract —
``as_dict``/``from_dict`` round-trip and ``merge`` semantics for all
eight shipped ``*Stats`` classes; (4) the MetricsRegistry aggregator.
"""

import json
import os

import pytest

from repro.core.memsync import MemSyncStats
from repro.core.recorder import RecordStats
from repro.core.replayer import ReplayStats
from repro.core.speculation import SpeculationStats
from repro.fleet.pool import PoolStats
from repro.fleet.registry import RegistryStats
from repro.obs import (
    MetricsRegistry,
    StatsProtocol,
    Tracer,
    to_chrome_trace,
    to_jsonl,
    trace_summary,
    validate_schema,
    write_chrome_trace,
)
from repro.obs.metrics import STATS_SCHEMA_VERSION
from repro.resilience.channel import ChannelStats
from repro.sim.network import NetworkStats

SCHEMA_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "trace_schema.json"
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def advance(self, dt):
        self.now += dt


class TestTracerSpans:
    def test_nesting_records_depth_and_parent(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        tracer.begin("outer", cat="a")
        clock.advance(1.0)
        tracer.begin("inner", cat="b")
        clock.advance(0.5)
        tracer.end()  # inner
        clock.advance(0.5)
        tracer.end()  # outer
        inner, outer = tracer.spans()  # completion order: inner first
        assert (inner.name, inner.depth, inner.parent) == ("inner", 1, "outer")
        assert (outer.name, outer.depth, outer.parent) == ("outer", 0, "")
        assert inner.ts == pytest.approx(1.0)
        assert inner.dur == pytest.approx(0.5)
        assert outer.dur == pytest.approx(2.0)
        # containment: the child's interval sits inside the parent's
        assert outer.ts <= inner.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur

    def test_span_contextmanager_closes_on_exception(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("phase"):
                raise RuntimeError("boom")
        assert tracer.depth() == 0
        assert [s.name for s in tracer.spans()] == ["phase"]

    def test_end_merges_close_time_args(self):
        tracer = Tracer(clock=FakeClock())
        tracer.begin("run", args={"seed": 3})
        record = tracer.end(args={"entries": 17})
        assert record.args == {"seed": 3, "entries": 17}

    def test_end_on_empty_stack_is_harmless(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.end() is None
        assert len(tracer) == 0

    def test_unwind_to_closes_aborted_phases(self):
        tracer = Tracer(clock=FakeClock())
        tracer.begin("attempt")
        base = tracer.depth()
        tracer.begin("window")
        tracer.begin("commit")
        # a misprediction aborts mid-commit; recovery unwinds to the
        # attempt level and the attempt span itself still closes cleanly
        assert tracer.unwind_to(base) == 2
        assert tracer.depth() == base
        tracer.end()
        assert [s.name for s in tracer.spans()] == [
            "commit", "window", "attempt"]

    def test_finish_open_closes_every_stack(self):
        tracer = Tracer(clock=FakeClock())
        tracer.begin("a", tid="t1")
        tracer.begin("b", tid="t2")
        tracer.set_clock(FakeClock(), domain="replay")
        tracer.begin("c", tid="t1")
        assert tracer.finish_open() == 3
        assert tracer.depth(tid="t1") == 0
        assert {s.name for s in tracer.spans()} == {"a", "b", "c"}

    def test_tids_have_independent_stacks(self):
        tracer = Tracer(clock=FakeClock())
        tracer.begin("a", tid="t1")
        tracer.begin("b", tid="t2")
        b = tracer.end(tid="t2")
        assert b.name == "b"
        assert b.depth == 0  # not nested under t1's open span
        tracer.end(tid="t1")

    def test_domain_switch_keeps_timelines_apart(self):
        record_clock = FakeClock(5.0)
        replay_clock = FakeClock(0.0)
        tracer = Tracer(clock=record_clock, domain="record")
        with tracer.span("record-phase"):
            record_clock.advance(1.0)
        tracer.set_clock(replay_clock, domain="replay")
        with tracer.span("replay-phase"):
            replay_clock.advance(2.0)
        rec, rep = tracer.spans()
        assert (rec.pid, rep.pid) == ("record", "replay")
        assert rec.ts == pytest.approx(5.0)
        assert rep.ts == pytest.approx(0.0)

    def test_add_span_is_retrospective(self):
        tracer = Tracer(clock=FakeClock(), domain="fleet")
        span = tracer.add_span("boot", "fleet", 2.0, 3.5, tid="req-1",
                               depth=1, args={"warm_vm": True})
        assert span.ts == pytest.approx(2.0)
        assert span.dur == pytest.approx(1.5)
        assert (span.tid, span.depth) == ("req-1", 1)

    def test_events_and_by_category(self):
        clock = FakeClock(1.25)
        tracer = Tracer(clock=clock)
        tracer.event("misprediction", cat="speculation", args={"reg": 4})
        tracer.event("retry", cat="resilience")
        assert len(tracer.events()) == 2
        spec = tracer.by_category("speculation")
        assert [e.name for e in spec] == ["misprediction"]
        assert spec[0].ts == pytest.approx(1.25)

    def test_clear_resets_everything(self):
        tracer = Tracer(clock=FakeClock(), capacity=1)
        tracer.event("a")
        tracer.event("b")  # evicts "a"
        assert tracer.dropped == 1
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0


class TestRingBuffer:
    def test_eviction_keeps_newest_and_counts_dropped(self):
        tracer = Tracer(clock=FakeClock(), capacity=3)
        for i in range(10):
            tracer.event(f"e{i}")
        assert len(tracer) == 3
        assert [r.name for r in tracer.records()] == ["e7", "e8", "e9"]
        assert tracer.dropped == 7

    def test_unbounded_by_default(self):
        tracer = Tracer(clock=FakeClock())
        for i in range(100):
            tracer.event(f"e{i}")
        assert len(tracer) == 100
        assert tracer.dropped == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


def build_trace():
    """A small two-domain trace exercising spans, events, and nesting."""
    clock = FakeClock()
    tracer = Tracer(clock=clock, domain="record")
    tracer.begin("record", cat="session")
    tracer.begin("commit", cat="deferral", tid="main", args={"regs": 3})
    clock.advance(0.001)
    tracer.end()
    tracer.event("misprediction", cat="speculation", args={"offset": 52})
    clock.advance(0.002)
    tracer.end()
    tracer.set_clock(FakeClock(), domain="replay")
    with tracer.span("replay-run", cat="session", tid="run-0"):
        pass
    return tracer


class TestChromeExport:
    @pytest.fixture(scope="class")
    def schema(self):
        with open(SCHEMA_PATH) as fh:
            return json.load(fh)

    def test_document_validates_against_checked_in_schema(self, schema):
        doc = to_chrome_trace(build_trace())
        assert validate_schema(doc, schema) == []

    def test_metadata_rows_name_processes_and_threads(self):
        doc = to_chrome_trace(build_trace())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        proc_names = {e["args"]["name"] for e in meta
                      if e["name"] == "process_name"}
        assert proc_names == {"record", "replay"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert thread_names == {"main", "run-0"}

    def test_pids_tids_are_integers_and_stable(self):
        doc = to_chrome_trace(build_trace())
        for event in doc["traceEvents"]:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        # both record-domain spans share a pid distinct from replay's
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in spans}
        assert by_name["record"]["pid"] == by_name["commit"]["pid"]
        assert by_name["record"]["pid"] != by_name["replay-run"]["pid"]

    def test_span_units_are_virtual_microseconds(self):
        doc = to_chrome_trace(build_trace())
        commit = next(e for e in doc["traceEvents"] if e["name"] == "commit")
        assert commit["dur"] == pytest.approx(1000.0)  # 0.001 s
        assert commit["args"]["depth"] == 1
        assert commit["args"]["parent"] == "record"
        assert commit["args"]["regs"] == 3
        assert "wall_ms" in commit["args"]

    def test_instants_carry_scope(self):
        doc = to_chrome_trace(build_trace())
        instant = next(e for e in doc["traceEvents"] if e["ph"] == "i")
        assert instant["name"] == "misprediction"
        assert instant["s"] == "t"
        assert instant["args"]["offset"] == 52

    def test_dropped_counter_exported(self):
        tracer = Tracer(clock=FakeClock(), capacity=1)
        tracer.event("a")
        tracer.event("b")
        doc = to_chrome_trace(tracer)
        assert doc["otherData"]["dropped_records"] == 1

    def test_write_chrome_trace_roundtrip(self, tmp_path, schema):
        out = str(tmp_path / "trace.json")
        assert write_chrome_trace(build_trace(), out) == out
        with open(out) as fh:
            doc = json.load(fh)
        assert validate_schema(doc, schema) == []

    def test_jsonl_lines_parse(self):
        tracer = build_trace()
        lines = to_jsonl(tracer).splitlines()
        rows = [json.loads(line) for line in lines]
        assert len(rows) == len(tracer.records())
        assert {row["type"] for row in rows} == {"span", "event"}

    def test_trace_summary_counts(self):
        summary = trace_summary(build_trace())
        assert summary["spans"] == 3
        assert summary["events"] == 1
        assert summary["dropped"] == 0
        assert summary["categories"]["deferral"] == 1
        assert summary["categories"]["speculation"] == 1


class TestValidateSchema:
    def test_type_mismatch(self):
        assert validate_schema(3, {"type": "string"}) != []

    def test_bool_is_not_an_integer(self):
        assert validate_schema(True, {"type": "integer"}) != []
        assert validate_schema(1, {"type": "integer"}) == []

    def test_missing_required_key(self):
        errors = validate_schema(
            {}, {"type": "object", "required": ["traceEvents"]})
        assert any("traceEvents" in e for e in errors)

    def test_enum_violation(self):
        assert validate_schema("Z", {"enum": ["X", "i", "M"]}) != []

    def test_minimum_violation(self):
        assert validate_schema(-1, {"type": "number", "minimum": 0}) != []

    def test_items_recurse_with_index_in_path(self):
        errors = validate_schema(
            [1, "two"], {"type": "array", "items": {"type": "integer"}})
        assert len(errors) == 1
        assert "[1]" in errors[0]


# ---------------------------------------------------------------------------
# StatsProtocol round-trip for every shipped stats class


def _record_stats():
    return RecordStats(
        workload="mnist", recorder="OursMDS", link="wifi", seed=7,
        blocking_rtts=12, gpu_jobs=3,
        commits=SpeculationStats(commits_total=9, commits_speculated=6,
                                 commits_by_category={"JOB": 9}),
        memsync=MemSyncStats(pushes=2, pages_pushed=40),
        network_bytes=1234, timeline_by_label={"conv1": 0.5})


STATS_CASES = [
    ("repro.replay", lambda: ReplayStats(entries=100, reg_writes=60,
                                         polls=5)),
    ("repro.memsync", lambda: MemSyncStats(pushes=3, pulls=1,
                                           raw_push_bytes=4096)),
    ("repro.speculation", lambda: SpeculationStats(
        commits_total=4, mispredictions=1,
        commits_by_category={"JOB": 3, "MMU": 1})),
    ("repro.network", lambda: NetworkStats(blocking_round_trips=8,
                                           bytes_to_cloud=2048,
                                           time_blocked_s=0.25)),
    ("repro.channel", lambda: ChannelStats(rpcs=20, disconnects=2)),
    ("repro.pool", lambda: PoolStats(warm_grants=5, cold_grants=2,
                                     lease_vm_seconds=12.5)),
    ("repro.registry", lambda: RegistryStats(hits=9, misses=1)),
    ("repro.record", _record_stats),
]


class TestStatsProtocol:
    @pytest.mark.parametrize(
        "schema,factory", STATS_CASES, ids=[c[0] for c in STATS_CASES])
    def test_roundtrip(self, schema, factory):
        stats = factory()
        assert isinstance(stats, StatsProtocol)
        payload = stats.as_dict()
        assert payload["schema"] == f"{schema}/{STATS_SCHEMA_VERSION}"
        # plain-JSON safe
        decoded = type(stats).from_dict(json.loads(json.dumps(payload)))
        assert decoded == stats

    @pytest.mark.parametrize(
        "schema,factory", STATS_CASES, ids=[c[0] for c in STATS_CASES])
    def test_merge_doubles_numeric_fields(self, schema, factory):
        import dataclasses

        merged = factory().merge(factory())
        one = factory()
        for f in dataclasses.fields(one):
            if f.name in type(one)._IDENTITY:
                continue
            value = getattr(one, f.name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            assert getattr(merged, f.name) == 2 * value, f.name

    def test_schema_stamp_rejected_on_mismatch(self):
        payload = ReplayStats(entries=1).as_dict()
        with pytest.raises(ValueError, match="schema mismatch"):
            MemSyncStats.from_dict(payload)

    def test_merge_recurses_into_nested_stats(self):
        merged = _record_stats().merge(_record_stats())
        assert merged.commits.commits_total == 18
        assert merged.commits.commits_by_category == {"JOB": 18}
        assert merged.memsync.pages_pushed == 80
        assert merged.seed == 7  # identity field: kept, not summed
        assert merged.timeline_by_label == {"conv1": 1.0}

    def test_merge_none_is_identity(self):
        stats = ReplayStats(entries=5)
        assert stats.merge(None) is stats
        assert stats.entries == 5

    def test_nested_stats_roundtrip_types(self):
        decoded = RecordStats.from_dict(_record_stats().as_dict())
        assert isinstance(decoded.commits, SpeculationStats)
        assert isinstance(decoded.memsync, MemSyncStats)


class TestMetricsRegistry:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert registry.counter("x") is counter

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(4)
        registry.gauge("g").set(2)
        assert registry.gauge("g").value == 2.0

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] == pytest.approx(3.0)

    def test_histogram_truncation_keeps_moments_exact(self):
        hist = MetricsRegistry().histogram("h", max_samples=4)
        for v in range(10):
            hist.observe(float(v))
        assert hist.count == 10
        assert hist.total == pytest.approx(sum(range(10)))
        assert len(hist._samples) == 4  # newest window

    def test_ingest_flattens_stats(self):
        registry = MetricsRegistry()
        registry.ingest(ReplayStats(entries=100, polls=5))
        payload = registry.as_dict()
        assert payload["counters"]["repro.replay.entries"] == 100.0
        assert payload["counters"]["repro.replay.polls"] == 5.0

    def test_ingest_recurses_nested_stats_and_dicts(self):
        registry = MetricsRegistry()
        registry.ingest(_record_stats())
        counters = registry.as_dict()["counters"]
        assert counters["repro.record.commits.commits_total"] == 9.0
        assert counters["repro.record.commits.commits_by_category.JOB"] == 9.0
        assert counters["repro.record.memsync.pages_pushed"] == 40.0

    def test_merge_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.histogram("h").observe(5.0)
        a.merge(b)
        assert a.counter("c").value == 3.0
        assert a.histogram("h").count == 1
