"""Unit tests for the replayer's divergence detection and entry engine."""

import pytest

from repro.core.recording import IrqEntry, PollEntry, RegRead, RegWrite
from repro.core.replayer import (
    ReplayDivergence,
    replay_entries,
)
from repro.hw import regs
from repro.hw.gpu import MaliGpu
from repro.hw.memory import PhysicalMemory
from repro.hw.regs import GpuCommand, GpuIrq
from repro.hw.sku import HIKEY960_G71
from repro.sim.clock import VirtualClock


@pytest.fixture
def gpu_mem_clock():
    clock = VirtualClock()
    mem = PhysicalMemory(size=8 << 20)
    gpu = MaliGpu(HIKEY960_G71, mem, clock)
    return gpu, mem, clock


class TestEntryEngine:
    def test_write_applied(self, gpu_mem_clock):
        gpu, mem, clock = gpu_mem_clock
        replay_entries(gpu, mem, clock,
                       [RegWrite(offset=regs.GPU_IRQ_MASK, value=0x55)])
        assert gpu.read_reg(regs.GPU_IRQ_MASK) == 0x55

    def test_matching_read_passes(self, gpu_mem_clock):
        gpu, mem, clock = gpu_mem_clock
        stats = replay_entries(gpu, mem, clock, [
            RegRead(offset=regs.GPU_ID, value=HIKEY960_G71.gpu_id)])
        assert stats.reg_reads == 1
        assert stats.read_retries == 0

    def test_read_waits_for_transition(self, gpu_mem_clock):
        """A recorded post-transition value is matched by advancing
        virtual time through the GPU's pending events."""
        gpu, mem, clock = gpu_mem_clock
        mask = 0x3
        entries = [
            RegWrite(offset=regs.L2_PWRON_LO, value=mask),
            RegRead(offset=regs.L2_READY_LO, value=mask),  # needs waiting
        ]
        stats = replay_entries(gpu, mem, clock, entries)
        assert stats.read_retries >= 1
        assert gpu.read_reg(regs.L2_READY_LO) == mask

    def test_wrong_read_value_diverges(self, gpu_mem_clock):
        gpu, mem, clock = gpu_mem_clock
        with pytest.raises(ReplayDivergence):
            replay_entries(gpu, mem, clock, [
                RegRead(offset=regs.GPU_ID, value=0xBAD)])

    def test_non_strict_tolerates_divergence(self, gpu_mem_clock):
        gpu, mem, clock = gpu_mem_clock
        stats = replay_entries(gpu, mem, clock, [
            RegRead(offset=regs.GPU_ID, value=0xBAD)], strict=False)
        assert stats.reg_reads == 1

    def test_poll_replays(self, gpu_mem_clock):
        gpu, mem, clock = gpu_mem_clock
        entries = [
            RegWrite(offset=regs.GPU_COMMAND,
                     value=GpuCommand.CLEAN_INV_CACHES),
            PollEntry(offset=regs.GPU_IRQ_RAWSTAT, condition="bits_set",
                      operand=GpuIrq.CLEAN_CACHES_COMPLETED,
                      value=GpuIrq.CLEAN_CACHES_COMPLETED, iterations=3),
            RegWrite(offset=regs.GPU_IRQ_CLEAR,
                     value=GpuIrq.CLEAN_CACHES_COMPLETED),
        ]
        stats = replay_entries(gpu, mem, clock, entries)
        assert stats.polls == 1
        assert not gpu.read_reg(regs.GPU_IRQ_RAWSTAT) \
            & GpuIrq.CLEAN_CACHES_COMPLETED

    def test_poll_that_cannot_satisfy_diverges(self, gpu_mem_clock):
        gpu, mem, clock = gpu_mem_clock
        with pytest.raises(ReplayDivergence):
            replay_entries(gpu, mem, clock, [
                PollEntry(offset=regs.L2_READY_LO, condition="bits_set",
                          operand=0x3, value=0x3, iterations=2)])

    def test_irq_wait(self, gpu_mem_clock):
        gpu, mem, clock = gpu_mem_clock
        entries = [
            RegWrite(offset=regs.GPU_IRQ_MASK,
                     value=GpuIrq.POWER_CHANGED_ALL),
            RegWrite(offset=regs.L2_PWRON_LO, value=0x3),
            IrqEntry(line="gpu"),
        ]
        stats = replay_entries(gpu, mem, clock, entries)
        assert stats.irq_waits == 1

    def test_missing_irq_diverges(self, gpu_mem_clock):
        gpu, mem, clock = gpu_mem_clock
        with pytest.raises(ReplayDivergence):
            replay_entries(gpu, mem, clock, [IrqEntry(line="job")])

    def test_memwrite_skips_protected_pages(self, gpu_mem_clock):
        gpu, mem, clock = gpu_mem_clock
        region = mem.alloc(8192, "data")
        pfn_a = region.base >> 12
        pfn_b = pfn_a + 1
        mem.write(region.base, b"\xAA" * 8)  # the injected data
        from repro.core.recording import MemWrite
        entry = MemWrite(pages=((pfn_a, bytes(4096)),
                                (pfn_b, b"\x11" * 4096)))
        stats = replay_entries(gpu, mem, clock, [entry],
                               skip_pfns={pfn_a})
        assert stats.pages_skipped == 1
        assert stats.pages_loaded == 1
        assert mem.read(region.base, 8) == b"\xAA" * 8  # survived
        assert mem.page_bytes(pfn_b) == b"\x11" * 4096

    def test_replay_advances_virtual_time(self, gpu_mem_clock):
        gpu, mem, clock = gpu_mem_clock
        t0 = clock.now
        replay_entries(gpu, mem, clock,
                       [RegWrite(offset=regs.GPU_IRQ_MASK, value=1)] * 100)
        assert clock.now > t0
