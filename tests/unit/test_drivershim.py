"""Unit tests for DriverShim's commit machinery, exercised directly
against a real GPU model + GPUShim but with hand-built driver actions."""

import pytest

from repro.core.drivershim import (
    DriverShim,
    FastForwardFeed,
    FeedMismatch,
    ShimModes,
)
from repro.core.gpushim import GpuShim
from repro.core.memsync import MemorySynchronizer, SyncPolicy
from repro.core.recording import PollEntry, RegRead, RegWrite
from repro.core.speculation import CommitHistory, MispredictionDetected
from repro.core.symbolic import SymVal
from repro.driver.bus import PollCondition, PollSpec
from repro.hw import regs
from repro.hw.gpu import MaliGpu
from repro.hw.memory import PhysicalMemory
from repro.hw.sku import HIKEY960_G71
from repro.kernel.env import KernelEnv
from repro.kernel.locks import Mutex
from repro.sim.clock import VirtualClock
from repro.sim.network import Link, WIFI
from repro.tee.optee import OpTeeOS


class Harness:
    """A DriverShim wired to a real client GPU, no driver on top."""

    def __init__(self, defer=True, speculate=False, offload=False,
                 history=None):
        self.clock = VirtualClock()
        self.client_mem = PhysicalMemory(size=8 << 20)
        self.cloud_mem = PhysicalMemory(size=8 << 20)
        self.optee = OpTeeOS()
        self.gpu = MaliGpu(HIKEY960_G71, self.client_mem, self.clock)
        self.gpushim = GpuShim(self.optee, self.gpu, self.clock)
        self.gpushim.begin_session()
        self.link = Link(WIFI, self.clock)
        self.memsync = MemorySynchronizer(self.cloud_mem, self.client_mem,
                                          SyncPolicy.META_ONLY)
        self.shim = DriverShim(
            self.link, self.gpushim, self.memsync,
            ShimModes(defer=defer, speculate=speculate,
                      offload_polls=offload),
            history=history)
        self.env = KernelEnv(self.clock)
        self.shim.attach(self.env)

    def enter_hot(self, category="power"):
        self.shim.on_hot_enter(self.env, "fn", category)

    def exit_hot(self):
        self.shim.on_hot_exit(self.env, "fn", "power")


class TestSynchronousMode:
    def test_each_access_is_one_rtt(self):
        h = Harness(defer=False)
        before = h.link.stats.blocking_round_trips
        h.shim.read32(regs.GPU_ID)
        h.shim.write32(regs.GPU_IRQ_MASK, 0xFF)
        assert h.link.stats.blocking_round_trips == before + 2

    def test_sync_read_returns_concrete(self):
        h = Harness(defer=False)
        assert h.shim.read32(regs.GPU_ID) == HIKEY960_G71.gpu_id

    def test_log_records_everything(self):
        h = Harness(defer=False)
        h.shim.read32(regs.GPU_ID)
        h.shim.write32(regs.GPU_IRQ_MASK, 0x1)
        log = h.gpushim.log
        assert isinstance(log[0], RegRead)
        assert isinstance(log[1], RegWrite)
        assert log[1].value == 0x1


class TestDeferral:
    def test_reads_in_hot_code_are_symbolic(self):
        h = Harness(defer=True)
        h.enter_hot()
        value = h.shim.read32(regs.GPU_ID)
        assert isinstance(value, SymVal)
        assert not value.resolved

    def test_cold_code_stays_synchronous(self):
        h = Harness(defer=True)
        value = h.shim.read32(regs.GPU_ID)  # not inside a hot function
        assert value == HIKEY960_G71.gpu_id

    def test_no_network_until_forced(self):
        h = Harness(defer=True)
        h.enter_hot()
        before = h.link.stats.blocking_round_trips
        h.shim.read32(regs.GPU_ID)
        h.shim.read32(regs.SHADER_PRESENT_LO)
        h.shim.write32(regs.GPU_IRQ_MASK, 0x100)
        assert h.link.stats.blocking_round_trips == before

    def test_force_commits_whole_batch(self):
        h = Harness(defer=True)
        h.enter_hot()
        a = h.shim.read32(regs.GPU_ID)
        b = h.shim.read32(regs.SHADER_PRESENT_LO)
        before = h.link.stats.blocking_round_trips
        assert int(a) == HIKEY960_G71.gpu_id  # control dependency
        assert h.link.stats.blocking_round_trips == before + 1
        assert b.resolved  # the whole batch resolved in one RTT
        assert int(b) == HIKEY960_G71.shader_present_mask

    def test_symbolic_write_evaluated_on_client(self):
        """Listing 1(a): WRITE(reg, S | bits) ships as an expression."""
        h = Harness(defer=True)
        h.enter_hot()
        current = h.shim.read32(regs.GPU_IRQ_MASK)  # reads 0
        h.shim.write32(regs.GPU_IRQ_MASK, current | 0x300)
        h.exit_hot()  # hot exit commits
        assert h.gpu.read_reg(regs.GPU_IRQ_MASK) == 0x300

    def test_hot_exit_flushes(self):
        h = Harness(defer=True)
        h.enter_hot()
        h.shim.write32(regs.GPU_IRQ_MASK, 0x7)
        assert h.gpu.read_reg(regs.GPU_IRQ_MASK) == 0
        h.exit_hot()
        assert h.gpu.read_reg(regs.GPU_IRQ_MASK) == 0x7

    def test_unlock_flushes(self):
        h = Harness(defer=True)
        lock = Mutex(h.env, "pm")
        h.enter_hot()
        lock.lock()
        h.shim.write32(regs.GPU_IRQ_MASK, 0xF)
        lock.unlock()  # release consistency commit (§4.1)
        assert h.gpu.read_reg(regs.GPU_IRQ_MASK) == 0xF

    def test_delay_flushes(self):
        h = Harness(defer=True)
        h.enter_hot()
        h.shim.write32(regs.GPU_IRQ_MASK, 0x3)
        h.env.delay(1e-6)
        assert h.gpu.read_reg(regs.GPU_IRQ_MASK) == 0x3

    def test_program_order_preserved_on_gpu(self):
        """The interrupt-clear-then-use pattern must reach the GPU in
        exact order (§4.1's hidden dependencies)."""
        h = Harness(defer=True)
        h.gpu.write_reg(regs.GPU_COMMAND, regs.GpuCommand.CLEAN_INV_CACHES)
        h.clock.advance(1e-3)
        h.enter_hot()
        status = h.shim.read32(regs.GPU_IRQ_RAWSTAT)
        h.shim.write32(regs.GPU_IRQ_CLEAR, status)  # clears what was read
        h.exit_hot()
        log = [e for e in h.gpushim.log
               if isinstance(e, (RegRead, RegWrite))]
        assert isinstance(log[-2], RegRead)
        assert isinstance(log[-1], RegWrite)
        assert log[-1].value == log[-2].value
        assert h.gpu.read_reg(regs.GPU_IRQ_RAWSTAT) == 0


class TestSpeculation:
    def _warm(self, h, rounds=3):
        for _ in range(rounds):
            h.enter_hot()
            value = h.shim.read32(regs.GPU_ID)
            h.exit_hot()
            int(value)

    def test_predicted_commit_is_async(self):
        history = CommitHistory()
        h = Harness(defer=True, speculate=True, history=history)
        self._warm(h)
        async_before = h.link.stats.async_sends
        h.enter_hot()
        value = h.shim.read32(regs.GPU_ID)
        h.exit_hot()
        assert h.link.stats.async_sends == async_before + 1
        assert value.resolved  # resolved with the *predicted* value
        assert value.taint  # and tainted until validation
        assert int(value) == HIKEY960_G71.gpu_id

    def test_validation_clears_taint(self):
        h = Harness(defer=True, speculate=True)
        self._warm(h)
        h.enter_hot()
        value = h.shim.read32(regs.GPU_ID)
        h.exit_hot()
        h.shim.validate_outstanding()
        assert not value.taint

    def test_write_only_commits_always_async(self):
        h = Harness(defer=True, speculate=True)
        before = h.link.stats.blocking_round_trips
        h.enter_hot()
        h.shim.write32(regs.GPU_IRQ_MASK, 0x1)
        h.exit_hot()
        assert h.link.stats.blocking_round_trips == before
        assert h.link.stats.async_sends >= 1

    def test_tainted_commit_stalls_first(self):
        """§4.2's optimization: never spill speculative state to the
        client — dependent commits wait for validation."""
        h = Harness(defer=True, speculate=True)
        self._warm(h)
        h.enter_hot()
        value = h.shim.read32(regs.GPU_ID)  # speculated
        h.exit_hot()
        assert value.taint
        stalls_before = h.shim.stats.tainted_commit_stalls
        h.enter_hot()
        h.shim.write32(regs.GPU_IRQ_MASK, value & 0xFF)  # tainted write
        h.exit_hot()
        assert h.shim.stats.tainted_commit_stalls == stalls_before + 1
        # The earlier speculative read was validated during the stall;
        # only then did the (now clean) write commit go out.
        assert not value.taint
        assert h.gpu.read_reg(regs.GPU_IRQ_MASK) == \
            HIKEY960_G71.gpu_id & 0xFF

    def test_printk_stalls_and_commits_synchronously(self):
        h = Harness(defer=True, speculate=True)
        self._warm(h)
        h.enter_hot()
        value = h.shim.read32(regs.GPU_ID)
        h.env.printk("gpu id %x", value)  # externalization
        assert not h.shim._outstanding
        assert not value.taint
        assert f"{HIKEY960_G71.gpu_id:x}" in h.env.log[-1]

    def test_misprediction_detected_on_validation(self):
        h = Harness(defer=True, speculate=True)
        self._warm(h)
        h.gpushim.corrupt_read_at(h.gpushim.reads_applied, 0xFFFF)
        h.enter_hot()
        h.shim.read32(regs.GPU_ID)
        h.exit_hot()
        with pytest.raises(MispredictionDetected):
            h.shim.validate_outstanding()
        assert h.shim.stats.mispredictions == 1

    def test_history_updated_with_reality_after_miss(self):
        history = CommitHistory()
        h = Harness(defer=True, speculate=True, history=history)
        self._warm(h)
        h.gpushim.corrupt_read_at(h.gpushim.reads_applied, 0xFFFF)
        h.enter_hot()
        h.shim.read32(regs.GPU_ID)
        h.exit_hot()
        with pytest.raises(MispredictionDetected):
            h.shim.validate_outstanding()
        sig = (("r", regs.GPU_ID),)
        # The corrupted value entered history: unanimity is broken, so
        # the recovery re-run will not re-speculate this commit.
        assert history.predict(sig) is None


class TestPolling:
    def test_offloaded_poll_one_rtt(self):
        h = Harness(defer=True, offload=True)
        h.gpu.write_reg(regs.L2_PWRON_LO, 0x3)
        before = h.link.stats.blocking_round_trips
        result = h.shim.poll(PollSpec(
            offset=regs.L2_READY_LO, condition=PollCondition.BITS_SET,
            operand=0x3, max_iters=100, delay_per_iter_s=50e-6))
        assert result.success
        assert h.link.stats.blocking_round_trips == before + 1
        assert isinstance(h.gpushim.log[-1], PollEntry)

    def test_emulated_poll_rtt_per_iteration(self):
        h = Harness(defer=True, offload=False)
        h.gpu.write_reg(regs.L2_PWRON_LO, 0x3)
        before = h.link.stats.blocking_round_trips
        result = h.shim.poll(PollSpec(
            offset=regs.L2_READY_LO, condition=PollCondition.BITS_SET,
            operand=0x3, max_iters=100, delay_per_iter_s=50e-6))
        assert result.success
        # One blocking RTT per iteration (§4.3's problem statement).
        assert h.link.stats.blocking_round_trips - before \
            == result.iterations

    def test_predicate_speculation(self):
        history = CommitHistory()
        h = Harness(defer=True, speculate=True, offload=True,
                    history=history)
        spec = PollSpec(offset=regs.L2_READY_LO,
                        condition=PollCondition.BITS_SET, operand=0x3,
                        max_iters=100, delay_per_iter_s=50e-6)
        for _ in range(3):
            h.gpu.write_reg(regs.L2_PWRON_LO, 0x3)
            h.shim.poll(spec)
            h.shim.validate_outstanding()
            h.gpu.write_reg(regs.L2_PWROFF_LO, 0x3)
            h.clock.advance(1e-3)
        h.gpu.write_reg(regs.L2_PWRON_LO, 0x3)
        before = h.link.stats.blocking_round_trips
        result = h.shim.poll(spec)
        assert result.success
        assert h.link.stats.blocking_round_trips == before  # async
        h.shim.validate_outstanding()


class TestPerThreadQueues:
    def test_irq_commits_do_not_flush_other_threads(self):
        """§4.1's memory model: queues are per kernel thread.  An IRQ
        handler committing its own accesses must not flush the submit
        thread's still-pending batch."""
        h = Harness(defer=True)
        h.enter_hot()
        h.shim.write32(regs.GPU_IRQ_MASK, 0x1)  # pending in "main"

        def irq_handler():
            h.shim.on_hot_enter(h.env, "handler", "interrupt")
            h.shim.write32(regs.JOB_IRQ_MASK, 0xFF)
            h.shim.on_hot_exit(h.env, "handler", "interrupt")

        h.env.run_in_context("irq", irq_handler)
        # The IRQ thread's write reached the GPU...
        assert h.gpu.read_reg(regs.JOB_IRQ_MASK) == 0xFF
        # ...while the main thread's batch is still deferred.
        assert h.gpu.read_reg(regs.GPU_IRQ_MASK) == 0
        assert len(h.shim._queues["main"]) == 1
        h.exit_hot()
        assert h.gpu.read_reg(regs.GPU_IRQ_MASK) == 0x1

    def test_threads_get_distinct_queues(self):
        h = Harness(defer=True)
        h.enter_hot()
        h.shim.read32(regs.GPU_ID)
        h.env.run_in_context(
            "irq", lambda: (h.shim.on_hot_enter(h.env, "f", "interrupt"),
                            h.shim.read32(regs.GPU_ID),
                            h.shim.on_hot_exit(h.env, "f", "interrupt")))
        assert set(h.shim._queues) >= {"main", "irq"}


class TestJobStartHook:
    def test_job_start_write_triggers_memsync(self):
        h = Harness(defer=False)
        region = h.cloud_mem.alloc(4096, "meta")
        h.cloud_mem.write(region.base, b"\x42" * 16)
        pfn = region.base >> 12
        h.shim.metastate_provider = lambda: {pfn}
        pushes_before = h.memsync.stats.pushes
        h.shim.write32(regs.js_reg(0, regs.JS_COMMAND_NEXT),
                       regs.JsCommand.START)
        assert h.memsync.stats.pushes == pushes_before + 1
        assert h.client_mem.page_bytes(pfn)[:16] == b"\x42" * 16


class TestFastForward:
    def test_feed_answers_without_network(self):
        h = Harness(defer=False)
        h.shim.read32(regs.GPU_ID)
        h.shim.write32(regs.GPU_IRQ_MASK, 0x1)
        prefix = list(h.gpushim.log)

        h2 = Harness(defer=False)
        h2.shim.feed = FastForwardFeed(prefix)
        before = h2.link.stats.blocking_round_trips
        assert h2.shim.read32(regs.GPU_ID) == HIKEY960_G71.gpu_id
        h2.shim.write32(regs.GPU_IRQ_MASK, 0x1)
        assert h2.link.stats.blocking_round_trips == before
        assert not h2.shim.ff_active  # feed exhausted

    def test_feed_detects_divergent_offset(self):
        h = Harness(defer=False)
        h.shim.read32(regs.GPU_ID)
        prefix = list(h.gpushim.log)
        h2 = Harness(defer=False)
        h2.shim.feed = FastForwardFeed(prefix)
        with pytest.raises(FeedMismatch):
            h2.shim.read32(regs.SHADER_PRESENT_LO)

    def test_feed_detects_divergent_write_value(self):
        h = Harness(defer=False)
        h.shim.write32(regs.GPU_IRQ_MASK, 0x1)
        prefix = list(h.gpushim.log)
        h2 = Harness(defer=False)
        h2.shim.feed = FastForwardFeed(prefix)
        with pytest.raises(FeedMismatch):
            h2.shim.write32(regs.GPU_IRQ_MASK, 0x2)
