"""Unit tests for the kbase-like driver running natively (LocalBus)."""

import pytest

from repro.driver.bus import LocalBus, PollCondition, PollSpec
from repro.driver.driver import DriverError, KbaseDevice, LocalPlatform
from repro.driver.hotfuncs import (
    CommitCategory,
    HOT_FUNCTIONS,
    ProfilingHook,
)
from repro.driver.probe import GpuProber
from repro.hw import regs
from repro.hw.gpu import MaliGpu
from repro.hw.memory import PhysicalMemory
from repro.hw.regs import GpuIrq
from repro.hw.sku import HIKEY960_G71, find_sku
from repro.kernel.env import KernelEnv
from repro.sim.clock import VirtualClock


def make_kbdev(sku=HIKEY960_G71):
    clock = VirtualClock()
    mem = PhysicalMemory(size=16 << 20)
    gpu = MaliGpu(sku, mem, clock)
    env = KernelEnv(clock)
    platform = LocalPlatform(gpu, env)
    bus = LocalBus(gpu, clock)
    kbdev = KbaseDevice(env, bus, mem)
    platform.attach(kbdev)
    return kbdev, gpu, bus


class TestPollCondition:
    def test_bits_clear(self):
        assert PollCondition.check("bits_clear", 0x0, 0xFF)
        assert not PollCondition.check("bits_clear", 0x1, 0xFF)

    def test_bits_set(self):
        assert PollCondition.check("bits_set", 0xFF, 0x0F)
        assert not PollCondition.check("bits_set", 0x0E, 0x0F)

    def test_equals(self):
        assert PollCondition.check("equals", 5, 5)

    def test_unknown(self):
        with pytest.raises(ValueError):
            PollCondition.check("almost", 1, 1)


class TestLocalBusPoll:
    def test_poll_waits_for_hardware(self):
        kbdev, gpu, bus = make_kbdev()
        gpu.write_reg(regs.L2_PWRON_LO, 0x3)
        result = bus.poll(PollSpec(
            offset=regs.L2_READY_LO, condition=PollCondition.BITS_SET,
            operand=0x3, max_iters=1000, delay_per_iter_s=10e-6))
        assert result.success
        assert result.value == 0x3
        assert result.iterations >= 2

    def test_poll_gives_up_at_max_iters(self):
        kbdev, gpu, bus = make_kbdev()
        result = bus.poll(PollSpec(
            offset=regs.L2_READY_LO, condition=PollCondition.BITS_SET,
            operand=0x3, max_iters=5, delay_per_iter_s=1e-6))
        assert not result.success
        assert result.iterations == 5


class TestProbe:
    def test_probe_discovers_hardware(self):
        kbdev, gpu, bus = make_kbdev()
        kbdev.probe()
        assert kbdev.probed
        assert kbdev.props.gpu_id == HIKEY960_G71.gpu_id
        assert int(kbdev.props.shader_present) == \
            HIKEY960_G71.shader_present_mask

    def test_probe_resets_gpu(self):
        kbdev, gpu, bus = make_kbdev()
        kbdev.probe()
        assert gpu.resets >= 1

    def test_probe_applies_quirks(self):
        kbdev, gpu, bus = make_kbdev()
        kbdev.probe()
        # Bifrost parts get the early-Z tiler quirk (Listing 1(a) pattern).
        assert gpu.read_reg(regs.TILER_CONFIG) != 0
        assert gpu.read_reg(regs.SHADER_CONFIG) != 0

    def test_pte_format_selection(self):
        assert GpuProber.pte_format_for(HIKEY960_G71.gpu_id) == 1
        assert GpuProber.pte_format_for(
            find_sku("Mali-T880 MP4").gpu_id) == 0

    def test_probe_enables_interrupt_masks(self):
        kbdev, gpu, bus = make_kbdev()
        kbdev.probe()
        assert gpu.read_reg(regs.JOB_IRQ_MASK) == 0xFFFF_FFFF
        # CLEAN_CACHES stays masked: the flush path polls it (§4.3).
        assert not gpu.read_reg(regs.GPU_IRQ_MASK) \
            & GpuIrq.CLEAN_CACHES_COMPLETED

    def test_mmu_before_probe_rejected(self):
        kbdev, gpu, bus = make_kbdev()
        with pytest.raises(DriverError):
            kbdev.mmu_configure()


class TestPowerManagement:
    def test_power_up_brings_domains_ready(self):
        kbdev, gpu, bus = make_kbdev()
        kbdev.probe()
        kbdev.pm.power_up()
        assert kbdev.pm.gpu_powered
        ready = gpu.domains_ready()
        assert ready["shader"] == HIKEY960_G71.shader_present_mask
        assert ready["l2"] == HIKEY960_G71.l2_present_mask

    def test_power_down(self):
        kbdev, gpu, bus = make_kbdev()
        kbdev.probe()
        kbdev.pm.power_up()
        kbdev.pm.power_down()
        assert not kbdev.pm.gpu_powered
        assert gpu.domains_ready()["shader"] == 0

    def test_power_up_idempotent(self):
        kbdev, gpu, bus = make_kbdev()
        kbdev.probe()
        kbdev.pm.power_up()
        cycles = kbdev.pm.power_cycles
        kbdev.pm.power_up()
        assert kbdev.pm.power_cycles == cycles

    def test_shader_ready_cached_for_affinity(self):
        kbdev, gpu, bus = make_kbdev()
        kbdev.probe()
        kbdev.pm.power_up()
        assert int(kbdev.pm.shader_ready) == \
            HIKEY960_G71.shader_present_mask


class TestMmuAndCache:
    def test_mmu_configure_points_hardware_at_tables(self):
        kbdev, gpu, bus = make_kbdev()
        kbdev.probe()
        kbdev.pm.power_up()
        kbdev.mmu_configure()
        assert gpu.mmu.enabled
        assert gpu.mmu.transtab == kbdev.mmu_tables.root_pa

    def test_mmu_flush_flushes_tlb(self):
        kbdev, gpu, bus = make_kbdev()
        kbdev.probe()
        kbdev.pm.power_up()
        kbdev.mmu_configure()
        flushes = gpu.mmu.tlb_flushes
        kbdev.mmu_flush(lock_va=0x10000)
        assert gpu.mmu.tlb_flushes > flushes

    def test_cache_flush_completes(self):
        kbdev, gpu, bus = make_kbdev()
        kbdev.probe()
        kbdev.pm.power_up()
        kbdev.cache_flush()
        assert kbdev.cache_flushes == 1
        # The flush's IRQ bit was consumed by polling + clear.
        assert not gpu.read_reg(regs.GPU_IRQ_RAWSTAT) \
            & GpuIrq.CLEAN_CACHES_COMPLETED


class TestHotFunctions:
    def test_registry_covers_driver_routines(self):
        names = set(HOT_FUNCTIONS)
        assert any("power_up" in n for n in names)
        assert any("job_irq" in n for n in names)
        assert any("cache_flush" in n for n in names)
        assert any("discover" in n for n in names)

    def test_categories_match_figure8(self):
        cats = {hf.category for hf in HOT_FUNCTIONS.values()}
        assert {CommitCategory.INIT, CommitCategory.INTERRUPT,
                CommitCategory.POWER, CommitCategory.POLLING} <= cats

    def test_profiling_attributes_accesses(self):
        """§4.1: hot functions issue >90% of register accesses."""
        kbdev, gpu, bus = make_kbdev()
        profiler = ProfilingHook()
        kbdev.env.hooks.append(profiler)

        original_read = bus.read32

        def counting_read(offset):
            profiler.record_access()
            return original_read(offset)

        original_write = bus.write32

        def counting_write(offset, value):
            profiler.record_access()
            original_write(offset, value)

        bus.read32 = counting_read
        bus.write32 = counting_write
        kbdev.probe()
        kbdev.pm.power_up()
        kbdev.cache_flush()
        kbdev.pm.power_down()
        profile = profiler.profile()
        total = sum(profile.per_function.values())
        cold = profile.per_function.get("<cold>", 0)
        assert total > 50
        assert cold / total < 0.1
        hottest = profile.hottest(coverage=0.9)
        assert 1 <= len(hottest) <= len(HOT_FUNCTIONS)
