"""Unit tests for the TrustZone model: crypto, attestation, worlds, OP-TEE."""

import pytest

from repro.tee.attestation import (
    AttestationError,
    AttestationVerifier,
    CloudRootOfTrust,
)
from repro.tee.crypto import KeyStore, SigningKey, VerifyError, blob_digest
from repro.tee.optee import OpTeeOS, TeeModule
from repro.tee.worlds import (
    GpuMmioGuard,
    SecurityViolation,
    TrustZoneController,
    World,
)


class TestCrypto:
    def test_sign_verify(self):
        key = SigningKey.generate("k")
        sig = key.sign(b"payload")
        key.verify(b"payload", sig)

    def test_verify_rejects_tamper(self):
        key = SigningKey.generate("k")
        sig = key.sign(b"payload")
        with pytest.raises(VerifyError):
            key.verify(b"payloaX", sig)

    def test_different_seeds_different_keys(self):
        a = SigningKey.generate("k", b"1")
        b = SigningKey.generate("k", b"2")
        with pytest.raises(VerifyError):
            b.verify(b"x", a.sign(b"x"))

    def test_derived_key_is_distinct(self):
        root = SigningKey.generate("root")
        child = root.derive("session-1")
        assert child.secret != root.secret
        with pytest.raises(VerifyError):
            root.verify(b"x", child.sign(b"x"))

    def test_keystore(self):
        store = KeyStore()
        key = SigningKey.generate("svc")
        store.pin(key)
        store.verify_with("svc", b"data", key.sign(b"data"))
        with pytest.raises(VerifyError):
            store.verify_with("other", b"data", key.sign(b"data"))

    def test_digest_is_stable(self):
        assert blob_digest(b"a") == blob_digest(b"a")
        assert blob_digest(b"a") != blob_digest(b"b")


class TestAttestation:
    def test_good_report_accepted(self):
        root = CloudRootOfTrust()
        verifier = AttestationVerifier(root.key)
        verifier.allow_image(b"vm-image")
        report = root.attest(b"vm-image", b"nonce-1")
        verifier.verify(report, b"nonce-1")

    def test_stale_nonce_rejected(self):
        root = CloudRootOfTrust()
        verifier = AttestationVerifier(root.key)
        verifier.allow_image(b"vm-image")
        report = root.attest(b"vm-image", b"nonce-1")
        with pytest.raises(AttestationError):
            verifier.verify(report, b"nonce-2")

    def test_unknown_image_rejected(self):
        root = CloudRootOfTrust()
        verifier = AttestationVerifier(root.key)
        verifier.allow_image(b"expected-image")
        report = root.attest(b"evil-image", b"n")
        with pytest.raises(AttestationError):
            verifier.verify(report, b"n")

    def test_forged_signature_rejected(self):
        root = CloudRootOfTrust(seed=b"real")
        forger = CloudRootOfTrust(seed=b"fake")
        verifier = AttestationVerifier(root.key)
        verifier.allow_image(b"vm")
        report = forger.attest(b"vm", b"n")
        with pytest.raises(AttestationError):
            verifier.verify(report, b"n")


class TestTrustZoneController:
    def test_world_switch(self):
        tz = TrustZoneController()
        assert tz.current_world == World.NORMAL
        tz.smc_enter_secure()
        assert tz.current_world == World.SECURE
        tz.smc_exit_secure()
        assert tz.current_world == World.NORMAL

    def test_protected_memory(self):
        tz = TrustZoneController()
        tz.protect_range(0x8000_0000, 0x1000)
        tz.check_memory_access(0x8000_0800, World.SECURE)
        with pytest.raises(SecurityViolation):
            tz.check_memory_access(0x8000_0800, World.NORMAL)
        assert tz.violations == 1

    def test_unprotected_memory_open(self):
        tz = TrustZoneController()
        tz.check_memory_access(0x9000_0000, World.NORMAL)

    def test_static_reservation_permanent(self):
        """The Hikey960 workaround (§6): the carveout cannot be undone."""
        tz = TrustZoneController()
        tz.static_reserve(0x8000_0000, 0x1000)
        with pytest.raises(SecurityViolation):
            tz.release_range(0x8000_0000, 0x1000)

    def test_gpu_lock(self):
        tz = TrustZoneController()
        tz.lock_gpu_to_secure()
        tz.check_gpu_access(World.SECURE)
        with pytest.raises(SecurityViolation):
            tz.check_gpu_access(World.NORMAL)
        tz.release_gpu()
        tz.check_gpu_access(World.NORMAL)

    def test_irq_routing_follows_lock(self):
        tz = TrustZoneController()
        tz.lock_gpu_to_secure()
        assert tz.gpu_irq_routed_to == World.SECURE
        tz.release_gpu()
        assert tz.gpu_irq_routed_to == World.NORMAL


class TestGpuMmioGuard:
    def _gpu(self):
        from repro.hw.gpu import MaliGpu
        from repro.hw.memory import PhysicalMemory
        from repro.hw.sku import HIKEY960_G71
        from repro.sim.clock import VirtualClock
        return MaliGpu(HIKEY960_G71, PhysicalMemory(size=4 << 20),
                       VirtualClock())

    def test_normal_world_blocked_when_locked(self):
        tz = TrustZoneController()
        gpu = self._gpu()
        normal_view = GpuMmioGuard(gpu, tz, World.NORMAL)
        secure_view = GpuMmioGuard(gpu, tz, World.SECURE)
        tz.lock_gpu_to_secure()
        secure_view.read_reg(0x000)
        with pytest.raises(SecurityViolation):
            normal_view.read_reg(0x000)
        with pytest.raises(SecurityViolation):
            normal_view.write_reg(0x030, 1)

    def test_passthrough_attributes(self):
        tz = TrustZoneController()
        gpu = self._gpu()
        guard = GpuMmioGuard(gpu, tz, World.SECURE)
        assert guard.sku is gpu.sku
        assert guard.next_event_time() == gpu.next_event_time()


class TestOpTee:
    def test_module_commands(self):
        os_ = OpTeeOS()

        class Echo(TeeModule):
            name = "echo"

            def __init__(self):
                super().__init__()
                self.register_command("ping", lambda value: value + 1)

        os_.load_module(Echo())
        session = os_.open_session("echo")
        assert session.invoke("ping", value=41) == 42

    def test_session_enters_secure_world(self):
        os_ = OpTeeOS()
        worlds = []

        class Probe(TeeModule):
            name = "probe"

            def __init__(self, tz):
                super().__init__()
                self.register_command(
                    "check", lambda: worlds.append(tz.current_world))

        os_.load_module(Probe(os_.tzasc))
        os_.open_session("probe").invoke("check")
        assert worlds == [World.SECURE]
        assert os_.tzasc.current_world == World.NORMAL

    def test_closed_session_rejected(self):
        os_ = OpTeeOS()

        class M(TeeModule):
            name = "m"

        os_.load_module(M())
        session = os_.open_session("m")
        session.close()
        with pytest.raises(RuntimeError):
            session.invoke("anything")

    def test_unknown_module(self):
        with pytest.raises(KeyError):
            OpTeeOS().open_session("ghost")

    def test_duplicate_module_rejected(self):
        os_ = OpTeeOS()

        class M(TeeModule):
            name = "m"

        os_.load_module(M())
        with pytest.raises(ValueError):
            os_.load_module(M())

    def test_secure_storage(self):
        os_ = OpTeeOS()
        os_.store("recording:mnist", b"blob")
        assert os_.load("recording:mnist") == b"blob"
        with pytest.raises(KeyError):
            os_.load("missing")
