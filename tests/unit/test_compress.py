"""Unit tests for the dump codec (delta + zero-RLE, §5)."""

import pytest

from repro.core.compress import CodecError, best_encode, decode, encode, is_delta


class TestRoundtrip:
    def test_all_zeros_compress_tiny(self):
        data = bytes(4096)
        packed = encode(data)
        assert len(packed) < 16
        assert decode(packed) == data

    def test_sparse_page(self):
        data = bytearray(4096)
        data[100:110] = b"abcdefghij"
        data[3000] = 0xFF
        packed = encode(bytes(data))
        assert len(packed) < 128
        assert decode(packed) == bytes(data)

    def test_dense_data_roundtrip(self):
        data = bytes(range(256)) * 16
        packed = encode(data)
        assert decode(packed) == data

    def test_empty_block(self):
        assert decode(encode(b"")) == b""

    def test_trailing_zeros(self):
        data = b"\x01" + bytes(4095)
        assert decode(encode(data)) == data

    def test_leading_zeros(self):
        data = bytes(4095) + b"\x01"
        assert decode(encode(data)) == data


class TestDelta:
    def test_identical_delta_is_tiny(self):
        data = bytes(range(256)) * 16
        packed = encode(data, prev=data)
        assert is_delta(packed)
        assert len(packed) < 16
        assert decode(packed, prev=data) == data

    def test_small_change_small_delta(self):
        base = bytes(range(256)) * 16
        changed = bytearray(base)
        changed[42] ^= 0xFF
        packed = encode(bytes(changed), prev=base)
        assert len(packed) < 64
        assert decode(packed, prev=base) == bytes(changed)

    def test_delta_requires_base_to_decode(self):
        base = b"\x01" * 64
        packed = encode(b"\x02" * 64, prev=base)
        with pytest.raises(CodecError):
            decode(packed)

    def test_mismatched_base_length(self):
        with pytest.raises(CodecError):
            encode(b"\x01" * 64, prev=b"\x01" * 32)
        packed = encode(b"\x01" * 64, prev=b"\x02" * 64)
        with pytest.raises(CodecError):
            decode(packed, prev=b"\x00" * 32)

    def test_best_encode_avoids_bad_delta(self):
        """A delta against an unrelated base must not inflate the block."""
        import os
        data = bytes(4096)  # all zeros: raw-RLE is near-free
        unrelated = os.urandom(4096)
        packed = best_encode(data, prev=unrelated)
        assert not is_delta(packed)
        assert len(packed) < 16

    def test_best_encode_prefers_delta_when_smaller(self):
        base = bytes(range(256)) * 16
        changed = bytearray(base)
        changed[0] ^= 1
        packed = best_encode(bytes(changed), prev=base)
        assert is_delta(packed)
        assert decode(packed, prev=base) == bytes(changed)


class TestCorruption:
    def test_truncated_header(self):
        with pytest.raises(CodecError):
            decode(b"\x00")

    def test_truncated_token(self):
        packed = encode(b"\x01" * 64)
        with pytest.raises(CodecError):
            decode(packed[:-10])

    def test_overrunning_token(self):
        packed = bytearray(encode(b"\x01" * 64))
        # Corrupt the literal length field upward.
        packed[9] = 0xFF
        with pytest.raises(CodecError):
            decode(bytes(packed))
