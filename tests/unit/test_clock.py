"""Unit tests for the virtual clock and timeline."""

import pytest

from repro.sim.clock import StopWatch, Timeline, TimelineSpan, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(start=5.0).now == 5.0

    def test_advance_moves_time(self):
        clock = VirtualClock()
        clock.advance(1.5)
        assert clock.now == pytest.approx(1.5)

    def test_advance_returns_new_time(self):
        clock = VirtualClock()
        assert clock.advance(2.0) == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_zero_advance_records_no_span(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert len(clock.timeline) == 0

    def test_advance_to_future(self):
        clock = VirtualClock()
        clock.advance_to(3.0, label="idle")
        assert clock.now == pytest.approx(3.0)

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock()
        clock.advance(2.0)
        clock.advance_to(1.0)
        assert clock.now == pytest.approx(2.0)

    def test_elapsed_since(self):
        clock = VirtualClock()
        t0 = clock.now
        clock.advance(0.25)
        assert clock.elapsed_since(t0) == pytest.approx(0.25)

    def test_spans_are_labelled(self):
        clock = VirtualClock()
        clock.advance(1.0, label="network")
        clock.advance(2.0, label="gpu")
        assert clock.timeline.by_label() == pytest.approx(
            {"network": 1.0, "gpu": 2.0})


class TestTimeline:
    def test_total(self):
        tl = Timeline()
        tl.add(0.0, 1.0, "a")
        tl.add(1.0, 3.0, "b")
        assert tl.total() == pytest.approx(3.0)

    def test_total_by_label(self):
        tl = Timeline()
        tl.add(0.0, 1.0, "a")
        tl.add(1.0, 3.0, "b")
        tl.add(3.0, 4.0, "a")
        assert tl.total("a") == pytest.approx(2.0)

    def test_out_of_order_rejected(self):
        tl = Timeline()
        tl.add(0.0, 2.0, "a")
        with pytest.raises(ValueError):
            tl.add(1.0, 3.0, "b")

    def test_backwards_span_rejected(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.add(2.0, 1.0, "a")

    def test_span_duration(self):
        span = TimelineSpan(1.0, 3.5, "x")
        assert span.duration == pytest.approx(2.5)

    def test_iteration_order(self):
        tl = Timeline()
        tl.add(0.0, 1.0, "first")
        tl.add(1.0, 2.0, "second")
        assert [s.label for s in tl] == ["first", "second"]


class TestStopWatch:
    def test_measures_elapsed(self):
        clock = VirtualClock()
        watch = StopWatch(clock)
        clock.advance(0.7)
        assert watch.elapsed == pytest.approx(0.7)
