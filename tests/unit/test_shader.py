"""Unit tests for the shader ISA and executor: serialization, every
operator against hand-computed results, SKU binding, and fault paths."""

import numpy as np
import pytest

from repro.driver.mmu_driver import MmuTables
from repro.hw.memory import PAGE_SIZE, PhysicalMemory
from repro.hw.mmu import GpuMmu, PteFlags
from repro.hw.shader import (
    JOB_FIXED_OVERHEAD_S,
    JobBuffer,
    JobDescriptor,
    ROLE_BIAS,
    ROLE_INPUT,
    ROLE_OUTPUT,
    ROLE_WEIGHT,
    ShaderBinary,
    ShaderExecutor,
    ShaderFormatError,
    SkuMismatchError,
    _conv2d,
    _dwconv2d,
    _lrn,
    _pool,
)

GPU_ID = 0x6000_0010


class TestShaderBinary:
    def _binary(self, **over):
        fields = dict(op="relu", params={"shape": [4]},
                      target_gpu_id=GPU_ID, core_count=8, tile_size=128)
        fields.update(over)
        return ShaderBinary(**fields)

    def test_roundtrip(self):
        binary = self._binary()
        assert ShaderBinary.deserialize(binary.serialize()) == binary

    def test_bad_magic(self):
        with pytest.raises(ShaderFormatError):
            ShaderBinary.deserialize(b"XXXX" + b"\x00" * 16)

    def test_truncated(self):
        blob = self._binary().serialize()
        with pytest.raises(ShaderFormatError):
            ShaderBinary.deserialize(blob[:10])

    def test_flops_conv(self):
        binary = self._binary(op="conv2d", params={
            "in_shape": [3, 8, 8], "out_shape": [4, 8, 8], "kernel": [3, 3]})
        assert binary.flops() == 2.0 * 4 * 8 * 8 * 3 * 3 * 3

    def test_model_flops_overrides(self):
        binary = self._binary(op="relu",
                              params={"shape": [4], "model_flops": 1e9})
        assert binary.flops() == 1e9

    def test_unknown_op_flops(self):
        with pytest.raises(ShaderFormatError):
            self._binary(op="teleport").flops()


class TestJobDescriptor:
    def test_roundtrip(self):
        desc = JobDescriptor(
            shader_va=0x1000, shader_len=64,
            buffers=(JobBuffer(0x4000, 256, ROLE_INPUT),
                     JobBuffer(0x5000, 256, ROLE_OUTPUT)))
        assert JobDescriptor.deserialize(desc.serialize()) == desc

    def test_bad_magic(self):
        with pytest.raises(ShaderFormatError):
            JobDescriptor.deserialize(b"\x00" * 64)

    def test_role_filter(self):
        desc = JobDescriptor(
            shader_va=0, shader_len=0,
            buffers=(JobBuffer(1, 1, ROLE_INPUT),
                     JobBuffer(2, 2, ROLE_OUTPUT),
                     JobBuffer(3, 3, ROLE_OUTPUT)))
        assert len(desc.buffers_with_role(ROLE_OUTPUT)) == 2


class _ExecutorHarness:
    """Build a job in memory and run it through the real MMU path."""

    def __init__(self, gpu_id=GPU_ID):
        self.mem = PhysicalMemory(size=16 << 20)
        self.tables = MmuTables(self.mem, pte_format=1)
        self.mmu = GpuMmu(self.mem, pte_format=1)
        self.mmu.configure(self.tables.root_pa)
        self.executor = ShaderExecutor(self.mem, self.mmu, gpu_id,
                                       gflops=100.0)
        self._next_va = 0x10_0000

    def alloc(self, nbytes, flags):
        nbytes = max(((nbytes + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE,
                     PAGE_SIZE)
        region = self.mem.alloc(nbytes, "t")
        va = self._next_va
        self._next_va += nbytes
        self.tables.insert_pages(va, region.base, nbytes, flags)
        self.mmu.flush_tlb()
        return va, region.base

    def run(self, op, params, inputs=(), weights=(), biases=(),
            out_count=16, gpu_id=GPU_ID):
        rwx = PteFlags.READ | PteFlags.WRITE
        binary = ShaderBinary(op=op, params=params, target_gpu_id=gpu_id,
                              core_count=8, tile_size=128)
        blob = binary.serialize()
        shader_va, shader_pa = self.alloc(
            len(blob), PteFlags.READ | PteFlags.EXECUTE)
        self.mem.write(shader_pa, blob)

        buffers = []
        for role, group in ((ROLE_INPUT, inputs), (ROLE_WEIGHT, weights),
                            (ROLE_BIAS, biases)):
            for array in group:
                data = np.ascontiguousarray(array, dtype=np.float32)
                va, pa = self.alloc(data.nbytes, rwx)
                self.mem.write_array(pa, data)
                buffers.append(JobBuffer(va, data.nbytes, role))
        out_va, out_pa = self.alloc(out_count * 4, rwx)
        buffers.append(JobBuffer(out_va, out_count * 4, ROLE_OUTPUT))

        desc = JobDescriptor(shader_va=shader_va, shader_len=len(blob),
                             buffers=tuple(buffers))
        desc_va, desc_pa = self.alloc(desc.size, rwx)
        self.mem.write(desc_pa, desc.serialize())
        result = self.executor.run_job(desc_va)
        out = self.mem.view(out_pa, (out_count,), np.float32).copy()
        return result, out


class TestExecutorOps:
    def test_relu(self):
        h = _ExecutorHarness()
        x = np.array([-1.0, 2.0, -3.0, 4.0], dtype=np.float32)
        _, out = h.run("relu", {"shape": [4]}, inputs=[x], out_count=4)
        assert np.array_equal(out, [0.0, 2.0, 0.0, 4.0])

    def test_copy(self):
        h = _ExecutorHarness()
        x = np.array([1.5, -2.5, 3.5], dtype=np.float32)
        _, out = h.run("copy", {"shape": [3]}, inputs=[x], out_count=3)
        assert np.array_equal(out, x)

    def test_add_with_relu(self):
        h = _ExecutorHarness()
        a = np.array([1.0, -5.0], dtype=np.float32)
        b = np.array([2.0, 1.0], dtype=np.float32)
        _, out = h.run("add", {"shape": [2], "activation": "relu"},
                       inputs=[a, b], out_count=2)
        assert np.array_equal(out, [3.0, 0.0])

    def test_softmax_sums_to_one(self):
        h = _ExecutorHarness()
        x = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        _, out = h.run("softmax", {"shape": [3]}, inputs=[x], out_count=3)
        assert out.sum() == pytest.approx(1.0, rel=1e-5)
        assert out[2] > out[1] > out[0]

    def test_dense_hand_computed(self):
        h = _ExecutorHarness()
        x = np.array([1.0, 2.0], dtype=np.float32)
        w = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]], dtype=np.float32)
        b = np.array([0.5, 0.5, 0.5], dtype=np.float32)
        _, out = h.run("dense", {"in_features": 2, "out_features": 3},
                       inputs=[x], weights=[w], biases=[b], out_count=3)
        assert np.allclose(out, [1.5, 2.5, 3.5])

    def test_conv2d_identity_kernel(self):
        h = _ExecutorHarness()
        x = np.arange(9, dtype=np.float32).reshape(1, 3, 3)
        w = np.zeros((1, 1, 3, 3), dtype=np.float32)
        w[0, 0, 1, 1] = 1.0  # identity
        b = np.zeros(1, dtype=np.float32)
        _, out = h.run("conv2d",
                       {"in_shape": [1, 3, 3], "w_shape": [1, 1, 3, 3],
                        "out_shape": [1, 3, 3], "kernel": [3, 3],
                        "stride": 1, "pad": 1},
                       inputs=[x], weights=[w], biases=[b], out_count=9)
        assert np.allclose(out.reshape(3, 3), x[0])

    def test_maxpool(self):
        h = _ExecutorHarness()
        x = np.array([[1, 2], [3, 4]], dtype=np.float32).reshape(1, 2, 2)
        _, out = h.run("maxpool",
                       {"in_shape": [1, 2, 2], "out_shape": [1, 1, 1],
                        "kernel": [2, 2], "stride": 2, "pad": 0},
                       inputs=[x], out_count=1)
        assert out[0] == 4.0

    def test_globalpool(self):
        h = _ExecutorHarness()
        x = np.ones((2, 2, 2), dtype=np.float32)
        x[1] *= 3
        _, out = h.run("globalpool", {"in_shape": [2, 2, 2]},
                       inputs=[x], out_count=2)
        assert np.allclose(out, [1.0, 3.0])

    def test_concat(self):
        h = _ExecutorHarness()
        a = np.ones((1, 2, 2), dtype=np.float32)
        b = 2 * np.ones((1, 2, 2), dtype=np.float32)
        _, out = h.run("concat",
                       {"in_shapes": [[1, 2, 2], [1, 2, 2]]},
                       inputs=[a, b], out_count=8)
        assert np.allclose(out[:4], 1.0)
        assert np.allclose(out[4:], 2.0)

    def test_batchnorm(self):
        h = _ExecutorHarness()
        x = np.ones((2, 1, 1), dtype=np.float32)
        gamma = np.array([2.0, 3.0], dtype=np.float32)
        beta = np.array([1.0, -10.0], dtype=np.float32)
        _, out = h.run("batchnorm",
                       {"in_shape": [2, 1, 1], "activation": "relu"},
                       inputs=[x], weights=[gamma], biases=[beta],
                       out_count=2)
        assert np.allclose(out, [3.0, 0.0])

    def test_duration_model(self):
        h = _ExecutorHarness()
        x = np.zeros(4, dtype=np.float32)
        result, _ = h.run("relu", {"shape": [4], "model_flops": 35e6},
                          inputs=[x], out_count=4)
        # 35 MFLOP at 100 GFLOPS * 0.35 efficiency = 1 ms + fixed overhead
        assert result.duration_s == pytest.approx(
            JOB_FIXED_OVERHEAD_S + 1e-3, rel=1e-6)


class TestExecutorFaults:
    def test_sku_mismatch_rejected(self):
        """§2.4: binaries bound to another GPU must not execute."""
        h = _ExecutorHarness(gpu_id=0x7000_0010)
        x = np.zeros(4, dtype=np.float32)
        with pytest.raises(SkuMismatchError):
            h.run("relu", {"shape": [4]}, inputs=[x], out_count=4,
                  gpu_id=GPU_ID)

    def test_shader_must_be_executable(self):
        h = _ExecutorHarness()
        binary = ShaderBinary(op="relu", params={"shape": [1]},
                              target_gpu_id=GPU_ID, core_count=8,
                              tile_size=128)
        blob = binary.serialize()
        # Place the shader in non-executable memory.
        rw = PteFlags.READ | PteFlags.WRITE
        shader_va, shader_pa = h.alloc(len(blob), rw)
        h.mem.write(shader_pa, blob)
        out_va, _ = h.alloc(4, rw)
        desc = JobDescriptor(shader_va=shader_va, shader_len=len(blob),
                             buffers=(JobBuffer(out_va, 4, ROLE_OUTPUT),))
        desc_va, desc_pa = h.alloc(desc.size, rw)
        h.mem.write(desc_pa, desc.serialize())
        from repro.hw.mmu import GpuPageFault
        with pytest.raises(GpuPageFault):
            h.executor.run_job(desc_va)

    def test_output_overflow_rejected(self):
        h = _ExecutorHarness()
        x = np.zeros(64, dtype=np.float32)
        with pytest.raises(ShaderFormatError):
            h.run("copy", {"shape": [64]}, inputs=[x], out_count=2)


class TestNumpyKernels:
    def test_conv2d_against_direct_sum(self):
        rng = np.random.RandomState(0)
        x = rng.randn(2, 5, 5).astype(np.float32)
        w = rng.randn(3, 2, 3, 3).astype(np.float32)
        out = _conv2d(x, w, None, {"stride": 1, "pad": 0})
        # Direct triple-loop verification of one element.
        expected = sum(
            x[ic, 1 + kh, 2 + kw] * w[1, ic, kh, kw]
            for ic in range(2) for kh in range(3) for kw in range(3))
        assert out[1, 1, 2] == pytest.approx(expected, rel=1e-5)

    def test_conv2d_stride(self):
        x = np.ones((1, 4, 4), dtype=np.float32)
        w = np.ones((1, 1, 2, 2), dtype=np.float32)
        out = _conv2d(x, w, None, {"stride": 2, "pad": 0})
        assert out.shape == (1, 2, 2)
        assert np.allclose(out, 4.0)

    def test_dwconv_channelwise(self):
        x = np.stack([np.ones((3, 3)), 2 * np.ones((3, 3))]).astype(np.float32)
        w = np.ones((2, 3, 3), dtype=np.float32)
        out = _dwconv2d(x, w, None, {"stride": 1, "pad": 0})
        assert out[0, 0, 0] == pytest.approx(9.0)
        assert out[1, 0, 0] == pytest.approx(18.0)

    def test_pool_padding_max(self):
        x = np.full((1, 2, 2), -5.0, dtype=np.float32)
        out = _pool(x, {"kernel": [2, 2], "stride": 2, "pad": 1}, np.max)
        # Padding must use -inf, not zero, for max pooling.
        assert out.max() == pytest.approx(-5.0)

    def test_lrn_normalizes(self):
        x = np.ones((4, 2, 2), dtype=np.float32)
        out = _lrn(x, {"size": 5, "alpha": 1e-4, "beta": 0.75, "k": 2.0})
        assert out.shape == x.shape
        assert np.all(out < x)  # denominator > 1
