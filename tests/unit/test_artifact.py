"""Unit tests for the artifact codec (core.compiled.to_artifact /
from_artifact) and the compile cost model.

The codec is the store's wire format: a flat header + JSON meta +
64-byte-aligned numpy payload, with the recording's protected data
pages elided.  These tests pin down the integrity story — every open
re-checks the meta crc32 and the payload sha256, and a wrong tenant,
digest, SKU, or compiler version is rejected instead of served — plus
the cost model thresholds the ``engine="auto"`` replay path consults.
"""

import numpy as np
import pytest

from repro.core import compiled as compiled_mod
from repro.core.compiled import (
    ARTIFACT_MAGIC,
    ARTIFACT_VERSION,
    COMPILE_MIN_ENTRIES,
    COMPILER_VERSION,
    ArtifactError,
    artifact_meta,
    compile_decision,
    from_artifact,
    to_artifact,
)
from repro.core.recorder import OURS_MDS, RecordSession
from repro.core.recording import PollEntry, RegWrite
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.fleet.registry import TenantIsolationError
from repro.ml.runner import generate_weights
from tests.conftest import build_micro_graph


@pytest.fixture(scope="module")
def micro_artifact():
    """(recording, compiled, blob, verify_key) for the micro graph."""
    graph = build_micro_graph()
    session = RecordSession(graph, config=OURS_MDS)
    recording = session.run().recording
    blob = to_artifact(recording.compile(), tenant_id="t-alpha",
                       recording=recording)
    return graph, recording, blob, session.service.recording_key


class TestRoundTrip:
    def test_bytes_roundtrip_preserves_columns(self, micro_artifact):
        _, recording, blob, _ = micro_artifact
        compiled = recording.compile()
        loaded = from_artifact(blob)
        assert np.array_equal(loaded.writes, compiled.writes)
        assert np.array_equal(loaded.reads, compiled.reads)
        assert np.array_equal(loaded.polls, compiled.polls)
        assert np.array_equal(loaded.irq_lines, compiled.irq_lines)
        assert np.array_equal(loaded.memw_bounds, compiled.memw_bounds)
        assert loaded.entry_count == compiled.entry_count
        assert len(loaded.full_program) == len(compiled.full_program)
        assert [op[0] for op in loaded.full_program] == \
            [op[0] for op in compiled.full_program]
        assert [label for label, _ in loaded.segment_programs] == \
            [label for label, _ in compiled.segment_programs]

    def test_path_load_is_readonly_memmap_views(self, micro_artifact,
                                                tmp_path):
        _, _, blob, _ = micro_artifact
        path = tmp_path / "a.grta"
        path.write_bytes(blob)
        loaded = from_artifact(path)
        # No per-entry copies: sections are views into one read-only map.
        for arr in (loaded.writes, loaded.reads, loaded.polls,
                    loaded.page_table):
            assert not arr.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            loaded.writes["offset"] = 0  # type: ignore[index]

    def test_meta_identity_fields(self, micro_artifact):
        _, recording, blob, _ = micro_artifact
        meta = artifact_meta(blob)
        assert meta["tenant_id"] == "t-alpha"
        assert meta["recording_digest"] == recording.digest()
        assert meta["workload"] == recording.workload
        assert meta["compiler_version"] == COMPILER_VERSION
        assert meta["artifact_version"] == ARTIFACT_VERSION
        loaded = from_artifact(blob)
        assert loaded.artifact_meta is not None
        assert loaded.artifact_meta["tenant_id"] == "t-alpha"

    def test_data_pages_are_elided(self, micro_artifact):
        """Protected data pages never land in the artifact (§7.1) —
        replay re-derives them, so persisting them only bloats blobs."""
        _, recording, blob, _ = micro_artifact
        loaded = from_artifact(blob)
        stored = set(int(p) for p in loaded.page_pfns)
        assert stored.isdisjoint(set(recording.data_pfns))
        meta = artifact_meta(blob)
        assert meta["pages_elided"] == \
            meta["page_count"] - len(loaded.page_pfns)
        assert meta["pages_elided"] >= 0

    def test_replay_from_artifact_bit_identical(self, micro_artifact):
        """serialize -> load -> replay must equal a fresh-compile replay
        in output bits, virtual delay, and stats."""
        graph, recording, blob, key = micro_artifact
        weights = generate_weights(graph, seed=0)
        rng = np.random.default_rng(3)
        inp = rng.standard_normal(graph.input_shape).astype(np.float32)

        def run(rec):
            device = ClientDevice.for_workload(graph)
            replayer = Replayer(device.optee, device.gpu, device.mem,
                                device.clock, verify_key=key,
                                engine="compiled")
            return replayer.open(rec, weights).run(inp)

        fresh = run(recording)
        # Seed the compile memo with the deserialized program so the
        # compiled engine replays the artifact, not a fresh lowering.
        recording._compiled = from_artifact(blob)
        try:
            loaded = run(recording)
        finally:
            recording._compiled = None
        assert np.array_equal(fresh.output, loaded.output)
        assert fresh.delay_s == loaded.delay_s
        assert fresh.stats == loaded.stats


class TestRejection:
    def test_payload_corruption_rejected(self, micro_artifact):
        _, _, blob, _ = micro_artifact
        bad = bytearray(blob)
        bad[-1] ^= 0xFF
        with pytest.raises(ArtifactError, match="sha mismatch"):
            from_artifact(bytes(bad))

    def test_meta_corruption_rejected(self, micro_artifact):
        _, _, blob, _ = micro_artifact
        bad = bytearray(blob)
        bad[40] ^= 0x5A  # inside the JSON meta block
        with pytest.raises(ArtifactError):
            from_artifact(bytes(bad))

    def test_truncation_rejected(self, micro_artifact):
        _, _, blob, _ = micro_artifact
        with pytest.raises(ArtifactError, match="truncated"):
            from_artifact(blob[:len(blob) - 128])
        with pytest.raises(ArtifactError):
            from_artifact(blob[:8])

    def test_bad_magic_rejected(self, micro_artifact):
        _, _, blob, _ = micro_artifact
        bad = b"NOPE" + blob[len(ARTIFACT_MAGIC):]
        with pytest.raises(ArtifactError):
            from_artifact(bad)

    def test_wrong_tenant_raises_isolation_error(self, micro_artifact):
        _, _, blob, _ = micro_artifact
        with pytest.raises(TenantIsolationError, match="t-alpha"):
            from_artifact(blob, expected_tenant="t-intruder")

    def test_wrong_digest_rejected(self, micro_artifact):
        _, _, blob, _ = micro_artifact
        with pytest.raises(ArtifactError, match="not"):
            from_artifact(blob, expected_digest="f" * 64)

    def test_wrong_sku_rejected(self, micro_artifact):
        _, _, blob, _ = micro_artifact
        with pytest.raises(ArtifactError, match="SKU"):
            from_artifact(blob, expected_sku=(0, 0, 0))

    def test_stale_compiler_version_rejected(self, micro_artifact,
                                             monkeypatch):
        """A future build (bumped lowering version) must refuse v1
        artifacts instead of misreading them."""
        _, _, blob, _ = micro_artifact
        monkeypatch.setattr(compiled_mod, "COMPILER_VERSION",
                            COMPILER_VERSION + 1)
        with pytest.raises(ArtifactError, match="recompile"):
            from_artifact(blob)


class _FakeRecording:
    def __init__(self, entries):
        self.entries = entries


class TestCompileDecision:
    def test_tiny_recording_skipped(self):
        entries = [RegWrite(0x100, 1)] * (COMPILE_MIN_ENTRIES - 1)
        d = compile_decision(_FakeRecording(entries))
        assert not d.use_compiled
        assert d.reason == "tiny-recording"

    def test_batchable_heavy_recording_compiles(self):
        # Pure register writes compress ~8x under lowering: the model
        # must predict well past the 1.5x threshold.
        from repro.hw.gpu import EFFECTFUL_WRITE_OFFSETS
        offset = next(o for o in range(0x100, 0x4000, 8)
                      if o not in EFFECTFUL_WRITE_OFFSETS)
        entries = [RegWrite(offset, i) for i in range(200)]
        d = compile_decision(_FakeRecording(entries))
        assert d.use_compiled
        assert d.reason == "beneficial"
        assert d.predicted_speedup > 1.5

    def test_poll_dominated_recording_skipped(self):
        # Blocking poll iterations are paid identically by both engines,
        # so a poll-dominated recording predicts ~1x: skip.
        entries = [PollEntry(0x100, "eq", 0xFFFF, 1, iterations=50)
                   for _ in range(64)]
        d = compile_decision(_FakeRecording(entries))
        assert not d.use_compiled
        assert d.reason == "low-benefit"
        assert d.predicted_speedup < 1.5

    def test_decision_cached_on_recording(self, micro_artifact):
        _, recording, _, _ = micro_artifact
        assert recording.compile_decision() is recording.compile_decision()

    def test_str_form(self):
        d = compile_decision(_FakeRecording([]))
        assert "skip" in str(d) and "tiny-recording" in str(d)


class TestDecisionInReplayStats:
    """engine="auto" records how it chose, and the choice is honest:
    mnist-class recordings (predicted ~1.2x) stay on the interpreter."""

    @pytest.fixture(scope="class")
    def mnist_session(self):
        from repro.ml.models import build_model
        graph = build_model("mnist")
        session = RecordSession(graph, config=OURS_MDS)
        return graph, session, session.run().recording

    def _replay(self, mnist_session, engine):
        graph, session, recording = mnist_session
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock,
                            verify_key=session.service.recording_key,
                            engine=engine)
        weights = generate_weights(graph, seed=0)
        inp = np.zeros(graph.input_shape, dtype=np.float32)
        return replayer.open(recording, weights).run(inp)

    def test_auto_skips_low_benefit_mnist(self, mnist_session):
        out = self._replay(mnist_session, "auto")
        assert out.stats.compile_decision == "skipped:low-benefit"

    def test_forced_compile_is_labeled(self, mnist_session):
        out = self._replay(mnist_session, "compiled")
        assert out.stats.compile_decision == "compiled:forced"

    def test_explicit_legacy_is_labeled(self, mnist_session):
        out = self._replay(mnist_session, "legacy")
        assert out.stats.compile_decision == "legacy:explicit"

    def test_auto_and_forced_agree_bit_for_bit(self, mnist_session):
        """Honest skip: the auto path's interpreter output must equal
        the forced-compile output — the decision is about speed only."""
        auto = self._replay(mnist_session, "auto")
        forced = self._replay(mnist_session, "compiled")
        assert np.array_equal(auto.output, forced.output)
        assert auto.delay_s == forced.delay_s
