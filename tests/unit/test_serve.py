"""Unit tests for the live serving engine (repro.serve).

Everything here runs without worker processes: the shard pool is faked
so the asyncio front end — admission control, batching, backpressure,
oracle bookkeeping, metrics reduction — is exercised deterministically.
The real multiprocessing pool is covered by
``tests/integration/test_serve_pool.py``.
"""

import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro.obs import Tracer
from repro.serve import (
    AsyncServeEngine,
    IdentityDigest,
    PlanningOracle,
    ServeMetrics,
    ServeRequest,
    ServeResult,
    ServeStats,
    SyncServeEngine,
    make_burst,
)
from repro.serve.shards import ShardPoolStats, ShardResult


# ---------------------------------------------------------------------------
# Burst generation
# ---------------------------------------------------------------------------
class TestMakeBurst:
    def test_same_seed_same_burst(self):
        a = make_burst(["mnist", "alexnet"], 20, tenants=3, seed=7,
                       arrival_rate_hz=50.0)
        b = make_burst(["mnist", "alexnet"], 20, tenants=3, seed=7,
                       arrival_rate_hz=50.0)
        assert a == b

    def test_different_seed_different_burst(self):
        a = make_burst(["mnist", "alexnet"], 20, seed=1)
        b = make_burst(["mnist", "alexnet"], 20, seed=2)
        assert a != b

    def test_tenants_round_robin(self):
        burst = make_burst(["mnist"], 6, tenants=3, seed=0)
        assert [r.tenant_id for r in burst] == [
            "tenant-0", "tenant-1", "tenant-2"] * 2

    def test_closed_burst_has_zero_offsets(self):
        burst = make_burst(["mnist"], 5, seed=0)
        assert all(r.arrival_offset_s == 0.0 for r in burst)

    def test_poisson_offsets_monotonic(self):
        burst = make_burst(["mnist"], 50, seed=0, arrival_rate_hz=100.0)
        offsets = [r.arrival_offset_s for r in burst]
        assert offsets == sorted(offsets)
        assert offsets[-1] > 0

    def test_input_seeds_unique(self):
        burst = make_burst(["mnist"], 100, seed=3)
        assert len({r.input_seed for r in burst}) == 100

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            make_burst(["mnist"], -1)
        with pytest.raises(ValueError):
            make_burst(["mnist"], 1, tenants=0)


# ---------------------------------------------------------------------------
# Identity digest
# ---------------------------------------------------------------------------
class TestIdentityDigest:
    def test_order_independent(self):
        a = IdentityDigest()
        a.add("r1", "aa")
        a.add("r2", "bb")
        b = IdentityDigest()
        b.add("r2", "bb")
        b.add("r1", "aa")
        assert a.hexdigest() == b.hexdigest()

    def test_sensitive_to_output_change(self):
        a = IdentityDigest()
        a.add("r1", "aa")
        b = IdentityDigest()
        b.add("r1", "ab")
        assert a.hexdigest() != b.hexdigest()

    def test_sensitive_to_request_binding(self):
        """Swapping which request produced which output must change the
        digest — same multiset of outputs is not enough."""
        a = IdentityDigest()
        a.add("r1", "aa")
        a.add("r2", "bb")
        b = IdentityDigest()
        b.add("r1", "bb")
        b.add("r2", "aa")
        assert a.hexdigest() != b.hexdigest()


# ---------------------------------------------------------------------------
# Metrics reduction
# ---------------------------------------------------------------------------
def _result(i, ok=True, status="completed", link="wifi", latency=0.1,
            predicted=0.08, pid=100, batch=2):
    return ServeResult(
        request_id=f"req-{i:04d}", tenant_id=f"tenant-{i % 2}",
        workload="mnist", link_name=link, ok=ok, status=status,
        output_sha256=f"sha-{i}", output_class=i % 10,
        delay_s=0.01, wall_service_s=latency * 0.6, latency_s=latency,
        queue_wait_s=latency * 0.4, predicted_s=predicted,
        worker_pid=pid, batch_size=batch, attempts=1)


class TestServeMetrics:
    def test_summary_counts_and_throughput(self):
        metrics = ServeMetrics()
        for i in range(8):
            metrics.add(_result(i))
        metrics.add(_result(8, ok=False, status="rejected"))
        metrics.add(_result(9, ok=False, status="aborted"))
        summary = metrics.summary(makespan_s=2.0)
        assert summary["requests"] == {
            "offered": 10, "completed": 8, "rejected": 1, "aborted": 1,
            "retried": 0}
        assert summary["throughput_rps"] == pytest.approx(4.0)

    def test_oracle_section_scores_prediction(self):
        metrics = ServeMetrics()
        metrics.add(_result(0, latency=0.1, predicted=0.1))
        metrics.add(_result(1, latency=0.2, predicted=0.1))
        oracle = metrics.summary(1.0)["oracle"]["overall"]
        assert oracle["abs_error_s"]["p99"] == pytest.approx(0.1, abs=1e-6)
        assert oracle["abs_error_s"]["mean"] == pytest.approx(0.05, abs=1e-6)
        assert oracle["measured_over_predicted"]["p99"] == pytest.approx(
            2.0, abs=1e-6)

    def test_by_link_split(self):
        metrics = ServeMetrics()
        metrics.add(_result(0, link="wifi", latency=0.1))
        metrics.add(_result(1, link="cellular", latency=0.4))
        by_link = metrics.summary(1.0)["latency_s"]["by_link"]
        assert set(by_link) == {"wifi", "cellular"}
        assert by_link["cellular"]["p50"] == pytest.approx(0.4)

    def test_rejections_excluded_from_latency(self):
        metrics = ServeMetrics()
        metrics.add(_result(0, latency=0.1))
        metrics.add(_result(1, ok=False, status="rejected", latency=99.0))
        dist = metrics.summary(1.0)["latency_s"]["overall"]
        assert dist["count"] == 1
        assert dist["p99"] == pytest.approx(0.1)

    def test_ledger_attached_when_given(self):
        metrics = ServeMetrics()
        stats = ServeStats(offered=1, completed=1)
        summary = metrics.summary(1.0, stats=stats)
        assert summary["ledger"]["schema"] == "repro.serve/1"
        assert summary["ledger"]["offered"] == 1


# ---------------------------------------------------------------------------
# Planning oracle
# ---------------------------------------------------------------------------
class _StubCatalog:
    """digest_for/task_for without any real recording."""

    def digest_for(self, workload):
        return f"digest-{workload}"

    def task_for(self, request):
        from repro.serve.shards import ShardTask
        return ShardTask(task_id=request.request_id,
                         tenant_id=request.tenant_id,
                         digest=self.digest_for(request.workload),
                         input_seed=request.input_seed,
                         runs=request.runs)


class TestPlanningOracle:
    def test_single_worker_queues_serially(self):
        requests = [ServeRequest(f"r{i}", "tenant-0", "mnist")
                    for i in range(3)]
        oracle = PlanningOracle(
            1, {("tenant-0", "digest-mnist"): 0.1})
        plan = oracle.plan(requests, _StubCatalog())
        waits = sorted(p.queue_wait_s for p in plan.values())
        assert waits == pytest.approx([0.0, 0.1, 0.2])
        assert all(p.service_s == pytest.approx(0.1)
                   for p in plan.values())

    def test_two_workers_halve_the_queue(self):
        requests = [ServeRequest(f"r{i}", "tenant-0", "mnist")
                    for i in range(4)]
        plan = PlanningOracle(
            2, {("tenant-0", "digest-mnist"): 0.1}).plan(
                requests, _StubCatalog())
        waits = sorted(p.queue_wait_s for p in plan.values())
        assert waits == pytest.approx([0.0, 0.0, 0.1, 0.1])

    def test_arrival_offsets_respected(self):
        requests = [
            ServeRequest("r0", "tenant-0", "mnist", arrival_offset_s=0.0),
            ServeRequest("r1", "tenant-0", "mnist", arrival_offset_s=5.0),
        ]
        plan = PlanningOracle(
            1, {("tenant-0", "digest-mnist"): 0.1}).plan(
                requests, _StubCatalog())
        # r1 arrives long after r0 finished: no queueing.
        assert plan["r1"].queue_wait_s == pytest.approx(0.0)

    def test_runs_scale_service_time(self):
        requests = [ServeRequest("r0", "tenant-0", "mnist", runs=3)]
        plan = PlanningOracle(
            1, {("tenant-0", "digest-mnist"): 0.1}).plan(
                requests, _StubCatalog())
        assert plan["r0"].service_s == pytest.approx(0.3)

    def test_uncalibrated_key_uses_default(self):
        requests = [ServeRequest("r0", "tenant-9", "mnist")]
        plan = PlanningOracle(1, {}, default_service_s=0.25).plan(
            requests, _StubCatalog())
        assert plan["r0"].service_s == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# Engine front end over a fake pool
# ---------------------------------------------------------------------------
class _FakePool:
    """Duck-typed ShardPool: resolves futures on a timer thread."""

    def __init__(self, n_workers=2, service_s=0.05, fail_ids=()):
        self.n_workers = n_workers
        self.service_s = service_s
        self.fail_ids = set(fail_ids)
        self.stats = ShardPoolStats(workers=n_workers)
        self.submitted = []

    def warm_info(self, tenant_id, digest):
        return {"calibrate_wall_s": self.service_s}

    def submit(self, tasks):
        self.stats.batches += 1
        futures = []
        for task in tasks:
            future = Future()
            self.submitted.append(task)

            def resolve(t=task, f=future):
                if t.task_id in self.fail_ids:
                    from repro.serve.shards import ShardAborted
                    f.set_exception(ShardAborted(f"{t.task_id} lost"))
                else:
                    out = np.full(4, t.input_seed, dtype=np.float32)
                    import hashlib
                    f.set_result(ShardResult(
                        task_id=t.task_id, tenant_id=t.tenant_id,
                        output=out,
                        output_sha256=hashlib.sha256(
                            out.tobytes()).hexdigest(),
                        delay_s=0.01, energy_j=0.1,
                        wall_s=self.service_s, worker_pid=4242,
                        batch_size=len(tasks)))
            threading.Timer(self.service_s, resolve).start()
            futures.append(future)
        return futures


class TestEngineFrontEnd:
    def test_burst_completes_with_metrics(self):
        pool = _FakePool()
        requests = make_burst(["mnist"], 8, tenants=2, seed=0)
        engine = SyncServeEngine(pool, _StubCatalog())
        report = engine.run(requests)
        assert report.ok
        assert report.summary["requests"]["completed"] == 8
        assert report.summary["workers"]["distinct_pids"] == 1
        # Deterministic fake outputs -> a stable identity digest.
        assert report.identity_digest
        assert len(engine.engine.oracle_predictions) == 8

    def test_admission_rejects_past_queue_limit(self):
        """One tenant, tiny queue, slow single-slot dispatch: the closed
        burst overflows the bounded queue and is rejected, not buffered."""
        pool = _FakePool(n_workers=1, service_s=0.05)
        requests = make_burst(["mnist"], 12, tenants=1, seed=0)
        engine = SyncServeEngine(pool, _StubCatalog(), batch_max=1,
                                 tenant_queue_limit=4, max_dispatch=1)
        report = engine.run(requests)
        counts = report.summary["requests"]
        # The closed burst enqueues before the batcher first drains, so
        # exactly tenant_queue_limit requests are admitted.
        assert counts["rejected"] == 8
        assert counts["completed"] == 4
        rejected = [r for r in report.results if r.status == "rejected"]
        assert all("queue full" in r.error for r in rejected)
        assert not report.ok

    def test_aborted_tasks_are_ledgered_not_raised(self):
        pool = _FakePool(fail_ids={"req-0001"})
        requests = make_burst(["mnist"], 4, tenants=2, seed=0)
        report = SyncServeEngine(pool, _StubCatalog()).run(requests)
        statuses = {r.request_id: r.status for r in report.results}
        assert statuses["req-0001"] == "aborted"
        assert report.summary["requests"]["aborted"] == 1
        assert report.summary["requests"]["completed"] == 3

    def test_batching_respects_batch_max_and_tenant(self):
        pool = _FakePool()
        requests = make_burst(["mnist"], 16, tenants=2, seed=0)
        SyncServeEngine(pool, _StubCatalog(), batch_max=3).run(requests)
        # Fake pool recorded per-batch sizes via stats.batches; every
        # submitted batch is single-tenant by construction.
        assert pool.stats.batches >= 6  # 16 reqs / batch_max 3, 2 queues
        for task in pool.submitted:
            assert task.tenant_id in ("tenant-0", "tenant-1")

    def test_serve_spans_carry_oracle_prediction(self):
        tracer = Tracer(domain="serve")
        pool = _FakePool()
        requests = make_burst(["mnist"], 4, tenants=2, seed=0)
        SyncServeEngine(pool, _StubCatalog(), tracer=tracer).run(requests)
        spans = [r for r in tracer.records() if r.name == "request"]
        assert len(spans) == 4
        for span in spans:
            assert span.args["predicted_s"] > 0
            assert span.args["measured_s"] > 0
            assert span.args["worker_pid"] == 4242

    def test_async_engine_usable_inside_a_loop(self):
        import asyncio

        async def drive():
            engine = AsyncServeEngine(_FakePool(), _StubCatalog())
            report = await engine.run(
                make_burst(["mnist"], 4, tenants=2, seed=0))
            await engine.shutdown()
            return report

        report = asyncio.run(drive())
        assert report.summary["requests"]["completed"] == 4
