"""Unit tests for repro.check — the static conformance analyzer.

Three layers: (1) each rule fires on its lint-corpus snippet and stays
quiet on the clean one; (2) the shipped tree is check-clean and §4.3
discovery finds every declared polling loop (zero false negatives,
proven against an independent AST count); (3) suppression pragmas and
the baseline machinery behave as documented.
"""

import ast
import json
import os
import shutil

import pytest

from repro.check import run_check
from repro.check.findings import write_baseline
from repro.check.runner import main as check_main

CORPUS = os.path.join(os.path.dirname(__file__), "..", "check_corpus")
DRIVER_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "src", "repro", "driver"
)


def corpus(name):
    return os.path.join(CORPUS, name)


def rules_fired(report):
    counts = {}
    for finding in report.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts


class TestCorpus:
    """Each bad_* snippet fires exactly its own rule."""

    EXPECTED = {
        "bad_bus_confinement.py": {"bus-confinement": 3},
        "bad_poll_undeclared.py": {"poll-undeclared": 2},
        "bad_poll_spec.py": {"poll-spec": 3},
        "bad_sym_force.py": {"sym-force": 3},
        "bad_release_consistency.py": {"release-consistency": 2},
        "bad_determinism.py": {"determinism": 4},
        "bad_env_read.py": {"env-read": 3},
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_rule_fires(self, name):
        report = run_check([corpus(name)])
        assert not report.ok
        assert rules_fired(report) == self.EXPECTED[name]

    def test_clean_file_is_quiet(self):
        report = run_check([corpus("clean.py")])
        assert report.ok
        assert report.findings == []
        assert report.suppressed == []

    def test_clean_file_poll_site_is_declared_and_executed(self):
        report = run_check([corpus("clean.py")])
        assert len(report.poll_sites) == 1
        site = report.poll_sites[0]
        assert site.declared and site.executed
        assert site.condition == "BITS_SET"
        assert site.max_iters == 500

    def test_undeclared_loops_appear_as_sites(self):
        report = run_check([corpus("bad_poll_undeclared.py")])
        assert [s.declared for s in report.poll_sites] == [False, False]
        assert {s.max_iters for s in report.poll_sites} == {500, 200}


class TestShippedTree:
    @pytest.fixture(scope="class")
    def tree_report(self):
        return run_check()

    def test_tree_is_check_clean(self, tree_report):
        assert tree_report.ok, "\n".join(
            f.render() for f in tree_report.findings
        )
        assert tree_report.findings == []

    def test_suppressions_are_justified(self, tree_report):
        # The shipped tree carries a handful of reviewed suppressions;
        # every one must have a reason (bad-suppression would fire
        # otherwise, failing test_tree_is_check_clean).
        assert len(tree_report.suppressed) > 0
        for finding in tree_report.suppressed:
            assert finding.suppress_reason

    def test_poll_discovery_has_zero_false_negatives(self, tree_report):
        """Every PollSpec constructed in the driver package must be
        discovered — counted independently with a raw AST walk."""
        expected = 0
        for name in sorted(os.listdir(DRIVER_DIR)):
            if not name.endswith(".py") or name == "bus.py":
                continue  # bus.py defines PollSpec; it constructs none
            with open(os.path.join(DRIVER_DIR, name)) as fh:
                tree = ast.parse(fh.read())
            for node in ast.walk(tree):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "PollSpec"):
                    expected += 1
        declared = [s for s in tree_report.poll_sites if s.declared]
        assert expected > 0
        assert len(declared) == expected

    def test_every_declared_site_is_executed(self, tree_report):
        for site in tree_report.poll_sites:
            assert site.declared and site.executed, site

    def test_no_undeclared_offloadable_loops(self, tree_report):
        assert all(s.declared for s in tree_report.poll_sites)

    def test_known_sites_present(self, tree_report):
        symbols = {s.symbol for s in tree_report.poll_sites}
        assert "GpuProber.soft_reset" in symbols
        assert "KbaseDevice._wait_as_idle" in symbols


class TestSuppressions:
    def test_pragma_with_reason_suppresses(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(
            "def f(bus):\n"
            "    # repro-check: allow[sym-force] -- reviewed: one-shot probe\n"
            "    return int(bus.read32(0x34))\n"
        )
        report = run_check([str(path)])
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0].suppress_reason == "reviewed: one-shot probe"

    def test_pragma_without_reason_is_flagged(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(
            "def f(bus):\n"
            "    # repro-check: allow[sym-force]\n"
            "    return int(bus.read32(0x34))\n"
        )
        report = run_check([str(path)])
        assert not report.ok
        rules = {f.rule for f in report.findings}
        assert "bad-suppression" in rules

    def test_module_allow_covers_whole_file(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(
            "# repro-check: module-allow[bus-confinement] -- test scaffold\n"
            "def f(gpu):\n"
            "    return gpu.read_reg(0)\n"
            "def g(gpu):\n"
            "    return gpu.read_reg(4)\n"
        )
        report = run_check([str(path)])
        assert report.ok
        assert len(report.suppressed) == 2


class TestBaseline:
    def test_baseline_accepts_known_findings(self, tmp_path):
        report = run_check([corpus("bad_sym_force.py")])
        assert not report.ok
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), report)
        again = run_check([corpus("bad_sym_force.py")],
                          baseline=str(baseline))
        assert again.ok
        assert len(again.baselined) == 3
        assert again.findings == []

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        path = tmp_path / "bad_sym_force.py"
        shutil.copy(corpus("bad_sym_force.py"), path)
        before = {f.fingerprint for f in run_check([str(path)]).findings}
        path.write_text("# padding comment\n\n" + path.read_text())
        after = {f.fingerprint for f in run_check([str(path)]).findings}
        assert before == after


class TestCli:
    def test_exit_zero_on_shipped_tree(self, capsys):
        assert check_main([]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_exit_nonzero_on_corpus_file(self, capsys):
        assert check_main([corpus("bad_bus_confinement.py")]) == 1
        assert "bus-confinement" in capsys.readouterr().out

    def test_json_output_parses(self, capsys):
        assert check_main(["--format", "json",
                           corpus("bad_determinism.py")]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert {f["rule"] for f in doc["findings"]} == {"determinism"}

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        baseline = str(tmp_path / "b.json")
        assert check_main([corpus("bad_poll_spec.py"),
                           "--baseline", baseline,
                           "--write-baseline"]) == 0
        capsys.readouterr()
        assert check_main([corpus("bad_poll_spec.py"),
                           "--baseline", baseline]) == 0
        assert "baselined" in capsys.readouterr().out
