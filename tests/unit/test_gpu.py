"""Unit tests for the GPU device model: registers, power, IRQs, reset,
and the LATEST_FLUSH nondeterminism."""

import pytest

from repro.hw import regs
from repro.hw.gpu import (
    CACHE_FLUSH_S,
    GpuIrqLine,
    MaliGpu,
    POWER_TRANSITION_S,
    SOFT_RESET_S,
)
from repro.hw.memory import PhysicalMemory
from repro.hw.regs import AsStatusBits, GpuCommand, GpuIrq, PWR_KEY_MAGIC
from repro.hw.sku import HIKEY960_G71, find_sku
from repro.sim.clock import VirtualClock


@pytest.fixture
def gpu():
    clock = VirtualClock()
    mem = PhysicalMemory(size=8 << 20)
    return MaliGpu(HIKEY960_G71, mem, clock)


class TestIdentityRegisters:
    def test_gpu_id(self, gpu):
        assert gpu.read_reg(regs.GPU_ID) == HIKEY960_G71.gpu_id

    def test_shader_present_matches_core_count(self, gpu):
        present = gpu.read_reg(regs.SHADER_PRESENT_LO)
        assert bin(present).count("1") == HIKEY960_G71.core_count

    def test_l2_present(self, gpu):
        assert gpu.read_reg(regs.L2_PRESENT_LO) == \
            HIKEY960_G71.l2_present_mask

    def test_as_and_js_present(self, gpu):
        assert gpu.read_reg(regs.AS_PRESENT) == 0xFF
        assert gpu.read_reg(regs.JS_PRESENT) == 0x7

    def test_different_sku_different_registers(self):
        clock = VirtualClock()
        mem = PhysicalMemory(size=8 << 20)
        other = MaliGpu(find_sku("Mali-G72 MP12"), mem, clock)
        assert other.read_reg(regs.GPU_ID) != HIKEY960_G71.gpu_id
        assert other.read_reg(regs.SHADER_PRESENT_LO) != \
            HIKEY960_G71.shader_present_mask

    def test_unknown_register_reads_zero(self, gpu):
        assert gpu.read_reg(0x0FFC) == 0

    def test_access_counters(self, gpu):
        gpu.read_reg(regs.GPU_ID)
        gpu.write_reg(regs.GPU_IRQ_MASK, 0)
        assert gpu.reg_reads >= 1
        assert gpu.reg_writes >= 1


class TestPowerDomains:
    def test_power_on_takes_time(self, gpu):
        mask = HIKEY960_G71.shader_present_mask
        gpu.write_reg(regs.L2_PWRON_LO, HIKEY960_G71.l2_present_mask)
        gpu.write_reg(regs.SHADER_PWRON_LO, mask)
        assert gpu.read_reg(regs.SHADER_READY_LO) == 0
        assert gpu.read_reg(regs.SHADER_PWRTRANS_LO) == mask
        gpu.clock.advance(POWER_TRANSITION_S * 3)
        assert gpu.read_reg(regs.SHADER_READY_LO) == mask
        assert gpu.read_reg(regs.SHADER_PWRTRANS_LO) == 0

    def test_power_change_raises_irq(self, gpu):
        gpu.write_reg(regs.GPU_IRQ_MASK, GpuIrq.POWER_CHANGED_ALL)
        gpu.write_reg(regs.L2_PWRON_LO, 0x3)
        gpu.clock.advance(POWER_TRANSITION_S * 2)
        assert gpu.irq_pending(GpuIrqLine.GPU)

    def test_power_off(self, gpu):
        mask = 0x3
        gpu.write_reg(regs.L2_PWRON_LO, mask)
        gpu.clock.advance(POWER_TRANSITION_S * 2)
        gpu.write_reg(regs.L2_PWROFF_LO, mask)
        gpu.clock.advance(POWER_TRANSITION_S * 2)
        assert gpu.read_reg(regs.L2_READY_LO) == 0

    def test_power_on_masked_by_present(self, gpu):
        gpu.write_reg(regs.L2_PWRON_LO, 0xFFFF_FFFF)
        gpu.write_reg(regs.SHADER_PWRON_LO, 0xFFFF_FFFF)
        gpu.clock.advance(POWER_TRANSITION_S * 3)
        assert gpu.read_reg(regs.L2_READY_LO) == \
            HIKEY960_G71.l2_present_mask
        assert gpu.read_reg(regs.SHADER_READY_LO) == \
            HIKEY960_G71.shader_present_mask

    def test_shader_waits_for_l2(self, gpu):
        """Domain dependency: shader cores stay in transition until the
        L2 slice they sit behind is powered."""
        gpu.write_reg(regs.SHADER_PWRON_LO, 0xFF)
        gpu.clock.advance(POWER_TRANSITION_S * 3)
        assert gpu.read_reg(regs.SHADER_READY_LO) == 0
        assert gpu.read_reg(regs.SHADER_PWRTRANS_LO) == 0xFF
        gpu.write_reg(regs.L2_PWRON_LO, HIKEY960_G71.l2_present_mask)
        gpu.clock.advance(POWER_TRANSITION_S * 3)
        assert gpu.read_reg(regs.SHADER_READY_LO) == 0xFF
        assert gpu.read_reg(regs.SHADER_PWRTRANS_LO) == 0

    def test_redundant_power_on_noop(self, gpu):
        gpu.write_reg(regs.L2_PWRON_LO, 0x3)
        gpu.clock.advance(POWER_TRANSITION_S * 2)
        gpu.service()
        assert gpu.next_event_time() is None
        gpu.write_reg(regs.L2_PWRON_LO, 0x3)  # already on: no transition
        assert gpu.next_event_time() is None
        assert gpu.read_reg(regs.L2_PWRTRANS_LO) == 0


class TestIrqRegisters:
    def test_mask_gates_status(self, gpu):
        gpu.write_reg(regs.GPU_IRQ_MASK, 0)
        gpu.write_reg(regs.L2_PWRON_LO, 0x3)
        gpu.clock.advance(POWER_TRANSITION_S * 2)
        assert gpu.read_reg(regs.GPU_IRQ_RAWSTAT) & GpuIrq.POWER_CHANGED_ALL
        assert gpu.read_reg(regs.GPU_IRQ_STATUS) == 0

    def test_clear_is_write_one_to_clear(self, gpu):
        gpu.write_reg(regs.L2_PWRON_LO, 0x3)
        gpu.clock.advance(POWER_TRANSITION_S * 2)
        gpu.write_reg(regs.GPU_IRQ_CLEAR, GpuIrq.POWER_CHANGED_ALL)
        assert not gpu.read_reg(regs.GPU_IRQ_RAWSTAT) \
            & GpuIrq.POWER_CHANGED_ALL

    def test_irq_sink_called_on_unmasked(self, gpu):
        seen = []
        gpu.irq_sink = seen.append
        gpu.write_reg(regs.GPU_IRQ_MASK, GpuIrq.POWER_CHANGED_ALL)
        gpu.write_reg(regs.L2_PWRON_LO, 0x3)
        gpu.clock.advance(POWER_TRANSITION_S * 2)
        gpu.service()
        assert GpuIrqLine.GPU in seen


class TestReset:
    def test_soft_reset_completes_with_irq(self, gpu):
        gpu.write_reg(regs.GPU_IRQ_MASK, GpuIrq.RESET_COMPLETED)
        gpu.write_reg(regs.GPU_COMMAND, GpuCommand.SOFT_RESET)
        gpu.clock.advance(SOFT_RESET_S * 2)
        assert gpu.read_reg(regs.GPU_IRQ_RAWSTAT) & GpuIrq.RESET_COMPLETED

    def test_reset_clears_power_state(self, gpu):
        gpu.write_reg(regs.L2_PWRON_LO, 0x3)
        gpu.clock.advance(POWER_TRANSITION_S * 2)
        gpu.write_reg(regs.GPU_COMMAND, GpuCommand.SOFT_RESET)
        gpu.clock.advance(SOFT_RESET_S * 2)
        assert gpu.read_reg(regs.L2_READY_LO) == 0

    def test_reset_clears_config_registers(self, gpu):
        gpu.write_reg(regs.SHADER_CONFIG, 0x10000)
        gpu.hard_reset_now()
        assert gpu.read_reg(regs.SHADER_CONFIG) == 0

    def test_hard_reset_clears_flush_epoch(self, gpu):
        gpu.write_reg(regs.GPU_COMMAND, GpuCommand.CLEAN_INV_CACHES)
        gpu.clock.advance(CACHE_FLUSH_S * 2)
        assert gpu.read_reg(regs.LATEST_FLUSH) == 1
        gpu.hard_reset_now()
        assert gpu.read_reg(regs.LATEST_FLUSH) == 0

    def test_reset_counter(self, gpu):
        gpu.hard_reset_now()
        gpu.hard_reset_now()
        assert gpu.resets == 2


class TestCacheFlush:
    def test_flush_raises_clean_caches_irq(self, gpu):
        gpu.write_reg(regs.GPU_COMMAND, GpuCommand.CLEAN_INV_CACHES)
        gpu.clock.advance(CACHE_FLUSH_S * 2)
        assert gpu.read_reg(regs.GPU_IRQ_RAWSTAT) \
            & GpuIrq.CLEAN_CACHES_COMPLETED

    def test_latest_flush_is_history_dependent(self, gpu):
        """The §7.3 nondeterminism: the value depends on how many flushes
        have happened, so identical driver code reads different values."""
        values = []
        for _ in range(3):
            gpu.write_reg(regs.GPU_COMMAND, GpuCommand.CLEAN_INV_CACHES)
            gpu.clock.advance(CACHE_FLUSH_S * 2)
            values.append(gpu.read_reg(regs.LATEST_FLUSH))
        assert len(set(values)) == 3


class TestAddressSpaces:
    def test_as_command_goes_active_briefly(self, gpu):
        as_cmd = regs.as_reg(0, regs.AS_COMMAND)
        as_status = regs.as_reg(0, regs.AS_STATUS)
        gpu.write_reg(as_cmd, regs.AsCommand.LOCK)
        assert gpu.read_reg(as_status) & AsStatusBits.ACTIVE
        gpu.clock.advance(1e-5)
        assert not gpu.read_reg(as_status) & AsStatusBits.ACTIVE

    def test_transtab_write_readback(self, gpu):
        lo = regs.as_reg(0, regs.AS_TRANSTAB_LO)
        hi = regs.as_reg(0, regs.AS_TRANSTAB_HI)
        gpu.write_reg(lo, 0x8000_0000)
        gpu.write_reg(hi, 0x1)
        assert gpu.read_reg(lo) == 0x8000_0000
        assert gpu.read_reg(hi) == 0x1

    def test_as_update_configures_mmu(self, gpu):
        gpu.write_reg(regs.as_reg(0, regs.AS_TRANSTAB_LO), 0x8000_0000)
        gpu.write_reg(regs.as_reg(0, regs.AS_COMMAND), regs.AsCommand.UPDATE)
        assert gpu.mmu.enabled
        assert gpu.mmu.transtab == 0x8000_0000


class TestPwrKey:
    def test_override_requires_magic(self, gpu):
        gpu.write_reg(regs.PWR_OVERRIDE0, 0x42)
        assert gpu.read_reg(regs.PWR_OVERRIDE0) == 0
        gpu.write_reg(regs.PWR_KEY, PWR_KEY_MAGIC)
        gpu.write_reg(regs.PWR_OVERRIDE0, 0x42)
        assert gpu.read_reg(regs.PWR_OVERRIDE0) == 0x42


class TestIdleTracking:
    def test_fresh_gpu_is_idle(self, gpu):
        assert gpu.is_idle()

    def test_busy_during_flush(self, gpu):
        gpu.write_reg(regs.GPU_COMMAND, GpuCommand.CLEAN_INV_CACHES)
        assert not gpu.is_idle()
        gpu.clock.advance(CACHE_FLUSH_S * 2)
        assert gpu.is_idle()
