"""Unit tests for the report formatting and trace-diff helpers."""

import os

import pytest

from repro.analysis.report import (
    format_table,
    geomean,
    percent_change,
    save_report,
)


class TestFormatTable:
    def test_alignment_and_structure(self):
        text = format_table("Title", ["name", "value"],
                            [["alpha", 1.0], ["b", 123.456]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[2] and "value" in lines[2]
        assert "alpha" in text and "123" in text

    def test_float_formatting(self):
        text = format_table("t", ["v"], [[0.123456], [12.3], [1234.5], [0]])
        assert "0.123" in text
        assert "12.3" in text
        assert "1234" in text  # large floats lose decimals

    def test_empty_rows(self):
        text = format_table("t", ["a"], [])
        assert "t" in text

    def test_wide_cells_expand_columns(self):
        text = format_table("t", ["h"], [["a-very-long-cell-value"]])
        header_line = text.splitlines()[2]
        assert len(header_line.rstrip()) <= len("a-very-long-cell-value")


class TestMath:
    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([5]) == pytest.approx(5.0)

    def test_geomean_skips_nonpositive(self):
        assert geomean([0, 4]) == pytest.approx(4.0)
        assert geomean([]) == 0.0

    def test_percent_change_reduction_positive(self):
        assert percent_change(100, 25) == pytest.approx(75.0)
        assert percent_change(100, 110) == pytest.approx(-10.0)
        assert percent_change(0, 5) == 0.0


class TestSaveReport:
    def test_writes_file(self, tmp_path, monkeypatch):
        import repro.analysis.report as report_mod
        monkeypatch.setattr(report_mod, "RESULTS_DIR", str(tmp_path))
        path = save_report("unit-test", "hello table")
        assert os.path.exists(path)
        assert open(path).read() == "hello table\n"

    def test_overwrites_previous(self, tmp_path, monkeypatch):
        import repro.analysis.report as report_mod
        monkeypatch.setattr(report_mod, "RESULTS_DIR", str(tmp_path))
        save_report("unit-test", "one")
        path = save_report("unit-test", "two")
        assert open(path).read() == "two\n"
