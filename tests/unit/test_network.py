"""Unit tests for the network link model."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.network import (
    CELLULAR,
    LOOPBACK,
    MESSAGE_OVERHEAD_BYTES,
    Link,
    Message,
    SecureChannel,
    WIFI,
)


class TestLinkProfile:
    def test_paper_wifi_parameters(self):
        assert WIFI.rtt_s == pytest.approx(0.020)
        assert WIFI.bandwidth_bps == pytest.approx(80e6)

    def test_paper_cellular_parameters(self):
        assert CELLULAR.rtt_s == pytest.approx(0.050)
        assert CELLULAR.bandwidth_bps == pytest.approx(40e6)

    def test_serialize_time(self):
        # 10 MB over 80 Mbps = 1 second
        assert WIFI.serialize_s(10_000_000 // 8) == pytest.approx(
            10_000_000 / 80e6, rel=1e-6)

    def test_one_way_is_half_rtt(self):
        assert WIFI.one_way_s == pytest.approx(0.010)


class TestLink:
    def test_round_trip_costs_at_least_rtt(self):
        clock = VirtualClock()
        link = Link(WIFI, clock)
        link.round_trip(Message("m", 100), Message("r", 100))
        assert clock.now >= WIFI.rtt_s

    def test_round_trip_counts(self):
        clock = VirtualClock()
        link = Link(WIFI, clock)
        for _ in range(5):
            link.round_trip(Message("m", 10), Message("r", 10))
        assert link.stats.blocking_round_trips == 5

    def test_bytes_accounting_includes_overhead(self):
        clock = VirtualClock()
        link = Link(WIFI, clock)
        link.round_trip(Message("m", 100), Message("r", 50))
        assert link.stats.bytes_to_client == 100 + MESSAGE_OVERHEAD_BYTES
        assert link.stats.bytes_to_cloud == 50 + MESSAGE_OVERHEAD_BYTES

    def test_async_round_trip_does_not_block(self):
        clock = VirtualClock()
        link = Link(WIFI, clock)
        completion = link.async_round_trip(Message("m", 10), Message("r", 10))
        assert clock.now == 0.0
        assert completion >= WIFI.rtt_s
        assert link.stats.async_sends == 1
        assert link.stats.blocking_round_trips == 0

    def test_send_to_client_blocking_pays_serialization(self):
        clock = VirtualClock()
        link = Link(WIFI, clock)
        big = Message("dump", 10_000_000)
        arrival = link.send_to_client(big, blocking=True)
        assert clock.now == pytest.approx(WIFI.serialize_s(big.wire_bytes))
        assert arrival == pytest.approx(clock.now + WIFI.one_way_s)

    def test_receive_from_client_blocks_for_delivery(self):
        clock = VirtualClock()
        link = Link(WIFI, clock)
        link.receive_from_client(Message("up", 1000))
        assert clock.now >= WIFI.one_way_s

    def test_cellular_slower_than_wifi(self):
        cw, cc = VirtualClock(), VirtualClock()
        Link(WIFI, cw).round_trip(Message("m", 1000), Message("r", 1000))
        Link(CELLULAR, cc).round_trip(Message("m", 1000), Message("r", 1000))
        assert cc.now > cw.now

    def test_loopback_is_fast(self):
        clock = VirtualClock()
        Link(LOOPBACK, clock).round_trip(Message("m", 100), Message("r", 4))
        assert clock.now < 1e-3

    def test_merged_stats(self):
        clock = VirtualClock()
        a, b = Link(WIFI, clock), Link(WIFI, clock)
        a.round_trip(Message("m", 10), Message("r", 10))
        b.round_trip(Message("m", 10), Message("r", 10))
        merged = a.stats.merged_with(b.stats)
        assert merged.blocking_round_trips == 2


class TestSecureChannel:
    def test_handshake_costs_round_trips(self):
        clock = VirtualClock()
        link = Link(WIFI, clock)
        channel = SecureChannel(link)
        channel.establish("session-1", attested=True)
        assert channel.established
        assert link.stats.blocking_round_trips == channel.handshake_rtts

    def test_refuses_unattested_peer(self):
        clock = VirtualClock()
        channel = SecureChannel(Link(WIFI, clock))
        with pytest.raises(PermissionError):
            channel.establish("session-1", attested=False)
        assert not channel.established

    def test_require_established(self):
        channel = SecureChannel(Link(WIFI, VirtualClock()))
        with pytest.raises(RuntimeError):
            channel.require_established()
