"""Unit tests for the multi-tenant serving layer (repro.fleet)."""

import json

import pytest

from repro.fleet import (
    CachedRecording,
    FleetSimulation,
    PoolSaturated,
    RecordingKey,
    RecordingRegistry,
    Scheduler,
    SessionCostModel,
    TenantIsolationError,
    Timeout,
    VmPool,
    WorkloadGenerator,
    percentile,
    run_fleet,
)
from repro.fleet.metrics import FleetMetrics, SessionRecord
from repro.fleet.scheduler import SchedulerError
from repro.hw.sku import HIKEY960_G71, find_sku
from repro.sim.network import CELLULAR, WIFI


# ---------------------------------------------------------------------------
# Discrete-event scheduler
# ---------------------------------------------------------------------------
class TestScheduler:
    def test_timeouts_interleave_on_virtual_time(self):
        sched = Scheduler()
        trace = []

        def proc(name, delays):
            for d in delays:
                yield Timeout(d)
                trace.append((name, sched.clock.now))

        sched.spawn(proc("a", [1.0, 1.0]))   # fires at 1, 2
        sched.spawn(proc("b", [0.5, 1.0]))   # fires at 0.5, 1.5
        sched.run()
        assert trace == [("b", 0.5), ("a", 1.0), ("b", 1.5), ("a", 2.0)]

    def test_same_instant_events_fire_in_spawn_order(self):
        sched = Scheduler()
        trace = []

        def proc(name):
            yield Timeout(1.0)
            trace.append(name)

        for name in ("x", "y", "z"):
            sched.spawn(proc(name))
        sched.run()
        assert trace == ["x", "y", "z"]

    def test_event_wait_and_value_delivery(self):
        sched = Scheduler()
        ev = sched.event()
        got = []

        def waiter():
            value = yield ev
            got.append((value, sched.clock.now))

        def trigger():
            yield Timeout(3.0)
            ev.succeed("lease")

        sched.spawn(waiter())
        sched.spawn(trigger())
        sched.run()
        assert got == [("lease", 3.0)]

    def test_wait_on_already_triggered_event(self):
        sched = Scheduler()
        ev = sched.event()
        ev.succeed(42)
        got = []

        def waiter():
            got.append((yield ev))

        sched.spawn(waiter())
        sched.run()
        assert got == [42]

    def test_process_join_returns_value(self):
        sched = Scheduler()

        def child():
            yield Timeout(2.0)
            return "done"

        results = []

        def parent():
            proc = sched.spawn(child())
            results.append((yield proc))

        sched.spawn(parent())
        sched.run()
        assert results == ["done"]

    def test_spawn_at_absolute_time(self):
        sched = Scheduler()
        seen = []

        def proc():
            seen.append(sched.clock.now)
            yield Timeout(0.0)

        sched.spawn(proc(), at=5.0)
        sched.run()
        assert seen == [5.0]

    def test_double_trigger_rejected(self):
        sched = Scheduler()
        ev = sched.event()
        ev.succeed()
        with pytest.raises(SchedulerError):
            ev.succeed()

    def test_bad_yield_rejected(self):
        sched = Scheduler()

        def proc():
            yield "not-an-event"

        sched.spawn(proc())
        with pytest.raises(SchedulerError):
            sched.run()


# ---------------------------------------------------------------------------
# VM pool
# ---------------------------------------------------------------------------
def _drain(sched):
    sched.run()


class TestVmPool:
    def test_warm_grant_is_cheaper_than_cold(self):
        sched = Scheduler()
        pool = VmPool(sched, capacity=4, warm_target=1, queue_limit=4)
        warm = pool.acquire("t1").value
        cold = pool.acquire("t2").value
        assert warm.warm and not cold.warm
        assert warm.boot_cost_s < cold.boot_cost_s

    def test_queueing_grants_fifo_on_release(self):
        sched = Scheduler()
        pool = VmPool(sched, capacity=1, warm_target=0, queue_limit=4)
        order = []

        def session(name, hold):
            lease = yield pool.acquire(name)
            order.append((name, sched.clock.now))
            yield Timeout(hold)
            pool.release(lease)

        sched.spawn(session("first", 2.0))
        sched.spawn(session("second", 1.0))
        sched.spawn(session("third", 1.0))
        sched.run()
        assert [name for name, _ in order] == ["first", "second", "third"]
        assert order[1][1] == 2.0 and order[2][1] == 3.0

    def test_rejection_when_capacity_and_queue_full(self):
        sched = Scheduler()
        pool = VmPool(sched, capacity=1, warm_target=0, queue_limit=1)
        pool.acquire("a")
        pool.acquire("b")  # queued
        with pytest.raises(PoolSaturated):
            pool.acquire("c")
        assert pool.stats.rejections == 1

    def test_vm_seconds_accounting(self):
        sched = Scheduler()
        pool = VmPool(sched, capacity=2, warm_target=0, queue_limit=2)

        def session():
            lease = yield pool.acquire("t")
            yield Timeout(4.0)
            pool.release(lease)

        sched.spawn(session())
        sched.run()
        assert pool.stats.lease_vm_seconds == pytest.approx(4.0)
        assert pool.total_cost_usd > 0

    def test_double_release_rejected(self):
        sched = Scheduler()
        pool = VmPool(sched, capacity=1, warm_target=0, queue_limit=1)
        lease = pool.acquire("t").value
        pool.release(lease)
        with pytest.raises(ValueError):
            pool.release(lease)

    def test_warm_pool_refills_in_background(self):
        sched = Scheduler()
        pool = VmPool(sched, capacity=4, warm_target=2, queue_limit=4)
        pool.acquire("a")
        pool.acquire("b")
        assert pool.warm_available == 0
        sched.run()  # refill processes boot fresh VMs
        assert pool.warm_available == 2
        assert pool.stats.warm_boots == 4  # 2 initial + 2 refills


# ---------------------------------------------------------------------------
# Per-tenant recording registry
# ---------------------------------------------------------------------------
def _key(workload="mnist"):
    return RecordingKey(workload=workload, sku_compatible="arm,mali-bifrost",
                        sku_name="Mali-G71 MP8", flavor="acl-opencl")


def _entry(tenant, key=None):
    return CachedRecording(key=key or _key(), tenant_id=tenant,
                           recording_bytes=1024, dry_run_s=3.0,
                           signature=b"sig", created_at=0.0)


class TestRecordingRegistry:
    def test_store_then_hit(self):
        reg = RecordingRegistry()
        reg.store("t1", _entry("t1"))
        hit = reg.lookup("t1", _key())
        assert hit is not None and hit.serves == 1
        assert reg.stats.hits == 1

    def test_cache_is_strictly_per_tenant(self):
        """§7.1: identical key, different tenant -> miss, never a share."""
        reg = RecordingRegistry()
        reg.store("t1", _entry("t1"))
        assert reg.lookup("t2", _key()) is None
        assert reg.stats.misses == 1

    def test_misfiled_entry_raises_not_serves(self):
        reg = RecordingRegistry()
        reg.store("t1", _entry("t1"))
        # Corrupt the bucket directly (simulates a registry bug).
        reg._by_tenant["t2"] = reg._by_tenant["t1"]
        with pytest.raises(TenantIsolationError):
            reg.lookup("t2", _key())
        with pytest.raises(TenantIsolationError):
            reg.audit_isolation()

    def test_store_rejects_cross_tenant_filing(self):
        reg = RecordingRegistry()
        with pytest.raises(TenantIsolationError):
            reg.store("t2", _entry("t1"))

    def test_distinct_keys_are_distinct_entries(self):
        reg = RecordingRegistry()
        reg.store("t1", _entry("t1", _key("mnist")))
        reg.store("t1", _entry("t1", _key("vgg16")))
        assert len(reg) == 2
        assert reg.audit_isolation() == 2

    def test_evict_tenant_drops_compiled_entries_too(self):
        """Regression: eviction must not strand a tenant's compiled
        programs — derived state may not outlive its recording (§7.1)."""
        reg = RecordingRegistry()
        reg.store("t1", _entry("t1", _key("mnist")))
        reg.store("t2", _entry("t2", _key("mnist")))
        reg.compiled_for("t1", "d1", lambda: object())
        reg.compiled_for("t1", "d2", lambda: object())
        reg.compiled_for("t2", "d1", lambda: object())
        evicted = reg.evict_tenant("t1")
        assert evicted.recordings == 1
        assert evicted.compiled == 2
        assert reg.compiled_count() == 1
        assert reg.tenants() == ("t2",)
        # t2's compiled program survived untouched.
        sentinel = object()
        assert reg.compiled_for("t2", "d1", lambda: sentinel) is not sentinel
        # t1 coming back pays the full build again.
        assert reg.compiled_for("t1", "d1", lambda: sentinel) is sentinel

    def test_evict_unknown_tenant_is_a_noop(self):
        reg = RecordingRegistry()
        evicted = reg.evict_tenant("ghost")
        assert (evicted.recordings, evicted.compiled) == (0, 0)

    def test_concurrent_compiled_for_builds_once_and_shares(self):
        """Racing sessions on a cold (tenant, digest) get one shared
        program; no tenant ever sees another tenant's entry."""
        import threading

        reg = RecordingRegistry()
        builds = []
        barrier = threading.Barrier(8)
        results = {}

        def build(tenant):
            def _build():
                builds.append(tenant)
                return ("compiled", tenant)
            return _build

        def session(i):
            tenant = f"t{i % 2}"
            barrier.wait()
            got = reg.compiled_for(tenant, "digest-x", build(tenant))
            results[i] = (tenant, got)

        threads = [threading.Thread(target=session, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # One build per tenant, not per session.
        assert sorted(builds) == ["t0", "t1"]
        assert reg.compiled_count() == 2
        for _, (tenant, got) in results.items():
            assert got == ("compiled", tenant)
        # Everyone with the same tenant shares the same object.
        shared = {tenant: got for tenant, got in results.values()}
        for tenant, got in results.values():
            assert shared[tenant] is got

    def test_failed_build_releases_the_key(self):
        reg = RecordingRegistry()
        with pytest.raises(RuntimeError, match="boom"):
            reg.compiled_for("t1", "d1",
                             lambda: (_ for _ in ()).throw(
                                 RuntimeError("boom")))
        sentinel = object()
        assert reg.compiled_for("t1", "d1", lambda: sentinel) is sentinel


# ---------------------------------------------------------------------------
# Workload generator
# ---------------------------------------------------------------------------
class TestWorkloadGenerator:
    def test_same_seed_same_requests(self):
        a = WorkloadGenerator(seed=11, tenants=8).generate(50)
        b = WorkloadGenerator(seed=11, tenants=8).generate(50)
        assert a == b

    def test_different_seed_differs(self):
        a = WorkloadGenerator(seed=1, tenants=8).generate(50)
        b = WorkloadGenerator(seed=2, tenants=8).generate(50)
        assert a != b

    def test_arrivals_are_monotone(self):
        reqs = WorkloadGenerator(seed=3, arrival_rate_hz=5.0).generate(100)
        times = [r.arrival_s for r in reqs]
        assert times == sorted(times) and times[0] > 0

    def test_tenant_device_is_fixed(self):
        reqs = WorkloadGenerator(seed=4, tenants=4).generate(200)
        by_tenant = {}
        for r in reqs:
            device = (r.sku_name, r.link_name)
            assert by_tenant.setdefault(r.tenant_id, device) == device

    def test_mix_respected(self):
        reqs = WorkloadGenerator(seed=5, tenants=4,
                                 mix={"mnist": 1.0}).generate(30)
        assert {r.workload for r in reqs} == {"mnist"}


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 50) == 5.0
        assert percentile(values, 95) == 10.0
        assert percentile(values, 99) == 10.0
        assert percentile([], 50) == 0.0

    def test_summary_counts(self):
        m = FleetMetrics()
        m.add(SessionRecord("r0", "t", "mnist", "s", "wifi", arrival_s=0.0,
                            admitted_s=0.0, completed_s=2.0,
                            cache_hit=False))
        m.add(SessionRecord("r1", "t", "mnist", "s", "wifi", arrival_s=1.0,
                            admitted_s=1.5, completed_s=2.0, cache_hit=True))
        m.add(SessionRecord("r2", "t", "mnist", "s", "cellular",
                            arrival_s=2.0, rejected=True))
        doc = m.summary(makespan_s=2.0)
        assert doc["sessions"] == {"offered": 3, "completed": 2,
                                   "rejected": 1,
                                   "rejection_rate": pytest.approx(1 / 3)}
        assert doc["cache"]["hit_rate"] == 0.5
        assert doc["latency_s"]["by_link"]["wifi"]["count"] == 2
        assert doc["throughput_sessions_per_s"] == 1.0


# ---------------------------------------------------------------------------
# Session cost model + end-to-end simulation
# ---------------------------------------------------------------------------
class TestSessionCostModel:
    def test_bigger_nn_costs_more(self):
        model = SessionCostModel()
        small = model.costs("mnist", HIKEY960_G71, WIFI)
        big = model.costs("vgg16", HIKEY960_G71, WIFI)
        assert big.dry_run_s > small.dry_run_s
        assert big.recording_bytes > small.recording_bytes

    def test_worse_link_costs_more(self):
        model = SessionCostModel()
        wifi = model.costs("mobilenet", HIKEY960_G71, WIFI)
        cell = model.costs("mobilenet", HIKEY960_G71, CELLULAR)
        assert cell.dry_run_s > wifi.dry_run_s
        assert cell.handshake_s > wifi.handshake_s

    def test_faster_sku_cuts_gpu_time(self):
        model = SessionCostModel()
        slow = model.costs("vgg16", find_sku("Mali-T760 MP8"), WIFI)
        fast = model.costs("vgg16", find_sku("Mali-G76 MP10"), WIFI)
        assert fast.dry_run_s < slow.dry_run_s

    def test_cached_path_skips_the_dry_run(self):
        costs = SessionCostModel().costs("alexnet", HIKEY960_G71, WIFI)
        assert costs.cold_total_s - costs.cached_total_s \
            == pytest.approx(costs.dry_run_s)


class TestFleetSimulation:
    @pytest.fixture(scope="class")
    def sim(self):
        requests = WorkloadGenerator(seed=7, arrival_rate_hz=4.0,
                                     tenants=6).generate(80)
        sim = FleetSimulation(requests, capacity=8, warm_target=4,
                              queue_limit=12)
        sim.run()
        return sim

    def test_all_sessions_resolve(self, sim):
        doc = sim.summary()
        assert doc["sessions"]["offered"] == 80
        assert (doc["sessions"]["completed"]
                + doc["sessions"]["rejected"]) == 80

    def test_repeat_tenants_hit_the_cache(self, sim):
        assert sim.summary()["cache"]["hits"] > 0
        # Cached sessions skip the dry run: strictly fewer signatures
        # than completed sessions.
        assert sim.service.recordings_served \
            < sim.summary()["sessions"]["completed"]

    def test_registry_isolation_holds_after_run(self, sim):
        assert sim.registry.audit_isolation() == len(sim.registry)

    def test_service_ledger_closed_every_session(self, sim):
        assert not sim.service.active_sessions
        assert sim.service.total_vm_seconds > 0
        assert sim.service.total_cost_usd > 0

    def test_per_link_percentiles_reported(self, sim):
        by_link = sim.summary()["latency_s"]["by_link"]
        for dist in by_link.values():
            assert dist["p50"] <= dist["p95"] <= dist["p99"]

    def test_same_seed_identical_metrics_json(self):
        def one():
            reqs = WorkloadGenerator(seed=13, arrival_rate_hz=6.0,
                                     tenants=5).generate(60)
            return json.dumps(run_fleet(reqs, capacity=6, warm_target=3,
                                        queue_limit=8), sort_keys=True)

        assert one() == one()

    def test_saturation_rejects_explicitly(self):
        reqs = WorkloadGenerator(seed=3, arrival_rate_hz=50.0,
                                 tenants=4).generate(60)
        doc = run_fleet(reqs, capacity=2, warm_target=1, queue_limit=2)
        assert doc["sessions"]["rejected"] > 0
        assert doc["pool"]["rejections"] == doc["sessions"]["rejected"]


class TestFleetFailover:
    def make(self, vm_failure_rate, seed=7, clients=50, **kwargs):
        from repro.resilience.failover import (
            FleetFaultPlan,
            ResilientFleetSimulation,
        )
        reqs = WorkloadGenerator(seed=seed, arrival_rate_hz=4.0,
                                 tenants=6).generate(clients)
        sim = ResilientFleetSimulation(
            reqs, fault_plan=FleetFaultPlan(seed=seed,
                                            vm_failure_rate=vm_failure_rate),
            **kwargs)
        sim.run()
        return sim

    def test_zero_rate_matches_plain_fleet(self):
        from repro.fleet import run_fleet
        reqs = WorkloadGenerator(seed=7, arrival_rate_hz=4.0,
                                 tenants=6).generate(50)
        plain = run_fleet(reqs)
        sim = self.make(0.0)
        doc = sim.summary()
        doc.pop("vm_faults")
        assert json.dumps(doc, sort_keys=True) == \
               json.dumps(plain, sort_keys=True)

    def test_sessions_survive_vm_deaths(self):
        sim = self.make(0.35)
        doc = sim.summary()
        assert doc["vm_faults"]["vm_deaths"] > 0
        assert doc["failover"]["total_failovers"] == \
               doc["vm_faults"]["vm_deaths"]
        assert doc["pool"]["failover_requeues"] == \
               doc["vm_faults"]["vm_deaths"]
        # Every offered session still completes or is rejected.
        assert (doc["sessions"]["completed"]
                + doc["sessions"]["rejected"]) == 50

    def test_failover_wait_reported(self):
        doc = self.make(0.35).summary()
        wait = doc["failover"]["wait_s"]
        assert wait["count"] == doc["failover"]["sessions_with_failover"]
        assert wait["mean"] > 0

    def test_deterministic_under_faults(self):
        a = json.dumps(self.make(0.3).summary(), sort_keys=True)
        b = json.dumps(self.make(0.3).summary(), sort_keys=True)
        assert a == b

    def test_failures_cost_latency(self):
        calm = self.make(0.0).summary()["latency_s"]["overall"]["mean"]
        chaotic = self.make(0.5).summary()["latency_s"]["overall"]["mean"]
        assert chaotic > calm

    def test_no_vm_leaked_after_failovers(self):
        sim = self.make(0.4)
        assert sim.pool.busy == 0
        assert not sim.service.active_sessions

    def test_vm_deaths_counted_as_aborts(self):
        sim = self.make(0.35)
        doc = sim.summary()
        assert doc["service"]["sessions_aborted"] == \
               doc["vm_faults"]["vm_deaths"]

    def test_fault_plan_validation(self):
        from repro.resilience.failover import FleetFaultPlan
        with pytest.raises(ValueError):
            FleetFaultPlan(vm_failure_rate=1.5)
        with pytest.raises(ValueError):
            FleetFaultPlan(checkpoint_interval_s=0.0)

    def test_time_blocked_tracked_per_link(self):
        doc = self.make(0.2).summary()
        blocked = doc["network"]["time_blocked_s"]
        assert blocked["overall"]["mean"] > 0
        assert set(blocked["by_link"]) <= {"wifi", "cellular", "loopback"}
