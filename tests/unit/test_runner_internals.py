"""Unit tests for WorkloadRunner's allocation and manifest plumbing."""

import numpy as np
import pytest

from repro.driver.bus import LocalBus
from repro.driver.driver import KbaseDevice, LocalPlatform
from repro.hw.gpu import MaliGpu
from repro.hw.memory import PhysicalMemory
from repro.hw.sku import HIKEY960_G71
from repro.kernel.env import KernelEnv
from repro.ml import layers as L
from repro.ml.graph import Graph, INPUT
from repro.ml.models import rnn
from repro.ml.runner import (
    WorkloadRunner,
    generate_weights,
    required_memory_bytes,
    weight_base_name,
)
from repro.runtime.api import GpuContext
from repro.sim.clock import VirtualClock
from tests.conftest import build_micro_graph


def make_runner(graph):
    clock = VirtualClock()
    mem = PhysicalMemory(size=required_memory_bytes(graph))
    gpu = MaliGpu(HIKEY960_G71, mem, clock)
    env = KernelEnv(clock)
    platform = LocalPlatform(gpu, env)
    kbdev = KbaseDevice(env, LocalBus(gpu, clock), mem)
    platform.attach(kbdev)
    kbdev.probe()
    ctx = GpuContext(kbdev, mem)
    return WorkloadRunner(ctx, graph)


class TestAllocation:
    def test_every_node_gets_output_and_activation_binding(self):
        graph = build_micro_graph()
        runner = make_runner(graph)
        names = {b.name for b in runner.manifest.bindings}
        for node in graph.nodes:
            assert f"{node.name}.out" in names

    def test_staging_only_for_matmul_layers(self):
        graph = build_micro_graph()
        runner = make_runner(graph)
        assert "conv1.stage" in runner._buffers
        assert "fc.stage" in runner._buffers
        assert "pool1.stage" not in runner._buffers
        assert "softmax.stage" not in runner._buffers

    def test_tied_weights_allocated_once(self):
        graph = rnn(steps=4)
        runner = make_runner(graph)
        assert "cell.wx.weight" in runner._buffers
        assert "wx0.weight" not in runner._buffers
        weight_names = [b.name for b in
                        runner.manifest.weight_bindings()]
        assert weight_names.count("cell.wx.weight") == 1

    def test_weight_base_name(self):
        g = Graph("t", (4,))
        tied = g.add("a", L.Dense(2, tie="shared"), [INPUT])
        plain = g.add("b", L.Dense(2), ["a"])
        assert weight_base_name(tied) == "shared"
        assert weight_base_name(plain) == "b"

    def test_input_output_bindings(self):
        graph = build_micro_graph()
        runner = make_runner(graph)
        inp = runner.manifest.binding("input")
        out = runner.manifest.binding("output")
        assert tuple(inp.shape) == graph.input_shape
        assert tuple(out.shape) == graph.output_shape
        assert inp.pa != out.pa


class TestExecutionBookkeeping:
    def test_jobs_per_node_recorded(self):
        graph = build_micro_graph()
        runner = make_runner(graph)
        runner.load_weights(generate_weights(graph, 0))
        runner.run(np.zeros(graph.input_shape, dtype=np.float32))
        nodes = dict(runner.manifest.jobs_per_node)
        assert set(nodes) == {n.name for n in graph.nodes}
        assert nodes["conv1"] == 2  # stage + conv
        assert nodes["pool1"] == 1
        assert runner.manifest.total_jobs == sum(nodes.values())

    def test_wrong_input_shape_rejected(self):
        graph = build_micro_graph()
        runner = make_runner(graph)
        with pytest.raises(ValueError):
            runner.run(np.zeros((2, 2), dtype=np.float32))

    def test_unknown_weight_name_rejected(self):
        graph = build_micro_graph()
        runner = make_runner(graph)
        with pytest.raises(KeyError):
            runner.load_weights({"ghost.weight": np.zeros(4,
                                                          dtype=np.float32)})

    def test_channel_split_jobs(self):
        g = Graph("wide", (2, 8, 8))
        g.add("conv", L.Conv2D(130, 3, pad=1, channel_split=64), [INPUT])
        g.validate()
        runner = make_runner(g)
        runner.load_weights(generate_weights(g, 0))
        runner.run(np.zeros(g.input_shape, dtype=np.float32))
        nodes = dict(runner.manifest.jobs_per_node)
        # staging + ceil(130/64)=3 channel-group jobs
        assert nodes["conv"] == 4

    def test_required_memory_sufficient_for_run(self):
        """The estimate must always cover the actual allocations."""
        for graph in (build_micro_graph(), rnn()):
            runner = make_runner(graph)  # raises OutOfMemory if too small
            runner.run(np.zeros(graph.input_shape, dtype=np.float32))
