"""Property/stress tests for concurrent registry access.

The serving engine replays through :class:`RecordingRegistry` from many
sessions at once, so two invariants must hold under arbitrary
interleavings: sessions racing on the same (tenant, digest) share ONE
compiled program (a single ``build()``), and no session ever observes
another tenant's entry — even when tenants race on identical digests
and evictions run mid-flight (§7.1).
"""

import threading

from hypothesis import given, settings, strategies as st

from repro.fleet import RecordingRegistry


def _schedule():
    # (session index -> (tenant index, digest index)) pairs; small
    # alphabets force heavy collisions on both axes.
    return st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)),
                    min_size=2, max_size=12)


class TestConcurrentRegistryProperties:
    @given(_schedule())
    @settings(max_examples=25, deadline=None)
    def test_one_build_per_key_and_strict_tenant_scope(self, plan):
        """N racing sessions -> exactly one build per distinct key, and
        every session gets its own tenant's program object."""
        reg = RecordingRegistry()
        build_log = []
        log_lock = threading.Lock()
        barrier = threading.Barrier(len(plan))
        seen = [None] * len(plan)

        def build(tenant, digest):
            def _build():
                with log_lock:
                    build_log.append((tenant, digest))
                return ("compiled", tenant, digest)
            return _build

        def session(i, tenant, digest):
            barrier.wait()
            seen[i] = (tenant,
                       reg.compiled_for(tenant, digest,
                                        build(tenant, digest)))

        threads = [
            threading.Thread(target=session,
                             args=(i, f"t{t}", f"d{d}"))
            for i, (t, d) in enumerate(plan)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()

        distinct = {(f"t{t}", f"d{d}") for t, d in plan}
        assert sorted(build_log) == sorted(distinct)
        assert reg.compiled_count() == len(distinct)
        # Tenant scope: a session only ever holds its own tenant's
        # program, and same-key sessions share one object.
        by_key = {}
        for i, (t, d) in enumerate(plan):
            tenant, program = seen[i]
            assert program == ("compiled", tenant, f"d{d}")
            by_key.setdefault((tenant, f"d{d}"), program)
            assert by_key[(tenant, f"d{d}")] is program

    @given(_schedule(), st.integers(0, 2))
    @settings(max_examples=25, deadline=None)
    def test_eviction_races_never_leak_across_tenants(self, plan, victim):
        """Evicting one tenant mid-traffic never disturbs another
        tenant's programs or leaks the victim's entries to them."""
        reg = RecordingRegistry()
        barrier = threading.Barrier(len(plan) + 1)
        seen = [None] * len(plan)

        def session(i, tenant, digest):
            barrier.wait()
            seen[i] = reg.compiled_for(
                tenant, digest, lambda: ("compiled", tenant, digest))

        def evictor():
            barrier.wait()
            reg.evict_tenant(f"t{victim}")

        threads = [threading.Thread(target=session,
                                    args=(i, f"t{t}", f"d{d}"))
                   for i, (t, d) in enumerate(plan)]
        threads.append(threading.Thread(target=evictor))
        for th in threads:
            th.start()
        for th in threads:
            th.join()

        # Whatever the interleaving, every session got a program built
        # for ITS tenant (never the victim's leftover or a neighbour's).
        for i, (t, d) in enumerate(plan):
            assert seen[i] == ("compiled", f"t{t}", f"d{d}")
        # Post-eviction state is internally consistent: any surviving
        # compiled entry belongs to a live bucket's tenant or a tenant
        # that simply has no recordings; none belong to a foreign pair.
        for (tenant, digest) in reg._compiled:
            assert reg._compiled[(tenant, digest)][1] == tenant
