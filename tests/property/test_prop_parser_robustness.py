"""Property tests: hostile bytes never crash the recording parser.

The recording travels through the untrusted OS; the TEE-side parser must
fail *closed* — RecordingFormatError, never an unhandled exception — on
arbitrary garbage and on arbitrarily truncated/mutated real recordings.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.recording import (
    IrqEntry,
    MAGIC,
    Marker,
    Recording,
    RecordingFormatError,
    RegRead,
    RegWrite,
)
from repro.tee.crypto import SigningKey

from test_prop_recording import _recording  # reuse the builder

REAL_BLOB = _recording([
    Marker("conv1"),
    RegWrite(offset=0x30, value=1),
    RegRead(offset=0x20, value=0x100),
    IrqEntry(line="job"),
]).sign(SigningKey.generate("svc"))


class TestParserRobustness:
    @given(st.binary(min_size=0, max_size=512))
    @settings(max_examples=300)
    def test_random_bytes_fail_closed(self, blob):
        with pytest.raises(RecordingFormatError):
            Recording.from_bytes(blob)

    @given(st.binary(min_size=0, max_size=512))
    @settings(max_examples=200)
    def test_random_bytes_with_magic_fail_closed(self, tail):
        with pytest.raises(RecordingFormatError):
            Recording.from_bytes(MAGIC + tail)

    @given(st.data())
    @settings(max_examples=200)
    def test_truncations_fail_closed(self, data):
        real_blob = REAL_BLOB
        cut = data.draw(st.integers(min_value=0,
                                    max_value=len(real_blob) - 1))
        with pytest.raises(RecordingFormatError):
            Recording.from_bytes(real_blob[:cut],
                                 verify_key=SigningKey.generate("svc"))

    @given(st.data())
    @settings(max_examples=200)
    def test_mutations_without_key_fail_closed_or_parse(self, data):
        real_blob = REAL_BLOB
        """Without signature verification (inspection tools), a mutated
        blob either parses or raises RecordingFormatError — nothing
        else escapes."""
        blob = bytearray(real_blob)
        for _ in range(data.draw(st.integers(min_value=1, max_value=4))):
            idx = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
            blob[idx] = data.draw(st.integers(min_value=0, max_value=255))
        try:
            Recording.from_bytes(bytes(blob))
        except RecordingFormatError:
            pass
