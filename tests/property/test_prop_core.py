"""Property tests on core invariants: commit history, memory dirty
tracking, and the deferral queue wire format."""

from hypothesis import given, settings, strategies as st

from repro.core.deferral import DeferralQueue
from repro.core.speculation import CommitHistory
from repro.core.symbolic import SymVal, evaluate_wire
from repro.hw.memory import PAGE_SIZE, PhysicalMemory, pages_spanning


class TestCommitHistoryProperties:
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 5)),
                    min_size=0, max_size=50),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=150)
    def test_prediction_iff_last_k_unanimous(self, events, window):
        """The §4.2 criteria, stated as an invariant: predict(s) returns v
        iff the last `window` recorded values for s all equal v."""
        history = CommitHistory(window=window)
        log = {}
        for sig_id, value in events:
            sig = (("r", sig_id),)
            history.record(sig, (value,))
            log.setdefault(sig, []).append((value,))
        for sig, recorded in log.items():
            tail = recorded[-window:]
            expected = tail[0] if (len(tail) == window
                                   and len(set(tail)) == 1) else None
            assert history.predict(sig) == expected

    @given(st.integers(min_value=1, max_value=4))
    def test_never_predicts_from_empty(self, window):
        assert CommitHistory(window).predict((("r", 0),)) is None


class TestDirtyTrackingProperties:
    @given(st.lists(st.tuples(st.integers(0, 60_000),
                              st.integers(1, 9000)),
                    min_size=1, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_dirty_set_equals_union_of_write_spans(self, writes):
        mem = PhysicalMemory(size=1 << 20, base=0x10_0000)
        mem.clear_dirty()
        expected = set()
        for offset, length in writes:
            pa = mem.base + (offset % (mem.size - 16384))
            length = min(length, mem.base + mem.size - pa)
            mem.write(pa, b"\x01" * length)
            expected |= set(pages_spanning(pa, length))
        assert mem.dirty_pages() == expected

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_take_dirty_partitions_writes(self, page_indices):
        """Pages dirtied before take_dirty never appear in the next take
        unless re-written."""
        mem = PhysicalMemory(size=2 << 20, base=0x10_0000)
        mem.clear_dirty()
        half = len(page_indices) // 2
        for idx in page_indices[:half]:
            mem.write(mem.base + (idx % 256) * PAGE_SIZE, b"x")
        first = mem.take_dirty()
        for idx in page_indices[half:]:
            mem.write(mem.base + (idx % 256) * PAGE_SIZE, b"y")
        second = mem.take_dirty()
        expected_second = {(mem.base + (i % 256) * PAGE_SIZE) >> 12
                           for i in page_indices[half:]}
        assert second == expected_second
        assert not mem.dirty_pages()
        assert first | second <= {(mem.base >> 12) + i for i in range(512)}


class TestDeferralWireProperties:
    @given(st.lists(
        st.tuples(st.sampled_from(["r", "w"]),
                  st.integers(0, 0xFFF),
                  st.integers(0, 2**32 - 1)),
        min_size=1, max_size=20))
    @settings(max_examples=150)
    def test_wire_order_matches_program_order(self, ops):
        """§4.1: the client must execute the exact program order."""
        queue = DeferralQueue("t")
        sym_id = 0
        for kind, offset, value in ops:
            if kind == "r":
                sym_id += 1
                queue.add_read(offset, SymVal(sym_id, None))
            else:
                queue.add_write(offset, value, tainted=False)
        request = queue.request()
        assert len(request.ops) == len(ops)
        for (kind, offset, _), wire_op in zip(ops, request.ops):
            assert wire_op[0] == kind
            assert wire_op[1] == offset

    @given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=8),
           st.integers(0, 0xFFFF))
    @settings(max_examples=150)
    def test_dependent_write_evaluates_correctly(self, read_values, mask):
        """A write OR-combining every read in the batch evaluates on the
        client exactly as it would have natively."""
        queue = DeferralQueue("t")
        syms = []
        for i, _ in enumerate(read_values):
            sym = SymVal(i + 1, None)
            queue.add_read(0x100 + 4 * i, sym)
            syms.append(sym)
        combined = syms[0]
        for sym in syms[1:]:
            combined = combined | sym
        queue.add_write(0x200, combined | mask, tainted=False)
        request = queue.request()
        env = {i + 1: v for i, v in enumerate(read_values)}
        wire_value = request.ops[-1][2]
        expected = mask
        for v in read_values:
            expected |= v
        assert evaluate_wire(wire_value, env) == expected
