"""Property tests: symbolic expression trees must evaluate identically to
direct integer arithmetic, locally and through the wire format."""

import operator

from hypothesis import given, settings, strategies as st

from repro.core.symbolic import SymVal, evaluate_wire

BIN_OPS = [operator.or_, operator.and_, operator.xor, operator.add,
           operator.sub, operator.lshift, operator.rshift]


class _Resolver:
    def force_resolution(self, lazy):
        for sym in lazy.symbols():
            if not sym.resolved:
                sym.resolve(0)


@st.composite
def expression_programs(draw):
    """A random expression over up to 3 symbols and constants."""
    n_syms = draw(st.integers(min_value=1, max_value=3))
    values = [draw(st.integers(min_value=0, max_value=0xFFFF_FFFF))
              for _ in range(n_syms)]
    steps = draw(st.lists(
        st.tuples(
            st.sampled_from(range(len(BIN_OPS))),
            st.one_of(
                st.integers(min_value=0, max_value=n_syms - 1).map(
                    lambda i: ("sym", i)),
                st.integers(min_value=0, max_value=0xFFFF).map(
                    lambda c: ("const", c)),
            ),
        ),
        min_size=1, max_size=6))
    return values, steps


def _build(values, steps, symbolic: bool):
    shim = _Resolver()
    syms = []
    for i, v in enumerate(values):
        if symbolic:
            sym = SymVal(i + 1, shim)
            sym.resolve(v)
            syms.append(sym)
        else:
            syms.append(v)
    acc = syms[0]
    for op_idx, operand in steps:
        op = BIN_OPS[op_idx]
        if op in (operator.lshift, operator.rshift):
            # Shift amounts must be small constants in both builds.
            if operand[0] == "sym":
                continue
            rhs = operand[1] % 8
        elif operand[0] == "sym":
            rhs = syms[operand[1]]
        else:
            rhs = operand[1]
        acc = op(acc, rhs)
    return acc


class TestEquivalence:
    @given(expression_programs())
    @settings(max_examples=300)
    def test_lazy_matches_direct(self, program):
        values, steps = program
        lazy = _build(values, steps, symbolic=True)
        direct = _build(values, steps, symbolic=False)
        if isinstance(lazy, int):
            assert lazy == direct
        else:
            assert lazy.evaluate() == direct

    @given(expression_programs())
    @settings(max_examples=300)
    def test_wire_matches_direct(self, program):
        """Client-side evaluation of the shipped expression must agree
        with the cloud's symbolic evaluation (Listing 1(a)'s contract)."""
        values, steps = program
        shim = _Resolver()
        syms = [SymVal(i + 1, shim) for i in range(len(values))]
        acc = syms[0]
        for op_idx, operand in steps:
            op = BIN_OPS[op_idx]
            if op in (operator.lshift, operator.rshift):
                if operand[0] == "sym":
                    continue
                rhs = operand[1] % 8
            elif operand[0] == "sym":
                rhs = syms[operand[1]]
            else:
                rhs = operand[1]
            acc = op(acc, rhs)
        if isinstance(acc, int):
            return
        wire = acc.wire()
        env = {i + 1: v for i, v in enumerate(values)}
        for sym, value in zip(syms, values):
            sym.resolve(value)
        assert evaluate_wire(wire, env) == acc.evaluate()

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_bool_matches_int_truthiness(self, value):
        shim = _Resolver()
        sym = SymVal(1, shim)
        sym.resolve(value)
        assert bool(sym) == bool(value)

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_taint_propagation_monotone(self, a_val, b_val):
        """An expression is tainted iff any constituent symbol is."""
        shim = _Resolver()
        a, b = SymVal(1, shim), SymVal(2, shim)
        a.resolve(a_val, tainted=True)
        b.resolve(b_val, tainted=False)
        assert (a | b).tainted
        assert (a & 0xF).tainted
        assert not (b + 1).tainted
