"""Property/stress tests for concurrent artifact-store publishes.

The serve pool's workers race ``put`` on the same (tenant, digest) —
each worker that warms a program publishes it — and restarted workers
race ``get`` against in-flight publishes.  Under any interleaving the
store must stay coherent: exactly one file per (tenant, key), every
``get`` returns either ``None`` or a fully-verified program (never a
torn write — publish is write-temp + rename), and no tenant ever
observes another tenant's entry (§7.1).
"""

import tempfile
import threading
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.core.compiled import to_artifact
from repro.core.recorder import OURS_MDS, RecordSession
from repro.fleet.registry import RecordingRegistry
from repro.store import ArtifactKey, DiskStore
from tests.conftest import build_micro_graph

_STATE = {}


def _fixture():
    """One recording + per-tenant blobs, built once for the module."""
    if not _STATE:
        recording = RecordSession(build_micro_graph(),
                                  config=OURS_MDS).run().recording
        _STATE["recording"] = recording
        _STATE["blobs"] = {
            t: to_artifact(recording.compile(), tenant_id=t,
                           recording=recording)
            for t in ("t0", "t1", "t2")}
    return _STATE["recording"], _STATE["blobs"]


def _ops():
    # (tenant index, is_put) per thread; tiny alphabet -> heavy
    # collisions on the shared key.
    return st.lists(st.tuples(st.integers(0, 2), st.booleans()),
                    min_size=2, max_size=10)


class TestConcurrentPublish:
    @given(plan=_ops())
    @settings(max_examples=20, deadline=None)
    def test_racing_publishers_never_tear_or_leak(self, plan):
        recording, blobs = _fixture()
        with tempfile.TemporaryDirectory() as tmp:
            self._race(recording, blobs, plan, Path(tmp) / "race")

    def _race(self, recording, blobs, plan, root):
        store = DiskStore(root)
        key = ArtifactKey.current(recording.digest())
        barrier = threading.Barrier(len(plan))
        results = [None] * len(plan)
        errors = []

        def worker(i, tenant, is_put):
            barrier.wait()
            try:
                if is_put:
                    store.put(tenant, key, blobs[tenant])
                results[i] = (tenant, store.get(tenant, key))
            except Exception as exc:  # noqa: BLE001 - fail the property
                errors.append(exc)

        threads = [threading.Thread(target=worker,
                                    args=(i, f"t{t}", p))
                   for i, (t, p) in enumerate(plan)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()

        assert errors == []
        published = {f"t{t}" for t, p in plan if p}
        # One file per publishing tenant, none torn.
        assert len(store) == len(published)
        for row in store.verify_all():
            assert row["ok"], row["error"]
        for i, (tenant, compiled) in enumerate(r for r in results if r):
            if compiled is not None:
                # A hit is always the caller's own program, fully loaded.
                assert compiled.artifact_meta["tenant_id"] == tenant
                assert compiled.entry_count == len(recording.entries)

    @given(racers=st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_store_backed_registries_build_at_most_once_each(
            self, racers):
        """N registries (processes, in production) sharing one store
        root: every racer past the first that loses the publish race
        still ends with a valid program, and a fresh registry compiles
        nothing at all."""
        recording, _ = _fixture()
        with tempfile.TemporaryDirectory() as tmp:
            self._race_registries(recording, racers, Path(tmp) / "shared")

    def _race_registries(self, recording, racers, root):
        builds = []
        lock = threading.Lock()

        def build():
            with lock:
                builds.append(1)
            return recording.compile()

        barrier = threading.Barrier(racers)
        got = [None] * racers

        def racer(i):
            registry = RecordingRegistry(store=DiskStore(root))
            barrier.wait()
            got[i] = registry.compiled_for("t0", recording.digest(),
                                           build, recording=recording)

        threads = [threading.Thread(target=racer, args=(i,))
                   for i in range(racers)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()

        assert all(g is not None for g in got)
        assert len(store_files := list((root).rglob("*.grta"))) == 1, \
            store_files
        # A latecomer opens the artifact: zero compiles.
        late = RecordingRegistry(store=DiskStore(root))
        hits_before = len(builds)
        late.compiled_for("t0", recording.digest(), build,
                          recording=recording)
        assert len(builds) == hits_before
