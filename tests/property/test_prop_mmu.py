"""Property tests: page table construction and translation invariants."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.driver.mmu_driver import MmuTables
from repro.hw.memory import PAGE_SIZE, PhysicalMemory
from repro.hw.mmu import GpuMmu, GpuPageFault, PageTableWalker, PteFlags

RW = PteFlags.READ | PteFlags.WRITE

va_pages = st.integers(min_value=1, max_value=(1 << 27) - 1)  # VA page idx
flags = st.sampled_from([
    PteFlags.READ,
    PteFlags.READ | PteFlags.WRITE,
    PteFlags.READ | PteFlags.EXECUTE,
    PteFlags.READ | PteFlags.WRITE | PteFlags.EXECUTE,
])


@st.composite
def mapping_sets(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    pages = draw(st.lists(va_pages, min_size=n, max_size=n, unique=True))
    fl = [draw(flags) for _ in range(n)]
    return list(zip(pages, fl))


class TestMappingInvariants:
    @given(mapping_sets(), st.sampled_from([0, 1]))
    @settings(max_examples=60, deadline=None)
    def test_every_mapping_translates_back(self, mappings, pte_format):
        mem = PhysicalMemory(size=8 << 20)
        tables = MmuTables(mem, pte_format=pte_format)
        mmu = GpuMmu(mem, pte_format=pte_format)
        mmu.configure(tables.root_pa)
        backing = {}
        for va_page, fl in mappings:
            region = mem.alloc(PAGE_SIZE, "m")
            tables.insert_pages(va_page << 12, region.base, PAGE_SIZE, fl)
            backing[va_page] = (region.base, fl)
        mmu.flush_tlb()
        for va_page, (pa, fl) in backing.items():
            if fl & PteFlags.READ:
                assert mmu.translate(va_page << 12, "r") == pa
            if fl & PteFlags.WRITE:
                assert mmu.translate((va_page << 12) + 123, "w") == pa + 123
            if not fl & PteFlags.EXECUTE:
                with pytest.raises(GpuPageFault):
                    mmu.translate(va_page << 12, "x")

    @given(mapping_sets())
    @settings(max_examples=40, deadline=None)
    def test_walker_inventory_is_complete(self, mappings):
        mem = PhysicalMemory(size=8 << 20)
        tables = MmuTables(mem, pte_format=1)
        expected = set()
        for va_page, fl in mappings:
            region = mem.alloc(PAGE_SIZE, "m")
            tables.insert_pages(va_page << 12, region.base, PAGE_SIZE, fl)
            expected.add((va_page << 12, region.base, fl))
        walker = PageTableWalker(mem, 1)
        assert set(walker.mapped_pages(tables.root_pa)) == expected

    @given(mapping_sets())
    @settings(max_examples=40, deadline=None)
    def test_unmap_restores_fault(self, mappings):
        mem = PhysicalMemory(size=8 << 20)
        tables = MmuTables(mem, pte_format=1)
        mmu = GpuMmu(mem, pte_format=1)
        mmu.configure(tables.root_pa)
        for va_page, fl in mappings:
            region = mem.alloc(PAGE_SIZE, "m")
            tables.insert_pages(va_page << 12, region.base, PAGE_SIZE,
                                fl | PteFlags.READ)
        # Unmap the first half; they must fault, the rest must not.
        half = len(mappings) // 2
        for va_page, _ in mappings[:half]:
            assert tables.unmap_pages(va_page << 12, PAGE_SIZE) == 1
        mmu.flush_tlb()
        for va_page, _ in mappings[:half]:
            with pytest.raises(GpuPageFault):
                mmu.translate(va_page << 12, "r")
        for va_page, _ in mappings[half:]:
            mmu.translate(va_page << 12, "r")

    @given(mapping_sets())
    @settings(max_examples=30, deadline=None)
    def test_table_pages_tracked_exactly(self, mappings):
        """Metastate accounting: the walker and the builder agree on the
        set of page-table pages (what meta-only sync must ship, §5)."""
        mem = PhysicalMemory(size=8 << 20)
        tables = MmuTables(mem, pte_format=1)
        for va_page, fl in mappings:
            region = mem.alloc(PAGE_SIZE, "m")
            tables.insert_pages(va_page << 12, region.base, PAGE_SIZE, fl)
        walker = PageTableWalker(mem, 1)
        assert set(walker.table_pages(tables.root_pa)) == \
            tables.metastate_pfns()
