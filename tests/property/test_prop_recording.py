"""Property tests: recording serialization is lossless for arbitrary
entry sequences, and signing detects arbitrary tampering."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.recording import (
    IrqEntry,
    Marker,
    MemUpload,
    MemWrite,
    PollEntry,
    Recording,
    RecordingFormatError,
    RegRead,
    RegWrite,
)
from repro.ml.runner import RunManifest
from repro.tee.crypto import SigningKey

offsets = st.integers(min_value=0, max_value=0x3FFF)
values = st.integers(min_value=0, max_value=2**32 - 1)

reg_writes = st.builds(RegWrite, offset=offsets, value=values)
reg_reads = st.builds(RegRead, offset=offsets, value=values)
polls = st.builds(
    PollEntry, offset=offsets,
    condition=st.sampled_from(["bits_clear", "bits_set", "equals"]),
    operand=values, value=values,
    iterations=st.integers(min_value=1, max_value=10000))
irqs = st.builds(IrqEntry, line=st.sampled_from(["job", "gpu", "mmu"]))
markers = st.builds(Marker, label=st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=0, max_size=40))
uploads = st.builds(MemUpload,
                    nbytes=st.integers(min_value=0, max_value=2**40))


@st.composite
def mem_writes(draw):
    n = draw(st.integers(min_value=0, max_value=3))
    pages = []
    for _ in range(n):
        pfn = draw(st.integers(min_value=0, max_value=2**36))
        sparse = bytearray(4096)
        for _ in range(draw(st.integers(min_value=0, max_value=5))):
            idx = draw(st.integers(min_value=0, max_value=4095))
            sparse[idx] = draw(st.integers(min_value=0, max_value=255))
        pages.append((pfn, bytes(sparse)))
    return MemWrite(pages=tuple(pages))


entries = st.lists(
    st.one_of(reg_writes, reg_reads, polls, irqs, markers, uploads,
              mem_writes()),
    min_size=0, max_size=30)


def _recording(entry_list):
    return Recording(
        workload="w", recorder="OursMDS",
        sku_fingerprint=(1, 8, 2, 39, 1, ()),
        manifest=RunManifest(workload="w", input_shape=(1,),
                             output_shape=(1,)),
        data_pfns=(1, 2, 3),
        entries=list(entry_list))


class TestRoundtrip:
    @given(entries)
    @settings(max_examples=100, deadline=None)
    def test_entries_roundtrip(self, entry_list):
        key = SigningKey.generate("svc")
        rec = _recording(entry_list)
        blob = rec.sign(key)
        back = Recording.from_bytes(blob, verify_key=key)
        assert back.entries == rec.entries

    @given(entries, st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_bitflip_detected(self, entry_list, data):
        key = SigningKey.generate("svc")
        blob = bytearray(_recording(entry_list).sign(key))
        idx = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        blob[idx] ^= 1 << bit
        with pytest.raises(RecordingFormatError):
            Recording.from_bytes(bytes(blob), verify_key=key)

    @given(entries)
    @settings(max_examples=50, deadline=None)
    def test_segments_partition_entries(self, entry_list):
        rec = _recording(entry_list)
        segments = rec.segments()
        rejoined = []
        for label, seg in segments:
            rejoined.extend(seg)
        non_markers = [e for e in rec.entries if not isinstance(e, Marker)]
        assert rejoined == non_markers

    @given(entries)
    @settings(max_examples=50, deadline=None)
    def test_counts_sum_to_len(self, entry_list):
        rec = _recording(entry_list)
        assert sum(rec.counts().values()) == len(rec.entries)
