"""Property tests at system level: for *arbitrary* small NN graphs, the
record/replay loop must be deterministic and numerically correct.

This is the reproduction's strongest statement of the paper's §2.3
argument: recording captures everything (completeness), identically every
time (determinism), for any static job graph (input independence) — not
just for the six benchmark networks.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.tracediff import diff_recordings
from repro.core.recorder import OURS_MD, RecordSession
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.ml import layers as L
from repro.ml.graph import Graph, INPUT
from repro.ml.runner import generate_weights, reference_forward


@st.composite
def random_graphs(draw):
    """A small random CNN: conv/pool/activation stages + a dense head."""
    channels = draw(st.sampled_from([1, 2]))
    size = draw(st.sampled_from([6, 8]))
    g = Graph("random", (channels, size, size))
    last_shape = g.input_shape
    n_stages = draw(st.integers(min_value=1, max_value=3))
    for i in range(n_stages):
        kind = draw(st.sampled_from(
            ["conv", "dwconv", "relu", "bn", "pool", "residual"]))
        name = f"s{i}"
        if kind == "conv":
            out_c = draw(st.integers(min_value=1, max_value=4))
            act = draw(st.sampled_from([None, "relu"]))
            g.add(name, L.Conv2D(out_c, 3, pad=1, activation=act),
                  [g.nodes[-1].name if g.nodes else INPUT])
        elif kind == "dwconv":
            g.add(name, L.DWConv2D(3, pad=1, activation="relu"),
                  [g.nodes[-1].name if g.nodes else INPUT])
        elif kind == "relu":
            g.add(name, L.ReLU(),
                  [g.nodes[-1].name if g.nodes else INPUT])
        elif kind == "bn":
            g.add(name, L.BatchNorm(activation=None),
                  [g.nodes[-1].name if g.nodes else INPUT])
        elif kind == "pool":
            prev = g.nodes[-1].name if g.nodes else INPUT
            _, h, w = g.shape_of(prev)
            if h >= 4 and h % 2 == 0:
                g.add(name, L.MaxPool(2), [prev])
            else:
                g.add(name, L.ReLU(), [prev])
        elif kind == "residual":
            prev = g.nodes[-1].name if g.nodes else INPUT
            g.add(f"{name}a", L.ReLU(), [prev])
            g.add(name, L.Add(activation="relu"), [f"{name}a", prev])
        last_shape = g.output.out_shape if g.nodes else last_shape
    head = draw(st.integers(min_value=2, max_value=5))
    g.add("fc", L.Dense(head),
          [g.nodes[-1].name if g.nodes else INPUT])
    if draw(st.booleans()):
        g.add("softmax", L.Softmax(), ["fc"])
    g.validate()
    return g


# Record runs are the expensive part; a handful of random graphs already
# covers far more lowering/addressing paths than the fixed workloads.
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(random_graphs(), st.integers(min_value=0, max_value=2**16))
def test_record_replay_correct_for_arbitrary_graphs(graph, seed):
    session = RecordSession(graph, config=OURS_MD, seed=0)
    result = session.run()

    device = ClientDevice.for_workload(graph)
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=session.service.recording_key)
    recording = replayer.load(result.recording.to_bytes())

    rng = np.random.RandomState(seed)
    inp = rng.rand(*graph.input_shape).astype(np.float32)
    weights = generate_weights(graph, seed=seed % 97)
    out = replayer.replay(recording, inp, weights)
    expected = reference_forward(graph, weights, inp)
    np.testing.assert_allclose(out.output, expected, atol=1e-3, rtol=1e-3)


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_graphs())
def test_recording_deterministic_for_arbitrary_graphs(graph):
    """Two record runs of any workload produce identical traces (§2.3)."""
    a = RecordSession(graph, config=OURS_MD, client_id="a").run()
    b = RecordSession(graph, config=OURS_MD, client_id="b").run()
    report = diff_recordings(a.recording, b.recording)
    assert report.identical, report.summary()
