"""Property tests on the GPU register file's hardware semantics."""

from hypothesis import given, settings, strategies as st

from repro.hw import regs
from repro.hw.gpu import MaliGpu, POWER_TRANSITION_S
from repro.hw.memory import PhysicalMemory
from repro.hw.sku import HIKEY960_G71, driver_supported_skus
from repro.sim.clock import VirtualClock


def make_gpu(sku=HIKEY960_G71):
    return MaliGpu(sku, PhysicalMemory(size=4 << 20), VirtualClock())


u32 = st.integers(min_value=0, max_value=2**32 - 1)


class TestIrqSemantics:
    @given(u32, u32)
    @settings(max_examples=100)
    def test_status_is_rawstat_and_mask(self, mask, clear):
        """JOB_IRQ_STATUS == RAWSTAT & MASK always, under any mask/clear."""
        gpu = make_gpu()
        gpu.write_reg(regs.GPU_IRQ_MASK, mask)
        gpu.write_reg(regs.L2_PWRON_LO, 0x3)
        gpu.clock.advance(POWER_TRANSITION_S * 2)
        gpu.write_reg(regs.GPU_IRQ_CLEAR, clear)
        raw = gpu.read_reg(regs.GPU_IRQ_RAWSTAT)
        status = gpu.read_reg(regs.GPU_IRQ_STATUS)
        assert status == raw & mask & 0xFFFF_FFFF

    @given(st.lists(u32, min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_clear_is_monotone(self, clears):
        """Write-1-to-clear never *sets* bits."""
        gpu = make_gpu()
        gpu.write_reg(regs.L2_PWRON_LO, 0x3)
        gpu.clock.advance(POWER_TRANSITION_S * 2)
        raw = gpu.read_reg(regs.GPU_IRQ_RAWSTAT)
        for clear in clears:
            gpu.write_reg(regs.GPU_IRQ_CLEAR, clear)
            new_raw = gpu.read_reg(regs.GPU_IRQ_RAWSTAT)
            assert new_raw & ~raw == 0  # no new bits appeared
            raw = new_raw


class TestReadOnlyRegisters:
    @given(u32)
    @settings(max_examples=60)
    def test_identity_registers_immune_to_writes(self, value):
        gpu = make_gpu()
        before = [gpu.read_reg(r) for r in
                  (regs.GPU_ID, regs.SHADER_PRESENT_LO, regs.L2_PRESENT_LO,
                   regs.AS_PRESENT)]
        for r in (regs.GPU_ID, regs.SHADER_PRESENT_LO,
                  regs.L2_PRESENT_LO, regs.AS_PRESENT):
            gpu.write_reg(r, value)
        after = [gpu.read_reg(r) for r in
                 (regs.GPU_ID, regs.SHADER_PRESENT_LO, regs.L2_PRESENT_LO,
                  regs.AS_PRESENT)]
        assert before == after


class TestSkuConsistency:
    @given(st.sampled_from(driver_supported_skus()))
    @settings(max_examples=30, deadline=None)
    def test_present_masks_match_sku(self, sku):
        gpu = make_gpu(sku)
        assert gpu.read_reg(regs.SHADER_PRESENT_LO) == \
            sku.shader_present_mask & 0xFFFF_FFFF
        assert gpu.read_reg(regs.L2_PRESENT_LO) == sku.l2_present_mask
        assert gpu.read_reg(regs.GPU_ID) == sku.gpu_id

    @given(st.sampled_from(driver_supported_skus()))
    @settings(max_examples=20, deadline=None)
    def test_reset_restores_pristine_state(self, sku):
        """After a hard reset every observable register matches a fresh
        device — the property replay correctness rests on."""
        gpu = make_gpu(sku)
        fresh = make_gpu(sku)
        # Disturb a broad set of state.
        gpu.write_reg(regs.GPU_IRQ_MASK, 0xFFFF)
        gpu.write_reg(regs.L2_PWRON_LO, 0xF)
        gpu.write_reg(regs.SHADER_CONFIG, 0x123)
        gpu.write_reg(regs.as_reg(0, regs.AS_TRANSTAB_LO), 0x8000_0000)
        gpu.clock.advance(1e-3)
        gpu.hard_reset_now()
        probe_regs = [regs.GPU_ID, regs.GPU_IRQ_RAWSTAT, regs.GPU_IRQ_MASK,
                      regs.SHADER_READY_LO, regs.L2_READY_LO,
                      regs.SHADER_CONFIG, regs.LATEST_FLUSH,
                      regs.as_reg(0, regs.AS_TRANSTAB_LO),
                      regs.js_reg(0, regs.JS_STATUS)]
        assert [gpu.read_reg(r) for r in probe_regs] == \
            [fresh.read_reg(r) for r in probe_regs]
