"""Property tests: the dump codec must be lossless for any input."""

from hypothesis import given, settings, strategies as st

from repro.core.compress import best_encode, decode, encode, is_delta

blocks = st.binary(min_size=0, max_size=2048)
sparse_blocks = st.builds(
    lambda size, positions, values: _sparse(size, positions, values),
    st.integers(min_value=1, max_value=4096),
    st.lists(st.integers(min_value=0, max_value=4095), max_size=20),
    st.lists(st.integers(min_value=1, max_value=255), max_size=20),
)


def _sparse(size, positions, values):
    data = bytearray(size)
    for pos, val in zip(positions, values):
        data[pos % size] = val
    return bytes(data)


class TestRoundtrip:
    @given(blocks)
    @settings(max_examples=200)
    def test_raw_roundtrip(self, data):
        assert decode(encode(data)) == data

    @given(sparse_blocks)
    @settings(max_examples=200)
    def test_sparse_roundtrip(self, data):
        assert decode(encode(data)) == data

    @given(sparse_blocks)
    def test_sparse_never_inflates_much(self, data):
        # Worst case is bounded: header + tokens around each literal run.
        assert len(encode(data)) <= len(data) + 9 + 8 * 21

    @given(st.binary(min_size=16, max_size=1024), st.data())
    @settings(max_examples=150)
    def test_delta_roundtrip(self, base, data):
        changed = bytearray(base)
        n_edits = data.draw(st.integers(min_value=0, max_value=8))
        for _ in range(n_edits):
            idx = data.draw(st.integers(min_value=0, max_value=len(base) - 1))
            changed[idx] ^= data.draw(st.integers(min_value=1, max_value=255))
        packed = encode(bytes(changed), prev=base)
        assert decode(packed, prev=base) == bytes(changed)

    @given(st.binary(min_size=16, max_size=512),
           st.binary(min_size=16, max_size=512))
    @settings(max_examples=100)
    def test_best_encode_roundtrip_any_base(self, data, noise):
        base = (noise * ((len(data) // max(len(noise), 1)) + 1))[:len(data)]
        packed = best_encode(data, prev=base)
        prev = base if is_delta(packed) else None
        assert decode(packed, prev=prev) == data

    @given(st.binary(min_size=1, max_size=512))
    def test_identical_delta_is_small(self, data):
        packed = encode(data, prev=data)
        assert len(packed) <= 9
