"""Corpus: malformed and stale PollSpec declarations (poll-spec).

Three distinct failure shapes: an unknown condition kind, a max_iters
that is not a positive loop-local constant (breaking §4.3 criterion 2),
and a spec that never reaches poll() — it instruments nothing.
"""

from repro.driver.bus import PollCondition, PollSpec


def bogus_condition(bus):
    return bus.poll(PollSpec(
        offset=0x20,
        condition=PollCondition.SOMEDAY,  # fires: unknown condition kind
        operand=1,
        max_iters=100,
        delay_per_iter_s=1e-6,
        tag="bogus-cond",
    ))


def unbounded(bus, n):
    return bus.poll(PollSpec(
        offset=0x20,
        condition=PollCondition.BITS_SET,
        operand=1,
        max_iters=n,  # fires: not a loop-local constant
        delay_per_iter_s=1e-6,
        tag="unbounded",
    ))


def stale():
    spec = PollSpec(  # fires: never wired to an executor
        offset=0x20,
        condition=PollCondition.BITS_SET,
        operand=1,
        max_iters=100,
        delay_per_iter_s=1e-6,
        tag="stale",
    )
    return spec
