"""Corpus: wall-clock reads and unseeded RNG (determinism).

Any of these lets a record run diverge from its replay — the stack must
be a pure function of (workload, seed).
"""

import random
import time

import numpy as np


def jitter():
    return time.time() + random.random()  # fires twice: clock + global RNG


def noise(shape):
    rng = np.random.RandomState()  # fires: unseeded constructor
    return np.random.normal(size=shape) + rng.standard_normal()  # fires: global numpy RNG
