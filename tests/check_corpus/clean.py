"""Corpus: conformant driver-style code — every rule stays quiet.

Exercises the sanctioned form of each pattern the bad_* files break:
raw access inside a RegisterBus implementation, a declared+executed
PollSpec, control-dependency and externalization commits, and
explicitly-seeded randomness.
"""

import random

from repro.driver.bus import PollCondition, PollSpec, RegisterBus

GPU_IRQ_RAWSTAT = 0x20
RESET_COMPLETED = 1 << 8


class LoopbackBus(RegisterBus):
    """Bus implementations sit below the boundary: raw access is theirs."""

    def __init__(self, gpu):
        self.gpu = gpu

    def read32(self, offset):
        return self.gpu.read_reg(offset)

    def write32(self, offset, value):
        self.gpu.write_reg(offset, value)


def wait_reset(bus):
    # The declared, executed §4.3 form of a busy-wait loop.
    return bus.poll(PollSpec(
        offset=GPU_IRQ_RAWSTAT,
        condition=PollCondition.BITS_SET,
        operand=RESET_COMPLETED,
        max_iters=500,
        delay_per_iter_s=10e-6,
        tag="reset-wait",
    ))


def handle_irq(env, bus):
    stat = bus.read32(GPU_IRQ_RAWSTAT)
    if stat & RESET_COMPLETED:  # control dependency: sanctioned force
        env.printk("reset done, rawstat=%x", stat)  # bare lazy argument
    return int(stat)  # already committed by the branch above


def draw(seed):
    rng = random.Random(seed)  # explicitly seeded: sanctioned
    return rng.random()
