"""Corpus: awaiting while holding a synchronous lock
(conc-await-holding-lock).

The coroutine suspends with the lock held; every thread contending for
it — and every other task on this event loop that ever needs it —
stalls until the scheduler happens to resume this frame.
"""

import asyncio
import threading


class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self.flushed = 0

    async def flush(self):
        with self._lock:
            await asyncio.sleep(0)  # fires: await with the lock held
            self.flushed += 1
