"""Corpus: thread created without any join path
(conc-unjoined-thread).

Nothing in the class ever joins ``_watcher``: at close (or interpreter
exit) the daemon may still be mid-mutation on shared state, so teardown
cannot prove quiescence.
"""

import threading


class Watcher:
    def __init__(self):
        self._watcher = None
        self.beats = 0

    def start(self):
        self._watcher = threading.Thread(  # fires: no join path exists
            target=self._watch, daemon=True)
        self._watcher.start()

    def _watch(self):
        pass

    def close(self):
        pass
