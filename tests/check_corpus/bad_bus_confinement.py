"""Corpus: raw MMIO outside a RegisterBus subclass (bus-confinement).

Every access here bypasses the shim — it would be invisible to the
register log and to deferral/speculation.  Each marked line must fire.
"""

GPU_STATUS = 0x34


class NotABus:
    """Looks bus-adjacent but does not implement RegisterBus."""

    def __init__(self, gpu):
        self.gpu = gpu

    def peek(self):
        return self.gpu.read_reg(GPU_STATUS)  # fires: raw read

    def poke(self, value):
        self.gpu.write_reg(GPU_STATUS, value)  # fires: raw write

    def poke_file(self, value):
        self.gpu.regs[GPU_STATUS] = value  # fires: register-file poke
