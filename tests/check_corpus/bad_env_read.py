"""Corpus: process-environment reads outside the sanctioned config
module (env-read).

An env toggle makes a run a function of shell state instead of
(workload, seed); every knob must surface as an explicit parameter via
repro.core.config.
"""

import os


def pick_engine():
    if os.environ.get("REPRO_LEGACY_REPLAY") == "1":  # fires: .get
        return "legacy"
    return os.getenv("REPRO_ENGINE", "compiled")  # fires: os.getenv


def debug_level():
    return int(os.environ["REPRO_DEBUG"])  # fires: subscript read


def set_flag():
    os.environ["REPRO_FLAG"] = "1"  # quiet: a write keys nothing
