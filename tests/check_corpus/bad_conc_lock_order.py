"""Corpus: inconsistent static lock acquisition order
(conc-lock-order).

``credit`` nests registry under pool; ``debit`` nests pool under
registry.  Two threads taking the opposite paths deadlock — the static
graph has the cycle whether or not any schedule ever trips it.
"""

import threading


class Transfer:
    def __init__(self):
        self._pool_lock = threading.Lock()
        self._registry_lock = threading.Lock()
        self.balance = 0

    def credit(self):
        with self._pool_lock:
            with self._registry_lock:
                self.balance += 1

    def debit(self):
        with self._registry_lock:
            with self._pool_lock:  # fires: inverts credit()'s order
                self.balance -= 1
