"""Corpus: bare lock()/unlock() pair around deferred MMIO
(release-consistency).

An exception between the two calls leaks the lock with deferred
accesses still pending; only `with mutex:` guarantees on_unlock flushes
the commit first.
"""

GPU_COMMAND = 0x30


def flush_caches(kbdev, cmd):
    kbdev.hwaccess_lock.lock()  # fires: bare acquire
    kbdev.bus.write32(GPU_COMMAND, cmd)
    kbdev.hwaccess_lock.unlock()  # fires: bare release
