"""Corpus: raw busy-wait loop meeting the §4.3 criteria (poll-undeclared).

Single loop-invariant register read, no writes, bounded by a loop-local
constant, no external kernel APIs — exactly what GR-T's analysis would
offload, but never declared as a PollSpec.
"""

GPU_IRQ_RAWSTAT = 0x20
RESET_COMPLETED = 1 << 8


def wait_reset(bus, delay):
    stat = 0
    for _ in range(500):  # fires: offload-eligible but undeclared
        stat = bus.read32(GPU_IRQ_RAWSTAT)
        if stat & RESET_COMPLETED:
            break
        delay(10e-6)
    return stat


def wait_reset_while(bus, delay):
    tries = 0
    stat = 0
    while tries < 200:  # fires: counter-vs-literal bound, same criteria
        stat = bus.read32(GPU_IRQ_RAWSTAT)
        if stat & RESET_COMPLETED:
            break
        tries = tries + 1
        delay(10e-6)
    return stat
