"""Corpus: lock-disciplined worker — every concurrency rule stays quiet.

Shared state (``_closing``, ``done``) is only ever touched under the
one lock, acquisition order is trivially consistent, nothing blocks or
awaits while holding it, and ``close`` joins the worker before
returning.
"""

import threading


class CleanPool:
    def __init__(self):
        self._lock = threading.Lock()
        self._closing = False
        self.done = 0
        self._worker = None

    def start(self):
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        while True:
            with self._lock:
                if self._closing:
                    return
                self.done += 1

    def close(self):
        with self._lock:
            self._closing = True
        self._worker.join()
        with self._lock:
            return self.done
