"""Corpus: symbolic register values forced outside a commit point
(sym-force).

Each function reproduces one hazard shape from §4.2: forcing at the
read site, formatting a never-branched value, and coercing inside a
printk argument list (which evaluates before the externalization hook
fires).
"""

GPU_STATUS = 0x34


def force_at_read_site(bus):
    return int(bus.read32(GPU_STATUS))  # fires: forced at the read


def force_unbranched(bus):
    status = bus.read32(GPU_STATUS)
    return "status=%x" % status  # fires: %-format with no prior commit


def force_in_printk_args(env, bus):
    fault = bus.read32(GPU_STATUS)
    env.printk("fault=%x", int(fault))  # fires: coerced before the hook
