"""Corpus: shared mutable state touched outside any lock scope
(conc-unlocked-shared).

``tasks_done`` is written by the collector thread and read by the
caller, so it is shared; the collector's increment skips the lock the
reader takes — exactly the unordered conflicting access the rule (and
RaceSan at runtime) exists to catch.
"""

import threading


class Collector:
    def __init__(self):
        self._lock = threading.Lock()
        self.tasks_done = 0
        self._thread = None

    def start(self):
        self._thread = threading.Thread(target=self._drain)
        self._thread.start()

    def _drain(self):
        self.tasks_done += 1  # fires: unlocked write to shared state

    def close(self):
        self._thread.join()
        with self._lock:
            return self.tasks_done
