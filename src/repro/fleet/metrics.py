"""Fleet metrics: latency percentiles, throughput, cache and admission.

Collects one :class:`SessionRecord` per offered session and reduces them
to the serving numbers every later scaling PR is judged against:

* p50/p95/p99 **session latency** (arrival to recording-in-hand),
  overall and per link type — WAN latency is the paper's whole subject,
  so WiFi and cellular tails are reported separately;
* **service time** (admission to completion, queueing excluded) split by
  cache hit/miss — the registry's speedup, isolated from load effects;
* **throughput**, **cache hit rate**, **rejection rate**;
* **VM-seconds and dollars** via :class:`~repro.cloud.service.CostModel`
  (§3.3's cost-effectiveness argument, now measured fleet-wide).

Percentiles use the deterministic nearest-rank definition (no
interpolation), so metrics JSON is bit-stable for a given (seed, config)
and safe to diff across PRs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

PERCENTILES = (50, 95, 99)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if q <= 0:
        return ordered[0]
    rank = int(-(-q * len(ordered) // 100))  # ceil(q/100 * n)
    return ordered[min(len(ordered), max(rank, 1)) - 1]


@dataclass
class SessionRecord:
    """Everything one session contributes to the fleet report."""

    request_id: str
    tenant_id: str
    workload: str
    sku_name: str
    link_name: str
    arrival_s: float
    rejected: bool = False
    admitted_s: Optional[float] = None
    completed_s: Optional[float] = None
    cache_hit: bool = False
    warm_vm: bool = False
    # Resilience (repro.resilience.failover): time the session spent
    # blocked on its link, how many VM deaths it survived, and the
    # death-to-resumed latency those failovers cost.
    time_blocked_s: float = 0.0
    failovers: int = 0
    failover_wait_s: float = 0.0

    @property
    def latency_s(self) -> Optional[float]:
        """Arrival to completion, queue wait included."""
        if self.completed_s is None:
            return None
        return self.completed_s - self.arrival_s

    @property
    def service_s(self) -> Optional[float]:
        """Admission to completion: the work itself, sans queueing."""
        if self.completed_s is None or self.admitted_s is None:
            return None
        return self.completed_s - self.admitted_s

    @property
    def wait_s(self) -> float:
        if self.admitted_s is None:
            return 0.0
        return self.admitted_s - self.arrival_s


def _dist(values: List[float]) -> Dict[str, float]:
    out = {f"p{q}": percentile(values, q) for q in PERCENTILES}
    out["mean"] = sum(values) / len(values) if values else 0.0
    out["count"] = len(values)
    return out


@dataclass
class FleetMetrics:
    """Accumulates session records and reduces them to the fleet report."""

    records: List[SessionRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add(self, record: SessionRecord) -> None:
        self.records.append(record)

    # Convenience views ------------------------------------------------
    @property
    def completed(self) -> List[SessionRecord]:
        return [r for r in self.records if r.completed_s is not None]

    @property
    def rejected(self) -> List[SessionRecord]:
        return [r for r in self.records if r.rejected]

    def latencies(self, link: Optional[str] = None) -> List[float]:
        return [r.latency_s for r in self.completed
                if link is None or r.link_name == link]

    def service_times(self, cache_hit: Optional[bool] = None) -> List[float]:
        return [r.service_s for r in self.completed
                if cache_hit is None or r.cache_hit == cache_hit]

    def blocked_times(self, link: Optional[str] = None) -> List[float]:
        return [r.time_blocked_s for r in self.completed
                if link is None or r.link_name == link]

    # ------------------------------------------------------------------
    def summary(self, makespan_s: float, vm_seconds: float = 0.0,
                cost_usd: float = 0.0) -> Dict:
        """The fleet report as a plain JSON-able dict."""
        offered = len(self.records)
        done = self.completed
        links = sorted({r.link_name for r in done})
        hits = sum(1 for r in done if r.cache_hit)
        summary = {
            "sessions": {
                "offered": offered,
                "completed": len(done),
                "rejected": len(self.rejected),
                "rejection_rate": (len(self.rejected) / offered
                                   if offered else 0.0),
            },
            "cache": {
                "hits": hits,
                "misses": len(done) - hits,
                "hit_rate": hits / len(done) if done else 0.0,
            },
            "latency_s": {
                "overall": _dist(self.latencies()),
                "by_link": {link: _dist(self.latencies(link))
                            for link in links},
            },
            "service_s": {
                "cache_hit": _dist(self.service_times(cache_hit=True)),
                "cache_miss": _dist(self.service_times(cache_hit=False)),
            },
            "queue_wait_s": _dist([r.wait_s for r in done]),
            "network": {
                "time_blocked_s": {
                    "overall": _dist(self.blocked_times()),
                    "by_link": {link: _dist(self.blocked_times(link))
                                for link in links},
                },
            },
            "failover": {
                "sessions_with_failover": sum(1 for r in done
                                              if r.failovers > 0),
                "total_failovers": sum(r.failovers for r in done),
                "wait_s": _dist([r.failover_wait_s for r in done
                                 if r.failovers > 0]),
            },
            "throughput_sessions_per_s": (len(done) / makespan_s
                                          if makespan_s > 0 else 0.0),
            "makespan_s": makespan_s,
            "vm": {"vm_seconds": vm_seconds, "cost_usd": cost_usd},
        }
        return _round_floats(summary)


def _round_floats(doc, digits: int = 9):
    """Round every float so the JSON rendering is stable and readable."""
    if isinstance(doc, dict):
        return {k: _round_floats(v, digits) for k, v in doc.items()}
    if isinstance(doc, list):
        return [_round_floats(v, digits) for v in doc]
    if isinstance(doc, float):
        return round(doc, digits)
    return doc
