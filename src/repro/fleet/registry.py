"""Per-tenant recording registry (content-addressed cache).

GPUReplay (arXiv:2105.05085) observes that a recording is input-
independent: it depends only on what software dry-ran it and for which
hardware.  So a *tenant's own* repeat request for the same
(workload, GPU family, runtime flavor) can skip the dry run entirely and
just re-download its recording — the dominant cost of a session
disappears on a cache hit.

The cache is **strictly per-tenant** (§7.1: "recordings are never cached
across clients even for identical GPU SKUs").  The content address is
scoped inside a tenant bucket, never global; a lookup only ever consults
the calling tenant's bucket, and every returned entry is re-checked
against the caller — a mismatch raises :class:`TenantIsolationError`
rather than serving a foreign recording.  Two tenants with identical
keys therefore each pay their own dry run, exactly the cost the paper's
threat model demands.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.obs.metrics import StatsBase


class TenantIsolationError(RuntimeError):
    """A cache entry crossed a tenant boundary — never served, always raised."""


@dataclass(frozen=True)
class RecordingKey:
    """The content address: everything replay compatibility depends on.

    ``sku_compatible`` is the device-tree ``compatible`` string (driver
    family), and the per-SKU fingerprint rides in ``sku_name`` — two SKUs
    of one family still produce distinct, non-interchangeable recordings
    (§2.4).
    """

    workload: str
    sku_compatible: str
    sku_name: str
    flavor: str

    def as_tuple(self) -> Tuple[str, str, str, str]:
        return (self.workload, self.sku_compatible, self.sku_name,
                self.flavor)


@dataclass
class CachedRecording:
    """One tenant-owned recording plus the provenance the report needs."""

    key: RecordingKey
    tenant_id: str
    recording_bytes: int
    dry_run_s: float
    signature: bytes
    created_at: float
    serves: int = 0
    # Content digest of the recording body (sha256 hex) — the key under
    # which the compiled columnar form is cached (see compiled_for).
    digest: str = ""


@dataclass
class RegistryStats(StatsBase):
    SCHEMA = "repro.registry"

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class Eviction:
    """What :meth:`RecordingRegistry.evict_tenant` removed."""

    tenant_id: str
    recordings: int
    compiled: int
    #: Artifacts dropped from the attached second-tier store (0 when the
    #: registry runs memory-only).
    store_artifacts: int = 0


class RecordingRegistry:
    """Tenant-bucketed recording cache; buckets never cross-pollinate.

    Thread-safe: the serving engine replays through the registry from
    concurrent sessions, so every mutation happens under one lock, and
    ``compiled_for`` guarantees a single ``build()`` per (tenant,
    digest) even when sessions race on a cold key.
    """

    def __init__(self, sanitizer=None, store=None) -> None:
        self.sanitizer = sanitizer
        #: Optional second cache tier (:class:`repro.store.DiskStore` /
        #: ``MemoryStore`` / anything with ``get``/``put``): compiled
        #: programs missing in memory are opened from here before being
        #: rebuilt, and fresh builds are published back (when the
        #: recording is available to serialize against).
        self.artifact_store = store
        self._by_tenant: Dict[str, Dict[RecordingKey, CachedRecording]] = {}
        self.stats = RegistryStats()
        # Compiled columnar recordings, keyed (tenant, content digest).
        # Like the recording cache itself the bucket is tenant-scoped:
        # two tenants with bit-identical recordings each get their own
        # lowering (§7.1 — nothing derived from a recording is shared).
        self._compiled: Dict[Tuple[str, str], object] = {}
        self.compiled_stats = RegistryStats()
        self._lock = threading.RLock()
        if sanitizer is not None:
            self._lock = sanitizer.wrap_lock(
                self._lock, "RecordingRegistry._lock")
        # Keys with a build() in flight; racers wait on the event
        # instead of building a duplicate.
        self._building: Dict[Tuple[str, str], threading.Event] = {}

    def _note(self, tag: str, write: bool) -> None:
        if self.sanitizer is not None:
            self.sanitizer.note("RecordingRegistry." + tag, write)

    # ------------------------------------------------------------------
    def lookup(self, tenant_id: str,
               key: RecordingKey) -> Optional[CachedRecording]:
        """Return the tenant's cached recording for ``key``, or None.

        Counts a hit/miss either way; a hit bumps the entry's ``serves``.
        """
        with self._lock:
            self._note("by_tenant", write=False)
            entry = self._by_tenant.get(tenant_id, {}).get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.tenant_id != tenant_id:
                raise TenantIsolationError(
                    f"registry bucket for {tenant_id!r} holds a recording "
                    f"owned by {entry.tenant_id!r}")
            self.stats.hits += 1
            entry.serves += 1
            return entry

    def store(self, tenant_id: str, entry: CachedRecording) -> None:
        if entry.tenant_id != tenant_id:
            raise TenantIsolationError(
                f"cannot file {entry.tenant_id!r}'s recording under "
                f"{tenant_id!r}")
        with self._lock:
            self._note("by_tenant", write=True)
            self._by_tenant.setdefault(tenant_id, {})[entry.key] = entry

    # ------------------------------------------------------------------
    def compiled_for(self, tenant_id: str, digest: str,
                     build: Callable[[], object],
                     recording=None) -> object:
        """The tenant's compiled form for a recording digest.

        Two-tier lookup: the in-memory map first, then the attached
        artifact store (``store=``) — a store hit is opened (memmap,
        integrity re-checked) and cached in memory; only a miss in both
        tiers runs ``build()`` (typically ``Recording.compile``), and
        the fresh build is published back to the store when
        ``recording`` is supplied to serialize against.  Concurrent
        callers racing on a cold key wait for the one in-flight
        open-or-build rather than each lowering their own copy;
        ``build()`` itself runs outside the lock, so distinct keys
        compile in parallel.  Store publish failures are swallowed
        (the memory tier still serves) — store *isolation* violations
        are not.
        """
        key = (tenant_id, digest)
        while True:
            with self._lock:
                self._note("compiled", write=False)
                hit = self._compiled.get(key)
                if hit is not None:
                    self.compiled_stats.hits += 1
                    return hit
                pending = self._building.get(key)
                if pending is None:
                    self._building[key] = threading.Event()
                    self.compiled_stats.misses += 1
                    break
            # Another session is lowering this key right now; wait and
            # re-check (if its build fails we take over as builder).
            pending.wait()
        try:
            built = self._store_get(tenant_id, digest)
            if built is None:
                built = build()
                self._store_put(tenant_id, digest, built, recording)
        except BaseException:
            with self._lock:
                event = self._building.pop(key)
            event.set()
            raise
        with self._lock:
            self._note("compiled", write=True)
            self._compiled[key] = built
            event = self._building.pop(key)
        event.set()
        return built

    def _store_get(self, tenant_id: str, digest: str):
        if self.artifact_store is None:
            return None
        from repro.store.base import ArtifactKey
        return self.artifact_store.get(tenant_id, ArtifactKey.current(digest))

    def _store_put(self, tenant_id: str, digest: str, built,
                   recording) -> None:
        if self.artifact_store is None or recording is None:
            return
        from repro.core.compiled import to_artifact
        from repro.store.base import ArtifactKey, StoreError
        try:
            blob = to_artifact(built, tenant_id=tenant_id,
                               recording=recording,
                               recording_digest=digest)
            self.artifact_store.put(tenant_id, ArtifactKey.current(digest),
                                    blob)
        except StoreError:
            # Publish is an optimization; replay proceeds from memory.
            pass

    def compiled_count(self) -> int:
        with self._lock:
            return len(self._compiled)

    # ------------------------------------------------------------------
    def evict_tenant(self, tenant_id: str) -> Eviction:
        """Drop the tenant's bucket *and* every compiled program derived
        from it.

        Eviction is the §7.1 off-boarding path: once a tenant leaves,
        nothing derived from its recordings may linger — a compiled
        program that survived its recording would be exactly the kind of
        cross-lifetime derived state the isolation rule forbids.
        """
        with self._lock:
            bucket = self._by_tenant.pop(tenant_id, None)
            dropped = [key for key in self._compiled
                       if key[0] == tenant_id]
            for key in dropped:
                del self._compiled[key]
        store_dropped = 0
        if self.artifact_store is not None and \
                hasattr(self.artifact_store, "evict_tenant"):
            store_dropped = len(self.artifact_store.evict_tenant(tenant_id))
        return Eviction(tenant_id=tenant_id,
                        recordings=len(bucket) if bucket else 0,
                        compiled=len(dropped),
                        store_artifacts=store_dropped)

    # ------------------------------------------------------------------
    def tenants(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._by_tenant)

    def entries_for(self, tenant_id: str) -> Tuple[CachedRecording, ...]:
        with self._lock:
            return tuple(self._by_tenant.get(tenant_id, {}).values())

    def __len__(self) -> int:
        with self._lock:
            return sum(len(bucket) for bucket in self._by_tenant.values())

    def audit_isolation(self) -> int:
        """Sweep every bucket; raise if any entry is misfiled.

        Returns the number of entries checked — benchmarks call this as
        the §7.1 security assertion after a full fleet run.
        """
        checked = 0
        with self._lock:
            for tenant_id, bucket in self._by_tenant.items():
                for entry in bucket.values():
                    if entry.tenant_id != tenant_id:
                        raise TenantIsolationError(
                            f"{tenant_id!r} bucket holds "
                            f"{entry.tenant_id!r}'s recording")
                    checked += 1
        return checked
