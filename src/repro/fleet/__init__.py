"""repro.fleet — the multi-tenant serving layer.

The seed serves one client session at a time; this package serves many,
on virtual time: a discrete-event scheduler interleaves session
processes (:mod:`repro.fleet.scheduler`), a VM pool bounds capacity and
amortizes boot cost (:mod:`repro.fleet.pool`), a strictly per-tenant
recording registry turns repeat requests into cache hits
(:mod:`repro.fleet.registry`), a seeded generator produces Poisson load
over the paper's workloads (:mod:`repro.fleet.workload`), sessions and
their analytic cost model live in :mod:`repro.fleet.session`, and
:mod:`repro.fleet.metrics` reduces a run to latency percentiles,
throughput, cache/rejection rates, and dollars.

Entry point: ``python -m repro fleet`` or :func:`run_fleet`.
"""

from repro.fleet.metrics import FleetMetrics, SessionRecord, percentile
from repro.fleet.pool import PoolSaturated, PoolStats, VmLease, VmPool
from repro.fleet.registry import (
    CachedRecording,
    Eviction,
    RecordingKey,
    RecordingRegistry,
    TenantIsolationError,
)
from repro.fleet.scheduler import Event, Process, Scheduler, Timeout
from repro.fleet.session import (
    FleetSimulation,
    SessionCostModel,
    SessionCosts,
    run_fleet,
)
from repro.fleet.workload import (
    DEFAULT_MIX,
    SessionRequest,
    TenantProfile,
    WorkloadGenerator,
)

__all__ = [
    "CachedRecording", "DEFAULT_MIX", "Event", "Eviction", "FleetMetrics",
    "FleetSimulation", "PoolSaturated", "PoolStats", "Process",
    "RecordingKey", "RecordingRegistry", "Scheduler", "SessionCostModel",
    "SessionCosts", "SessionRecord", "SessionRequest", "TenantIsolationError",
    "TenantProfile", "Timeout", "VmLease", "VmPool", "WorkloadGenerator",
    "percentile", "run_fleet",
]
