"""Discrete-event session scheduler over the virtual clock.

The seed runs one client session at a time: everything advances a single
:class:`~repro.sim.clock.VirtualClock` serially.  Serving "heavy traffic
from millions of users" needs *interleaving*: while one session waits on
a WAN round trip another can be dry-running, a third booting its VM.

This module is a minimal process-based discrete-event kernel (in the
simpy tradition, sized for this repo).  A *process* is a plain generator
that yields:

* :class:`Timeout` — resume after a fixed amount of virtual time;
* :class:`Event`   — resume when someone calls :meth:`Event.succeed`,
  receiving the value it was triggered with (``lease = yield ev``);
* another :class:`Process` — resume when that process finishes,
  receiving its return value.

All pending resumptions live in one heap keyed ``(time, seq)``; ``seq``
is a monotonic counter so same-instant events fire in schedule order and
a given (workload, seed) always interleaves identically — determinism is
what makes fleet metrics reproducible and diffable across PRs.

The shared clock only ever advances *between* process steps (inside
:meth:`Scheduler.run`).  Processes must never touch the clock directly:
mid-step advances would reorder the heap under other sessions' feet.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from repro.sim.clock import VirtualClock


class SchedulerError(RuntimeError):
    """Misuse of the discrete-event kernel (not a modelled failure)."""


class Timeout:
    """Yielded by a process to sleep for ``delay`` virtual seconds.

    ``label`` names the activity for per-session accounting ("boot",
    "network", "dry-run", ...); the scheduler itself files the global
    timeline under a single label because interleaved sessions overlap.
    """

    __slots__ = ("delay", "label")

    def __init__(self, delay: float, label: str = "fleet") -> None:
        if delay < 0:
            raise SchedulerError(f"cannot wait a negative time: {delay}")
        self.delay = float(delay)
        self.label = label


class Event:
    """A one-shot condition processes can wait on.

    Created via :meth:`Scheduler.event`; triggered at most once with
    :meth:`succeed`.  Waiters resume at the current virtual time with the
    trigger value.
    """

    __slots__ = ("_scheduler", "triggered", "value", "_waiters")

    def __init__(self, scheduler: "Scheduler") -> None:
        self._scheduler = scheduler
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SchedulerError("event already triggered")
        self.triggered = True
        self.value = value
        for proc in self._waiters:
            self._scheduler._schedule(proc, 0.0, value)
        self._waiters.clear()
        return self

    def _wait(self, proc: "Process") -> None:
        if self.triggered:
            self._scheduler._schedule(proc, 0.0, self.value)
        else:
            self._waiters.append(proc)


class Process:
    """One running generator; ``done`` fires with its return value."""

    def __init__(self, scheduler: "Scheduler",
                 gen: Generator[Any, Any, Any], name: str) -> None:
        self._scheduler = scheduler
        self._gen = gen
        self.name = name
        self.done = Event(scheduler)

    @property
    def finished(self) -> bool:
        return self.done.triggered

    def _step(self, value: Any) -> None:
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self.done.succeed(getattr(stop, "value", None))
            return
        if isinstance(yielded, Timeout):
            self._scheduler._schedule(self, yielded.delay, None)
        elif isinstance(yielded, Event):
            yielded._wait(self)
        elif isinstance(yielded, Process):
            yielded.done._wait(self)
        else:
            raise SchedulerError(
                f"process {self.name!r} yielded {yielded!r}; expected "
                "Timeout, Event, or Process")


class Scheduler:
    """The event loop: a heap of pending process resumptions.

    ``run`` pops resumptions in ``(time, seq)`` order, advances the
    shared :class:`VirtualClock` to each one's due time, and steps the
    process.  Exceptions escaping a process abort the whole run — fleet
    failures are modelled as values (e.g. a rejection), never as stray
    exceptions.
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock or VirtualClock()
        self._heap: List[Tuple[float, int, Process, Any]] = []
        self._seq = 0
        self.steps = 0

    # ------------------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def spawn(self, gen: Generator[Any, Any, Any],
              at: Optional[float] = None, name: str = "") -> Process:
        """Register a process; its first step runs at time ``at`` (or
        immediately, in virtual terms, if omitted/past)."""
        proc = Process(self, gen, name or f"proc-{self._seq}")
        start = self.clock.now if at is None else max(at, self.clock.now)
        self._push(start, proc, None)
        return proc

    def _schedule(self, proc: Process, delay: float, value: Any) -> None:
        self._push(self.clock.now + delay, proc, value)

    def _push(self, when: float, proc: Process, value: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, proc, value))

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Drain the heap (or stop at absolute time ``until``).

        Returns the final virtual time.
        """
        while self._heap:
            when, _, proc, value = self._heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._heap)
            self.clock.advance_to(when, label="fleet")
            self.steps += 1
            proc._step(value)
        if until is not None:
            self.clock.advance_to(until, label="fleet")
        return self.clock.now
