"""Seeded fleet workload generator: tenants, devices, Poisson arrivals.

Produces the open-loop arrival process the serving layer is evaluated
under.  Everything is derived from one ``random.Random(seed)`` so a
(seed, clients) pair always yields byte-identical request lists —
the fleet's determinism starts here.

Model:

* A fixed population of **tenants**.  Each tenant is one device owner,
  so its GPU SKU and access link are fixed at profile-creation time
  (a phone does not change its GPU between requests); only the workload
  varies per request.  Repeat (tenant, workload) pairs are what the
  per-tenant recording cache converts into hits.
* **Poisson arrivals** at ``arrival_rate_hz``: exponential inter-arrival
  gaps, the standard open-loop load model.
* The **workload mix** weights the six paper NNs; small interactive
  models dominate by default, with occasional heavy VGG16 sessions that
  stress capacity.

SKU defaults span Bifrost and Midgard — the two families the default VM
images carry drivers for (§6's "one image, many SKUs").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

DEFAULT_SKUS: Tuple[str, ...] = (
    "Mali-G71 MP8",
    "Mali-G72 MP12",
    "Mali-G76 MP10",
    "Mali-G52 MP2",
    "Mali-T880 MP4",
    "Mali-T760 MP8",
)

DEFAULT_LINKS: Tuple[str, ...] = ("wifi", "cellular")

# Interactive-heavy mix: mostly small models, a tail of heavy ones.
DEFAULT_MIX: Dict[str, float] = {
    "mnist": 0.28,
    "mobilenet": 0.22,
    "squeezenet": 0.16,
    "alexnet": 0.14,
    "resnet12": 0.12,
    "vgg16": 0.08,
}


@dataclass(frozen=True)
class TenantProfile:
    """One device owner: identity plus its fixed hardware and link."""

    tenant_id: str
    sku_name: str
    link_name: str


@dataclass(frozen=True)
class SessionRequest:
    """One client session the fleet must serve."""

    request_id: str
    tenant_id: str
    workload: str
    sku_name: str
    link_name: str
    arrival_s: float


class WorkloadGenerator:
    """Deterministic (seeded) generator of fleet session requests."""

    def __init__(self, seed: int = 0, arrival_rate_hz: float = 2.0,
                 tenants: int = 16,
                 skus: Sequence[str] = DEFAULT_SKUS,
                 links: Sequence[str] = DEFAULT_LINKS,
                 mix: Optional[Dict[str, float]] = None) -> None:
        if arrival_rate_hz <= 0:
            raise ValueError("arrival rate must be positive")
        if tenants < 1:
            raise ValueError("need at least one tenant")
        self.seed = seed
        self.arrival_rate_hz = arrival_rate_hz
        self.rng = random.Random(seed)
        self.mix = dict(mix or DEFAULT_MIX)
        self._workloads = list(self.mix)
        self._weights = [self.mix[w] for w in self._workloads]
        # SKUs draw randomly; links cycle so every link type is always
        # represented (per-link latency tails are a headline metric).
        self.profiles: List[TenantProfile] = [
            TenantProfile(
                tenant_id=f"tenant-{i:03d}",
                sku_name=self.rng.choice(list(skus)),
                link_name=list(links)[i % len(links)],
            )
            for i in range(tenants)
        ]

    # ------------------------------------------------------------------
    def generate(self, n: int) -> List[SessionRequest]:
        """``n`` requests with Poisson arrivals, in arrival order."""
        requests: List[SessionRequest] = []
        now = 0.0
        for i in range(n):
            now += self.rng.expovariate(self.arrival_rate_hz)
            profile = self.rng.choice(self.profiles)
            workload = self.rng.choices(self._workloads,
                                        weights=self._weights)[0]
            requests.append(SessionRequest(
                request_id=f"req-{i:05d}",
                tenant_id=profile.tenant_id,
                workload=workload,
                sku_name=profile.sku_name,
                link_name=profile.link_name,
                arrival_s=now,
            ))
        return requests
