"""The fleet session: one client's journey through the serving layer.

A session is a :mod:`repro.fleet.scheduler` process:

    arrive -> admission (VM pool) -> boot -> attest + secure channel
           -> registry lookup -> [dry run on miss] -> sign + download
           -> close (VM destroyed)

Timing comes from :class:`SessionCostModel`, a first-order analytic model
of a GR-T record run calibrated against the shapes in §7: a dry run costs
driver bring-up round trips, per-job blocking round trips, metastate
transfer (§5's meta-only sync), JIT compilation, and GPU execution time
derived from the workload's FLOPs and the SKU's peak throughput.  Running
the real :class:`~repro.core.recorder.RecordSession` per fleet session
would be exact but is far too slow to interleave hundreds of sessions;
the analytic model keeps every per-session cost a pure deterministic
function of (workload, SKU, link, flavor) so fleet runs are reproducible
and fast, while the single-session path remains the ground truth.

The control plane is real, not modelled: every session opens and closes
an attested :class:`~repro.cloud.service.CloudService` session against
the shared virtual clock (exercising the per-session VM accounting), and
recordings are actually signed with the service's key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.service import CloudService
from repro.fleet.metrics import FleetMetrics, SessionRecord
from repro.fleet.pool import PoolSaturated, VmPool
from repro.fleet.registry import (
    CachedRecording,
    RecordingKey,
    RecordingRegistry,
)
from repro.fleet.scheduler import Scheduler, Timeout
from repro.fleet.workload import SessionRequest
from repro.hw.sku import GpuSku, find_sku
from repro.kernel.devicetree import FAMILY_COMPATIBLE, board_device_tree
from repro.ml.models import build_model
from repro.runtime.flavors import flavor_for_image
from repro.sim.network import CELLULAR, LOOPBACK, WIFI, LinkProfile
from repro.tee.attestation import AttestationVerifier

LINK_PROFILES: Dict[str, LinkProfile] = {
    p.name: p for p in (WIFI, CELLULAR, LOOPBACK)
}

# --- analytic record-run cost model (first order, deterministic) -------
# Driver bring-up (probe, power, MMU init) before the first job: blocking
# round trips that deferral cannot hide (Figure 8's init segment).
DRY_RUN_SETUP_RTTS = 40
# Residual blocking round trips per GPU job under an OursMDS-style
# recorder (job door-bell, IRQ, validation stalls).
RTTS_PER_JOB = 3.0
# Metastate synced per job under meta-only sync (§5): shaders, commands,
# page tables — program data never moves.
METASTATE_BYTES_PER_JOB = 24 << 10
# Recording entries serialized per job (register log + manifest share).
RECORDING_BYTES_PER_JOB = 2 << 10
# Fraction of a mobile GPU's peak FLOPs a dry run's kernels sustain.
GPU_EFFICIENCY = 0.45
# Cloud-side JIT compilation per job, scaled by the stack flavor.
JIT_S_PER_JOB = 0.02
# Secure-channel establishment: 2 TLS round trips + 1 open/attest trip.
HANDSHAKE_RTTS = 3
HANDSHAKE_BYTES = 6 * 512


@dataclass(frozen=True)
class SessionCosts:
    """Virtual-time costs of one session's stages (boot excluded: the
    pool owns boot timing because it depends on warm availability)."""

    handshake_s: float
    dry_run_s: float
    download_s: float
    recording_bytes: int
    # Share of ``dry_run_s`` spent blocked on the link (round trips +
    # metastate transfer) — the per-link time_blocked_s the fleet report
    # aggregates, and the part a faster link would shrink.
    dry_run_net_s: float = 0.0

    @property
    def cold_total_s(self) -> float:
        return self.handshake_s + self.dry_run_s + self.download_s

    @property
    def cached_total_s(self) -> float:
        return self.handshake_s + self.download_s


class SessionCostModel:
    """Pure function (workload, SKU, link, flavor) -> SessionCosts."""

    def __init__(self) -> None:
        self._graphs: Dict[str, object] = {}

    def _graph(self, workload: str):
        if workload not in self._graphs:
            self._graphs[workload] = build_model(workload)
        return self._graphs[workload]

    def costs(self, workload: str, sku: GpuSku, link: LinkProfile,
              jit_cost_scale: float = 1.0) -> SessionCosts:
        graph = self._graph(workload)
        jobs = max(1, len(graph.nodes))
        gpu_s = graph.total_flops() / (sku.gflops * 1e9 * GPU_EFFICIENCY)
        jit_s = jobs * JIT_S_PER_JOB * jit_cost_scale
        net_s = ((DRY_RUN_SETUP_RTTS + jobs * RTTS_PER_JOB) * link.rtt_s
                 + link.serialize_s(jobs * METASTATE_BYTES_PER_JOB))
        recording_bytes = jobs * RECORDING_BYTES_PER_JOB
        download_s = link.one_way_s + link.serialize_s(recording_bytes)
        handshake_s = (HANDSHAKE_RTTS * link.rtt_s
                       + link.serialize_s(HANDSHAKE_BYTES))
        return SessionCosts(handshake_s=handshake_s,
                            dry_run_s=gpu_s + jit_s + net_s,
                            download_s=download_s,
                            recording_bytes=recording_bytes,
                            dry_run_net_s=net_s)


class FleetSimulation:
    """Interleave many client sessions over one virtual clock.

    Owns the scheduler, VM pool, per-tenant registry, the (real)
    CloudService control plane, and the metrics sink.  ``run`` drives
    every request to completion or rejection and returns the metrics.
    """

    def __init__(self, requests: List[SessionRequest],
                 capacity: int = 16, warm_target: int = 8,
                 queue_limit: int = 24,
                 service: Optional[CloudService] = None,
                 cost_model: Optional[SessionCostModel] = None,
                 store=None,
                 tracer=None) -> None:
        self.requests = list(requests)
        # Optional repro.obs.Tracer.  Sessions are coroutines interleaved
        # by the scheduler, so stages are recorded retrospectively with
        # Tracer.add_span on the request's own tid once each completes.
        self.tracer = tracer
        self.scheduler = Scheduler()
        self.clock = self.scheduler.clock
        self.service = service or CloudService()
        self.pool = VmPool(self.scheduler, capacity=capacity,
                           warm_target=warm_target, queue_limit=queue_limit,
                           cost_model=self.service.cost_model)
        # Optional artifact store (path or DiskStore/MemoryStore-shaped
        # object) becomes the registry's second cache tier: compiled
        # programs survive the simulation, and a later fleet/serve run
        # over the same store opens them instead of recompiling.
        from repro.store import resolve_store
        self.registry = RecordingRegistry(
            store=resolve_store(store, tracer=tracer))
        self.metrics = FleetMetrics()
        self.costs = cost_model or SessionCostModel()
        self.verifier = AttestationVerifier(self.service.root.key)
        for image in self.service.images.values():
            self.verifier.allow_image(image.measurement_blob())
        self._ran = False

    # ------------------------------------------------------------------
    def run(self) -> FleetMetrics:
        if self._ran:
            raise RuntimeError("a FleetSimulation runs once")
        self._ran = True
        if self.tracer is not None:
            self.tracer.set_clock(self.clock, domain="fleet")
        for request in self.requests:
            self.scheduler.spawn(self._session(request),
                                 at=request.arrival_s,
                                 name=request.request_id)
        self.scheduler.run()
        return self.metrics

    # ------------------------------------------------------------------
    def _session(self, request: SessionRequest):
        tracer = self.tracer
        tid = request.request_id
        t_arrival = self.clock.now
        record = SessionRecord(
            request_id=request.request_id, tenant_id=request.tenant_id,
            workload=request.workload, sku_name=request.sku_name,
            link_name=request.link_name, arrival_s=request.arrival_s)
        self.metrics.add(record)
        try:
            grant = self.pool.acquire(request.tenant_id)
        except PoolSaturated:
            record.rejected = True
            if tracer is not None:
                tracer.event("rejected", cat="fleet", tid=tid,
                             args={"tenant": request.tenant_id})
            return
        lease = yield grant
        record.admitted_s = self.clock.now
        record.warm_vm = lease.warm
        if tracer is not None:
            tracer.add_span("admission", "fleet", t_arrival, self.clock.now,
                            tid=tid, depth=1,
                            args={"warm_vm": lease.warm})

        sku = find_sku(request.sku_name)
        link = LINK_PROFILES[request.link_name]
        tree = board_device_tree(sku)
        compatible = FAMILY_COMPATIBLE[sku.family]
        image_name = self.service.image_for_family(compatible)
        nonce = hashlib.sha256(
            f"{request.request_id}:{request.tenant_id}".encode()).digest()
        ticket = self.service.open_session(
            request.tenant_id, image_name, tree, nonce, clock=self.clock)
        self.verifier.verify(ticket.attestation, nonce)

        t_boot = self.clock.now
        yield Timeout(lease.boot_cost_s, label="boot")
        if tracer is not None:
            tracer.add_span("boot", "fleet", t_boot, self.clock.now,
                            tid=tid, depth=1)
        flavor = flavor_for_image(image_name)
        costs = self.costs.costs(request.workload, sku, link,
                                 jit_cost_scale=flavor.jit_cost_scale)
        t_handshake = self.clock.now
        yield Timeout(costs.handshake_s, label="network")
        record.time_blocked_s += costs.handshake_s
        if tracer is not None:
            tracer.add_span("handshake", "fleet", t_handshake,
                            self.clock.now, tid=tid, depth=1)

        key = RecordingKey(workload=request.workload,
                           sku_compatible=compatible,
                           sku_name=request.sku_name, flavor=flavor.name)
        cached = self.registry.lookup(request.tenant_id, key)
        if cached is None:
            t_dry = self.clock.now
            lease, ticket = yield from self._dry_run_stage(
                request, record, lease, ticket, costs, key)
            if tracer is not None:
                tracer.add_span("dry-run", "fleet", t_dry, self.clock.now,
                                tid=tid, depth=1,
                                args={"completed": lease is not None})
            if lease is None:
                return  # the dry run could not be completed (failover gave up)
        else:
            record.cache_hit = True
        t_download = self.clock.now
        yield Timeout(costs.download_s, label="network")
        record.time_blocked_s += costs.download_s
        if tracer is not None:
            tracer.add_span("download", "fleet", t_download, self.clock.now,
                            tid=tid, depth=1,
                            args={"bytes": costs.recording_bytes})

        self.service.close_session(ticket.session_id, clock=self.clock)
        self.pool.release(lease)
        record.completed_s = self.clock.now
        if tracer is not None:
            tracer.add_span("session", "fleet", t_arrival, self.clock.now,
                            tid=tid, depth=0,
                            args={"workload": request.workload,
                                  "cache_hit": record.cache_hit,
                                  "tenant": request.tenant_id})

    # ------------------------------------------------------------------
    def _dry_run_stage(self, request, record, lease, ticket,
                       costs: SessionCosts, key: RecordingKey):
        """Run the (cache-miss) dry run to completion and store the
        signed recording.  A subclass may interpose VM failures here;
        it must return the (possibly replaced) lease and ticket, or
        ``(None, None)`` if the session could not finish."""
        yield Timeout(costs.dry_run_s, label="dry-run")
        record.time_blocked_s += costs.dry_run_net_s
        self._store_recording(request, key, costs)
        return lease, ticket

    def _store_recording(self, request: SessionRequest, key: RecordingKey,
                         costs: SessionCosts) -> None:
        body = "|".join((request.tenant_id, *key.as_tuple())).encode()
        self.registry.store(request.tenant_id, CachedRecording(
            key=key, tenant_id=request.tenant_id,
            recording_bytes=costs.recording_bytes,
            dry_run_s=costs.dry_run_s,
            signature=self.service.sign_recording(body),
            created_at=self.clock.now,
            digest=hashlib.sha256(body).hexdigest()))

    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        """The full fleet report (metrics + pool + registry + service)."""
        doc = self.metrics.summary(
            makespan_s=self.clock.now,
            vm_seconds=self.pool.stats.total_vm_seconds,
            cost_usd=self.pool.total_cost_usd)
        doc["pool"] = {
            "capacity": self.pool.capacity,
            "warm_target": self.pool.warm_target,
            "queue_limit": self.pool.queue_limit,
            "warm_grants": self.pool.stats.warm_grants,
            "cold_grants": self.pool.stats.cold_grants,
            "queued_sessions": self.pool.stats.queued_sessions,
            "rejections": self.pool.stats.rejections,
            "warm_boots": self.pool.stats.warm_boots,
            "peak_busy": self.pool.stats.peak_busy,
            "failover_requeues": self.pool.stats.failover_requeues,
        }
        doc["registry"] = {
            "tenants": len(self.registry.tenants()),
            "recordings": len(self.registry),
            "lookups": self.registry.stats.lookups,
            "compiled_cached": self.registry.compiled_count(),
            "compiled_hits": self.registry.compiled_stats.hits,
            "compiled_misses": self.registry.compiled_stats.misses,
        }
        if self.registry.artifact_store is not None:
            doc["registry"]["store"] = \
                self.registry.artifact_store.stats.as_dict()
        doc["service"] = {
            "sessions_opened": self.service.sessions_opened,
            "sessions_aborted": self.service.sessions_aborted,
            "recordings_signed": self.service.recordings_served,
            "vm_seconds": round(self.service.total_vm_seconds, 9),
            "cost_usd": round(self.service.total_cost_usd, 9),
        }
        return doc


def run_fleet(requests: List[SessionRequest], **kwargs) -> Dict:
    """Convenience: simulate ``requests`` and return the summary dict."""
    sim = FleetSimulation(requests, **kwargs)
    sim.run()
    return sim.summary()
