"""VM pool: capacity limits, warm boots, and admission control.

§3.2 keeps the paper's trust rule — one VM per client session, never
shared, destroyed afterwards — but a real multi-tenant service cannot
pay :data:`~repro.cloud.vm.VM_BOOT_COST_S` on the critical path of every
session *and* accept unbounded load.  The pool adds the two standard
serving mechanisms on top of that rule:

* **Warm boots.**  The pool pre-boots up to ``warm_target`` *fresh* VMs
  in the background.  A session that lands on a warm VM pays only the
  driver-bind cost; the kernel boot already happened off the critical
  path.  Warm VMs are still single-use: each serves exactly one session
  and is destroyed at release, so the §3.1/§7.1 no-reuse guarantee is
  untouched — only the *timing* of the boot moves.

* **Admission control.**  At most ``capacity`` VMs run sessions
  concurrently.  Beyond that, up to ``queue_limit`` sessions wait in
  FIFO order; further arrivals are rejected immediately with
  :class:`PoolSaturated` (an explicit, accounted signal — not an
  exception escaping the simulation).

The pool also owns the cloud-side cost ledger: VM-seconds for every
lease (boot through release) plus the background warm boots, priced via
:class:`~repro.cloud.service.CostModel`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.cloud.service import CostModel
from repro.cloud.vm import DRIVER_BIND_COST_S, VM_BOOT_COST_S

from repro.fleet.scheduler import Event, Scheduler, Timeout
from repro.obs.metrics import StatsBase


class PoolSaturated(RuntimeError):
    """Admission control rejected the session: capacity and queue full."""


@dataclass
class VmLease:
    """One granted, single-use VM slot.

    ``boot_cost_s`` is what the *session* still has to pay after the
    grant: bind-only for a warm VM, full boot + bind for a cold one.
    """

    vm_id: str
    tenant_id: str
    warm: bool
    boot_cost_s: float
    opened_at: float
    closed_at: Optional[float] = None

    @property
    def vm_seconds(self) -> float:
        if self.closed_at is None:
            return 0.0
        return self.closed_at - self.opened_at


@dataclass
class PoolStats(StatsBase):
    """Counters the fleet report surfaces."""

    SCHEMA = "repro.pool"

    warm_grants: int = 0
    cold_grants: int = 0
    queued_sessions: int = 0
    rejections: int = 0
    warm_boots: int = 0
    failover_requeues: int = 0
    lease_vm_seconds: float = 0.0
    warm_boot_vm_seconds: float = 0.0
    peak_busy: int = 0

    @property
    def grants(self) -> int:
        return self.warm_grants + self.cold_grants

    @property
    def total_vm_seconds(self) -> float:
        return self.lease_vm_seconds + self.warm_boot_vm_seconds


class VmPool:
    """Bounded pool of single-use VMs behind a FIFO admission queue."""

    def __init__(self, scheduler: Scheduler, capacity: int = 16,
                 warm_target: int = 8, queue_limit: int = 24,
                 boot_cost_s: float = VM_BOOT_COST_S,
                 bind_cost_s: float = DRIVER_BIND_COST_S,
                 cost_model: Optional[CostModel] = None) -> None:
        if capacity < 1:
            raise ValueError("pool needs capacity >= 1")
        self.scheduler = scheduler
        self.capacity = capacity
        self.warm_target = warm_target
        self.queue_limit = queue_limit
        self.boot_cost_s = boot_cost_s
        self.bind_cost_s = bind_cost_s
        self.cost_model = cost_model or CostModel()
        self.stats = PoolStats()
        # Warm VMs present at open: the service pre-boots the pool before
        # taking traffic (their boot time is off every session's clock
        # but still billed below as warm-boot VM-seconds).
        self._warm = warm_target
        self.stats.warm_boots = warm_target
        self.stats.warm_boot_vm_seconds = warm_target * boot_cost_s
        self._busy = 0
        self._pending_refills = 0
        self._next_vm = 0
        self._queue: Deque[Tuple[Event, str]] = deque()

    # ------------------------------------------------------------------
    @property
    def busy(self) -> int:
        return self._busy

    @property
    def warm_available(self) -> int:
        return self._warm

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def total_cost_usd(self) -> float:
        return self.cost_model.record_run_usd(self.stats.total_vm_seconds)

    # ------------------------------------------------------------------
    def acquire(self, tenant_id: str) -> Event:
        """Request a VM; returns an :class:`Event` that fires with a
        :class:`VmLease`.  Raises :class:`PoolSaturated` (and counts the
        rejection) when both capacity and queue are exhausted."""
        if self._busy < self.capacity:
            self._busy += 1
            self.stats.peak_busy = max(self.stats.peak_busy, self._busy)
            return self._grant(tenant_id)
        if len(self._queue) >= self.queue_limit:
            self.stats.rejections += 1
            raise PoolSaturated(
                f"{self._busy}/{self.capacity} VMs busy and "
                f"{len(self._queue)}/{self.queue_limit} sessions queued")
        ev = self.scheduler.event()
        self._queue.append((ev, tenant_id))
        self.stats.queued_sessions += 1
        return ev

    def release(self, lease: VmLease) -> None:
        """Destroy the session's VM (no reuse) and free its slot."""
        if lease.closed_at is not None:
            raise ValueError(f"lease {lease.vm_id} already released")
        lease.closed_at = self.scheduler.clock.now
        self.stats.lease_vm_seconds += lease.vm_seconds
        self._busy -= 1
        if self._queue:
            ev, tenant_id = self._queue.popleft()
            self._busy += 1
            self.stats.peak_busy = max(self.stats.peak_busy, self._busy)
            ev.succeed(self._make_lease(tenant_id))
        self._maybe_refill()

    # ------------------------------------------------------------------
    def _grant(self, tenant_id: str) -> Event:
        ev = self.scheduler.event()
        ev.succeed(self._make_lease(tenant_id))
        return ev

    def _make_lease(self, tenant_id: str) -> VmLease:
        warm = self._warm > 0
        if warm:
            self._warm -= 1
            self.stats.warm_grants += 1
            boot = self.bind_cost_s
        else:
            self.stats.cold_grants += 1
            boot = self.boot_cost_s + self.bind_cost_s
        self._next_vm += 1
        self._maybe_refill()
        return VmLease(vm_id=f"vm-{self._next_vm}", tenant_id=tenant_id,
                       warm=warm, boot_cost_s=boot,
                       opened_at=self.scheduler.clock.now)

    def _maybe_refill(self) -> None:
        while self._warm + self._pending_refills < self.warm_target:
            self._pending_refills += 1
            self.scheduler.spawn(self._refill(), name="warm-refill")

    def _refill(self):
        """Background process: boot one fresh VM into the warm pool."""
        yield Timeout(self.boot_cost_s, label="warm-boot")
        self._pending_refills -= 1
        self._warm += 1
        self.stats.warm_boots += 1
        self.stats.warm_boot_vm_seconds += self.boot_cost_s
