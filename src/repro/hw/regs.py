"""MMIO register map of the modelled Mali-style GPU.

Offsets and semantics follow the public Mali Midgard/Bifrost kbase layout:
a GPU-control block at 0x0000, a job-control block at 0x1000 and an
MMU/address-space block at 0x2000.  The driver (:mod:`repro.driver`) and the
GPU model (:mod:`repro.hw.gpu`) share these definitions; GR-T's shims treat
offsets as opaque, exactly as the paper's instrumentation does.
"""

from __future__ import annotations

from typing import Dict

# ---------------------------------------------------------------------------
# GPU control block
# ---------------------------------------------------------------------------
GPU_ID = 0x000
L2_FEATURES = 0x004
CORE_FEATURES = 0x008
TILER_FEATURES = 0x00C
MEM_FEATURES = 0x010
MMU_FEATURES = 0x014
AS_PRESENT = 0x018
JS_PRESENT = 0x01C

GPU_IRQ_RAWSTAT = 0x020
GPU_IRQ_CLEAR = 0x024
GPU_IRQ_MASK = 0x028
GPU_IRQ_STATUS = 0x02C

GPU_COMMAND = 0x030
GPU_STATUS = 0x034
LATEST_FLUSH = 0x038

GPU_FAULTSTATUS = 0x03C
GPU_FAULTADDRESS_LO = 0x040
GPU_FAULTADDRESS_HI = 0x044

PWR_KEY = 0x050
PWR_OVERRIDE0 = 0x054
PWR_OVERRIDE1 = 0x058

THREAD_MAX_THREADS = 0x0A0
THREAD_MAX_WORKGROUP_SIZE = 0x0A4
THREAD_MAX_BARRIER_SIZE = 0x0A8
THREAD_FEATURES = 0x0AC

TEXTURE_FEATURES_0 = 0x0B0
TEXTURE_FEATURES_1 = 0x0B4
TEXTURE_FEATURES_2 = 0x0B8

JS0_FEATURES = 0x0C0  # JSn_FEATURES = JS0_FEATURES + n*4, up to 16 slots

SHADER_PRESENT_LO = 0x100
SHADER_PRESENT_HI = 0x104
TILER_PRESENT_LO = 0x110
TILER_PRESENT_HI = 0x114
L2_PRESENT_LO = 0x120
L2_PRESENT_HI = 0x124
STACK_PRESENT_LO = 0x130
STACK_PRESENT_HI = 0x134

SHADER_READY_LO = 0x140
SHADER_READY_HI = 0x144
TILER_READY_LO = 0x150
TILER_READY_HI = 0x154
L2_READY_LO = 0x160
L2_READY_HI = 0x164

SHADER_PWRON_LO = 0x180
SHADER_PWRON_HI = 0x184
TILER_PWRON_LO = 0x190
TILER_PWRON_HI = 0x194
L2_PWRON_LO = 0x1A0
L2_PWRON_HI = 0x1A4

SHADER_PWROFF_LO = 0x1C0
SHADER_PWROFF_HI = 0x1C4
TILER_PWROFF_LO = 0x1D0
TILER_PWROFF_HI = 0x1D4
L2_PWROFF_LO = 0x1E0
L2_PWROFF_HI = 0x1E4

SHADER_PWRTRANS_LO = 0x200
SHADER_PWRTRANS_HI = 0x204
TILER_PWRTRANS_LO = 0x210
TILER_PWRTRANS_HI = 0x214
L2_PWRTRANS_LO = 0x220
L2_PWRTRANS_HI = 0x224

SHADER_CONFIG = 0xF04
TILER_CONFIG = 0xF08
L2_MMU_CONFIG = 0xF0C

# ---------------------------------------------------------------------------
# Job control block
# ---------------------------------------------------------------------------
JOB_IRQ_RAWSTAT = 0x1000
JOB_IRQ_CLEAR = 0x1004
JOB_IRQ_MASK = 0x1008
JOB_IRQ_STATUS = 0x100C
JOB_IRQ_JS_STATE = 0x1010
JOB_IRQ_THROTTLE = 0x1014

JOB_SLOT_BASE = 0x1800
JOB_SLOT_STRIDE = 0x80
NUM_JOB_SLOTS = 3

JS_HEAD_LO = 0x00
JS_HEAD_HI = 0x04
JS_TAIL_LO = 0x08
JS_TAIL_HI = 0x0C
JS_AFFINITY_LO = 0x10
JS_AFFINITY_HI = 0x14
JS_CONFIG = 0x18
JS_XAFFINITY = 0x1C
JS_COMMAND = 0x20
JS_STATUS = 0x24
JS_HEAD_NEXT_LO = 0x40
JS_HEAD_NEXT_HI = 0x44
JS_AFFINITY_NEXT_LO = 0x50
JS_AFFINITY_NEXT_HI = 0x54
JS_CONFIG_NEXT = 0x58
JS_COMMAND_NEXT = 0x60
JS_FLUSH_ID_NEXT = 0x70


def js_reg(slot: int, offset: int) -> int:
    """Absolute MMIO offset of a per-job-slot register."""
    if not 0 <= slot < NUM_JOB_SLOTS:
        raise ValueError(f"job slot out of range: {slot}")
    return JOB_SLOT_BASE + slot * JOB_SLOT_STRIDE + offset


# ---------------------------------------------------------------------------
# MMU / address space block
# ---------------------------------------------------------------------------
MMU_IRQ_RAWSTAT = 0x2000
MMU_IRQ_CLEAR = 0x2004
MMU_IRQ_MASK = 0x2008
MMU_IRQ_STATUS = 0x200C

AS_BASE = 0x2400
AS_STRIDE = 0x40
NUM_ADDRESS_SPACES = 8

AS_TRANSTAB_LO = 0x00
AS_TRANSTAB_HI = 0x04
AS_MEMATTR_LO = 0x08
AS_MEMATTR_HI = 0x0C
AS_LOCKADDR_LO = 0x10
AS_LOCKADDR_HI = 0x14
AS_COMMAND = 0x18
AS_FAULTSTATUS = 0x1C
AS_FAULTADDRESS_LO = 0x20
AS_FAULTADDRESS_HI = 0x24
AS_STATUS = 0x28
AS_TRANSCFG_LO = 0x30
AS_TRANSCFG_HI = 0x34


def as_reg(as_nr: int, offset: int) -> int:
    """Absolute MMIO offset of a per-address-space register."""
    if not 0 <= as_nr < NUM_ADDRESS_SPACES:
        raise ValueError(f"address space out of range: {as_nr}")
    return AS_BASE + as_nr * AS_STRIDE + offset


# ---------------------------------------------------------------------------
# Command encodings
# ---------------------------------------------------------------------------
class GpuCommand:
    NOP = 0x00
    SOFT_RESET = 0x01
    HARD_RESET = 0x02
    PRFCNT_CLEAR = 0x03
    PRFCNT_SAMPLE = 0x04
    CYCLE_COUNT_START = 0x05
    CYCLE_COUNT_STOP = 0x06
    CLEAN_CACHES = 0x07
    CLEAN_INV_CACHES = 0x08


class AsCommand:
    NOP = 0x00
    UPDATE = 0x01
    LOCK = 0x02
    UNLOCK = 0x03
    FLUSH_PT = 0x04
    FLUSH_MEM = 0x05


class JsCommand:
    NOP = 0x00
    START = 0x01
    SOFT_STOP = 0x02
    HARD_STOP = 0x03


class JsStatus:
    """JS_STATUS completion codes (subset of the Mali encodings)."""

    IDLE = 0x00
    ACTIVE = 0x08
    DONE = 0x01
    JOB_CONFIG_FAULT = 0x40
    JOB_READ_FAULT = 0x42
    JOB_WRITE_FAULT = 0x43


# ---------------------------------------------------------------------------
# IRQ bit definitions
# ---------------------------------------------------------------------------
class GpuIrq:
    FAULT = 1 << 0
    MULTIPLE_FAULT = 1 << 7
    RESET_COMPLETED = 1 << 8
    POWER_CHANGED_SINGLE = 1 << 9
    POWER_CHANGED_ALL = 1 << 10
    PRFCNT_SAMPLE_COMPLETED = 1 << 16
    CLEAN_CACHES_COMPLETED = 1 << 17


class AsStatusBits:
    ACTIVE = 1 << 0


class GpuStatusBits:
    GPU_ACTIVE = 1 << 0
    POWER_TRANS = 1 << 1
    PRFCNT_ACTIVE = 1 << 2


# PWR_KEY magic that unlocks PWR_OVERRIDE writes (real Mali quirk).
PWR_KEY_MAGIC = 0x2968A819

REGISTER_NAMES: Dict[int, str] = {}


def _build_names() -> None:
    module_globals = globals()
    for name, value in list(module_globals.items()):
        if name.isupper() and isinstance(value, int) and not name.endswith("_STRIDE"):
            REGISTER_NAMES.setdefault(value, name)
    for slot in range(NUM_JOB_SLOTS):
        for off, nm in (
            (JS_HEAD_LO, "HEAD_LO"), (JS_HEAD_HI, "HEAD_HI"),
            (JS_TAIL_LO, "TAIL_LO"), (JS_TAIL_HI, "TAIL_HI"),
            (JS_AFFINITY_LO, "AFFINITY_LO"), (JS_AFFINITY_HI, "AFFINITY_HI"),
            (JS_CONFIG, "CONFIG"), (JS_COMMAND, "COMMAND"),
            (JS_STATUS, "STATUS"), (JS_HEAD_NEXT_LO, "HEAD_NEXT_LO"),
            (JS_HEAD_NEXT_HI, "HEAD_NEXT_HI"), (JS_CONFIG_NEXT, "CONFIG_NEXT"),
            (JS_COMMAND_NEXT, "COMMAND_NEXT"), (JS_FLUSH_ID_NEXT, "FLUSH_ID_NEXT"),
        ):
            REGISTER_NAMES[js_reg(slot, off)] = f"JS{slot}_{nm}"
    for as_nr in range(NUM_ADDRESS_SPACES):
        for off, nm in (
            (AS_TRANSTAB_LO, "TRANSTAB_LO"), (AS_TRANSTAB_HI, "TRANSTAB_HI"),
            (AS_MEMATTR_LO, "MEMATTR_LO"), (AS_MEMATTR_HI, "MEMATTR_HI"),
            (AS_LOCKADDR_LO, "LOCKADDR_LO"), (AS_LOCKADDR_HI, "LOCKADDR_HI"),
            (AS_COMMAND, "COMMAND"), (AS_FAULTSTATUS, "FAULTSTATUS"),
            (AS_STATUS, "STATUS"), (AS_TRANSCFG_LO, "TRANSCFG_LO"),
            (AS_TRANSCFG_HI, "TRANSCFG_HI"),
        ):
            REGISTER_NAMES[as_reg(as_nr, off)] = f"AS{as_nr}_{nm}"


_build_names()


def reg_name(offset: int) -> str:
    """Human-readable name for an MMIO offset (for logs and debugging)."""
    return REGISTER_NAMES.get(offset, f"REG_{offset:#06x}")
