"""Physical memory shared between CPU and GPU.

Mobile GPUs have no dedicated VRAM; CPU and GPU share main memory (§2.1).
This module models that memory as a single numpy-backed byte array with:

* a contiguous-range allocator (mobile GPU buffers come from CMA-style
  carveouts, and contiguity keeps numpy views cheap);
* page-granular dirty tracking, which memory synchronization (§5) uses to
  compute delta dumps between sync points;
* byte and typed-array access for the driver, runtime, and shader executor.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

PAGE_SIZE = 4096
PAGE_SHIFT = 12


def page_of(addr: int) -> int:
    return addr >> PAGE_SHIFT


def page_base(addr: int) -> int:
    return addr & ~(PAGE_SIZE - 1)


def pages_spanning(addr: int, nbytes: int) -> range:
    """Page frame numbers touched by [addr, addr+nbytes)."""
    if nbytes <= 0:
        return range(0)
    return range(page_of(addr), page_of(addr + nbytes - 1) + 1)


def align_up(value: int, alignment: int = PAGE_SIZE) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass(frozen=True)
class Region:
    """A named, contiguous physical allocation."""

    base: int
    size: int
    label: str

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, nbytes: int = 1) -> bool:
        return self.base <= addr and addr + nbytes <= self.end


class OutOfMemoryError(MemoryError):
    """The physical carveout cannot satisfy an allocation."""


class PhysicalMemory:
    """Byte-addressable physical memory with dirty tracking.

    The backing store starts at physical address ``base`` (a nonzero base
    catches confusions between offsets and addresses).
    """

    def __init__(self, size: int = 512 << 20, base: int = 0x8000_0000) -> None:
        if size % PAGE_SIZE:
            raise ValueError("memory size must be page aligned")
        self.base = base
        self.size = size
        self._store = np.zeros(size, dtype=np.uint8)
        self._next_free = base
        self._regions: List[Region] = []
        self._dirty: Set[int] = set()
        # Write-watch support for coherent caches (the GPU MMU's
        # page-walk cache): consumers register page frames via
        # watch_pages().  ``watch_epoch`` bumps whenever *any* watched
        # page is written (a cheap "nothing changed" fast path);
        # ``watch_versions`` counts writes per watched frame so caches
        # can invalidate only entries that depend on rewritten pages.
        self._watch: Set[int] = set()
        self._watch_arr: Optional[np.ndarray] = None
        self.watch_epoch = 0
        self.watch_versions: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Write watching (cache-coherency hook)
    # ------------------------------------------------------------------
    def watch_pages(self, pfns: Iterable[int]) -> None:
        """Add page frames to the write-watch set."""
        before = len(self._watch)
        self._watch.update(pfns)
        if len(self._watch) != before:
            self._watch_arr = None

    def _note_write(self, pages: Iterable[int]) -> None:
        if self._watch:
            hit = self._watch.intersection(pages)
            if hit:
                self.watch_epoch += 1
                versions = self.watch_versions
                for pfn in hit:
                    versions[pfn] = versions.get(pfn, 0) + 1

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, size: int, label: str = "anon") -> Region:
        size = align_up(max(size, 1))
        if self._next_free + size > self.base + self.size:
            raise OutOfMemoryError(
                f"cannot allocate {size} bytes for {label!r}: "
                f"{self.base + self.size - self._next_free} bytes free"
            )
        region = Region(base=self._next_free, size=size, label=label)
        self._next_free += size
        self._regions.append(region)
        return region

    def regions(self) -> List[Region]:
        return list(self._regions)

    def bytes_allocated(self) -> int:
        return self._next_free - self.base

    def _offset(self, pa: int, nbytes: int) -> int:
        off = pa - self.base
        if off < 0 or off + nbytes > self.size:
            raise ValueError(
                f"physical access out of range: pa={pa:#x} len={nbytes}"
            )
        return off

    # ------------------------------------------------------------------
    # Byte access
    # ------------------------------------------------------------------
    def read(self, pa: int, nbytes: int) -> bytes:
        off = self._offset(pa, nbytes)
        return self._store[off:off + nbytes].tobytes()

    def write(self, pa: int, data: bytes) -> None:
        off = self._offset(pa, len(data))
        self._store[off:off + len(data)] = np.frombuffer(data, dtype=np.uint8)
        pages = pages_spanning(pa, len(data))
        self._dirty.update(pages)
        self._note_write(pages)

    def read_u64(self, pa: int) -> int:
        # Unpack straight from the backing store (page-table walks do
        # several of these per translation; no bytes round trip).
        return _U64.unpack_from(self._store, self._offset(pa, 8))[0]

    def write_u64(self, pa: int, value: int) -> None:
        self.write(pa, (value & (2**64 - 1)).to_bytes(8, "little"))

    def read_u32(self, pa: int) -> int:
        return _U32.unpack_from(self._store, self._offset(pa, 4))[0]

    def write_u32(self, pa: int, value: int) -> None:
        self.write(pa, (value & 0xFFFF_FFFF).to_bytes(4, "little"))

    def fill(self, pa: int, nbytes: int, value: int = 0) -> None:
        off = self._offset(pa, nbytes)
        self._store[off:off + nbytes] = value & 0xFF
        pages = pages_spanning(pa, nbytes)
        self._dirty.update(pages)
        self._note_write(pages)

    # ------------------------------------------------------------------
    # Typed numpy views (used by the shader executor for real math)
    # ------------------------------------------------------------------
    def view(self, pa: int, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        nbytes = math.prod(shape) * np.dtype(dtype).itemsize
        off = self._offset(pa, nbytes)
        return self._store[off:off + nbytes].view(dtype).reshape(shape)

    def write_array(self, pa: int, array: np.ndarray) -> None:
        flat = np.ascontiguousarray(array)
        raw = flat.view(np.uint8).reshape(-1)
        off = self._offset(pa, raw.size)
        self._store[off:off + raw.size] = raw
        pages = pages_spanning(pa, raw.size)
        self._dirty.update(pages)
        self._note_write(pages)

    def mark_dirty_range(self, pa: int, nbytes: int) -> None:
        """Record writes done through a raw :meth:`view`."""
        self._offset(pa, max(nbytes, 1))
        pages = pages_spanning(pa, nbytes)
        self._dirty.update(pages)
        self._note_write(pages)

    # ------------------------------------------------------------------
    # Dirty tracking for memory synchronization (§5)
    # ------------------------------------------------------------------
    def dirty_pages(self) -> Set[int]:
        return set(self._dirty)

    def take_dirty(self) -> Set[int]:
        """Return and clear the dirty set (one sync interval)."""
        dirty, self._dirty = self._dirty, set()
        return dirty

    def clear_dirty(self) -> None:
        self._dirty.clear()

    def clear_dirty_pages(self, pfns: Iterable[int]) -> None:
        """Unmark specific pages (e.g. peer state installed by memory
        synchronization, which is not a local update to propagate)."""
        self._dirty.difference_update(pfns)

    def page_bytes(self, pfn: int) -> bytes:
        return self.read(pfn << PAGE_SHIFT, PAGE_SIZE)

    def write_page(self, pfn: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise ValueError("page write must be exactly one page")
        self.write(pfn << PAGE_SHIFT, data)

    def write_pages(self, pfns: np.ndarray, pages: np.ndarray) -> None:
        """Install many whole pages at once.

        ``pfns`` is a sorted 1-D integer array, ``pages`` the matching
        ``(len(pfns), PAGE_SIZE)`` uint8 array.  Consecutive frame numbers
        collapse into single slice assignments, and runs whose bytes
        already match memory are skipped entirely (the store and the
        write-watch bump — content-identical restores leave translations
        valid, so the MMU's walk cache survives steady-state replay).
        Resulting memory contents and dirty tracking are identical to
        per-page :meth:`write_page` calls.
        """
        n = len(pfns)
        if n == 0:
            return
        if pages.shape != (n, PAGE_SIZE):
            raise ValueError("page write must be exactly one page")
        # Bounds check the whole batch up front (same error as write()).
        self._offset(int(pfns[0]) << PAGE_SHIFT, PAGE_SIZE)
        self._offset(int(pfns[n - 1]) << PAGE_SHIFT, PAGE_SIZE)
        if self.base % PAGE_SIZE:
            for pfn, page in zip(pfns, pages):
                self.write_page(int(pfn), page.tobytes())
            return
        base_pfn = self.base >> PAGE_SHIFT
        store = self._store.reshape(-1, PAGE_SIZE)
        touched_watch: List[int] = []
        # Run boundaries where the frame numbers stop being consecutive.
        cuts = np.nonzero(np.diff(pfns.astype(np.int64)) != 1)[0] + 1
        run_start = 0
        for run_end in (*cuts.tolist(), n):
            first = int(pfns[run_start]) - base_pfn
            incoming = pages[run_start:run_end]
            current = store[first:first + (run_end - run_start)]
            if not np.array_equal(current, incoming):
                if self._watch:
                    if self._watch_arr is None:
                        self._watch_arr = np.fromiter(
                            self._watch, dtype=np.uint64,
                            count=len(self._watch))
                    run_pfns = pfns[run_start:run_end]
                    mask = np.isin(run_pfns, self._watch_arr)
                    # Only watched pages whose *own* bytes change count:
                    # a run mixing dirty data pages with byte-identical
                    # page-table pages must not invalidate translations.
                    for i in np.nonzero(mask)[0]:
                        if not np.array_equal(current[i], incoming[i]):
                            touched_watch.append(int(run_pfns[i]))
                current[:] = incoming
            run_start = run_end
        self._dirty.update(pfns.tolist())
        if touched_watch:
            self.watch_epoch += 1
            versions = self.watch_versions
            for pfn in touched_watch:
                versions[pfn] = versions.get(pfn, 0) + 1

    def pages_view(self) -> Optional[np.ndarray]:
        """The whole store as an ``(n_pages, PAGE_SIZE)`` uint8 view.

        Returns ``None`` when the physical base is not page aligned (no
        frame-number-indexable view exists then).  Row ``i`` is the page
        at frame ``(base >> PAGE_SHIFT) + i``.  Callers must treat the
        view as read-only: writes through it would bypass dirty tracking
        and the write watch.
        """
        if self.base % PAGE_SIZE:
            return None
        return self._store.reshape(-1, PAGE_SIZE)

    def pages_array(self, pfns: Iterable[int]) -> np.ndarray:
        """Gather whole pages into an ``(n, PAGE_SIZE)`` uint8 array.

        A consecutive frame-number run returns a zero-copy *view* of the
        backing store (the §5 synchronizer compares thousands of pages
        per sync point, and the copy alone would dominate); other shapes
        return a fancy-index copy.  Callers must treat the result as
        read-only and copy any rows they retain.
        """
        idx = np.fromiter(pfns, dtype=np.int64)
        n = len(idx)
        if n == 0:
            return np.empty((0, PAGE_SIZE), dtype=np.uint8)
        self._offset(int(idx.min()) << PAGE_SHIFT, PAGE_SIZE)
        self._offset(int(idx.max()) << PAGE_SHIFT, PAGE_SIZE)
        if self.base % PAGE_SIZE == 0:
            rel = idx - (self.base >> PAGE_SHIFT)
            store = self._store.reshape(-1, PAGE_SIZE)
            lo = int(rel[0])
            if int(rel[-1]) - lo == n - 1 and bool(np.all(np.diff(rel) == 1)):
                return store[lo:lo + n]
            return store[rel]
        out = np.empty((n, PAGE_SIZE), dtype=np.uint8)
        for i, pfn in enumerate(idx):
            off = self._offset(int(pfn) << PAGE_SHIFT, PAGE_SIZE)
            out[i] = self._store[off:off + PAGE_SIZE]
        return out

    def pages_of_region(self, region: Region) -> Iterable[int]:
        return pages_spanning(region.base, region.size)

    def snapshot_pages(self, pfns: Iterable[int]) -> Dict[int, bytes]:
        return {pfn: self.page_bytes(pfn) for pfn in pfns}

    def region_for(self, pa: int) -> Optional[Region]:
        for region in self._regions:
            if region.contains(pa):
                return region
        return None
