"""Physical memory shared between CPU and GPU.

Mobile GPUs have no dedicated VRAM; CPU and GPU share main memory (§2.1).
This module models that memory as a single numpy-backed byte array with:

* a contiguous-range allocator (mobile GPU buffers come from CMA-style
  carveouts, and contiguity keeps numpy views cheap);
* page-granular dirty tracking, which memory synchronization (§5) uses to
  compute delta dumps between sync points;
* byte and typed-array access for the driver, runtime, and shader executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

PAGE_SIZE = 4096
PAGE_SHIFT = 12


def page_of(addr: int) -> int:
    return addr >> PAGE_SHIFT


def page_base(addr: int) -> int:
    return addr & ~(PAGE_SIZE - 1)


def pages_spanning(addr: int, nbytes: int) -> range:
    """Page frame numbers touched by [addr, addr+nbytes)."""
    if nbytes <= 0:
        return range(0)
    return range(page_of(addr), page_of(addr + nbytes - 1) + 1)


def align_up(value: int, alignment: int = PAGE_SIZE) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass(frozen=True)
class Region:
    """A named, contiguous physical allocation."""

    base: int
    size: int
    label: str

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, nbytes: int = 1) -> bool:
        return self.base <= addr and addr + nbytes <= self.end


class OutOfMemoryError(MemoryError):
    """The physical carveout cannot satisfy an allocation."""


class PhysicalMemory:
    """Byte-addressable physical memory with dirty tracking.

    The backing store starts at physical address ``base`` (a nonzero base
    catches confusions between offsets and addresses).
    """

    def __init__(self, size: int = 512 << 20, base: int = 0x8000_0000) -> None:
        if size % PAGE_SIZE:
            raise ValueError("memory size must be page aligned")
        self.base = base
        self.size = size
        self._store = np.zeros(size, dtype=np.uint8)
        self._next_free = base
        self._regions: List[Region] = []
        self._dirty: Set[int] = set()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, size: int, label: str = "anon") -> Region:
        size = align_up(max(size, 1))
        if self._next_free + size > self.base + self.size:
            raise OutOfMemoryError(
                f"cannot allocate {size} bytes for {label!r}: "
                f"{self.base + self.size - self._next_free} bytes free"
            )
        region = Region(base=self._next_free, size=size, label=label)
        self._next_free += size
        self._regions.append(region)
        return region

    def regions(self) -> List[Region]:
        return list(self._regions)

    def bytes_allocated(self) -> int:
        return self._next_free - self.base

    def _offset(self, pa: int, nbytes: int) -> int:
        off = pa - self.base
        if off < 0 or off + nbytes > self.size:
            raise ValueError(
                f"physical access out of range: pa={pa:#x} len={nbytes}"
            )
        return off

    # ------------------------------------------------------------------
    # Byte access
    # ------------------------------------------------------------------
    def read(self, pa: int, nbytes: int) -> bytes:
        off = self._offset(pa, nbytes)
        return self._store[off:off + nbytes].tobytes()

    def write(self, pa: int, data: bytes) -> None:
        off = self._offset(pa, len(data))
        self._store[off:off + len(data)] = np.frombuffer(data, dtype=np.uint8)
        self._dirty.update(pages_spanning(pa, len(data)))

    def read_u64(self, pa: int) -> int:
        return int.from_bytes(self.read(pa, 8), "little")

    def write_u64(self, pa: int, value: int) -> None:
        self.write(pa, (value & (2**64 - 1)).to_bytes(8, "little"))

    def read_u32(self, pa: int) -> int:
        return int.from_bytes(self.read(pa, 4), "little")

    def write_u32(self, pa: int, value: int) -> None:
        self.write(pa, (value & 0xFFFF_FFFF).to_bytes(4, "little"))

    def fill(self, pa: int, nbytes: int, value: int = 0) -> None:
        off = self._offset(pa, nbytes)
        self._store[off:off + nbytes] = value & 0xFF
        self._dirty.update(pages_spanning(pa, nbytes))

    # ------------------------------------------------------------------
    # Typed numpy views (used by the shader executor for real math)
    # ------------------------------------------------------------------
    def view(self, pa: int, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        off = self._offset(pa, nbytes)
        return self._store[off:off + nbytes].view(dtype).reshape(shape)

    def write_array(self, pa: int, array: np.ndarray) -> None:
        flat = np.ascontiguousarray(array)
        raw = flat.view(np.uint8).reshape(-1)
        off = self._offset(pa, raw.size)
        self._store[off:off + raw.size] = raw
        self._dirty.update(pages_spanning(pa, raw.size))

    def mark_dirty_range(self, pa: int, nbytes: int) -> None:
        """Record writes done through a raw :meth:`view`."""
        self._offset(pa, max(nbytes, 1))
        self._dirty.update(pages_spanning(pa, nbytes))

    # ------------------------------------------------------------------
    # Dirty tracking for memory synchronization (§5)
    # ------------------------------------------------------------------
    def dirty_pages(self) -> Set[int]:
        return set(self._dirty)

    def take_dirty(self) -> Set[int]:
        """Return and clear the dirty set (one sync interval)."""
        dirty, self._dirty = self._dirty, set()
        return dirty

    def clear_dirty(self) -> None:
        self._dirty.clear()

    def clear_dirty_pages(self, pfns: Iterable[int]) -> None:
        """Unmark specific pages (e.g. peer state installed by memory
        synchronization, which is not a local update to propagate)."""
        self._dirty.difference_update(pfns)

    def page_bytes(self, pfn: int) -> bytes:
        return self.read(pfn << PAGE_SHIFT, PAGE_SIZE)

    def write_page(self, pfn: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise ValueError("page write must be exactly one page")
        self.write(pfn << PAGE_SHIFT, data)

    def pages_of_region(self, region: Region) -> Iterable[int]:
        return pages_spanning(region.base, region.size)

    def snapshot_pages(self, pfns: Iterable[int]) -> Dict[int, bytes]:
        return {pfn: self.page_bytes(pfn) for pfn in pfns}

    def region_for(self, pa: int) -> Optional[Region]:
        for region in self._regions:
            if region.contains(pa):
                return region
        return None
