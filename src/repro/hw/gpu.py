"""The GPU device model: registers, power domains, job slots, IRQs.

:class:`MaliGpu` is the single source of truth for GPU state.  Everything
above it — the local driver, GR-T's GPUShim, the replayer — interacts with
it only through :meth:`read_reg`/:meth:`write_reg` and the IRQ callback,
mirroring the real hardware interface.

Time: the GPU is bound to a :class:`~repro.sim.clock.VirtualClock` and keeps
an internal event queue (power transitions, cache flushes, job completions).
``service()`` fires all events due at the current virtual time; register
accesses service implicitly.  ``next_event_time()`` lets a waiting host
fast-forward the clock to the next hardware event instead of busy-spinning.

Nondeterminism: ``LATEST_FLUSH`` returns a cache-flush epoch counter whose
value depends on execution history.  This is the register the paper calls
out (§7.3) as defeating the speculation criteria for a small class of
commits, and the model preserves that property.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.hw import regs
from repro.hw.memory import PhysicalMemory
from repro.hw.mmu import GpuMmu, GpuPageFault
from repro.hw.regs import (
    AsCommand,
    AsStatusBits,
    GpuCommand,
    GpuIrq,
    GpuStatusBits,
    JsCommand,
    JsStatus,
    NUM_ADDRESS_SPACES,
    NUM_JOB_SLOTS,
    PWR_KEY_MAGIC,
)
from repro.hw.shader import ShaderExecutor, SkuMismatchError
from repro.hw.sku import GpuSku
from repro.sim.clock import VirtualClock

# Hardware latencies (seconds).
POWER_TRANSITION_S = 120e-6
AS_COMMAND_S = 2e-6
CACHE_FLUSH_S = 18e-6
SOFT_RESET_S = 250e-6


class GpuIrqLine:
    JOB = "job"
    GPU = "gpu"
    MMU = "mmu"


@dataclass
class _JobSlot:
    head: int = 0
    tail: int = 0
    affinity: int = 0
    config: int = 0
    status: int = JsStatus.IDLE
    command: int = 0
    head_next: int = 0
    config_next: int = 0
    flush_id_next: int = 0
    active_until: float = -1.0


@dataclass
class _AddressSpace:
    transtab: int = 0
    memattr: int = 0
    transcfg: int = 0
    lockaddr: int = 0
    faultstatus: int = 0
    faultaddress: int = 0
    active_until: float = -1.0


# Register writes whose handlers schedule internal events or otherwise
# read the clock: their behaviour depends on *when* the write lands, so
# the compiled replayer must replay them one at a time with the exact
# per-entry clock advance.  Every other write is a pure state update and
# may be applied in a back-to-back batch (see ``MaliGpu.write_regs``).
EFFECTFUL_WRITE_OFFSETS = frozenset(
    {
        regs.GPU_COMMAND,
        regs.SHADER_PWRON_LO, regs.TILER_PWRON_LO, regs.L2_PWRON_LO,
        regs.SHADER_PWROFF_LO, regs.TILER_PWROFF_LO, regs.L2_PWROFF_LO,
    }
    | {regs.JOB_SLOT_BASE + nr * regs.JOB_SLOT_STRIDE + off
       for nr in range(NUM_JOB_SLOTS)
       for off in (regs.JS_COMMAND_NEXT, regs.JS_COMMAND)}
    | {regs.AS_BASE + nr * regs.AS_STRIDE + regs.AS_COMMAND
       for nr in range(NUM_ADDRESS_SPACES)}
)


def is_batchable_write(offset: int) -> bool:
    """True if a write to ``offset`` is a pure state update (no event
    scheduling, no clock dependence) and therefore batchable."""
    return offset not in EFFECTFUL_WRITE_OFFSETS


class MaliGpu:
    """Register-level model of a Mali-Bifrost-style GPU."""

    def __init__(self, sku: GpuSku, mem: PhysicalMemory,
                 clock: VirtualClock) -> None:
        self.sku = sku
        self.mem = mem
        self.clock = clock
        self.mmu = GpuMmu(mem, sku.pte_format)
        self.executor = ShaderExecutor(mem, self.mmu, sku.gpu_id, sku.gflops)

        # IRQ state per line: (rawstat, mask).
        self._irq_raw: Dict[str, int] = {l: 0 for l in
                                         (GpuIrqLine.JOB, GpuIrqLine.GPU, GpuIrqLine.MMU)}
        self._irq_mask: Dict[str, int] = {l: 0 for l in self._irq_raw}
        self.irq_sink: Optional[Callable[[str], None]] = None

        # Power domains: ready / power-transition bitmasks.
        self._ready: Dict[str, int] = {"shader": 0, "tiler": 0, "l2": 0}
        self._pwrtrans: Dict[str, int] = {"shader": 0, "tiler": 0, "l2": 0}

        self._slots = [_JobSlot() for _ in range(NUM_JOB_SLOTS)]
        self._spaces = [_AddressSpace() for _ in range(NUM_ADDRESS_SPACES)]

        self._flush_epoch = 0
        self._flush_active_until = -1.0
        self._reset_active_until = -1.0
        self._pwr_key_unlocked = False
        self._pwr_override0 = 0
        self._shader_config = 0
        self._tiler_config = 0
        self._l2_mmu_config = 0

        self._events: List[Tuple[float, int, Callable[[], None]]] = []
        self._event_seq = 0
        self._service_time: Optional[float] = None

        # GPU clock scale relative to the SKU's nominal rate; set by the
        # SoC clock controller (DVFS).  Scales job durations.
        self.clock_scale = 1.0

        # Observability for tests and the energy model.
        self.reg_reads = 0
        self.reg_writes = 0
        self.jobs_completed = 0
        self.jobs_faulted = 0
        self.resets = 0

        # Per-offset dispatch tables for the register file.  The if-chains
        # in ``_read_slow``/``_write_slow`` remain the complete reference
        # decode; the tables shortcut the hot offsets (replay touches the
        # register file once per recording entry).  Closures capture slot /
        # address-space *indices*, never the state objects: reset replaces
        # ``_slots``/``_spaces``/``_irq_raw`` wholesale, so all state must
        # be looked up through ``self`` at call time.
        self._read_dispatch: Dict[int, Callable[[], int]] = {}
        self._write_dispatch: Dict[int, Callable[[int], None]] = {}
        self._build_dispatch()

    # ------------------------------------------------------------------
    # Event machinery
    # ------------------------------------------------------------------
    def _schedule(self, delay_s: float, action: Callable[[], None]) -> float:
        # Events scheduled from inside another event's handler cascade
        # from that event's logical time, not from wherever the wall
        # clock happens to be when the backlog is serviced.
        base = self._service_time if self._service_time is not None \
            else self.clock.now
        when = base + delay_s
        heapq.heappush(self._events, (when, self._event_seq, action))
        self._event_seq += 1
        return when

    def next_event_time(self) -> Optional[float]:
        return self._events[0][0] if self._events else None

    def shift_events(self, dt: float) -> None:
        """Hold the GPU for ``dt`` virtual seconds: push every pending
        deadline into the future by the same amount.

        This is the hardware half of the recorder's clock-gating trick:
        when the WAN stalls (retransmission timeouts, jitter spikes),
        GPUShim gates the GPU so the stall is invisible to it — every
        in-flight job completion, power transition, flush and reset
        deadline moves by exactly the stall, so the GPU-relative timing
        of the session (and hence the recording's poll iteration counts
        and status reads) is identical to a stall-free run (§2.3/§6's
        determinism requirement extended to link faults).
        """
        if dt <= 0:
            return
        self._events = [(when + dt, seq, action)
                        for (when, seq, action) in self._events]
        heapq.heapify(self._events)
        for slot in self._slots:
            if slot.active_until > 0:
                slot.active_until += dt
        for space in self._spaces:
            if space.active_until > 0:
                space.active_until += dt
        if self._flush_active_until > 0:
            self._flush_active_until += dt
        if self._reset_active_until > 0:
            self._reset_active_until += dt

    def service(self) -> None:
        """Fire all internal events due at or before the current time."""
        now = self.clock.now
        while self._events and self._events[0][0] <= now + 1e-12:
            when, _, action = heapq.heappop(self._events)
            self._service_time = when
            try:
                action()
            finally:
                self._service_time = None

    # ------------------------------------------------------------------
    # IRQ handling
    # ------------------------------------------------------------------
    def _raise_irq(self, line: str, bits: int) -> None:
        self._irq_raw[line] |= bits
        if self._irq_raw[line] & self._irq_mask[line] and self.irq_sink:
            self.irq_sink(line)

    def irq_pending(self, line: str) -> bool:
        self.service()
        return bool(self._irq_raw[line] & self._irq_mask[line])

    def any_irq_pending(self) -> Optional[str]:
        self.service()
        for line in (GpuIrqLine.JOB, GpuIrqLine.GPU, GpuIrqLine.MMU):
            if self._irq_raw[line] & self._irq_mask[line]:
                return line
        return None

    # ------------------------------------------------------------------
    # Register file
    # ------------------------------------------------------------------
    def read_reg(self, offset: int) -> int:
        self.service()
        self.reg_reads += 1
        value = self._read(offset)
        return value & 0xFFFF_FFFF

    def write_reg(self, offset: int, value: int) -> None:
        self.service()
        self.reg_writes += 1
        self._write(offset, value & 0xFFFF_FFFF)

    def write_regs(self, offsets, values) -> None:
        """Apply a batch of register writes back to back.

        Equivalent to ``write_reg`` per pair *provided no internal event
        falls due during the batch* — the caller (the compiled replayer)
        guarantees that by checking :meth:`next_event_time` against the
        batch's virtual-time window before batching, and only ever batches
        offsets for which :func:`is_batchable_write` holds (writes that
        neither schedule events nor read the clock).  Under those two
        conditions the single leading ``service()`` observes the same due
        set as per-write servicing would, and write order is preserved.
        """
        self.service()
        self.reg_writes += len(offsets)
        dispatch = self._write_dispatch
        for offset, value in zip(offsets, values):
            fn = dispatch.get(offset)
            if fn is not None:
                fn(value & 0xFFFF_FFFF)
            else:
                self._write_slow(offset, value & 0xFFFF_FFFF)

    def read_regs(self, offsets) -> tuple:
        """Read a batch of registers back to back.

        One leading ``service()`` covers the whole batch; reads in this
        model are side-effect free (no read-to-clear registers), so the
        result equals per-offset ``read_reg`` calls at the same instant.
        The compiled replayer uses this speculatively: if a speculation
        fails it re-reads per entry, so ``reg_reads`` may overcount by the
        batch size on that (rare, divergence-adjacent) path.
        """
        self.service()
        self.reg_reads += len(offsets)
        dispatch = self._read_dispatch
        slow = self._read_slow
        return tuple(
            (fn() if (fn := dispatch.get(offset)) is not None
             else slow(offset)) & 0xFFFF_FFFF
            for offset in offsets)

    # -- dispatch -------------------------------------------------------
    def _read(self, offset: int) -> int:
        fn = self._read_dispatch.get(offset)
        if fn is not None:
            return fn()
        return self._read_slow(offset)

    def _write(self, offset: int, value: int) -> None:
        fn = self._write_dispatch.get(offset)
        if fn is not None:
            fn(value)
            return
        self._write_slow(offset, value)

    def _build_dispatch(self) -> None:
        rd = self._read_dispatch
        wr = self._write_dispatch
        raw, mask = self._irq_raw, self._irq_mask  # only for key iteration

        # IRQ banks (state dicts re-fetched through self on every call).
        for line, rs, ms, st, cl in (
            (GpuIrqLine.GPU, regs.GPU_IRQ_RAWSTAT, regs.GPU_IRQ_MASK,
             regs.GPU_IRQ_STATUS, regs.GPU_IRQ_CLEAR),
            (GpuIrqLine.JOB, regs.JOB_IRQ_RAWSTAT, regs.JOB_IRQ_MASK,
             regs.JOB_IRQ_STATUS, regs.JOB_IRQ_CLEAR),
            (GpuIrqLine.MMU, regs.MMU_IRQ_RAWSTAT, regs.MMU_IRQ_MASK,
             regs.MMU_IRQ_STATUS, regs.MMU_IRQ_CLEAR),
        ):
            rd[rs] = lambda l=line: self._irq_raw[l]
            rd[ms] = lambda l=line: self._irq_mask[l]
            rd[st] = lambda l=line: self._irq_raw[l] & self._irq_mask[l]
            wr[cl] = lambda v, l=line: self._irq_clear(l, v)
            wr[ms] = lambda v, l=line: self._irq_set_mask(l, v)
        assert set(raw) == set(mask)  # three lines, both dicts aligned

        rd[regs.LATEST_FLUSH] = lambda: self._flush_epoch
        rd[regs.GPU_STATUS] = self._read_gpu_status
        rd[regs.JOB_IRQ_JS_STATE] = self._read_js_state
        rd[regs.SHADER_CONFIG] = lambda: self._shader_config
        rd[regs.TILER_CONFIG] = lambda: self._tiler_config
        rd[regs.L2_MMU_CONFIG] = lambda: self._l2_mmu_config
        rd[regs.PWR_OVERRIDE0] = lambda: self._pwr_override0
        for base, domain in ((regs.SHADER_READY_LO, "shader"),
                             (regs.TILER_READY_LO, "tiler"),
                             (regs.L2_READY_LO, "l2")):
            rd[base] = lambda d=domain: self._ready[d] & 0xFFFF_FFFF
            rd[base + 4] = lambda d=domain: self._ready[d] >> 32
        for base, domain in ((regs.SHADER_PWRTRANS_LO, "shader"),
                             (regs.TILER_PWRTRANS_LO, "tiler"),
                             (regs.L2_PWRTRANS_LO, "l2")):
            rd[base] = lambda d=domain: self._pwrtrans[d] & 0xFFFF_FFFF
            rd[base + 4] = lambda d=domain: self._pwrtrans[d] >> 32

        # Job-slot and address-space banks: delegate with precomputed
        # (index, relative offset), skipping the divmod decode per access.
        for nr in range(NUM_JOB_SLOTS):
            base = regs.JOB_SLOT_BASE + nr * regs.JOB_SLOT_STRIDE
            for off in (regs.JS_HEAD_LO, regs.JS_HEAD_HI, regs.JS_TAIL_LO,
                        regs.JS_TAIL_HI, regs.JS_AFFINITY_LO,
                        regs.JS_AFFINITY_HI, regs.JS_CONFIG, regs.JS_STATUS):
                rd[base + off] = (lambda n=nr, o=off:
                                  self._read_slot(n, o))
            for off in (regs.JS_HEAD_NEXT_LO, regs.JS_HEAD_NEXT_HI,
                        regs.JS_AFFINITY_NEXT_LO, regs.JS_AFFINITY_NEXT_HI,
                        regs.JS_CONFIG_NEXT, regs.JS_FLUSH_ID_NEXT,
                        regs.JS_COMMAND_NEXT, regs.JS_COMMAND):
                wr[base + off] = (lambda v, n=nr, o=off:
                                  self._write_slot(n, o, v))
        for nr in range(NUM_ADDRESS_SPACES):
            base = regs.AS_BASE + nr * regs.AS_STRIDE
            for off in (regs.AS_TRANSTAB_LO, regs.AS_TRANSTAB_HI,
                        regs.AS_MEMATTR_LO, regs.AS_MEMATTR_HI,
                        regs.AS_STATUS, regs.AS_FAULTSTATUS,
                        regs.AS_FAULTADDRESS_LO, regs.AS_FAULTADDRESS_HI,
                        regs.AS_TRANSCFG_LO, regs.AS_TRANSCFG_HI):
                rd[base + off] = (lambda n=nr, o=off:
                                  self._read_as(n, o))
            for off in (regs.AS_TRANSTAB_LO, regs.AS_TRANSTAB_HI,
                        regs.AS_MEMATTR_LO, regs.AS_MEMATTR_HI,
                        regs.AS_LOCKADDR_LO, regs.AS_LOCKADDR_HI,
                        regs.AS_TRANSCFG_LO, regs.AS_TRANSCFG_HI,
                        regs.AS_COMMAND):
                wr[base + off] = (lambda v, n=nr, o=off:
                                  self._write_as(n, o, v))

    def _irq_clear(self, line: str, value: int) -> None:
        self._irq_raw[line] &= ~value

    def _irq_set_mask(self, line: str, value: int) -> None:
        self._irq_mask[line] = value

    def _read_gpu_status(self) -> int:
        now = self.clock.now
        status = 0
        if any(s.active_until > now for s in self._slots):
            status |= GpuStatusBits.GPU_ACTIVE
        if any(t for t in self._pwrtrans.values()):
            status |= GpuStatusBits.POWER_TRANS
        return status

    def _read_js_state(self) -> int:
        now = self.clock.now
        state = 0
        for i, slot in enumerate(self._slots):
            if slot.active_until > now:
                state |= 1 << i
        return state

    # -- reads ----------------------------------------------------------
    def _read_slow(self, offset: int) -> int:
        sku = self.sku
        if offset == regs.GPU_ID:
            return sku.gpu_id
        if offset == regs.L2_FEATURES:
            return 0x07120206 | (sku.l2_slices << 24)
        if offset == regs.CORE_FEATURES:
            return sku.core_count
        if offset == regs.TILER_FEATURES:
            return 0x00000809
        if offset == regs.MEM_FEATURES:
            return 0x1 | (sku.l2_slices << 8)
        if offset == regs.MMU_FEATURES:
            return (sku.va_bits) | (40 << 8)  # VA bits | PA bits
        if offset == regs.AS_PRESENT:
            return (1 << NUM_ADDRESS_SPACES) - 1
        if offset == regs.JS_PRESENT:
            return (1 << NUM_JOB_SLOTS) - 1
        if offset == regs.THREAD_MAX_THREADS:
            return 384 * sku.core_count
        if offset == regs.THREAD_MAX_WORKGROUP_SIZE:
            return 384
        if offset == regs.THREAD_MAX_BARRIER_SIZE:
            return 384
        if offset == regs.THREAD_FEATURES:
            return 0x0400_0406
        if regs.TEXTURE_FEATURES_0 <= offset <= regs.TEXTURE_FEATURES_2:
            return 0x00FE001E
        if regs.JS0_FEATURES <= offset < regs.JS0_FEATURES + 4 * NUM_JOB_SLOTS:
            return 0x20E  # compute-capable slot
        if offset == regs.GPU_IRQ_RAWSTAT:
            return self._irq_raw[GpuIrqLine.GPU]
        if offset == regs.GPU_IRQ_MASK:
            return self._irq_mask[GpuIrqLine.GPU]
        if offset == regs.GPU_IRQ_STATUS:
            return self._irq_raw[GpuIrqLine.GPU] & self._irq_mask[GpuIrqLine.GPU]
        if offset == regs.GPU_STATUS:
            return self._read_gpu_status()
        if offset == regs.LATEST_FLUSH:
            # Cache-flush epoch: history dependent, hence nondeterministic
            # from the driver's point of view (§7.3).
            return self._flush_epoch
        if offset == regs.GPU_FAULTSTATUS:
            return 0
        if offset == regs.SHADER_PRESENT_LO:
            return sku.shader_present_mask & 0xFFFF_FFFF
        if offset == regs.SHADER_PRESENT_HI:
            return sku.shader_present_mask >> 32
        if offset == regs.TILER_PRESENT_LO:
            return sku.tiler_present_mask
        if offset == regs.TILER_PRESENT_HI:
            return 0
        if offset == regs.L2_PRESENT_LO:
            return sku.l2_present_mask
        if offset == regs.L2_PRESENT_HI:
            return 0
        if offset in (regs.STACK_PRESENT_LO, regs.STACK_PRESENT_HI):
            return 0
        for base, domain in ((regs.SHADER_READY_LO, "shader"),
                             (regs.TILER_READY_LO, "tiler"),
                             (regs.L2_READY_LO, "l2")):
            if offset == base:
                return self._ready[domain] & 0xFFFF_FFFF
            if offset == base + 4:
                return self._ready[domain] >> 32
        for base, domain in ((regs.SHADER_PWRTRANS_LO, "shader"),
                             (regs.TILER_PWRTRANS_LO, "tiler"),
                             (regs.L2_PWRTRANS_LO, "l2")):
            if offset == base:
                return self._pwrtrans[domain] & 0xFFFF_FFFF
            if offset == base + 4:
                return self._pwrtrans[domain] >> 32
        if offset == regs.SHADER_CONFIG:
            return self._shader_config
        if offset == regs.TILER_CONFIG:
            return self._tiler_config
        if offset == regs.L2_MMU_CONFIG:
            return self._l2_mmu_config
        if offset == regs.PWR_OVERRIDE0:
            return self._pwr_override0
        if offset == regs.JOB_IRQ_RAWSTAT:
            return self._irq_raw[GpuIrqLine.JOB]
        if offset == regs.JOB_IRQ_MASK:
            return self._irq_mask[GpuIrqLine.JOB]
        if offset == regs.JOB_IRQ_STATUS:
            return self._irq_raw[GpuIrqLine.JOB] & self._irq_mask[GpuIrqLine.JOB]
        if offset == regs.JOB_IRQ_JS_STATE:
            return self._read_js_state()
        if offset == regs.MMU_IRQ_RAWSTAT:
            return self._irq_raw[GpuIrqLine.MMU]
        if offset == regs.MMU_IRQ_MASK:
            return self._irq_mask[GpuIrqLine.MMU]
        if offset == regs.MMU_IRQ_STATUS:
            return self._irq_raw[GpuIrqLine.MMU] & self._irq_mask[GpuIrqLine.MMU]
        slot_nr, slot_off = self._slot_offset(offset)
        if slot_nr is not None:
            return self._read_slot(slot_nr, slot_off)
        as_nr, as_off = self._as_offset(offset)
        if as_nr is not None:
            return self._read_as(as_nr, as_off)
        return 0

    def _read_slot(self, nr: int, off: int) -> int:
        slot = self._slots[nr]
        if off == regs.JS_HEAD_LO:
            return slot.head & 0xFFFF_FFFF
        if off == regs.JS_HEAD_HI:
            return slot.head >> 32
        if off == regs.JS_TAIL_LO:
            return slot.tail & 0xFFFF_FFFF
        if off == regs.JS_TAIL_HI:
            return slot.tail >> 32
        if off == regs.JS_AFFINITY_LO:
            return slot.affinity & 0xFFFF_FFFF
        if off == regs.JS_AFFINITY_HI:
            return slot.affinity >> 32
        if off == regs.JS_CONFIG:
            return slot.config
        if off == regs.JS_STATUS:
            if slot.active_until > self.clock.now:
                return JsStatus.ACTIVE
            return slot.status
        return 0

    def _read_as(self, nr: int, off: int) -> int:
        space = self._spaces[nr]
        if off == regs.AS_TRANSTAB_LO:
            return space.transtab & 0xFFFF_FFFF
        if off == regs.AS_TRANSTAB_HI:
            return space.transtab >> 32
        if off == regs.AS_MEMATTR_LO:
            return space.memattr & 0xFFFF_FFFF
        if off == regs.AS_MEMATTR_HI:
            return space.memattr >> 32
        if off == regs.AS_STATUS:
            return AsStatusBits.ACTIVE if space.active_until > self.clock.now else 0
        if off == regs.AS_FAULTSTATUS:
            return space.faultstatus
        if off == regs.AS_FAULTADDRESS_LO:
            return space.faultaddress & 0xFFFF_FFFF
        if off == regs.AS_FAULTADDRESS_HI:
            return space.faultaddress >> 32
        if off == regs.AS_TRANSCFG_LO:
            return space.transcfg & 0xFFFF_FFFF
        if off == regs.AS_TRANSCFG_HI:
            return space.transcfg >> 32
        return 0

    # -- writes ---------------------------------------------------------
    def _write_slow(self, offset: int, value: int) -> None:
        if offset == regs.GPU_IRQ_CLEAR:
            self._irq_raw[GpuIrqLine.GPU] &= ~value
            return
        if offset == regs.GPU_IRQ_MASK:
            self._irq_mask[GpuIrqLine.GPU] = value
            return
        if offset == regs.GPU_COMMAND:
            self._gpu_command(value)
            return
        if offset == regs.PWR_KEY:
            self._pwr_key_unlocked = value == PWR_KEY_MAGIC
            return
        if offset == regs.PWR_OVERRIDE0:
            if self._pwr_key_unlocked:
                self._pwr_override0 = value
            return
        if offset == regs.SHADER_CONFIG:
            self._shader_config = value
            return
        if offset == regs.TILER_CONFIG:
            self._tiler_config = value
            return
        if offset == regs.L2_MMU_CONFIG:
            self._l2_mmu_config = value
            return
        for base, domain, present in (
            (regs.SHADER_PWRON_LO, "shader", self.sku.shader_present_mask),
            (regs.TILER_PWRON_LO, "tiler", self.sku.tiler_present_mask),
            (regs.L2_PWRON_LO, "l2", self.sku.l2_present_mask),
        ):
            if offset == base:
                self._power_on(domain, value & present)
                return
            if offset == base + 4:
                return  # HI words unused (<=32 cores modelled)
        for base, domain in ((regs.SHADER_PWROFF_LO, "shader"),
                             (regs.TILER_PWROFF_LO, "tiler"),
                             (regs.L2_PWROFF_LO, "l2")):
            if offset == base:
                self._power_off(domain, value)
                return
            if offset == base + 4:
                return
        if offset == regs.JOB_IRQ_CLEAR:
            self._irq_raw[GpuIrqLine.JOB] &= ~value
            return
        if offset == regs.JOB_IRQ_MASK:
            self._irq_mask[GpuIrqLine.JOB] = value
            return
        if offset == regs.MMU_IRQ_CLEAR:
            self._irq_raw[GpuIrqLine.MMU] &= ~value
            return
        if offset == regs.MMU_IRQ_MASK:
            self._irq_mask[GpuIrqLine.MMU] = value
            return
        slot_nr, slot_off = self._slot_offset(offset)
        if slot_nr is not None:
            self._write_slot(slot_nr, slot_off, value)
            return
        as_nr, as_off = self._as_offset(offset)
        if as_nr is not None:
            self._write_as(as_nr, as_off, value)
            return
        # Unknown/ignored registers accept writes silently, like hardware.

    # ------------------------------------------------------------------
    # Power domain state machine (§4.2: "repeated GPU state transitions")
    # ------------------------------------------------------------------
    def _power_on(self, domain: str, mask: int) -> None:
        to_on = mask & ~self._ready[domain]
        if not to_on:
            return
        self._pwrtrans[domain] |= to_on

        def complete(d=domain, m=to_on) -> None:
            # Shader and tiler cores sit behind the L2: they cannot come
            # up until their cache slice is powered (real Mali domain
            # dependency — drivers must sequence L2 first).
            if d != "l2" and self._ready["l2"] != self.sku.l2_present_mask:
                self._schedule(POWER_TRANSITION_S, complete)
                return
            self._pwrtrans[d] &= ~m
            self._ready[d] |= m
            self._raise_irq(GpuIrqLine.GPU, GpuIrq.POWER_CHANGED_ALL)

        self._schedule(POWER_TRANSITION_S, complete)

    def _power_off(self, domain: str, mask: int) -> None:
        to_off = mask & self._ready[domain]
        if not to_off:
            return
        self._pwrtrans[domain] |= to_off

        def complete(d=domain, m=to_off) -> None:
            self._pwrtrans[d] &= ~m
            self._ready[d] &= ~m
            self._raise_irq(GpuIrqLine.GPU, GpuIrq.POWER_CHANGED_ALL)

        self._schedule(POWER_TRANSITION_S, complete)

    def domains_ready(self) -> Dict[str, int]:
        self.service()
        return dict(self._ready)

    # ------------------------------------------------------------------
    # GPU commands
    # ------------------------------------------------------------------
    def _gpu_command(self, cmd: int) -> None:
        if cmd in (GpuCommand.SOFT_RESET, GpuCommand.HARD_RESET):
            self._do_reset(hard=cmd == GpuCommand.HARD_RESET)
        elif cmd in (GpuCommand.CLEAN_CACHES, GpuCommand.CLEAN_INV_CACHES):
            self._flush_epoch += 1

            def complete() -> None:
                self._raise_irq(GpuIrqLine.GPU, GpuIrq.CLEAN_CACHES_COMPLETED)

            self._flush_active_until = self._schedule(CACHE_FLUSH_S, complete)
        # NOP / perf-counter commands: accepted, no modelled effect.

    def _do_reset(self, hard: bool) -> None:
        self.resets += 1
        self._events.clear()
        for line in self._irq_raw:
            self._irq_raw[line] = 0
            self._irq_mask[line] = 0
        for domain in self._ready:
            self._ready[domain] = 0
            self._pwrtrans[domain] = 0
        self._slots = [_JobSlot() for _ in range(NUM_JOB_SLOTS)]
        self._spaces = [_AddressSpace() for _ in range(NUM_ADDRESS_SPACES)]
        self.mmu.configure(0, enabled=False)
        self._shader_config = 0
        self._tiler_config = 0
        self._l2_mmu_config = 0
        self._pwr_override0 = 0
        self._pwr_key_unlocked = False
        if hard:
            self._flush_epoch = 0

        def complete() -> None:
            self._raise_irq(GpuIrqLine.GPU, GpuIrq.RESET_COMPLETED)

        self._reset_active_until = self._schedule(SOFT_RESET_S, complete)

    def hard_reset_now(self) -> None:
        """Out-of-band reset used by the TEE before/after replay (§3.2)."""
        self._do_reset(hard=True)
        self.service()
        self._events.clear()
        self._irq_raw = {l: 0 for l in self._irq_raw}

    # ------------------------------------------------------------------
    # Job slots
    # ------------------------------------------------------------------
    def _slot_offset(self, offset: int) -> Tuple[Optional[int], int]:
        if regs.JOB_SLOT_BASE <= offset < (regs.JOB_SLOT_BASE
                                           + NUM_JOB_SLOTS * regs.JOB_SLOT_STRIDE):
            rel = offset - regs.JOB_SLOT_BASE
            return rel // regs.JOB_SLOT_STRIDE, rel % regs.JOB_SLOT_STRIDE
        return None, 0

    def _write_slot(self, nr: int, off: int, value: int) -> None:
        slot = self._slots[nr]
        if off == regs.JS_HEAD_NEXT_LO:
            slot.head_next = (slot.head_next & ~0xFFFF_FFFF) | value
        elif off == regs.JS_HEAD_NEXT_HI:
            slot.head_next = (slot.head_next & 0xFFFF_FFFF) | (value << 32)
        elif off == regs.JS_AFFINITY_NEXT_LO:
            slot.affinity = (slot.affinity & ~0xFFFF_FFFF) | value
        elif off == regs.JS_AFFINITY_NEXT_HI:
            slot.affinity = (slot.affinity & 0xFFFF_FFFF) | (value << 32)
        elif off == regs.JS_CONFIG_NEXT:
            slot.config_next = value
        elif off == regs.JS_FLUSH_ID_NEXT:
            slot.flush_id_next = value
        elif off == regs.JS_COMMAND_NEXT:
            if value == JsCommand.START:
                self._start_job(nr)
        elif off == regs.JS_COMMAND:
            if value in (JsCommand.SOFT_STOP, JsCommand.HARD_STOP):
                slot.active_until = -1.0
                slot.status = JsStatus.IDLE

    def _start_job(self, nr: int) -> None:
        slot = self._slots[nr]
        slot.head = slot.head_next
        slot.tail = slot.head_next
        slot.config = slot.config_next
        slot.status = JsStatus.ACTIVE
        try:
            result = self.executor.run_job(slot.head)
        except (GpuPageFault, SkuMismatchError, ValueError) as exc:
            self.jobs_faulted += 1
            fault_status = (JsStatus.JOB_READ_FAULT
                            if isinstance(exc, GpuPageFault)
                            else JsStatus.JOB_CONFIG_FAULT)

            def fault(s=slot, n=nr, fs=fault_status) -> None:
                s.status = fs
                s.active_until = -1.0
                # Mali signals job failure on bit (16 + slot).
                self._raise_irq(GpuIrqLine.JOB, 1 << (16 + n))

            slot.active_until = self._schedule(10e-6, fault)
            return

        def complete(s=slot, n=nr) -> None:
            s.status = JsStatus.DONE
            s.active_until = -1.0
            self.jobs_completed += 1
            self._raise_irq(GpuIrqLine.JOB, 1 << n)

        duration = result.duration_s / max(self.clock_scale, 1e-6)
        slot.active_until = self._schedule(duration, complete)

    # ------------------------------------------------------------------
    # Address spaces
    # ------------------------------------------------------------------
    def _as_offset(self, offset: int) -> Tuple[Optional[int], int]:
        if regs.AS_BASE <= offset < regs.AS_BASE + NUM_ADDRESS_SPACES * regs.AS_STRIDE:
            rel = offset - regs.AS_BASE
            return rel // regs.AS_STRIDE, rel % regs.AS_STRIDE
        return None, 0

    def _write_as(self, nr: int, off: int, value: int) -> None:
        space = self._spaces[nr]
        if off == regs.AS_TRANSTAB_LO:
            space.transtab = (space.transtab & ~0xFFFF_FFFF) | value
        elif off == regs.AS_TRANSTAB_HI:
            space.transtab = (space.transtab & 0xFFFF_FFFF) | (value << 32)
        elif off == regs.AS_MEMATTR_LO:
            space.memattr = (space.memattr & ~0xFFFF_FFFF) | value
        elif off == regs.AS_MEMATTR_HI:
            space.memattr = (space.memattr & 0xFFFF_FFFF) | (value << 32)
        elif off == regs.AS_LOCKADDR_LO:
            space.lockaddr = (space.lockaddr & ~0xFFFF_FFFF) | value
        elif off == regs.AS_LOCKADDR_HI:
            space.lockaddr = (space.lockaddr & 0xFFFF_FFFF) | (value << 32)
        elif off == regs.AS_TRANSCFG_LO:
            space.transcfg = (space.transcfg & ~0xFFFF_FFFF) | value
        elif off == regs.AS_TRANSCFG_HI:
            space.transcfg = (space.transcfg & 0xFFFF_FFFF) | (value << 32)
        elif off == regs.AS_COMMAND:
            self._as_command(nr, value)

    def _as_command(self, nr: int, cmd: int) -> None:
        space = self._spaces[nr]
        if cmd == AsCommand.UPDATE:
            # AS0 drives the modelled MMU; other spaces accept commands but
            # have no translation consumers in this model.
            if nr == 0:
                enabled = space.transtab != 0
                self.mmu.configure(space.transtab, enabled=enabled)
        elif cmd in (AsCommand.FLUSH_PT, AsCommand.FLUSH_MEM):
            if nr == 0:
                self.mmu.flush_tlb()
        elif cmd in (AsCommand.LOCK, AsCommand.UNLOCK, AsCommand.NOP):
            pass
        space.active_until = self._schedule(AS_COMMAND_S, lambda: None)

    # ------------------------------------------------------------------
    def is_idle(self) -> bool:
        self.service()
        now = self.clock.now
        return (not any(s.active_until > now for s in self._slots)
                and self._flush_active_until <= now
                and self._reset_active_until <= now
                and not any(self._pwrtrans.values()))
