"""Mobile GPU SKU database.

Two purposes:

1. Reproduce Figure 3 (numbers of new mobile GPU SKUs per year, showing
   the diversity that makes per-SKU recording on developer machines
   impractical).  The entries below follow the public release history of
   the Adreno, Mali, and PowerVR families (the three families the paper's
   Figure 3 plots from gadgetversus/techcenturion data).

2. Parameterize the hardware model.  Recordings are SKU-specific (§2.4):
   the shader core count steers the JIT compiler's tiling, and the page
   table format and register quirks differ between SKUs.  Each
   :class:`GpuSku` carries exactly those parameters, so a recording made
   for one SKU demonstrably fails to replay on another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class GpuSku:
    """One GPU hardware model (a "SKU" in the paper's terms)."""

    name: str
    family: str  # "mali-bifrost", "mali-midgard", "adreno", "powervr"
    year: int
    gpu_id: int  # value of the GPU_ID register (product | revision)
    core_count: int
    l2_slices: int
    clock_mhz: int
    gflops: float  # peak FP32 throughput, drives the job duration model
    va_bits: int = 39
    pte_format: int = 1  # page table entry layout revision
    quirks: Tuple[str, ...] = ()

    @property
    def shader_present_mask(self) -> int:
        return (1 << self.core_count) - 1

    @property
    def l2_present_mask(self) -> int:
        return (1 << self.l2_slices) - 1

    @property
    def tiler_present_mask(self) -> int:
        return 0x1

    def fingerprint(self) -> Tuple:
        """Everything a recording implicitly depends on.

        Used by the replayer to verify recording/SKU compatibility; any
        difference in these fields can break replay (§2.4).
        """
        return (
            self.gpu_id,
            self.core_count,
            self.l2_slices,
            self.va_bits,
            self.pte_format,
            self.quirks,
        )


def _mali(name: str, year: int, product: int, cores: int, l2: int, mhz: int,
          gflops: float, family: str = "mali-bifrost",
          quirks: Tuple[str, ...] = (), pte_format: int = 1) -> GpuSku:
    gpu_id = (product << 16) | 0x0010  # product id in [31:16], r0p1
    return GpuSku(name=name, family=family, year=year, gpu_id=gpu_id,
                  core_count=cores, l2_slices=l2, clock_mhz=mhz,
                  gflops=gflops, quirks=quirks, pte_format=pte_format)


def _other(name: str, family: str, year: int, ident: int, cores: int,
           mhz: int, gflops: float) -> GpuSku:
    return GpuSku(name=name, family=family, year=year, gpu_id=ident,
                  core_count=cores, l2_slices=1, clock_mhz=mhz,
                  gflops=gflops, pte_format=2)


# ---------------------------------------------------------------------------
# Fully-parameterized SKUs used by the experiments.  HIKEY960_G71 matches the
# paper's client platform (Mali G71 MP8 on Hikey960).
# ---------------------------------------------------------------------------
HIKEY960_G71 = _mali("Mali-G71 MP8", 2016, 0x6000, 8, 2, 1037, 265.0,
                     quirks=("mmu_snoop_disparity", "tiler_early_z"))

SKU_DATABASE: List[GpuSku] = [
    # --- Mali Midgard era -------------------------------------------------
    _mali("Mali-T604 MP4", 2012, 0x0604, 4, 1, 533, 68.0, family="mali-midgard", pte_format=0),
    _mali("Mali-T628 MP4", 2013, 0x0628, 4, 1, 600, 77.0, family="mali-midgard", pte_format=0),
    _mali("Mali-T628 MP6", 2013, 0x0628, 6, 1, 600, 115.0, family="mali-midgard", pte_format=0),
    _mali("Mali-T720 MP2", 2014, 0x0720, 2, 1, 600, 41.0, family="mali-midgard", pte_format=0),
    _mali("Mali-T760 MP4", 2014, 0x0760, 4, 1, 700, 95.0, family="mali-midgard", pte_format=0),
    _mali("Mali-T760 MP8", 2014, 0x0760, 8, 2, 772, 210.0, family="mali-midgard", pte_format=0),
    _mali("Mali-T820 MP2", 2015, 0x0820, 2, 1, 600, 41.0, family="mali-midgard", pte_format=0),
    _mali("Mali-T830 MP2", 2015, 0x0830, 2, 1, 600, 47.0, family="mali-midgard", pte_format=0),
    _mali("Mali-T860 MP4", 2015, 0x0860, 4, 1, 650, 96.0, family="mali-midgard", pte_format=0),
    _mali("Mali-T880 MP4", 2015, 0x0880, 4, 1, 900, 125.0, family="mali-midgard", pte_format=0),
    _mali("Mali-T880 MP12", 2016, 0x0880, 12, 2, 850, 374.0, family="mali-midgard", pte_format=0),
    # --- Mali Bifrost era -------------------------------------------------
    HIKEY960_G71,
    _mali("Mali-G71 MP20", 2016, 0x6000, 20, 4, 850, 544.0,
          quirks=("mmu_snoop_disparity", "tiler_early_z")),
    _mali("Mali-G51 MP4", 2017, 0x7000, 4, 1, 650, 83.0),
    _mali("Mali-G72 MP12", 2017, 0x6001, 12, 2, 850, 326.0, quirks=("tiler_early_z",)),
    _mali("Mali-G72 MP18", 2017, 0x6001, 18, 4, 572, 330.0, quirks=("tiler_early_z",)),
    _mali("Mali-G52 MP2", 2018, 0x7002, 2, 1, 850, 54.0),
    _mali("Mali-G76 MP10", 2018, 0x7001, 10, 2, 720, 460.0),
    _mali("Mali-G76 MP12", 2018, 0x7001, 12, 2, 600, 460.0),
    _mali("Mali-G57 MP4", 2019, 0x9003, 4, 1, 850, 217.0),
    _mali("Mali-G77 MP9", 2019, 0x9000, 9, 2, 800, 461.0),
    _mali("Mali-G77 MP11", 2020, 0x9000, 11, 2, 836, 588.0),
    _mali("Mali-G68 MP4", 2020, 0x9004, 4, 1, 800, 204.0),
    _mali("Mali-G78 MP14", 2020, 0x9002, 14, 4, 760, 680.0),
    _mali("Mali-G78 MP24", 2020, 0x9002, 24, 4, 760, 1165.0),
    _mali("Mali-G310 MP2", 2021, 0xA002, 2, 1, 800, 102.0),
    _mali("Mali-G510 MP6", 2021, 0xA001, 6, 1, 800, 306.0),
    _mali("Mali-G610 MP4", 2021, 0xA000, 4, 2, 800, 408.0),
    _mali("Mali-G710 MP10", 2021, 0xA000, 10, 4, 850, 1023.0),
    # --- Qualcomm Adreno --------------------------------------------------
    _other("Adreno 225", "adreno", 2012, 0x225, 8, 400, 25.6),
    _other("Adreno 305", "adreno", 2012, 0x305, 6, 450, 21.6),
    _other("Adreno 320", "adreno", 2012, 0x320, 16, 400, 57.6),
    _other("Adreno 330", "adreno", 2013, 0x330, 32, 450, 129.6),
    _other("Adreno 302", "adreno", 2013, 0x302, 6, 400, 19.2),
    _other("Adreno 306", "adreno", 2014, 0x306, 6, 450, 21.6),
    _other("Adreno 405", "adreno", 2014, 0x405, 12, 550, 59.4),
    _other("Adreno 420", "adreno", 2014, 0x420, 32, 600, 172.8),
    _other("Adreno 430", "adreno", 2015, 0x430, 48, 650, 280.8),
    _other("Adreno 405e", "adreno", 2015, 0x406, 12, 550, 59.4),
    _other("Adreno 505", "adreno", 2016, 0x505, 12, 450, 48.6),
    _other("Adreno 506", "adreno", 2016, 0x506, 12, 650, 70.2),
    _other("Adreno 510", "adreno", 2016, 0x510, 24, 600, 129.6),
    _other("Adreno 530", "adreno", 2016, 0x530, 64, 653, 407.4),
    _other("Adreno 508", "adreno", 2017, 0x508, 16, 850, 108.8),
    _other("Adreno 512", "adreno", 2017, 0x512, 24, 850, 163.2),
    _other("Adreno 540", "adreno", 2017, 0x540, 64, 710, 567.0),
    _other("Adreno 509", "adreno", 2018, 0x509, 16, 720, 92.2),
    _other("Adreno 615", "adreno", 2018, 0x615, 32, 780, 199.7),
    _other("Adreno 616", "adreno", 2018, 0x616, 32, 750, 192.0),
    _other("Adreno 630", "adreno", 2018, 0x630, 64, 710, 727.0),
    _other("Adreno 610", "adreno", 2019, 0x610, 24, 845, 162.2),
    _other("Adreno 618", "adreno", 2019, 0x618, 32, 825, 316.8),
    _other("Adreno 640", "adreno", 2019, 0x640, 96, 675, 898.6),
    _other("Adreno 620", "adreno", 2020, 0x620, 48, 750, 460.8),
    _other("Adreno 650", "adreno", 2020, 0x650, 128, 670, 1143.0),
    _other("Adreno 619", "adreno", 2021, 0x619, 32, 950, 364.8),
    _other("Adreno 660", "adreno", 2021, 0x660, 128, 840, 1720.0),
    _other("Adreno 642L", "adreno", 2021, 0x642, 64, 550, 563.2),
    # --- Imagination PowerVR ----------------------------------------------
    _other("PowerVR SGX544MP3", "powervr", 2012, 0x544, 3, 533, 51.1),
    _other("PowerVR SGX554MP4", "powervr", 2012, 0x554, 4, 280, 71.6),
    _other("PowerVR G6200", "powervr", 2013, 0x6200, 2, 600, 153.6),
    _other("PowerVR G6400", "powervr", 2013, 0x6400, 4, 450, 230.4),
    _other("PowerVR G6430", "powervr", 2013, 0x6430, 4, 450, 230.4),
    _other("PowerVR GX6250", "powervr", 2014, 0x6250, 2, 600, 153.6),
    _other("PowerVR GX6450", "powervr", 2014, 0x6450, 4, 450, 230.4),
    _other("PowerVR G6110", "powervr", 2015, 0x6110, 1, 600, 76.8),
    _other("PowerVR GT7600", "powervr", 2015, 0x7600, 6, 450, 345.6),
    _other("PowerVR GE8100", "powervr", 2016, 0x8100, 1, 570, 36.5),
    _other("PowerVR GE8300", "powervr", 2016, 0x8300, 2, 800, 102.4),
    _other("PowerVR GT7600 Plus", "powervr", 2016, 0x7601, 6, 650, 499.2),
    _other("PowerVR GE8320", "powervr", 2017, 0x8320, 2, 680, 87.0),
    _other("PowerVR GM9446", "powervr", 2018, 0x9446, 4, 970, 496.6),
    _other("PowerVR GE8322", "powervr", 2019, 0x8322, 2, 550, 70.4),
    _other("PowerVR GM9444", "powervr", 2020, 0x9444, 4, 800, 409.6),
    _other("PowerVR BXM-8-256", "powervr", 2021, 0xB256, 8, 850, 870.4),
]


def find_sku(name: str) -> GpuSku:
    """Look up a SKU by its exact marketing name."""
    for sku in SKU_DATABASE:
        if sku.name == name:
            return sku
    raise KeyError(f"unknown GPU SKU: {name!r}")


def skus_in_family(family: str) -> List[GpuSku]:
    return [s for s in SKU_DATABASE if s.family == family]


def new_skus_per_year(family: Optional[str] = None) -> Dict[int, int]:
    """Figure 3's series: how many new SKUs appeared each year."""
    counts: Dict[int, int] = {}
    for sku in SKU_DATABASE:
        if family is not None and sku.family != family:
            continue
        counts[sku.year] = counts.get(sku.year, 0) + 1
    return dict(sorted(counts.items()))


def driver_supported_skus() -> List[GpuSku]:
    """SKUs our kbase-like driver can operate.

    A single driver supports a whole family (§3: "a single GPU driver often
    supports many GPU SKUs of the same family"); our driver implements the
    Bifrost and Midgard register models.
    """
    return [s for s in SKU_DATABASE if s.family.startswith("mali")]
