"""Mali-Bifrost-style mobile GPU hardware model.

The recorder only ever observes a GPU through three channels (§2.1): memory
mapped registers, shared memory, and interrupts.  This package models those
three channels with enough fidelity that a kbase-like driver
(:mod:`repro.driver`) runs unmodified against either the real local "GPU" or
GR-T's remote shims:

* :mod:`repro.hw.regs` — the MMIO register map and bit definitions.
* :mod:`repro.hw.sku` — a database of GPU SKUs (Figure 3) with the
  per-SKU parameters that make recordings SKU-specific (§2.4).
* :mod:`repro.hw.memory` — physical memory with page-granular dirty
  tracking used by memory synchronization (§5).
* :mod:`repro.hw.mmu` — GPU page tables with permission bits; the
  executable bit drives metastate detection (§5).
* :mod:`repro.hw.shader` — the "shader ISA": compiled NN operator
  descriptors executed with real numpy math.
* :mod:`repro.hw.gpu` — the device model: power-domain state machine, job
  slots, IRQ lines, cache/TLB operations, and the ``LATEST_FLUSH``
  nondeterminism that defeats speculation for a small class of commits.
"""

from repro.hw.sku import GpuSku, SKU_DATABASE, find_sku, new_skus_per_year
from repro.hw.memory import PhysicalMemory, PAGE_SIZE
from repro.hw.mmu import GpuMmu, PageTableWalker, PteFlags
from repro.hw.gpu import MaliGpu, GpuIrqLine
from repro.hw.shader import ShaderBinary, ShaderExecutor, JobDescriptor
from repro.hw.clocks import GPU_CLOCK, SocClockController
from repro.hw.accel import CryptoAccelerator

__all__ = [
    "GpuSku",
    "SKU_DATABASE",
    "find_sku",
    "new_skus_per_year",
    "PhysicalMemory",
    "PAGE_SIZE",
    "GpuMmu",
    "PageTableWalker",
    "PteFlags",
    "MaliGpu",
    "GpuIrqLine",
    "ShaderBinary",
    "ShaderExecutor",
    "JobDescriptor",
    "GPU_CLOCK",
    "SocClockController",
    "CryptoAccelerator",
]
