"""A second record/replay target: a crypto DMA accelerator.

§3, "Broader applicability": "As replay has been used on IO devices other
than GPU, our techniques can be used for generating recordings for these
IO without possessing the actual IO hardware."  This device proves the
claim for *this* codebase: the shims, deferral/speculation machinery, and
replay engine in :mod:`repro.core` drive it with **zero** GPU-specific
changes, because they only ever assume the three CPU/device channels —
registers, shared memory, interrupts.

The device is a stream cipher engine: it reads a source buffer over DMA,
XORs it with a keystream derived from the programmed key and nonce
(SHA-256 in counter mode — deterministic, so record/replay semantics are
exact), writes the result to the destination buffer, and raises an
interrupt.  Like the GPU, its *data* is confidential while its register
programming and descriptors are metastate.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Callable, List, Optional, Tuple

from repro.hw.memory import PhysicalMemory
from repro.sim.clock import VirtualClock

# Register map.
ACCEL_ID = 0x00
CTRL = 0x04
STATUS = 0x08
IRQ_RAWSTAT = 0x0C
IRQ_CLEAR = 0x10
IRQ_MASK = 0x14
KEY0 = 0x20  # .. KEY3 at 0x2C
NONCE = 0x30
SRC_LO = 0x34
SRC_HI = 0x38
DST_LO = 0x3C
DST_HI = 0x40
LEN = 0x44
CMD = 0x48

CMD_START = 0x1
CMD_RESET = 0x2

STATUS_BUSY = 0x1
IRQ_DONE = 0x1
IRQ_ERROR = 0x2

ACCEL_ID_VALUE = 0xC1F0_0201  # engine id | revision

THROUGHPUT_BPS = 400e6
JOB_SETUP_S = 8e-6


def keystream(key_words: Tuple[int, int, int, int], nonce: int,
              length: int) -> bytes:
    """SHA-256 counter-mode keystream (deterministic)."""
    seed = b"".join(w.to_bytes(4, "little") for w in key_words) \
        + nonce.to_bytes(4, "little")
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(
            seed + counter.to_bytes(8, "little")).digest())
        counter += 1
    return bytes(out[:length])


class CryptoAccelerator:
    """The device model: registers, DMA, one interrupt line ("accel")."""

    IRQ_LINE = "accel"

    def __init__(self, mem: PhysicalMemory, clock: VirtualClock) -> None:
        self.mem = mem
        self.clock = clock
        self.irq_sink: Optional[Callable[[str], None]] = None
        self._regs = {KEY0 + 4 * i: 0 for i in range(4)}
        self._regs.update({NONCE: 0, SRC_LO: 0, SRC_HI: 0, DST_LO: 0,
                           DST_HI: 0, LEN: 0, CTRL: 0})
        self._rawstat = 0
        self._mask = 0
        self._busy_until = -1.0
        self._events: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.jobs_done = 0
        self.resets = 0

    # ------------------------------------------------------------------
    # The same service/event interface the GPU model exposes, so the
    # shims and the replay engine work unchanged.
    # ------------------------------------------------------------------
    def _schedule(self, delay: float, action: Callable[[], None]) -> float:
        when = self.clock.now + delay
        heapq.heappush(self._events, (when, self._seq, action))
        self._seq += 1
        return when

    def next_event_time(self) -> Optional[float]:
        return self._events[0][0] if self._events else None

    def service(self) -> None:
        while self._events and self._events[0][0] <= self.clock.now + 1e-12:
            _, _, action = heapq.heappop(self._events)
            action()

    def irq_pending(self, line: str) -> bool:
        self.service()
        return line == self.IRQ_LINE and bool(self._rawstat & self._mask)

    def any_irq_pending(self) -> Optional[str]:
        return self.IRQ_LINE if self.irq_pending(self.IRQ_LINE) else None

    def is_idle(self) -> bool:
        self.service()
        return self._busy_until <= self.clock.now

    def hard_reset_now(self) -> None:
        self._do_reset()
        self.service()
        self._events.clear()
        self._rawstat = 0

    # ------------------------------------------------------------------
    def read_reg(self, offset: int) -> int:
        self.service()
        if offset == ACCEL_ID:
            return ACCEL_ID_VALUE
        if offset == STATUS:
            return STATUS_BUSY if self._busy_until > self.clock.now else 0
        if offset == IRQ_RAWSTAT:
            return self._rawstat
        if offset == IRQ_MASK:
            return self._mask
        return self._regs.get(offset, 0)

    def write_reg(self, offset: int, value: int) -> None:
        self.service()
        value &= 0xFFFF_FFFF
        if offset == IRQ_CLEAR:
            self._rawstat &= ~value
        elif offset == IRQ_MASK:
            self._mask = value
        elif offset == CMD:
            if value & CMD_START:
                self._start()
            if value & CMD_RESET:
                self._do_reset()
        elif offset in self._regs:
            self._regs[offset] = value

    # ------------------------------------------------------------------
    def _do_reset(self) -> None:
        self.resets += 1
        for key in self._regs:
            self._regs[key] = 0
        self._rawstat = 0
        self._mask = 0
        self._busy_until = -1.0

    def _start(self) -> None:
        length = self._regs[LEN]
        src = (self._regs[SRC_HI] << 32) | self._regs[SRC_LO]
        dst = (self._regs[DST_HI] << 32) | self._regs[DST_LO]
        key = tuple(self._regs[KEY0 + 4 * i] for i in range(4))
        nonce = self._regs[NONCE]
        try:
            data = self.mem.read(src, length)
        except ValueError:
            self._schedule(JOB_SETUP_S,
                           lambda: self._finish(IRQ_ERROR))
            return
        stream = keystream(key, nonce, length)
        result = bytes(a ^ b for a, b in zip(data, stream))
        duration = JOB_SETUP_S + length / THROUGHPUT_BPS
        self._busy_until = self.clock.now + duration

        def complete() -> None:
            self.mem.write(dst, result)
            self.jobs_done += 1
            self._finish(IRQ_DONE)

        self._schedule(duration, complete)

    def _finish(self, bits: int) -> None:
        self._busy_until = -1.0
        self._rawstat |= bits
        if self._rawstat & self._mask and self.irq_sink:
            self.irq_sink(self.IRQ_LINE)
