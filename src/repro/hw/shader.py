"""The GPU "shader ISA" and its executor.

The runtime's JIT compiler (:mod:`repro.runtime.compiler`) lowers NN
operators to :class:`ShaderBinary` blobs placed in GPU-executable memory.
A GPU job names one shader plus the buffers it operates on through a
:class:`JobDescriptor` in shared memory; the GPU fetches everything through
its MMU (with permission checks — shaders must be mapped executable, which
is also the signal meta-only sync keys on, §5).

Shaders perform *real* math with numpy.  This is what lets the test suite
prove the paper's input-independence claim (§2.3) end to end: a recording
made while the cloud dry-runs on zero-filled data, replayed inside the TEE
with real input, must produce numerically correct inference results.

SKU specificity: the compiler bakes the target ``gpu_id`` and a core-count
derived tile size into every binary, and the executor refuses binaries
built for a different GPU — reproducing the paper's observation that even
subtle SKU differences break replay (§2.4).
"""

from __future__ import annotations

import json
import math
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hw.memory import PhysicalMemory
from repro.hw.mmu import GpuMmu

SHADER_MAGIC = b"RSH1"
JOB_MAGIC = 0x4A4F4244  # "JOBD"

# Buffer roles in a job descriptor.
ROLE_INPUT = 0
ROLE_WEIGHT = 1
ROLE_BIAS = 2
ROLE_OUTPUT = 3
ROLE_SCRATCH = 4

ROLE_NAMES = {
    ROLE_INPUT: "input",
    ROLE_WEIGHT: "weight",
    ROLE_BIAS: "bias",
    ROLE_OUTPUT: "output",
    ROLE_SCRATCH: "scratch",
}

# Fraction of peak FLOPS a mobile GPU sustains on NN inference, plus the
# fixed per-job cost (submission, descriptor fetch, pipeline drain).
COMPUTE_EFFICIENCY = 0.35
JOB_FIXED_OVERHEAD_S = 35e-6


class ShaderFormatError(ValueError):
    """A blob in executable memory is not a valid shader."""


class SkuMismatchError(RuntimeError):
    """A shader compiled for one GPU SKU ran on a different one (§2.4)."""


@dataclass(frozen=True)
class ShaderBinary:
    """A compiled NN operator.

    ``op`` selects the executor routine; ``params`` carries shapes and
    hyper-parameters; ``target_gpu_id``/``tile_size`` are the SKU-specific
    outputs of the JIT compiler.
    """

    op: str
    params: Dict
    target_gpu_id: int
    core_count: int
    tile_size: int

    def serialize(self) -> bytes:
        payload = json.dumps(
            {
                "op": self.op,
                "params": self.params,
                "target_gpu_id": self.target_gpu_id,
                "core_count": self.core_count,
                "tile_size": self.tile_size,
            },
            sort_keys=True,
        ).encode()
        return SHADER_MAGIC + struct.pack("<I", len(payload)) + payload

    @staticmethod
    def deserialize(blob: bytes) -> "ShaderBinary":
        if blob[:4] != SHADER_MAGIC:
            raise ShaderFormatError("bad shader magic")
        (length,) = struct.unpack_from("<I", blob, 4)
        if 8 + length > len(blob):
            raise ShaderFormatError("truncated shader binary")
        doc = json.loads(blob[8:8 + length].decode())
        return ShaderBinary(
            op=doc["op"],
            params=doc["params"],
            target_gpu_id=doc["target_gpu_id"],
            core_count=doc["core_count"],
            tile_size=doc["tile_size"],
        )

    def flops(self) -> float:
        """Estimated floating point operations for the duration model.

        When the compiler supplies ``model_flops`` (the operator's cost at
        the paper's reference input resolution), it takes precedence over
        the executed-shape estimate; see DESIGN.md on spatial downscaling.
        """
        p = self.params
        if "model_flops" in p:
            return float(p["model_flops"])
        if self.op == "conv2d":
            out_c, out_h, out_w = p["out_shape"]
            in_c = p["in_shape"][0]
            kh, kw = p["kernel"]
            return 2.0 * out_c * out_h * out_w * in_c * kh * kw
        if self.op == "dwconv2d":
            out_c, out_h, out_w = p["out_shape"]
            kh, kw = p["kernel"]
            return 2.0 * out_c * out_h * out_w * kh * kw
        if self.op == "dense":
            return 2.0 * p["in_features"] * p["out_features"]
        if self.op in ("maxpool", "avgpool"):
            c, h, w = p["out_shape"]
            kh, kw = p["kernel"]
            return float(c * h * w * kh * kw)
        if self.op == "globalpool":
            c, h, w = p["in_shape"]
            return float(c * h * w)
        if self.op in ("relu", "add", "softmax", "lrn", "concat", "batchnorm",
                       "copy", "tanh", "sigmoid", "mul"):
            return 4.0 * float(np.prod(p.get("shape", p.get("in_shape", [1]))))
        raise ShaderFormatError(f"unknown shader op {self.op!r}")


@dataclass(frozen=True)
class JobBuffer:
    va: int
    length: int
    role: int


@dataclass(frozen=True)
class JobDescriptor:
    """The in-memory GPU job descriptor the driver points JS_HEAD at."""

    shader_va: int
    shader_len: int
    buffers: Tuple[JobBuffer, ...]
    flags: int = 0

    HEADER = struct.Struct("<IIQII")
    BUFFER = struct.Struct("<QQII")

    def serialize(self) -> bytes:
        out = [self.HEADER.pack(JOB_MAGIC, self.flags, self.shader_va,
                                self.shader_len, len(self.buffers))]
        for buf in self.buffers:
            out.append(self.BUFFER.pack(buf.va, buf.length, buf.role, 0))
        return b"".join(out)

    @property
    def size(self) -> int:
        return self.HEADER.size + self.BUFFER.size * len(self.buffers)

    @staticmethod
    def deserialize(blob: bytes) -> "JobDescriptor":
        magic, flags, shader_va, shader_len, nbuf = JobDescriptor.HEADER.unpack_from(blob, 0)
        if magic != JOB_MAGIC:
            raise ShaderFormatError("bad job descriptor magic")
        buffers = []
        offset = JobDescriptor.HEADER.size
        for _ in range(nbuf):
            va, length, role, _pad = JobDescriptor.BUFFER.unpack_from(blob, offset)
            buffers.append(JobBuffer(va=va, length=length, role=role))
            offset += JobDescriptor.BUFFER.size
        return JobDescriptor(shader_va=shader_va, shader_len=shader_len,
                             buffers=tuple(buffers), flags=flags)

    def buffers_with_role(self, role: int) -> List[JobBuffer]:
        return [b for b in self.buffers if b.role == role]


@dataclass
class JobResult:
    status: int
    duration_s: float
    flops: float
    output_ranges: List[Tuple[int, int]] = field(default_factory=list)  # (pa, len)


class ShaderExecutor:
    """Fetches, validates and executes GPU jobs through the MMU."""

    def __init__(self, mem: PhysicalMemory, mmu: GpuMmu, gpu_id: int,
                 gflops: float) -> None:
        self.mem = mem
        self.mmu = mmu
        self.gpu_id = gpu_id
        self.gflops = gflops
        self.jobs_executed = 0
        # Content-keyed decode caches.  Keys are the raw bytes fetched from
        # memory *this* job, so MMU translation, permission checks (the
        # executable mapping for shaders) and memory reads still happen on
        # every job — only re-parsing identical bytes is skipped.  Safe
        # because ShaderBinary/JobDescriptor are frozen dataclasses.
        self._shader_cache: Dict[bytes, ShaderBinary] = {}
        self._desc_cache: Dict[bytes, JobDescriptor] = {}
        self._flops_cache: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def run_job(self, descriptor_va: int) -> JobResult:
        desc = self._fetch_descriptor(descriptor_va)
        shader = self._fetch_shader(desc)
        if shader.target_gpu_id != self.gpu_id:
            raise SkuMismatchError(
                f"shader targets gpu_id {shader.target_gpu_id:#x}, "
                f"running on {self.gpu_id:#x}"
            )
        arrays = self._load_buffers(desc, shader)
        output = self._compute(shader, arrays)
        out_ranges = self._store_output(desc, output)
        self.jobs_executed += 1
        flops = self._flops_cache.get(id(shader))
        if flops is None:
            flops = shader.flops()
            self._flops_cache[id(shader)] = flops
        duration = JOB_FIXED_OVERHEAD_S + flops / (
            self.gflops * 1e9 * COMPUTE_EFFICIENCY
        )
        return JobResult(status=0, duration_s=duration,
                         flops=flops, output_ranges=out_ranges)

    # ------------------------------------------------------------------
    def _fetch_descriptor(self, va: int) -> JobDescriptor:
        header_pa = self.mmu.translate_contiguous(va, JobDescriptor.HEADER.size, "r")
        header = self.mem.read(header_pa, JobDescriptor.HEADER.size)
        _, _, _, _, nbuf = JobDescriptor.HEADER.unpack(header)
        total = JobDescriptor.HEADER.size + nbuf * JobDescriptor.BUFFER.size
        pa = self.mmu.translate_contiguous(va, total, "r")
        raw = self.mem.read(pa, total)
        desc = self._desc_cache.get(raw)
        if desc is None:
            desc = JobDescriptor.deserialize(raw)
            self._desc_cache[raw] = desc
        return desc

    def _fetch_shader(self, desc: JobDescriptor) -> ShaderBinary:
        # The execute permission check here is load-bearing: it is what
        # makes "metastate pages are mapped executable" true in this model.
        pa = self.mmu.translate_contiguous(desc.shader_va, desc.shader_len, "x")
        raw = self.mem.read(pa, desc.shader_len)
        shader = self._shader_cache.get(raw)
        if shader is None:
            shader = ShaderBinary.deserialize(raw)
            self._shader_cache[raw] = shader
        return shader

    def _load_buffers(self, desc: JobDescriptor,
                      shader: ShaderBinary) -> Dict[str, List[np.ndarray]]:
        arrays: Dict[str, List[np.ndarray]] = {
            "input": [], "weight": [], "bias": [], "output": [], "scratch": []
        }
        for buf in desc.buffers:
            role = ROLE_NAMES[buf.role]
            access = "w" if buf.role == ROLE_OUTPUT else "r"
            pa = self.mmu.translate_contiguous(buf.va, buf.length, access)
            count = buf.length // 4
            arrays[role].append(self.mem.view(pa, (count,), np.float32))
        return arrays

    def _store_output(self, desc: JobDescriptor,
                      outputs: List[np.ndarray]) -> List[Tuple[int, int]]:
        out_bufs = desc.buffers_with_role(ROLE_OUTPUT)
        if len(out_bufs) != len(outputs):
            raise ShaderFormatError(
                f"shader produced {len(outputs)} outputs, descriptor has "
                f"{len(out_bufs)} output buffers"
            )
        ranges = []
        for buf, data in zip(out_bufs, outputs):
            flat = np.ascontiguousarray(data, dtype=np.float32).reshape(-1)
            if flat.nbytes > buf.length:
                raise ShaderFormatError("output overflows its buffer")
            pa = self.mmu.translate_contiguous(buf.va, buf.length, "w")
            self.mem.view(pa, (flat.size,), np.float32)[:] = flat
            self.mem.mark_dirty_range(pa, flat.nbytes)
            ranges.append((pa, flat.nbytes))
        return ranges

    # ------------------------------------------------------------------
    # Operator implementations (N=1, CHW layout).
    # ------------------------------------------------------------------
    def _compute(self, shader: ShaderBinary,
                 arrays: Dict[str, List[np.ndarray]]) -> List[np.ndarray]:
        op = shader.op
        p = shader.params
        ins = arrays["input"]
        if op == "conv2d":
            return [_conv2d(_shaped(ins[0], p["in_shape"]),
                            _shaped(arrays["weight"][0], p["w_shape"]),
                            arrays["bias"][0] if arrays["bias"] else None,
                            p)]
        if op == "dwconv2d":
            return [_dwconv2d(_shaped(ins[0], p["in_shape"]),
                              _shaped(arrays["weight"][0], p["w_shape"]),
                              arrays["bias"][0] if arrays["bias"] else None,
                              p)]
        if op == "dense":
            x = ins[0][: p["in_features"]]
            w = _shaped(arrays["weight"][0],
                        (p["out_features"], p["in_features"]))
            y = w @ x
            if arrays["bias"]:
                y = y + arrays["bias"][0][: p["out_features"]]
            if p.get("activation") == "relu":
                y = np.maximum(y, 0.0)
            return [y]
        if op == "maxpool":
            return [_pool(_shaped(ins[0], p["in_shape"]), p, np.max)]
        if op == "avgpool":
            return [_pool(_shaped(ins[0], p["in_shape"]), p, np.mean)]
        if op == "globalpool":
            x = _shaped(ins[0], p["in_shape"])
            return [x.reshape(x.shape[0], -1).mean(axis=1)]
        if op == "relu":
            return [np.maximum(_count(ins[0], p), 0.0)]
        if op == "tanh":
            return [np.tanh(_count(ins[0], p))]
        if op == "sigmoid":
            x = _count(ins[0], p)
            return [1.0 / (1.0 + np.exp(-x))]
        if op == "mul":
            return [_count(ins[0], p) * _count(ins[1], p)]
        if op == "copy":
            # Staging/reshape kernels (im2col-style data movement).
            return [_count(ins[0], p).copy()]
        if op == "add":
            y = _count(ins[0], p) + _count(ins[1], p)
            if p.get("activation") == "relu":
                y = np.maximum(y, 0.0)
        elif op == "softmax":
            x = _count(ins[0], p)
            e = np.exp(x - x.max())
            y = e / e.sum()
        elif op == "lrn":
            y = _lrn(_shaped(ins[0], p["in_shape"]), p)
        elif op == "concat":
            y = np.concatenate([_shaped(a, s) for a, s in
                                zip(ins, p["in_shapes"])], axis=0).reshape(-1)
        elif op == "batchnorm":
            x = _shaped(ins[0], p["in_shape"])
            gamma, beta = arrays["weight"][0], arrays["bias"][0]
            c = x.shape[0]
            y = x * gamma[:c, None, None] + beta[:c, None, None]
            if p.get("activation") == "relu":
                y = np.maximum(y, 0.0)
        else:
            raise ShaderFormatError(f"unknown shader op {op!r}")
        return [y]


# ---------------------------------------------------------------------------
# numpy kernels
# ---------------------------------------------------------------------------
def _shaped(flat: np.ndarray, shape) -> np.ndarray:
    """View the first prod(shape) elements of a (possibly larger,
    page-aligned) buffer as ``shape`` — the hardware reads what it needs."""
    count = math.prod(shape)
    if flat.size < count:
        raise ShaderFormatError(
            f"buffer holds {flat.size} elements, shader needs {count}")
    return flat[:count].reshape(shape)


def _count(flat: np.ndarray, params: Dict) -> np.ndarray:
    """First N elements per the shader's ``shape`` parameter."""
    return _shaped(flat, params["shape"]).reshape(-1)


def _conv2d(x: np.ndarray, w: np.ndarray, bias: Optional[np.ndarray],
            p: Dict) -> np.ndarray:
    stride = p.get("stride", 1)
    pad = p.get("pad", 0)
    out_c, in_c, kh, kw = w.shape
    if pad:
        x = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
    _, h, wd = x.shape
    oh = (h - kh) // stride + 1
    ow = (wd - kw) // stride + 1
    # im2col via stride tricks, then one big matmul.
    s0, s1, s2 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(in_c, oh, ow, kh, kw),
        strides=(s0, s1 * stride, s2 * stride, s1, s2),
        writeable=False,
    )
    cols = windows.transpose(1, 2, 0, 3, 4).reshape(oh * ow, in_c * kh * kw)
    y = cols @ w.reshape(out_c, -1).T
    y = y.T.reshape(out_c, oh, ow)
    if bias is not None:
        y = y + bias[:out_c, None, None]
    if p.get("activation") == "relu":
        y = np.maximum(y, 0.0)
    return y


def _dwconv2d(x: np.ndarray, w: np.ndarray, bias: Optional[np.ndarray],
              p: Dict) -> np.ndarray:
    stride = p.get("stride", 1)
    pad = p.get("pad", 0)
    c, kh, kw = w.shape
    if pad:
        x = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
    _, h, wd = x.shape
    oh = (h - kh) // stride + 1
    ow = (wd - kw) // stride + 1
    s0, s1, s2 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(c, oh, ow, kh, kw),
        strides=(s0, s1 * stride, s2 * stride, s1, s2),
        writeable=False,
    )
    y = np.einsum("cohkl,ckl->coh", windows, w)
    if bias is not None:
        y = y + bias[:c, None, None]
    if p.get("activation") == "relu":
        y = np.maximum(y, 0.0)
    return y


def _pool(x: np.ndarray, p: Dict, reduce_fn) -> np.ndarray:
    kh, kw = p["kernel"]
    stride = p.get("stride", kh)
    pad = p.get("pad", 0)
    if pad:
        fill = -np.inf if reduce_fn is np.max else 0.0
        x = np.pad(x, ((0, 0), (pad, pad), (pad, pad)),
                   constant_values=fill)
    c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    s0, s1, s2 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(c, oh, ow, kh, kw),
        strides=(s0, s1 * stride, s2 * stride, s1, s2),
        writeable=False,
    )
    return reduce_fn(windows, axis=(3, 4))


def _lrn(x: np.ndarray, p: Dict) -> np.ndarray:
    size = p.get("size", 5)
    alpha = p.get("alpha", 1e-4)
    beta = p.get("beta", 0.75)
    k = p.get("k", 2.0)
    c = x.shape[0]
    sq = x * x
    denom = np.empty_like(x)
    half = size // 2
    for i in range(c):
        lo, hi = max(0, i - half), min(c, i + half + 1)
        denom[i] = sq[lo:hi].sum(axis=0)
    return x / np.power(k + alpha * denom, beta)
