"""GPU MMU: page tables, address translation, and the GPU TLB.

The GPU accesses shared memory through its own page tables (§2.1), which
the driver builds in shared memory and points the hardware at via the
``AS_TRANSTAB`` registers.  Page table *snapshots therefore travel inside
memory dumps* — one of the reasons recording captures everything needed for
replay (§2.3), and the permission bits are how meta-only synchronization
identifies metastate (§5: Mali maps shader code executable).

The layout is a 3-level table over a 39-bit VA (512-entry levels, 4 KiB
pages, 8-byte entries).  Two PTE formats exist — ``pte_format=1``
(Bifrost-like) and ``pte_format=0`` (Midgard-like) differ in where the
permission bits live, reproducing the paper's observation that page-table
format variations between SKUs break replay (§2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hw.memory import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory

VA_BITS = 39
LEVEL_BITS = 9
LEVELS = 3
ENTRIES_PER_TABLE = 1 << LEVEL_BITS
ENTRY_SIZE = 8

ADDR_MASK = ((1 << 48) - 1) & ~(PAGE_SIZE - 1)

ENTRY_TYPE_MASK = 0x3
ENTRY_INVALID = 0x0
ENTRY_ATE = 0x1  # address translation entry (a mapped page)
ENTRY_TABLE = 0x3  # pointer to next-level table


class PteFlags:
    """Permission bits, at format-dependent positions."""

    READ = 0x1
    WRITE = 0x2
    EXECUTE = 0x4
    SHARED = 0x8

    # Bit positions of the flag nibble per pte_format.
    FORMAT_SHIFT = {0: 6, 1: 2}


_ACCESS_BITS = {"r": PteFlags.READ, "w": PteFlags.WRITE, "x": PteFlags.EXECUTE}


class GpuPageFault(Exception):
    """Raised (and latched into AS_FAULTSTATUS) on a bad GPU access."""

    def __init__(self, va: int, access: str, reason: str) -> None:
        super().__init__(f"GPU page fault at va={va:#x} ({access}): {reason}")
        self.va = va
        self.access = access
        self.reason = reason


def level_index(va: int, level: int) -> int:
    """Index into the ``level``-th table (0 = root) for ``va``."""
    shift = PAGE_SHIFT + LEVEL_BITS * (LEVELS - 1 - level)
    return (va >> shift) & (ENTRIES_PER_TABLE - 1)


def make_table_entry(next_pa: int) -> int:
    return (next_pa & ADDR_MASK) | ENTRY_TABLE


def make_ate(pa: int, flags: int, pte_format: int) -> int:
    shift = PteFlags.FORMAT_SHIFT[pte_format]
    return (pa & ADDR_MASK) | (flags << shift) | ENTRY_ATE


def ate_flags(entry: int, pte_format: int) -> int:
    shift = PteFlags.FORMAT_SHIFT[pte_format]
    return (entry >> shift) & 0xF


def entry_address(entry: int) -> int:
    return entry & ADDR_MASK


@dataclass
class WalkResult:
    pa: int
    flags: int
    entry: int


class PageTableWalker:
    """Software walker over in-memory page tables (shared by GPU and tools)."""

    def __init__(self, mem: PhysicalMemory, pte_format: int) -> None:
        self.mem = mem
        self.pte_format = pte_format

    def walk(self, root_pa: int, va: int,
             trace: Optional[List[int]] = None) -> Optional[WalkResult]:
        """Translate ``va`` under ``root_pa``.  When ``trace`` is given,
        the page frame of every table touched is appended to it (used by
        the MMU's walk cache to register coherency watches)."""
        if va >> VA_BITS:
            return None
        table_pa = root_pa
        for level in range(LEVELS):
            if trace is not None:
                trace.append(table_pa >> PAGE_SHIFT)
            entry_pa = table_pa + level_index(va, level) * ENTRY_SIZE
            entry = self.mem.read_u64(entry_pa)
            kind = entry & ENTRY_TYPE_MASK
            if kind == ENTRY_INVALID:
                return None
            if level < LEVELS - 1:
                if kind != ENTRY_TABLE:
                    return None
                table_pa = entry_address(entry)
            else:
                if kind != ENTRY_ATE:
                    return None
                pa = entry_address(entry) | (va & (PAGE_SIZE - 1))
                return WalkResult(
                    pa=pa, flags=ate_flags(entry, self.pte_format), entry=entry
                )
        return None

    def table_pages(self, root_pa: int) -> List[int]:
        """Page frame numbers of every live page-table page under a root.

        Used by meta-only synchronization: page tables are metastate and
        must always travel with memory dumps (§5).
        """
        pfns = [root_pa >> PAGE_SHIFT]
        frontier = [(root_pa, 0)]
        while frontier:
            table_pa, level = frontier.pop()
            if level >= LEVELS - 1:
                continue
            for idx in range(ENTRIES_PER_TABLE):
                entry = self.mem.read_u64(table_pa + idx * ENTRY_SIZE)
                if entry & ENTRY_TYPE_MASK == ENTRY_TABLE:
                    child = entry_address(entry)
                    pfns.append(child >> PAGE_SHIFT)
                    frontier.append((child, level + 1))
        return pfns

    def mapped_pages(self, root_pa: int) -> List[Tuple[int, int, int]]:
        """Every (va_page, pa_page, flags) mapping under a root, sorted."""
        out: List[Tuple[int, int, int]] = []
        self._collect(root_pa, 0, 0, out)
        out.sort()
        return out

    def _collect(self, table_pa: int, level: int, va_prefix: int,
                 out: List[Tuple[int, int, int]]) -> None:
        span = LEVEL_BITS * (LEVELS - 1 - level) + PAGE_SHIFT
        for idx in range(ENTRIES_PER_TABLE):
            entry = self.mem.read_u64(table_pa + idx * ENTRY_SIZE)
            kind = entry & ENTRY_TYPE_MASK
            if kind == ENTRY_INVALID:
                continue
            va = va_prefix | (idx << span)
            if level < LEVELS - 1 and kind == ENTRY_TABLE:
                self._collect(entry_address(entry), level + 1, va, out)
            elif level == LEVELS - 1 and kind == ENTRY_ATE:
                out.append((va, entry_address(entry),
                            ate_flags(entry, self.pte_format)))


class GpuMmu:
    """The GPU-side MMU with a TLB, driven by the AS registers.

    The TLB makes the driver's UPDATE/FLUSH protocol observable: mapping
    changes are invisible to the GPU until the driver issues an AS command,
    just like real hardware.
    """

    def __init__(self, mem: PhysicalMemory, pte_format: int) -> None:
        self.mem = mem
        self.pte_format = pte_format
        self.walker = PageTableWalker(mem, pte_format)
        self.transtab: int = 0
        self.enabled: bool = False
        self._tlb: Dict[int, Tuple[int, int]] = {}
        self.fault_status: int = 0
        self.fault_address: int = 0
        self.tlb_flushes: int = 0
        # Page-walk cache (like a hardware paging-structure cache): maps
        # (root, va_page) -> [pa_page, flags, trace, versions, epoch] and
        # *survives* TLB flushes.  Unlike the TLB — whose staleness until
        # an explicit FLUSH command is part of the modelled driver/
        # hardware protocol — this cache is kept coherent: the backing
        # memory bumps ``watch_epoch``/per-page ``watch_versions`` when a
        # traversed page-table page is written, and each entry revalidates
        # the versions of exactly the table pages its walk touched, so a
        # rewrite of one table invalidates only dependent translations.
        # Faults (negative walks) are never cached.
        self._walk_cache: Dict[Tuple[int, int], list] = {}
        self.walks: int = 0
        # Range-translation cache for translate_contiguous: maps
        # (root, va, nbytes, access) -> (base_pa, epoch).  Valid only
        # while watch_epoch is unchanged, i.e. while no traversed page
        # table has been written — under that condition per-page
        # translation (TLB or fresh walks, both reading the same
        # unchanged tables) cannot disagree with the cached result, so
        # the shortcut is semantically invisible.
        self._range_cache: Dict[Tuple[int, int, int, str], Tuple[int, int]] = {}

    def configure(self, transtab: int, enabled: bool = True) -> None:
        self.transtab = transtab & ADDR_MASK
        self.enabled = enabled
        self.flush_tlb()

    def flush_tlb(self) -> None:
        self._tlb.clear()
        self.tlb_flushes += 1

    def translate(self, va: int, access: str = "r") -> int:
        """Translate a GPU VA, enforcing permissions. ``access`` in r/w/x."""
        if not self.enabled:
            raise GpuPageFault(va, access, "MMU disabled")
        va_page = va >> PAGE_SHIFT
        cached = self._tlb.get(va_page)
        if cached is None:
            mem = self.mem
            epoch = mem.watch_epoch
            key = (self.transtab, va_page)
            entry = self._walk_cache.get(key)
            if entry is not None and entry[4] != epoch:
                versions = mem.watch_versions
                for pfn, seen in zip(entry[2], entry[3]):
                    if versions.get(pfn, 0) != seen:
                        entry = None
                        break
                else:
                    entry[4] = epoch
            if entry is None:
                trace: List[int] = []
                result = self.walker.walk(self.transtab, va, trace)
                self.walks += 1
                mem.watch_pages(trace)
                if result is None:
                    self._fault(va, access, "unmapped address")
                versions = mem.watch_versions
                entry = [result.pa >> PAGE_SHIFT, result.flags,
                         tuple(trace),
                         tuple(versions.get(pfn, 0) for pfn in trace),
                         epoch]
                self._walk_cache[key] = entry
            cached = (entry[0], entry[1])
            self._tlb[va_page] = cached
        pa_page, flags = cached
        needed = _ACCESS_BITS[access]
        if not flags & needed:
            self._fault(va, access, f"permission denied (flags={flags:#x})")
        return (pa_page << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))

    def translate_contiguous(self, va: int, nbytes: int, access: str = "r") -> int:
        """Translate a range that must be physically contiguous.

        GPU buffers in this model are allocated contiguously (CMA-style), so
        the shader executor can take single numpy views.  A non-contiguous
        mapping is a programming error surfaced loudly.
        """
        if nbytes <= 0:
            raise ValueError("range must be non-empty")
        if not self.enabled:
            raise GpuPageFault(va, access, "MMU disabled")
        epoch = self.mem.watch_epoch
        key = (self.transtab, va, nbytes, access)
        hit = self._range_cache.get(key)
        if hit is not None and hit[1] == epoch:
            return hit[0]
        base_pa = self.translate(va, access)
        offset = PAGE_SIZE - (va & (PAGE_SIZE - 1))
        while offset < nbytes:
            next_pa = self.translate(va + offset, access)
            if next_pa != base_pa + offset:
                raise GpuPageFault(va + offset, access,
                                   "range is not physically contiguous")
            offset += PAGE_SIZE
        self._range_cache[key] = (base_pa, epoch)
        return base_pa

    def _fault(self, va: int, access: str, reason: str) -> None:
        self.fault_status = 0xC1 if access == "w" else 0xC0
        self.fault_address = va
        raise GpuPageFault(va, access, reason)
