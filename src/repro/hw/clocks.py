"""SoC clock control for the GPU (§6).

The GPU's clock is not behind its own MMIO: it belongs to the SoC's clock
controller, normally driven by the kernel's clk framework.  §6: "To
bootstrap the GPU, the client TEE needs to access SoC resources not
managed by the GPU driver, e.g. power/clock for GPU.  For strong security,
we protect these resources inside the TEE."

Two things matter to GR-T:

* **Security** — while a session is active, normal-world rate changes are
  refused (a malicious OS cannot glitch the clock under a TEE workload).
* **Determinism** — GPUShim pins the maximum frequency for the duration
  of record and replay.  A DVFS governor reacting to measured utilization
  would make job timings (and hence polling iterations and interrupt
  arrival order) differ between record and replay — exactly the class of
  nondeterminism §2.3 forestalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.tee.worlds import SecurityViolation, TrustZoneController, World


@dataclass(frozen=True)
class ClockDomain:
    """One SoC clock: the available operating points (MHz)."""

    name: str
    rates_mhz: tuple

    @property
    def max_mhz(self) -> int:
        return max(self.rates_mhz)

    @property
    def min_mhz(self) -> int:
        return min(self.rates_mhz)


# Mali-G71-class OPP table (Hikey960's GPU scales 178-1037 MHz).
GPU_CLOCK = ClockDomain(name="clk_g3d",
                        rates_mhz=(178, 400, 533, 807, 960, 1037))


class SocClockController:
    """The SoC clock block, with TEE protection while a session runs."""

    def __init__(self, gpu, tzasc: Optional[TrustZoneController] = None,
                 domain: ClockDomain = GPU_CLOCK) -> None:
        self.gpu = gpu
        self.tzasc = tzasc
        self.domain = domain
        self._rate_mhz = domain.max_mhz
        self._pinned = False
        self.rate_changes = 0
        self._apply()

    # ------------------------------------------------------------------
    @property
    def rate_mhz(self) -> int:
        return self._rate_mhz

    @property
    def pinned(self) -> bool:
        return self._pinned

    def set_rate(self, mhz: int, world: str = World.NORMAL) -> None:
        """clk_set_rate(): rejects invalid OPPs, and any normal-world
        change while the TEE has the clock pinned."""
        if mhz not in self.domain.rates_mhz:
            raise ValueError(
                f"{mhz} MHz is not an operating point of "
                f"{self.domain.name} (have {self.domain.rates_mhz})")
        if self._pinned and world != World.SECURE:
            if self.tzasc is not None:
                self.tzasc.violations += 1
            raise SecurityViolation(
                f"normal-world clk_set_rate({mhz}) while the TEE holds "
                f"{self.domain.name}")
        if mhz != self._rate_mhz:
            self._rate_mhz = mhz
            self.rate_changes += 1
            self._apply()

    # ------------------------------------------------------------------
    # TEE pinning (GPUShim / replayer sessions)
    # ------------------------------------------------------------------
    def pin_max(self) -> None:
        """TEE takes the clock: pin the maximum rate for determinism."""
        self._pinned = False  # allow our own change below
        self.set_rate(self.domain.max_mhz, world=World.SECURE)
        self._pinned = True

    def unpin(self) -> None:
        self._pinned = False

    # ------------------------------------------------------------------
    def _apply(self) -> None:
        self.gpu.clock_scale = self._rate_mhz / self.domain.max_mhz
