"""Simulation substrate: virtual time, network links, and energy accounting.

Everything in GR-T's evaluation is a function of elapsed time, bytes moved,
and round trips taken.  This package provides the primitives the rest of the
system uses to account for those quantities without consuming wall-clock
time: a :class:`~repro.sim.clock.VirtualClock`, a latency/bandwidth
:class:`~repro.sim.network.Link` model, and an integrating
:class:`~repro.sim.energy.EnergyMeter`.
"""

from repro.sim.clock import VirtualClock, Timeline, TimelineSpan
from repro.sim.network import Link, LinkProfile, Message, NetworkStats, WIFI, CELLULAR
from repro.sim.energy import EnergyMeter, PowerModel, HIKEY960_POWER

__all__ = [
    "VirtualClock",
    "Timeline",
    "TimelineSpan",
    "Link",
    "LinkProfile",
    "Message",
    "NetworkStats",
    "WIFI",
    "CELLULAR",
    "EnergyMeter",
    "PowerModel",
    "HIKEY960_POWER",
]
