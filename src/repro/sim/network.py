"""Network link model between the cloud recording VM and the client TEE.

The paper evaluates under two NetEm-shaped conditions (§7.2):

* WiFi-like:     RTT 20 ms, bandwidth 80 Mbps
* cellular-like: RTT 50 ms, bandwidth 40 Mbps

A :class:`Link` charges virtual time for messages and keeps the statistics
the paper reports: blocking round trips, total bytes, per-direction traffic.
A *blocking* round trip stalls the sender (clock advances by RTT plus
serialization time); an *asynchronous* send only computes the completion
time so speculation can overlap it with driver execution (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import StatsBase
from repro.sim.clock import VirtualClock

# Fixed per-message cost of framing + TLS record overhead (§7.1 notes the
# encryption overhead is low because commit payloads are 200-400 bytes).
MESSAGE_OVERHEAD_BYTES = 96


@dataclass(frozen=True)
class LinkProfile:
    """Static parameters of a network path."""

    name: str
    rtt_s: float
    bandwidth_bps: float

    @property
    def one_way_s(self) -> float:
        return self.rtt_s / 2.0

    def serialize_s(self, nbytes: int) -> float:
        """Time to push ``nbytes`` onto the wire."""
        return (nbytes * 8.0) / self.bandwidth_bps


WIFI = LinkProfile(name="wifi", rtt_s=0.020, bandwidth_bps=80e6)
CELLULAR = LinkProfile(name="cellular", rtt_s=0.050, bandwidth_bps=40e6)
# A same-machine "link" used for local (non-GR-T) recording baselines.
LOOPBACK = LinkProfile(name="loopback", rtt_s=20e-6, bandwidth_bps=10e9)


@dataclass(frozen=True)
class Message:
    """A single application message with its payload size in bytes."""

    kind: str
    payload_bytes: int

    @property
    def wire_bytes(self) -> int:
        return self.payload_bytes + MESSAGE_OVERHEAD_BYTES


@dataclass
class NetworkStats(StatsBase):
    """Counters matching what Table 1 and §7 report.

    ``retries``/``timeouts``/``redundant_bytes`` are produced by the
    reliable channel (:mod:`repro.resilience.channel`) when fault
    injection is active: retransmission attempts, per-message timeouts
    that triggered them, and wire bytes that carried no new payload
    (lost copies plus injected duplicates).  A perfect :class:`Link`
    leaves them at zero, so the fields are visible in every existing
    report without a second stats type.
    """

    blocking_round_trips: int = 0
    async_sends: int = 0
    one_way_messages: int = 0
    bytes_to_client: int = 0
    bytes_to_cloud: int = 0
    time_blocked_s: float = 0.0
    retries: int = 0
    timeouts: int = 0
    redundant_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_to_client + self.bytes_to_cloud

    SCHEMA = "repro.network"

    def merged_with(self, other: "NetworkStats") -> "NetworkStats":
        """Out-of-place variant of :meth:`StatsBase.merge` (kept for the
        report paths that sum per-link stats without mutating them)."""
        return NetworkStats().merge(self).merge(other)


class Link:
    """A bidirectional cloud<->client path bound to a virtual clock.

    The clock is the *cloud-side* clock: GR-T's recording delay is measured
    end to end at the session level, and the cloud drives the session.  The
    client's time is derived (client events happen at cloud time +/- one-way
    latency); for delay accounting a single clock suffices because the two
    sides strictly alternate except during speculation, which is modelled by
    asynchronous completion times.
    """

    def __init__(self, profile: LinkProfile, clock: VirtualClock) -> None:
        self.profile = profile
        self.clock = clock
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Blocking operations: the caller's clock advances.
    # ------------------------------------------------------------------
    def round_trip(self, request: Message, response: Message) -> float:
        """Synchronous request/response; returns elapsed virtual seconds."""
        cost = (
            self.profile.rtt_s
            + self.profile.serialize_s(request.wire_bytes)
            + self.profile.serialize_s(response.wire_bytes)
        )
        self.clock.advance(cost, label="network")
        self.stats.blocking_round_trips += 1
        self.stats.bytes_to_client += request.wire_bytes
        self.stats.bytes_to_cloud += response.wire_bytes
        self.stats.time_blocked_s += cost
        return cost

    def send_to_client(self, message: Message, blocking: bool = True) -> float:
        """One-way cloud->client transfer (e.g. a memory-dump push).

        Returns the virtual time at which the client has the full message.
        When ``blocking``, the sender waits for serialization (it must push
        all bytes) but not for an application-level reply.
        """
        serialize = self.profile.serialize_s(message.wire_bytes)
        if blocking:
            self.clock.advance(serialize, label="network")
        self.stats.one_way_messages += 1
        self.stats.bytes_to_client += message.wire_bytes
        arrival = self.clock.now + self.profile.one_way_s
        if not blocking:
            arrival += serialize
        return arrival

    def receive_from_client(self, message: Message) -> float:
        """One-way client->cloud transfer; the cloud waits for delivery."""
        cost = self.profile.one_way_s + self.profile.serialize_s(message.wire_bytes)
        self.clock.advance(cost, label="network")
        self.stats.one_way_messages += 1
        self.stats.bytes_to_cloud += message.wire_bytes
        return cost

    # ------------------------------------------------------------------
    # Asynchronous operation used by speculation (§4.2).
    # ------------------------------------------------------------------
    def async_round_trip(self, request: Message, response: Message) -> float:
        """Issue a request without blocking; return its completion time.

        The caller continues executing on predicted values and later calls
        ``clock.advance_to(completion)`` at a stall point.
        """
        completion = (
            self.clock.now
            + self.profile.rtt_s
            + self.profile.serialize_s(request.wire_bytes)
            + self.profile.serialize_s(response.wire_bytes)
        )
        self.stats.async_sends += 1
        self.stats.bytes_to_client += request.wire_bytes
        self.stats.bytes_to_cloud += response.wire_bytes
        return completion


@dataclass
class SecureChannel:
    """An authenticated, encrypted session over a :class:`Link` (§7.1).

    Establishing the channel costs a couple of RTTs (attested TLS); after
    that, per-message crypto adds only fixed framing overhead, already
    accounted in :data:`MESSAGE_OVERHEAD_BYTES`.
    """

    link: Link
    established: bool = False
    handshake_rtts: int = 2
    session_id: Optional[str] = None
    peer_attested: bool = field(default=False)

    def establish(self, session_id: str, attested: bool) -> None:
        if not attested:
            raise PermissionError(
                "client TEE refuses channel to unattested cloud VM"
            )
        for _ in range(self.handshake_rtts):
            self.link.round_trip(
                Message("tls-handshake", 256), Message("tls-handshake", 256)
            )
        self.established = True
        self.peer_attested = True
        self.session_id = session_id

    def require_established(self) -> None:
        if not self.established:
            raise RuntimeError("secure channel not established")
