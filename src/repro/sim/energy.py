"""Client-side energy model (§7.4, Figure 9).

The paper measures whole-device energy of a display-less Hikey960 with a
WL1835 WiFi module.  Energy is power integrated over time, so the model
assigns a power draw to each timeline label and integrates the virtual
timeline, plus a per-byte radio cost for network traffic.

The constants below are calibrated to public Hikey960/WL1835 measurements:
idle board draw around 1-2 W, GPU-busy adds a few watts, WiFi transmission
costs on the order of 100 nJ/byte.  With these, replaying MNIST lands near
the paper's 0.01-1.3 J range and Naive recording of VGG16 costs hundreds of
joules, reproducing the 84-99% savings of GR-T.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.clock import Timeline
from repro.sim.network import NetworkStats


@dataclass(frozen=True)
class PowerModel:
    """Average power (watts) per activity class, plus radio byte costs."""

    name: str
    idle_w: float
    cpu_w: float
    gpu_w: float
    network_idle_w: float  # radio powered but waiting (dominates Naive record)
    tx_nj_per_byte: float
    rx_nj_per_byte: float

    def power_for(self, label: str) -> float:
        return {
            "cpu": self.cpu_w,
            "gpu": self.gpu_w,
            "network": self.network_idle_w,
            "idle": self.idle_w,
        }.get(label, self.idle_w)


HIKEY960_POWER = PowerModel(
    name="hikey960+wl1835",
    idle_w=0.25,
    cpu_w=2.0,
    gpu_w=4.5,
    network_idle_w=0.9,
    tx_nj_per_byte=110.0,
    rx_nj_per_byte=60.0,
)


class EnergyMeter:
    """Integrates a power model over a timeline and network statistics."""

    def __init__(self, model: PowerModel = HIKEY960_POWER) -> None:
        self.model = model

    def timeline_energy_j(self, timeline: Timeline) -> float:
        return sum(
            span.duration * self.model.power_for(span.label) for span in timeline
        )

    def radio_energy_j(self, stats: NetworkStats) -> float:
        # From the client's perspective: bytes_to_cloud are transmitted,
        # bytes_to_client are received.
        tx = stats.bytes_to_cloud * self.model.tx_nj_per_byte * 1e-9
        rx = stats.bytes_to_client * self.model.rx_nj_per_byte * 1e-9
        return tx + rx

    def total_energy_j(self, timeline: Timeline, stats: NetworkStats) -> float:
        return self.timeline_energy_j(timeline) + self.radio_energy_j(stats)

    def breakdown_j(self, timeline: Timeline, stats: NetworkStats) -> Dict[str, float]:
        """Energy by cause, for reporting."""
        out: Dict[str, float] = {}
        for label, seconds in timeline.by_label().items():
            out[label] = out.get(label, 0.0) + seconds * self.model.power_for(label)
        out["radio-bytes"] = self.radio_energy_j(stats)
        return out

    # ------------------------------------------------------------------
    # The two client-side viewpoints §7.4 measures
    # ------------------------------------------------------------------
    def record_energy_j(self, timeline: Timeline, stats: NetworkStats) -> float:
        """Client energy for a GR-T record run.

        During recording the client's CPU work happens *in the cloud*; the
        client keeps the radio up for the whole session, spins the GPU
        during job execution, and pays per-byte radio costs.  Cloud CPU
        time is client-idle-with-radio time.
        """
        m = self.model
        total = timeline.total()
        gpu_s = timeline.total("gpu")
        base = total * (m.idle_w + m.network_idle_w)
        return base + gpu_s * m.gpu_w + self.radio_energy_j(stats)

    def execution_energy_j(self, timeline: Timeline) -> float:
        """Client energy for an on-device run (native or replay): no
        radio; CPU/GPU spans draw their active power on top of idle."""
        m = self.model
        active = {"cpu": m.cpu_w, "gpu": m.gpu_w}
        return sum(
            span.duration * (m.idle_w + active.get(span.label, 0.0))
            for span in timeline
        )
