"""Virtual time for the GR-T simulation.

The paper reports recording delays of up to ~800 seconds (Figure 7).  We
reproduce those numbers on a *virtual* clock: components advance the clock
explicitly by the cost of the operation they model (a network round trip, a
GPU job, a driver routine).  The clock also keeps a labelled timeline so the
energy model (:mod:`repro.sim.energy`) can integrate power over activity
spans, and so benchmarks can break a recording delay down by cause.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TimelineSpan:
    """One labelled span of virtual time.

    ``label`` identifies the activity ("network", "gpu", "cpu", "idle", ...).
    Spans never overlap; the timeline is strictly ordered.
    """

    start: float
    end: float
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """An append-only record of labelled activity spans.

    Spans are stored as plain ``(start, end, label)`` tuples — the clock
    is advanced once per modelled interaction, so span bookkeeping sits
    on the replay/record hot path; :class:`TimelineSpan` objects are only
    materialized when a consumer iterates.
    """

    def __init__(self) -> None:
        self._spans: List[tuple] = []

    def add(self, start: float, end: float, label: str) -> None:
        if end < start:
            raise ValueError(f"span ends before it starts: {start} > {end}")
        if self._spans and start < self._spans[-1][1] - 1e-12:
            raise ValueError("timeline spans must be appended in order")
        self._spans.append((start, end, label))

    def __iter__(self) -> Iterator[TimelineSpan]:
        return (TimelineSpan(s, e, l) for (s, e, l) in self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def total(self, label: Optional[str] = None) -> float:
        """Total duration, optionally restricted to spans with ``label``."""
        if label is None:
            return sum(e - s for (s, e, _) in self._spans)
        return sum(e - s for (s, e, l) in self._spans if l == label)

    def by_label(self) -> Dict[str, float]:
        """Map each label to the total time spent under it."""
        acc: Dict[str, float] = {}
        for start, end, label in self._spans:
            acc[label] = acc.get(label, 0.0) + (end - start)
        return acc

    def label_totals_since(self, index: int) -> Dict[str, float]:
        """``by_label`` restricted to spans appended at or after ``index``
        (a value previously captured via ``len(timeline)``)."""
        acc: Dict[str, float] = {}
        for start, end, label in self._spans[index:]:
            acc[label] = acc.get(label, 0.0) + (end - start)
        return acc


class VirtualClock:
    """A monotonically advancing simulated clock, in seconds.

    ``advance`` moves time forward and records the span on the timeline.
    ``advance_to`` jumps to an absolute time (used when waiting for an
    asynchronous completion, e.g. an outstanding speculative commit), and
    is a no-op if the target is already in the past.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.timeline = Timeline()

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float, label: str = "cpu") -> float:
        """Advance by ``seconds`` (must be >= 0). Returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        if seconds > 0:
            start = self._now
            self._now += seconds
            self.timeline.add(start, self._now, label)
        return self._now

    def advance_to(self, when: float, label: str = "idle") -> float:
        """Advance to absolute time ``when`` if it is in the future.

        Lands on ``when`` exactly (not ``now + (when - now)``, which can
        round away by an ulp): replay correctness depends on the batched
        and per-entry engines reaching bit-identical clock values.
        """
        if when > self._now:
            start = self._now
            self._now = float(when)
            self.timeline.add(start, self._now, label)
        return self._now

    def elapsed_since(self, t0: float) -> float:
        return self._now - t0


@dataclass
class StopWatch:
    """Convenience for measuring a region of virtual time."""

    clock: VirtualClock
    start: float = field(default=0.0)

    def __post_init__(self) -> None:
        self.start = self.clock.now

    @property
    def elapsed(self) -> float:
        return self.clock.now - self.start
