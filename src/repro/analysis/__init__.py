"""Result formatting and aggregation for the benchmark harness."""

from repro.analysis.report import (
    format_table,
    geomean,
    percent_change,
    save_report,
)

__all__ = ["format_table", "geomean", "percent_change", "save_report"]
