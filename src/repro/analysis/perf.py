"""Wall-clock performance harness for the replay and memsync hot paths.

Everything else in this repository measures *simulated* time on the
virtual clock; this module is the one place that measures real elapsed
seconds, to keep the compiled-recording fast path honest:

* **replay** — the same recording replayed by the legacy per-entry
  interpreter (``Replayer(engine="legacy")``) and by the columnar
  compiled program (``engine="compiled"``), interleaved rep-for-rep so
  machine noise hits both engines equally.  The two engines must agree bit-for-bit (outputs, virtual
  delay, replay statistics) before any number is reported.
* **memsync encode** — the recording's own §5 sync traffic replayed
  through the current :class:`~repro.core.memsync.MemorySynchronizer`
  and through a faithful reproduction of the seed encode path (one
  ``best_encode`` per page that RLE-encodes both the raw page and the
  delta, and no unchanged-page skip).  Steady-state epochs re-dirty the
  same frames with mostly identical content — the regime the skip
  optimization targets — with a deterministic mutated fraction modeling
  counters and ring buffers.

The harness emits a machine-readable ``BENCH_replay.json`` document; the
``repro perf`` command drives it and the CI ``perf-smoke`` job gates on
a checked-in baseline.  Wall-clock variance on shared machines is large
(±15% routinely), so reported ratios use interleaved medians and bests,
and cold-start work (first sync epoch, first replay run, compile) is
timed separately rather than folded into steady-state throughput.
"""
# repro-check: module-allow[determinism] -- wall-clock benchmarking is
# this module's purpose; measured times never feed the virtual clock or
# any recording artifact.

from __future__ import annotations

import json
import math
import platform
import statistics
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import compress
from repro.core.memsync import MemorySynchronizer, SyncPolicy
from repro.core.recorder import NAIVE, OURS_MDS, RecordSession
from repro.core.recording import MemWrite, Recording
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.hw.memory import PAGE_SIZE, PhysicalMemory
from repro.ml.models import build_model
from repro.ml.runner import generate_weights

BENCH_SCHEMA = 1
BENCH_FILENAME = "BENCH_replay.json"
BENCH_SERVE_FILENAME = "BENCH_serve.json"


# ----------------------------------------------------------------------
# Replay: legacy per-entry interpreter vs columnar compiled program
# ----------------------------------------------------------------------
def _make_session(graph, recording: Recording, weights, verify_key,
                  engine: str = "auto"):
    """A fresh device + replay session pinned to one engine."""
    device = ClientDevice.for_workload(graph)
    replayer = Replayer(device.optee, device.gpu, device.mem,
                        device.clock, verify_key=verify_key,
                        engine=engine)
    return replayer.open(recording, weights)


def bench_replay(workload: str = "alexnet", recorder=NAIVE,
                 reps: int = 5, warmup: int = 1,
                 recording: Optional[Recording] = None,
                 verify_key=None) -> Dict:
    """Interleaved legacy-vs-compiled replay timing for one workload."""
    graph = build_model(workload)
    if recording is None:
        session = RecordSession(graph, config=recorder)
        recording = session.run().recording
        verify_key = session.service.recording_key
    digest_before = recording.digest()
    weights = generate_weights(graph, seed=0)
    inp = np.zeros(graph.input_shape, dtype=np.float32)
    entries = len(recording.entries)

    legacy = _make_session(graph, recording, weights, verify_key,
                           engine="legacy")
    t0 = time.perf_counter()
    recording.compile()  # lowered once, cached on the recording
    compile_s = time.perf_counter() - t0
    compiled = _make_session(graph, recording, weights, verify_key,
                             engine="compiled")

    # Equivalence gate: the engines must agree before timing means
    # anything.  Outputs and virtual delay are compared bitwise.
    t0 = time.perf_counter()
    out_c = compiled.run(inp)
    first_compiled_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    out_l = legacy.run(inp)
    first_legacy_s = time.perf_counter() - t0
    identical = {
        "output": bool(np.array_equal(out_l.output, out_c.output)),
        "delay": bool(out_l.delay_s == out_c.delay_s),
        "stats": bool(out_l.stats == out_c.stats),
        "energy": bool(math.isclose(out_l.energy_j, out_c.energy_j,
                                    rel_tol=1e-9)),
        "recording_digest": bool(recording.digest() == digest_before),
    }

    for _ in range(max(0, warmup - 1)):
        legacy.run(inp)
        compiled.run(inp)
    legacy_s: List[float] = []
    compiled_s: List[float] = []
    for _ in range(reps):
        t0 = time.perf_counter()
        legacy.run(inp)
        legacy_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        compiled.run(inp)
        compiled_s.append(time.perf_counter() - t0)

    med_l = statistics.median(legacy_s)
    med_c = statistics.median(compiled_s)
    best_l = min(legacy_s)
    best_c = min(compiled_s)
    return {
        "workload": workload,
        "recorder": recorder.name,
        "entries": entries,
        "reps": reps,
        "warmup": warmup,
        "legacy": {
            "median_s": med_l,
            "best_s": best_l,
            "first_run_s": first_legacy_s,
            "entries_per_s": entries / med_l,
        },
        "compiled": {
            "median_s": med_c,
            "best_s": best_c,
            "first_run_s": first_compiled_s,
            "compile_s": compile_s,
            "entries_per_s": entries / med_c,
        },
        "speedup_median": med_l / med_c,
        "speedup_best": best_l / best_c,
        "identical": identical,
    }


# ----------------------------------------------------------------------
# Memsync: seed double-encode path vs single-encode + skip
# ----------------------------------------------------------------------
class _SeedSynchronizer(MemorySynchronizer):
    """The pre-optimization §5 encode path, reproduced faithfully.

    The seed's ``_wire_size`` called ``best_encode`` per page, which
    always RLE-encoded *both* the raw page and the delta and threw one
    away, and no dirty page was ever skipped however unchanged its
    bytes.  Kept here (not in :mod:`repro.core.memsync`) so the product
    code carries no dead slow path.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._seed_view: Dict[int, bytes] = {}

    def _encode_pages(self, mem: PhysicalMemory, pfns: List[int]
                      ) -> Tuple[Dict[int, bytes], int, int]:
        pages: Dict[int, bytes] = {}
        wire = 0
        view = self._seed_view
        for pfn in pfns:
            raw = mem.page_bytes(pfn)
            if self.compress_enabled:
                prev = view.get(pfn)
                raw_blob = compress.encode(raw)
                if prev is not None:
                    delta = bytes(np.bitwise_xor(
                        np.frombuffer(raw, dtype=np.uint8),
                        np.frombuffer(prev, dtype=np.uint8)))
                    blob = min((compress.encode(delta), raw_blob), key=len)
                else:
                    blob = raw_blob
                wire += len(blob)
                self.stats.encodes += 1
            else:
                wire += len(raw)
            view[pfn] = raw
            pages[pfn] = raw
        return pages, wire, 0

    def final_view(self) -> Dict[int, bytes]:
        return dict(self._seed_view)


def _sync_stream(recording: Recording) -> List[Tuple]:
    """The recording's §5 sync points: each MemWrite's (pfn, bytes)."""
    return [entry.pages for entry in recording.entries
            if isinstance(entry, MemWrite)]


def _drive_sync(make_sync, stream, pfns: List[int], span: int, epochs: int,
                mutate_every: int):
    """Replay ``stream`` for ``epochs`` epochs, timing push() only.

    Epoch 0 is cold start (every page is first contact for both paths)
    and excluded from steady-state time.  From epoch 1 on, one page in
    ``mutate_every`` per sync point gets a flipped byte — the counters/
    ring-buffers share of real re-dirty traffic; the rest are re-written
    with identical bytes.
    """
    cloud = PhysicalMemory(size=span + PAGE_SIZE)
    client = PhysicalMemory(size=span + PAGE_SIZE)
    # Densify the recording's frame numbers into one carveout so both
    # paths see the contiguous layout a real allocator produces.
    base = cloud.alloc(span, "sync-bench").base >> 12
    remap = {pfn: base + i for i, pfn in enumerate(pfns)}
    sync = make_sync(cloud, client)
    cloud.take_dirty()
    steady_s = 0.0
    steady_pages = 0
    wire_total = 0
    for epoch in range(epochs):
        for pages in stream:
            for j, (pfn, raw) in enumerate(pages):
                if epoch and j % mutate_every == (epoch % mutate_every):
                    mutated = bytearray(raw)
                    mutated[0] ^= epoch & 0xFF
                    raw = bytes(mutated)
                cloud.write_page(remap[pfn], raw)
            t0 = time.perf_counter()
            _, wire = sync.push(metastate_pfns=set())
            elapsed = time.perf_counter() - t0
            sync.pull(metastate_pfns=set())
            wire_total += wire
            if epoch:
                steady_s += elapsed
                steady_pages += len(pages)
    return sync, steady_s, steady_pages, wire_total


def bench_memsync(workload: str = "alexnet", recorder=NAIVE,
                  epochs: int = 6, mutate_every: int = 16,
                  recording: Optional[Recording] = None) -> Dict:
    """Steady-state §5 encode throughput, optimized vs seed path."""
    if recording is None:
        graph = build_model(workload)
        recording = RecordSession(graph, config=recorder).run().recording
    stream = _sync_stream(recording)
    pfns = sorted({pfn for pages in stream for pfn, _ in pages})
    span = (len(pfns) + 64) * PAGE_SIZE

    new_sync, new_s, pages_n, new_wire = _drive_sync(
        lambda c, cl: MemorySynchronizer(c, cl, SyncPolicy.FULL),
        stream, pfns, span, epochs, mutate_every)
    seed_sync, seed_s, _, seed_wire = _drive_sync(
        lambda c, cl: _SeedSynchronizer(c, cl, SyncPolicy.FULL),
        stream, pfns, span, epochs, mutate_every)

    # Semantic gate: both paths must leave the peer holding the same
    # bytes for every frame.
    seed_view = seed_sync.final_view()
    views_equal = (set(seed_view) == set(new_sync.peer_pfns())
                   and all(new_sync.peer_page(pfn) == raw
                           for pfn, raw in seed_view.items()))
    return {
        "workload": recording.workload,
        "recorder": recording.recorder,
        "sync_points_per_epoch": len(stream),
        "distinct_pages": len(pfns),
        "epochs": epochs,
        "mutate_every": mutate_every,
        "steady_pages": pages_n,
        "legacy": {
            "steady_s": seed_s,
            "pages_per_s": pages_n / seed_s if seed_s else 0.0,
            "wire_bytes": seed_wire,
            "encodes": seed_sync.stats.encodes,
        },
        "optimized": {
            "steady_s": new_s,
            "pages_per_s": pages_n / new_s if new_s else 0.0,
            "wire_bytes": new_wire,
            "encodes": new_sync.stats.encodes,
            "pages_skipped": new_sync.stats.pages_skipped,
        },
        "speedup": (seed_s / new_s) if new_s else 0.0,
        "peer_views_equal": bool(views_equal),
    }


# ----------------------------------------------------------------------
# Cold start: compile+publish vs memory hit vs store hit
# ----------------------------------------------------------------------
def bench_cold_start(workload: str = "alexnet", recorder=NAIVE,
                     reps: int = 3,
                     recording: Optional[Recording] = None,
                     verify_key=None,
                     store_root: Optional[str] = None) -> Dict:
    """First-request cost with and without the on-disk artifact store.

    Three acquisition regimes for the same recording, timed per rep:

    * **cold** — empty store: ``compiled_for`` lowers the recording and
      publishes the artifact (what a brand-new deployment pays);
    * **warm** — same registry again: in-memory second lookup;
    * **store_hit** — a *fresh* registry over the now-populated store
      (a restarted process): the artifact is opened (``np.memmap``,
      integrity re-checked), not recompiled.

    ``acquire_s`` isolates the acquisition step itself;
    ``first_request_s`` is the end-to-end session-open + first
    inference around it (dominated by shared per-session work, so its
    ratio is structurally much smaller).  The store-hit output must be
    bit-identical to the cold compile's, and a cross-tenant open of the
    published artifact must be rejected — both are gated, not just
    reported.
    """
    import shutil
    import tempfile

    from repro.core.compiled import from_artifact
    from repro.fleet.registry import RecordingRegistry, TenantIsolationError
    from repro.store import DiskStore

    graph = build_model(workload)
    if recording is None:
        session = RecordSession(graph, config=recorder)
        recording = session.run().recording
        verify_key = session.service.recording_key
    digest = recording.digest()
    weights = generate_weights(graph, seed=0)
    inp = np.zeros(graph.input_shape, dtype=np.float32)

    def first_request(registry) -> Tuple[float, object]:
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, verify_key=verify_key,
                            engine="compiled", compiled_cache=registry)
        t0 = time.perf_counter()
        out = replayer.open(recording, weights).run(inp)
        return time.perf_counter() - t0, out

    if store_root:
        import os
        os.makedirs(store_root, exist_ok=True)
    cold_acquire: List[float] = []
    warm_acquire: List[float] = []
    hit_acquire: List[float] = []
    cold_first: List[float] = []
    hit_first: List[float] = []
    out_cold = out_hit = None
    artifact_bytes = 0
    store = None
    for _ in range(reps):
        # Fresh roots per rep keep every cold rep honestly cold;
        # store_root= redirects them (benchmark the disk you deploy on).
        root = tempfile.mkdtemp(prefix="repro-coldstart-", dir=store_root)
        root2 = tempfile.mkdtemp(prefix="repro-coldstart-e2e-",
                                 dir=store_root)
        try:
            store = DiskStore(root)
            registry = RecordingRegistry(store=store)
            # Cold means cold: defeat the recording's own compile memo
            # so every rep really lowers it.
            recording._compiled = None
            t0 = time.perf_counter()
            registry.compiled_for("bench", digest, recording.compile,
                                  recording=recording)
            cold_acquire.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            registry.compiled_for("bench", digest, recording.compile,
                                  recording=recording)
            warm_acquire.append(time.perf_counter() - t0)

            restarted = RecordingRegistry(store=DiskStore(root))
            t0 = time.perf_counter()
            restarted.compiled_for("bench", digest, recording.compile,
                                   recording=recording)
            hit_acquire.append(time.perf_counter() - t0)

            # End-to-end: fresh registries, so the acquisition really
            # happens inside the timed first request — cold against an
            # empty store, store-hit against the populated one.
            recording._compiled = None
            elapsed, out_cold = first_request(
                RecordingRegistry(store=DiskStore(root2)))
            cold_first.append(elapsed)
            elapsed, out_hit = first_request(
                RecordingRegistry(store=DiskStore(root)))
            hit_first.append(elapsed)

            rows = store.entries()
            artifact_bytes = rows[0]["nbytes"] if rows else 0
            try:
                from_artifact(rows[0]["path"], expected_tenant="intruder")
                cross_tenant_rejected = False
            except TenantIsolationError:
                cross_tenant_rejected = True
        finally:
            shutil.rmtree(root, ignore_errors=True)
            shutil.rmtree(root2, ignore_errors=True)

    identical = {
        "output": bool(np.array_equal(out_cold.output, out_hit.output)),
        "delay": bool(out_cold.delay_s == out_hit.delay_s),
        "stats": bool(out_cold.stats == out_hit.stats),
        "energy": bool(math.isclose(out_cold.energy_j, out_hit.energy_j,
                                    rel_tol=1e-9)),
    }
    med_cold = statistics.median(cold_acquire)
    med_hit = statistics.median(hit_acquire)
    return {
        "workload": workload,
        "recorder": recorder.name,
        "reps": reps,
        "artifact_bytes": artifact_bytes,
        "cold": {
            "acquire_s": med_cold,
            "best_s": min(cold_acquire),
            "first_request_s": statistics.median(cold_first),
        },
        "warm": {
            "acquire_s": statistics.median(warm_acquire),
        },
        "store_hit": {
            "acquire_s": med_hit,
            "best_s": min(hit_acquire),
            "first_request_s": statistics.median(hit_first),
        },
        "speedup_acquire": (med_cold / med_hit) if med_hit else 0.0,
        "speedup_first_request": (
            statistics.median(cold_first) / statistics.median(hit_first)
            if hit_first and statistics.median(hit_first) else 0.0),
        "identical": identical,
        "cross_tenant_rejected": bool(cross_tenant_rejected),
        "store_stats": store.stats.as_dict() if store is not None else {},
    }


# ----------------------------------------------------------------------
# Serve: real-concurrency throughput across shard workers
# ----------------------------------------------------------------------
def _spin(n: int) -> int:
    """Fixed CPU-bound work; must be module-level (spawn pickles it)."""
    x = 0
    for i in range(n):
        x += i * i
    return x


def measure_machine_scaling(procs: int = 2, spin: int = 4_000_000) -> float:
    """How much 2x the CPU work slows down when split across ``procs``
    processes — the *hardware's* parallel-scaling ceiling.

    On shared/throttled vCPUs this lands well below ``procs`` even for
    pure compute, so the serve speedup is reported alongside it rather
    than against an assumed ideal of N.
    """
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")

    def run(n_procs: int) -> float:
        t0 = time.perf_counter()
        ps = [ctx.Process(target=_spin, args=(spin,))
              for _ in range(n_procs)]
        for p in ps:
            p.start()
        for p in ps:
            p.join()
        return time.perf_counter() - t0

    run(1)  # spawn warm-up (interpreter start dominates the first run)
    t1 = run(1)
    tn = run(procs)
    return (procs * t1 / tn) if tn > 0 else 0.0


def bench_serve(workload: str = "alexnet", requests: int = 12,
                workers: int = 2, seed: int = 0) -> Dict:
    """Wall-clock serving throughput: ``workers``-shard pool vs a
    single-worker pool on the same burst, plus the bit-identity gate
    against the in-process reference.

    Warm cost (record, spawn, verify+compile+open per worker) is
    reported separately — a long-lived deployment pays it once.
    """
    from repro.serve import ServeCatalog, make_burst, serve_burst

    catalog = ServeCatalog()
    catalog.record(workload)
    burst = make_burst([workload], requests, tenants=2, seed=seed)
    single = serve_burst(burst, catalog=catalog, workers=1)
    multi = serve_burst(burst, catalog=catalog, workers=workers,
                        verify=True)
    t1 = single.summary["throughput_rps"]
    tn = multi.summary["throughput_rps"]
    oracle = multi.summary["oracle"]["overall"]
    return {
        "workload": workload,
        "requests": requests,
        "workers": workers,
        "seed": seed,
        "single": {
            "throughput_rps": t1,
            "makespan_s": single.summary["makespan_s"],
            "p99_s": single.summary["latency_s"]["overall"]["p99"],
            "warm_s": single.warm_s,
        },
        "pool": {
            "throughput_rps": tn,
            "makespan_s": multi.summary["makespan_s"],
            "p99_s": multi.summary["latency_s"]["overall"]["p99"],
            "warm_s": multi.warm_s,
            "distinct_pids": multi.summary["workers"]["distinct_pids"],
        },
        "speedup": (tn / t1) if t1 > 0 else 0.0,
        "bit_identical": bool(multi.summary["bit_identical"]),
        "pool_matches_single_worker": bool(
            multi.identity_digest == single.identity_digest),
        "oracle_abs_error_p99_s": oracle["abs_error_s"]["p99"],
        "completed": multi.summary["requests"]["completed"],
    }


def run_serve_perf(quick: bool = False, requests: int = 12,
                   workers: int = 2) -> Dict:
    """Run the serve harness; returns the ``BENCH_serve.json`` document."""
    if quick:
        requests = min(requests, 8)
    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        # The hardware ceiling: what "perfect" process scaling would be
        # on this machine (2.0 on two dedicated cores, much less on
        # shared vCPUs).  Serve speedup is judged relative to this.
        "machine_scaling_2proc": measure_machine_scaling(2),
        "serve": [bench_serve("alexnet", requests=requests,
                              workers=workers)],
    }


def compare_serve_baseline(doc: Dict, baseline: Dict,
                           max_regression: float = 2.0) -> List[str]:
    """Regressions of a serve bench against checked-in floors.

    Absolute throughput tolerates ``max_regression`` (CI wall clock is
    noisy); the speedup floor and the correctness gates are absolute —
    a pool that stops scaling or stops matching the reference bit-for-
    bit has lost the point of existing.
    """
    failures: List[str] = []
    rows = [r for r in doc.get("serve", ())
            if r["workload"] == baseline.get("serve_workload")]
    if not rows:
        return ["serve bench missing baseline workload "
                f"{baseline.get('serve_workload')!r}"]
    row = rows[0]
    floor = baseline["serve_throughput_rps"] / max_regression
    if row["pool"]["throughput_rps"] < floor:
        failures.append(
            f"serve throughput: {row['pool']['throughput_rps']:.1f} rps "
            f"< {floor:.1f} (baseline "
            f"{baseline['serve_throughput_rps']:.1f} / {max_regression:g})")
    if row["speedup"] < baseline["serve_speedup"]:
        failures.append(
            f"serve speedup: {row['speedup']:.2f}x < floor "
            f"{baseline['serve_speedup']:.2f}x")
    p99_ceiling = baseline["serve_p99_s"] * max_regression
    if row["pool"]["p99_s"] > p99_ceiling:
        failures.append(
            f"serve p99: {row['pool']['p99_s']:.3f}s > {p99_ceiling:.3f}s "
            f"(baseline {baseline['serve_p99_s']:.3f}s x {max_regression:g})")
    if not row["bit_identical"]:
        failures.append("served outputs diverged from the single-process "
                        "reference")
    if not row["pool_matches_single_worker"]:
        failures.append("pool outputs diverged from the single-worker pool")
    return failures


# ----------------------------------------------------------------------
# The full harness document
# ----------------------------------------------------------------------
def run_perf(quick: bool = False, reps: int = 5,
             epochs: int = 6, store_root: Optional[str] = None) -> Dict:
    """Run the harness and return the ``BENCH_replay.json`` document.

    ``quick`` trims to the CI smoke shape: the streaming-regime workload
    only, fewer reps/epochs.  The mnist/OursMDS pair is reported in the
    full run as the control-plane regime — its replay cost is dominated
    by real job execution and blocking polls that both engines share, so
    its expected ratio is ~1x, not 3x (see docs/API.md).
    """
    if quick:
        reps = min(reps, 3)
        epochs = min(epochs, 4)
    # One alexnet/Naive record run feeds both benches: the streaming-
    # regime replay A/B and the §5 sync stream.
    session = RecordSession(build_model("alexnet"), config=NAIVE)
    recording = session.run().recording
    replay = [bench_replay("alexnet", NAIVE, reps=reps,
                           recording=recording,
                           verify_key=session.service.recording_key)]
    if not quick:
        replay.append(bench_replay("mnist", OURS_MDS, reps=reps))
    doc: Dict = {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "replay": replay,
        "memsync": [bench_memsync("alexnet", NAIVE, epochs=epochs,
                                  recording=recording)],
        "cold_start": [bench_cold_start(
            "alexnet", NAIVE, reps=2 if quick else 3,
            recording=recording,
            verify_key=session.service.recording_key,
            store_root=store_root)],
    }
    return doc


def write_bench(doc: Dict, path: str = BENCH_FILENAME) -> str:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# Baseline gate (CI perf-smoke)
# ----------------------------------------------------------------------
def compare_baseline(doc: Dict, baseline: Dict,
                     max_regression: float = 2.0) -> List[str]:
    """Regressions of ``doc`` against a checked-in baseline.

    Returns a list of failure strings (empty = pass).  A metric fails
    when it drops below ``baseline / max_regression`` — wall-clock on CI
    runners is noisy, so only a halving of throughput (or a collapse of
    the legacy-vs-optimized ratio) trips the gate.
    """
    failures: List[str] = []

    def gate(label: str, measured: float, floor: float) -> None:
        if measured < floor / max_regression:
            failures.append(
                f"{label}: {measured:,.0f} < {floor / max_regression:,.0f} "
                f"(baseline {floor:,.0f} / {max_regression:g})")

    streaming = [r for r in doc["replay"]
                 if r["workload"] == baseline.get("replay_workload")]
    if streaming:
        gate("replay entries/s", streaming[0]["compiled"]["entries_per_s"],
             baseline["replay_entries_per_s"])
        gate("replay speedup", streaming[0]["speedup_best"],
             baseline["replay_speedup"])
        for name, ok in streaming[0]["identical"].items():
            if not ok:
                failures.append(f"replay engines diverged on {name}")
    if doc.get("memsync"):
        gate("memsync pages/s", doc["memsync"][0]["optimized"]["pages_per_s"],
             baseline["memsync_pages_per_s"])
        gate("memsync speedup", doc["memsync"][0]["speedup"],
             baseline["memsync_speedup"])
        if not doc["memsync"][0]["peer_views_equal"]:
            failures.append("memsync peer views diverged")
    if doc.get("cold_start") and "cold_start_speedup_acquire" in baseline:
        row = doc["cold_start"][0]
        # The acquisition ratio is the store's reason to exist, so the
        # floor is absolute (not noise-discounted): opening a published
        # artifact must beat recompiling it by at least this factor.
        if row["speedup_acquire"] < baseline["cold_start_speedup_acquire"]:
            failures.append(
                f"cold-start acquire speedup: "
                f"{row['speedup_acquire']:.1f}x < floor "
                f"{baseline['cold_start_speedup_acquire']:.1f}x")
        for name, ok in row["identical"].items():
            if not ok:
                failures.append(
                    f"store-hit replay diverged from cold compile on {name}")
        if not row["cross_tenant_rejected"]:
            failures.append("published artifact opened across tenants")
        ceiling = baseline.get("cold_start_max_artifact_bytes")
        if ceiling and row["artifact_bytes"] > ceiling:
            failures.append(
                f"published artifact grew to {row['artifact_bytes']:,} B "
                f"> {ceiling:,} B — data-page elision regressed")
    return failures
