"""Recording/trace comparison — the remote-debugging application of §3.

"By comparing a client's GPU register logs and memory dumps with the ones
from the cloud, the cloud may detect and report firmware malfunctioning
and vendors may troubleshoot remotely."  This module diffs two recordings
entry by entry and reports the first divergences with register-level
context, plus an aggregate summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.recording import (
    IrqEntry,
    Marker,
    MemUpload,
    MemWrite,
    PollEntry,
    Recording,
    RegRead,
    RegWrite,
)
from repro.hw.regs import reg_name


@dataclass(frozen=True)
class Divergence:
    """One point where two traces disagree."""

    position: int
    kind: str  # "value" | "structure" | "length" | "memory"
    segment: str
    description: str

    def __str__(self) -> str:
        return (f"[{self.position}] ({self.kind}, segment {self.segment!r}) "
                f"{self.description}")


@dataclass
class DiffReport:
    workload_a: str
    workload_b: str
    entries_compared: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        if self.identical:
            return (f"traces identical over {self.entries_compared} "
                    f"entries")
        head = self.divergences[0]
        return (f"{len(self.divergences)} divergence(s) over "
                f"{self.entries_compared} entries; first at "
                f"position {head.position}: {head.description}")


def _describe(entry) -> str:
    if isinstance(entry, RegWrite):
        return f"write {reg_name(entry.offset)} <- {entry.value:#x}"
    if isinstance(entry, RegRead):
        return f"read {reg_name(entry.offset)} = {entry.value:#x}"
    if isinstance(entry, PollEntry):
        return (f"poll {reg_name(entry.offset)} {entry.condition} "
                f"{entry.operand:#x} -> {entry.value:#x} "
                f"x{entry.iterations}")
    if isinstance(entry, IrqEntry):
        return f"irq {entry.line}"
    if isinstance(entry, MemWrite):
        return f"memwrite {len(entry.pages)} page(s)"
    if isinstance(entry, MemUpload):
        return f"memupload {entry.nbytes} bytes"
    if isinstance(entry, Marker):
        return f"marker {entry.label!r}"
    return repr(entry)


def _compare(a, b) -> Optional[Tuple[str, str]]:
    """(kind, description) if the entries differ, else None."""
    if type(a) is not type(b):
        return ("structure",
                f"entry kind differs: {_describe(a)} vs {_describe(b)}")
    if isinstance(a, (RegWrite, RegRead)):
        if a.offset != b.offset:
            return ("structure",
                    f"register differs: {reg_name(a.offset)} vs "
                    f"{reg_name(b.offset)}")
        if a.value != b.value:
            return ("value",
                    f"{reg_name(a.offset)}: {a.value:#x} vs {b.value:#x}")
        return None
    if isinstance(a, PollEntry):
        if (a.offset, a.condition, a.operand) != \
                (b.offset, b.condition, b.operand):
            return ("structure",
                    f"poll target differs: {_describe(a)} vs {_describe(b)}")
        if a.value != b.value:
            return ("value",
                    f"poll {reg_name(a.offset)} final value: "
                    f"{a.value:#x} vs {b.value:#x}")
        return None  # iteration counts are timing, not semantics
    if isinstance(a, IrqEntry):
        if a.line != b.line:
            return ("structure", f"irq line {a.line} vs {b.line}")
        return None
    if isinstance(a, MemWrite):
        pfns_a = {pfn for pfn, _ in a.pages}
        pfns_b = {pfn for pfn, _ in b.pages}
        if pfns_a != pfns_b:
            return ("memory",
                    f"memwrite page sets differ "
                    f"({len(pfns_a ^ pfns_b)} pages disagree)")
        pages_b = dict(b.pages)
        for pfn, raw in a.pages:
            if pages_b[pfn] != raw:
                delta = sum(1 for x, y in zip(raw, pages_b[pfn]) if x != y)
                return ("memory",
                        f"page {pfn:#x} contents differ in {delta} bytes")
        return None
    if isinstance(a, Marker):
        if a.label != b.label:
            return ("structure", f"marker {a.label!r} vs {b.label!r}")
        return None
    return None  # MemUpload sizes are statistics, not semantics


def diff_recordings(a: Recording, b: Recording,
                    max_divergences: int = 16) -> DiffReport:
    """Compare two recordings entry by entry.

    For the debugging use case, recording `a` is the expected trace (e.g.
    from a healthy reference device) and `b` the suspect one; divergences
    localize where the suspect device's GPU stopped behaving.
    """
    report = DiffReport(workload_a=a.workload, workload_b=b.workload,
                        entries_compared=min(len(a.entries),
                                             len(b.entries)))
    segment = "prologue"
    for position, (ea, eb) in enumerate(zip(a.entries, b.entries)):
        if isinstance(ea, Marker):
            segment = ea.label
        result = _compare(ea, eb)
        if result is not None:
            kind, description = result
            report.divergences.append(Divergence(
                position=position, kind=kind, segment=segment,
                description=description))
            if len(report.divergences) >= max_divergences:
                return report
    if len(a.entries) != len(b.entries):
        report.divergences.append(Divergence(
            position=report.entries_compared, kind="length", segment=segment,
            description=(f"trace lengths differ: {len(a.entries)} vs "
                         f"{len(b.entries)} entries")))
    return report
