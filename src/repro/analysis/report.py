"""Plain-text tables for the benchmark harness.

Each benchmark prints the same rows/series the paper's table or figure
reports, and appends them to ``benchmarks/results/`` so EXPERIMENTS.md can
cite a concrete artifact.
"""

from __future__ import annotations

import math
import os
from typing import Iterable, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
    "benchmarks", "results")


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, sep, line(headers), sep]
    out.extend(line(row) for row in str_rows)
    out.append(sep)
    return "\n".join(out)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def percent_change(base: float, new: float) -> float:
    """Positive = reduction relative to base (the paper's convention)."""
    if base == 0:
        return 0.0
    return 100.0 * (base - new) / base


def save_report(name: str, text: str) -> str:
    """Append a rendered table to benchmarks/results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path
