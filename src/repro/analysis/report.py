"""Plain-text tables for the benchmark harness.

Each benchmark prints the same rows/series the paper's table or figure
reports, and appends them to ``benchmarks/results/`` so EXPERIMENTS.md can
cite a concrete artifact.
"""

from __future__ import annotations

import json
import math
import os
from typing import Iterable, Sequence

# Version of the ``--format json`` CLI envelope: every subcommand emits
# ``{"command": ..., "schema": CLI_JSON_SCHEMA, "data": ...}`` so
# scripted consumers can sniff one shape for all commands.
CLI_JSON_SCHEMA = 1

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
    "benchmarks", "results")


def json_envelope(command: str, data) -> str:
    """The ``--format json`` output for one CLI invocation."""
    return json.dumps({"command": command, "schema": CLI_JSON_SCHEMA,
                       "data": data}, indent=2, sort_keys=True, default=str)


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, sep, line(headers), sep]
    out.extend(line(row) for row in str_rows)
    out.append(sep)
    return "\n".join(out)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def percent_change(base: float, new: float) -> float:
    """Positive = reduction relative to base (the paper's convention)."""
    if base == 0:
        return 0.0
    return 100.0 * (base - new) / base


def fleet_summary_tables(summary: dict) -> str:
    """Render a fleet run's summary dict (see
    :meth:`repro.fleet.FleetSimulation.summary`) as the serving report:
    an overview table, per-link latency percentiles, and the cache's
    hit-vs-miss service times."""
    sessions = summary["sessions"]
    cache = summary["cache"]
    pool = summary["pool"]
    vm = summary["vm"]
    overview = format_table(
        "Fleet overview",
        ["metric", "value"],
        [
            ["sessions offered", sessions["offered"]],
            ["sessions completed", sessions["completed"]],
            ["sessions rejected", sessions["rejected"]],
            ["rejection rate", f"{100 * sessions['rejection_rate']:.1f}%"],
            ["cache hit rate", f"{100 * cache['hit_rate']:.1f}%"],
            ["throughput", f"{summary['throughput_sessions_per_s']:.2f} "
                           "sessions/s"],
            ["makespan", f"{summary['makespan_s']:.1f} s"],
            ["peak busy VMs", f"{pool['peak_busy']}/{pool['capacity']}"],
            ["warm/cold boots",
             f"{pool['warm_grants']}/{pool['cold_grants']}"],
            ["VM time", f"{vm['vm_seconds']:.1f} s"],
            ["cost", f"${vm['cost_usd']:.4f}"],
        ])
    lat_rows = []
    for link, dist in sorted(summary["latency_s"]["by_link"].items()):
        lat_rows.append([link, dist["count"], dist["p50"], dist["p95"],
                         dist["p99"], dist["mean"]])
    overall = summary["latency_s"]["overall"]
    lat_rows.append(["all", overall["count"], overall["p50"],
                     overall["p95"], overall["p99"], overall["mean"]])
    latency = format_table(
        "Session latency by link (seconds)",
        ["link", "n", "p50", "p95", "p99", "mean"], lat_rows)
    svc_rows = []
    for label, dist in (("cache hit", summary["service_s"]["cache_hit"]),
                        ("cache miss", summary["service_s"]["cache_miss"])):
        svc_rows.append([label, dist["count"], dist["p50"], dist["p95"],
                         dist["p99"], dist["mean"]])
    service = format_table(
        "Service time by cache outcome (seconds, queueing excluded)",
        ["outcome", "n", "p50", "p95", "p99", "mean"], svc_rows)
    tables = [overview, latency, service]
    network = summary.get("network")
    if network:
        net_rows = []
        for link, dist in sorted(network["time_blocked_s"]["by_link"].items()):
            net_rows.append([link, dist["count"], dist["p50"], dist["p95"],
                             dist["p99"], dist["mean"]])
        all_blocked = network["time_blocked_s"]["overall"]
        net_rows.append(["all", all_blocked["count"], all_blocked["p50"],
                         all_blocked["p95"], all_blocked["p99"],
                         all_blocked["mean"]])
        tables.append(format_table(
            "Time blocked on the link (seconds)",
            ["link", "n", "p50", "p95", "p99", "mean"], net_rows))
    failover = summary.get("failover")
    if failover and failover["total_failovers"]:
        wait = failover["wait_s"]
        faults = summary.get("vm_faults", {})
        tables.append(format_table(
            "Failover (VM deaths survived via checkpoint resume)",
            ["metric", "value"],
            [
                ["VM deaths", faults.get("vm_deaths",
                                         failover["total_failovers"])],
                ["sessions with failover",
                 failover["sessions_with_failover"]],
                ["failover requeues", pool.get("failover_requeues", 0)],
                ["failover rejections",
                 faults.get("failover_rejections", 0)],
                ["death-to-resume p50", f"{wait['p50']:.3f} s"],
                ["death-to-resume p95", f"{wait['p95']:.3f} s"],
                ["death-to-resume mean", f"{wait['mean']:.3f} s"],
            ]))
    return "\n\n".join(tables)


def chaos_summary_tables(summary: dict) -> str:
    """Render a chaos run's summary dict (see
    :meth:`repro.resilience.ChaosReport.summary`): the baseline line,
    then one row per fault plan with byte-identity verdict, overhead,
    and the channel's retry/resume counters."""
    base = summary["baseline"]
    header = format_table(
        "Chaos baseline (fault-free)",
        ["metric", "value"],
        [
            ["workload", summary["workload"]],
            ["recorder", summary["recorder"]],
            ["link", summary["link"]],
            ["seed", summary["config"]["seed"]],
            ["recording delay", f"{base['delay_s']:.3f} s"],
            ["recording bytes", base["recording_bytes"]],
            ["sha256", base["sha256"][:16] + "..."],
        ])
    rows = []
    for run in summary["plans"]:
        rows.append([
            run["plan"],
            "IDENTICAL" if run["identical"] else "DIVERGED",
            f"{run['overhead_pct']:.2f}%",
            run["retries"],
            run["timeouts"],
            run["resumes"],
            run["checkpoints"],
            run["redundant_bytes"],
            f"{run['retry_wait_s']:.3f}",
            f"{run['disconnect_wait_s']:.3f}",
        ])
    plans = format_table(
        "Recordings under fault plans (vs. fault-free baseline bytes)",
        ["plan", "recording", "overhead", "retries", "timeouts", "resumes",
         "ckpts", "redundant B", "retry wait s", "disc wait s"], rows)
    verdict = ("all recordings byte-identical to the fault-free baseline"
               if summary["all_identical"]
               else "DIVERGENCE: at least one recording changed under faults")
    return "\n\n".join((header, plans, verdict))


def perf_summary_tables(doc: dict) -> str:
    """Render a ``BENCH_replay.json`` document (see
    :mod:`repro.analysis.perf`) as the wall-clock performance report:
    per-workload replay engine comparison, then §5 encode throughput."""
    replay_rows = []
    for r in doc.get("replay", ()):
        identical = all(r["identical"].values())
        replay_rows.append([
            f"{r['workload']}/{r['recorder']}", r["entries"],
            r["legacy"]["median_s"] * 1e3,
            r["compiled"]["median_s"] * 1e3,
            r["compiled"]["entries_per_s"],
            f"{r['speedup_median']:.2f}x",
            f"{r['speedup_best']:.2f}x",
            "yes" if identical else "NO"])
    tables = [format_table(
        "Replay wall clock - legacy interpreter vs compiled program",
        ["workload", "entries", "legacy ms", "compiled ms",
         "entries/s", "speedup", "best", "identical"], replay_rows)]
    memsync_rows = []
    for m in doc.get("memsync", ()):
        memsync_rows.append([
            f"{m['workload']}/{m['recorder']}", m["steady_pages"],
            m["legacy"]["pages_per_s"],
            m["optimized"]["pages_per_s"],
            m["optimized"]["pages_skipped"],
            m["optimized"]["encodes"],
            f"{m['speedup']:.2f}x",
            "yes" if m["peer_views_equal"] else "NO"])
    if memsync_rows:
        tables.append(format_table(
            "Memsync encode wall clock - seed path vs single-encode+skip",
            ["workload", "pages", "seed pages/s", "opt pages/s",
             "skipped", "encodes", "speedup", "views equal"], memsync_rows))
    cold_rows = []
    for c in doc.get("cold_start", ()):
        identical = all(c["identical"].values())
        cold_rows.append([
            f"{c['workload']}/{c['recorder']}",
            c["artifact_bytes"] / 1024.0,
            c["cold"]["acquire_s"] * 1e3,
            c["store_hit"]["acquire_s"] * 1e3,
            c["warm"]["acquire_s"] * 1e6,
            f"{c['speedup_acquire']:.1f}x",
            f"{c['speedup_first_request']:.2f}x",
            "yes" if identical else "NO",
            "yes" if c["cross_tenant_rejected"] else "NO"])
    if cold_rows:
        tables.append(format_table(
            "Cold start - compile+publish vs artifact store hit",
            ["workload", "artifact kB", "cold ms", "store-hit ms",
             "warm us", "acquire", "e2e", "identical", "isolated"],
            cold_rows))
    return "\n\n".join(tables)


def store_summary_tables(doc: dict) -> str:
    """Render an artifact-store inventory (``repro store ls``/``gc``):
    an overview with the persisted counters, a per-tenant rollup, and
    the entry listing."""
    entries = doc.get("entries", ())
    stats = doc.get("stats", {}) or {}
    overview_rows = [
        ["root", doc.get("root", "")],
        ["artifacts", len(entries)],
        ["total size", f"{doc.get('total_bytes', 0) / 1024.0:.1f} kB"],
        ["hits", stats.get("hits", 0)],
        ["misses", stats.get("misses", 0)],
        ["publishes", stats.get("publishes", 0)],
        ["evictions", stats.get("evictions", 0)],
        ["corrupt rejected", stats.get("corrupt_rejected", 0)],
        ["bytes published", stats.get("bytes_published", 0)],
        ["bytes evicted", stats.get("bytes_evicted", 0)],
    ]
    tables = [format_table("Artifact store", ["metric", "value"],
                           overview_rows)]
    by_tenant: dict = {}
    for row in entries:
        agg = by_tenant.setdefault(
            row["tenant_id"] or "<unreadable>",
            {"artifacts": 0, "nbytes": 0, "workloads": set()})
        agg["artifacts"] += 1
        agg["nbytes"] += row["nbytes"]
        if row["workload"]:
            agg["workloads"].add(row["workload"])
    if by_tenant:
        tables.append(format_table(
            "Per tenant", ["tenant", "artifacts", "kB", "workloads"],
            [[tenant, agg["artifacts"], agg["nbytes"] / 1024.0,
              ",".join(sorted(agg["workloads"])) or "-"]
             for tenant, agg in sorted(by_tenant.items())]))
    if entries:
        tables.append(format_table(
            "Entries",
            ["tenant", "digest", "workload", "kB", "key"],
            [[row["tenant_id"] or "?", row["recording_digest"][:12],
              row["workload"] or "?", row["nbytes"] / 1024.0,
              f"c{row['compiler_version']}-s{row['schema_version']}"]
             for row in entries]))
    return "\n\n".join(tables)


def serve_summary_tables(summary: dict) -> str:
    """Render a serve run's summary dict (see
    :meth:`repro.serve.ServeMetrics.summary`) as the live-serving
    report: an overview table, wall-clock latency percentiles per link,
    and the planning oracle's predicted-vs-measured accuracy."""
    requests = summary["requests"]
    ledger = summary.get("ledger", {})
    overview_rows = [
        ["requests offered", requests["offered"]],
        ["requests completed", requests["completed"]],
        ["requests rejected", requests["rejected"]],
        ["requests aborted", requests["aborted"]],
        ["requests retried", requests["retried"]],
        ["throughput", f"{summary['throughput_rps']:.2f} req/s"],
        ["makespan", f"{summary['makespan_s']:.3f} s"],
        ["worker deaths", ledger.get("worker_deaths", 0)],
        ["failover requeues", ledger.get("failover_requeues", 0)],
        ["distinct workers", summary["workers"]["distinct_pids"]],
        ["mean batch", f"{summary['batching']['mean_batch']:.2f}"],
        ["identity digest", summary["identity_digest"][:16]],
    ]
    if "bit_identical" in summary:
        overview_rows.append(
            ["bit-identical vs reference",
             "yes" if summary["bit_identical"] else "NO"])
    overview = format_table("Serve overview", ["metric", "value"],
                            overview_rows)
    lat_rows = []
    for link, dist in sorted(summary["latency_s"]["by_link"].items()):
        lat_rows.append([link, dist["count"], dist["p50"] * 1e3,
                         dist["p95"] * 1e3, dist["p99"] * 1e3,
                         dist["mean"] * 1e3])
    overall = summary["latency_s"]["overall"]
    lat_rows.append(["all", overall["count"], overall["p50"] * 1e3,
                     overall["p95"] * 1e3, overall["p99"] * 1e3,
                     overall["mean"] * 1e3])
    latency = format_table(
        "Request latency by link (milliseconds, wall clock)",
        ["link", "n", "p50", "p95", "p99", "mean"], lat_rows)
    oracle_rows = []
    sections = sorted(summary["oracle"]["by_link"].items())
    sections.append(("all", summary["oracle"]["overall"]))
    for label, section in sections:
        oracle_rows.append([
            label,
            section["predicted_s"]["p99"] * 1e3,
            section["measured_s"]["p99"] * 1e3,
            section["abs_error_s"]["p99"] * 1e3,
            f"{section['measured_over_predicted']['p50']:.2f}x",
        ])
    oracle = format_table(
        "Planning oracle accuracy (p99 ms predicted vs measured)",
        ["link", "predicted", "measured", "abs error", "meas/pred p50"],
        oracle_rows)
    return "\n\n".join([overview, latency, oracle])


def save_report(name: str, text: str) -> str:
    """Append a rendered table to benchmarks/results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path


def check_summary_tables(report) -> str:
    """Render a :class:`repro.check.CheckReport` as the conformance
    report: per-rule finding counts with their paper sections, then the
    §4.3 poll-site inventory the discovery pass produced."""
    from repro.check.findings import RULES

    counts = report.counts_by_rule()
    suppressed: dict = {}
    for f in report.suppressed:
        suppressed[f.rule] = suppressed.get(f.rule, 0) + 1
    rows = []
    for rule, (section, description) in RULES.items():
        live = counts.get(rule, 0)
        if live == 0 and rule not in suppressed:
            continue
        rows.append([rule, section, live, suppressed.get(rule, 0),
                     description])
    if not rows:
        rows = [["(all rules)", "-", 0, len(report.suppressed), "clean"]]
    tables = [format_table(
        "Conformance findings",
        ["rule", "paper", "live", "suppressed", "description"],
        rows)]
    if report.poll_sites:
        tables.append(format_table(
            "Polling loops (§4.3 discovery)",
            ["site", "offset", "condition", "bound", "status"],
            [[f"{p.path.rsplit('/', 1)[-1]}:{p.line}", p.offset,
              p.condition, "?" if p.max_iters is None else p.max_iters,
              ("declared" if p.declared else "UNDECLARED")
              + ("+executed" if p.executed else "")]
             for p in sorted(report.poll_sites,
                             key=lambda p: (p.path, p.line))]))
    tables.append(
        f"{len(report.findings)} finding(s), {len(report.suppressed)} "
        f"suppressed, {len(report.baselined)} baselined, "
        f"{report.modules_scanned} module(s) scanned")
    return "\n\n".join(tables)
