"""The kernel environment the GPU driver executes in.

Determinism is a design requirement (§2.3): record and replay must see the
same CPU/GPU interaction sequence.  Instead of real threads, the kernel
runs *thread contexts* cooperatively — the submit path runs until it waits,
then the platform delivers due interrupts, whose handlers run to completion
in an "irq" context before the waiter resumes.  This is exactly the
serialized execution GR-T enforces during recording (job queue length 1,
one app, no concurrent jobs).

:class:`KernelHooks` is the instrumentation seam.  DriverShim subscribes to
it; every event the paper's Clang-injected hooks observe in a real kernel
(kernel API invocation, lock operations, explicit delays, externalization)
arrives here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.clock import VirtualClock

# CPU cost charged per driver "routine step"; keeps CPU time visible but
# negligible next to network and GPU time, as on real hardware.
KERNEL_API_COST_S = 0.3e-6


class WaitTimeout(TimeoutError):
    """An event wait exceeded its timeout — how GPU stack timeouts surface."""


@dataclass
class ThreadContext:
    """One kernel thread of execution (e.g. "submit", "irq")."""

    name: str
    depth: int = 0  # nesting level when contexts stack (irq preempts submit)


class KernelHooks:
    """Observer interface for the instrumentation seam.

    All callbacks default to no-ops; DriverShim overrides the ones it
    needs.  Multiple observers may be attached.
    """

    def on_kernel_api(self, env: "KernelEnv", name: str) -> None:
        """A kernel API that may externalize state is about to run."""

    def on_lock(self, env: "KernelEnv", lock_name: str) -> None:
        """A lock is about to be acquired."""

    def on_unlock(self, env: "KernelEnv", lock_name: str) -> None:
        """A lock is about to be released (commit point, §4.1)."""

    def on_delay(self, env: "KernelEnv", seconds: float) -> None:
        """The driver requested an explicit delay (commit barrier, §4.1)."""

    def on_thread_switch(self, env: "KernelEnv", ctx: ThreadContext) -> None:
        """Execution moved to a different thread context."""


class Platform:
    """What the kernel sits on: delivers interrupts, advances idle time.

    ``wait_for_event`` must advance the virtual clock at least to the next
    hardware event and dispatch any interrupts that became pending; it
    returns False when no further events can ever arrive.
    """

    def wait_for_event(self, env: "KernelEnv", timeout_s: float) -> bool:
        raise NotImplementedError


class KernelEnv:
    """The simulated kernel: contexts, logging, delays, waits, hooks."""

    def __init__(self, clock: VirtualClock, platform: Optional[Platform] = None,
                 name: str = "kernel") -> None:
        self.clock = clock
        self.platform = platform
        self.name = name
        self.hooks: List[KernelHooks] = []
        self._context_stack: List[ThreadContext] = [ThreadContext("main")]
        self.log: List[str] = []
        self.api_calls: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Thread contexts
    # ------------------------------------------------------------------
    @property
    def current(self) -> ThreadContext:
        return self._context_stack[-1]

    def run_in_context(self, name: str, fn: Callable, *args, **kwargs):
        """Run ``fn`` in a nested thread context (e.g. an IRQ handler)."""
        ctx = ThreadContext(name=name, depth=len(self._context_stack))
        self._context_stack.append(ctx)
        for hook in self.hooks:
            hook.on_thread_switch(self, ctx)
        try:
            return fn(*args, **kwargs)
        finally:
            self._context_stack.pop()
            for hook in self.hooks:
                hook.on_thread_switch(self, self.current)

    # ------------------------------------------------------------------
    # Kernel APIs
    # ------------------------------------------------------------------
    def kernel_api(self, name: str) -> None:
        """Mark the invocation of a kernel API of interest to the shims."""
        self.api_calls[name] = self.api_calls.get(name, 0) + 1
        for hook in self.hooks:
            hook.on_kernel_api(self, name)
        self.clock.advance(KERNEL_API_COST_S, label="cpu")

    def printk(self, fmt: str, *args) -> str:
        """Log a message. Externalizes its arguments.

        Formatting forces any lazy symbolic value in ``args`` to a concrete
        integer — the hook fires *first* so DriverShim can stall/validate
        outstanding speculative commits before the value escapes (§4.2).
        """
        self.kernel_api("printk")
        message = fmt % tuple(int(a) if hasattr(a, "__index__") else a
                              for a in args) if args else fmt
        self.log.append(message)
        return message

    def delay(self, seconds: float) -> None:
        """udelay/msleep: an explicit driver barrier (§4.1)."""
        for hook in self.hooks:
            hook.on_delay(self, seconds)
        self.clock.advance(seconds, label="cpu")

    # ------------------------------------------------------------------
    # Event waiting
    # ------------------------------------------------------------------
    def wait_event(self, predicate: Callable[[], bool],
                   timeout_s: float = 5.0) -> None:
        """Block until ``predicate`` holds, letting the platform deliver
        interrupts.  Scheduling is a commit point (§4.1), hence the
        kernel_api notification."""
        self.kernel_api("schedule")
        deadline = self.clock.now + timeout_s
        while not predicate():
            remaining = deadline - self.clock.now
            if remaining <= 0:
                raise WaitTimeout(
                    f"wait_event timed out after {timeout_s}s at "
                    f"t={self.clock.now:.6f}"
                )
            if self.platform is None:
                raise WaitTimeout("no platform to deliver events")
            progressed = self.platform.wait_for_event(self, remaining)
            if not progressed and not predicate():
                raise WaitTimeout(
                    f"platform reports no more events; predicate never "
                    f"satisfied (t={self.clock.now:.6f})"
                )
