"""Kernel locks with shim-visible acquire/release.

Release consistency (§4.1) hinges on two facts: driver threads only touch
shared variables under locks, and DriverShim commits all deferred register
accesses *before any unlock*.  These lock classes notify the kernel hooks
on both edges so the shim can enforce that ordering, and they assert the
discipline (no recursive locking, unlock by owner only) so violations fail
loudly instead of corrupting a recording.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.env import KernelEnv


class LockError(RuntimeError):
    """Lock discipline violation (double lock, foreign unlock, ...)."""


class Mutex:
    """A sleeping mutex.  Cooperative scheduling means acquisition never
    actually blocks, but the ownership/ordering rules are enforced."""

    def __init__(self, env: KernelEnv, name: str) -> None:
        self.env = env
        self.name = name
        self._owner: Optional[str] = None
        self.acquisitions = 0

    def lock(self) -> None:
        for hook in self.env.hooks:
            hook.on_lock(self.env, self.name)
        if self._owner is not None:
            raise LockError(
                f"mutex {self.name!r} already held by {self._owner!r} "
                f"when {self.env.current.name!r} tried to lock it"
            )
        self._owner = self.env.current.name
        self.acquisitions += 1

    def unlock(self) -> None:
        if self._owner is None:
            raise LockError(f"unlock of unheld mutex {self.name!r}")
        if self._owner != self.env.current.name:
            raise LockError(
                f"mutex {self.name!r} held by {self._owner!r}, unlocked "
                f"from {self.env.current.name!r}"
            )
        # Hook fires BEFORE release: the shim commits deferred register
        # accesses while the lock still protects the shared state (§4.1).
        for hook in self.env.hooks:
            hook.on_unlock(self.env, self.name)
        self._owner = None

    @property
    def held(self) -> bool:
        return self._owner is not None

    def __enter__(self) -> "Mutex":
        self.lock()
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlock()


class SpinLock(Mutex):
    """Same semantics under cooperative scheduling; kept as a distinct type
    because the driver uses spinlocks in IRQ context and mutexes elsewhere,
    and tests assert which kind protects what."""
