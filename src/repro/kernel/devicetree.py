"""Device trees for the cloud recording VMs (§6).

The paper's cloud VM runs the GPU stack "transparently even [if] a
physical GPU is not present" by installing the client GPU's device tree.
One VM image carries drivers for many SKUs; the service loads the per-GPU
device tree when a VM boots, and the matching driver binds to it.

Nodes are plain serializable trees so a client can ship its GPU node to
the cloud inside the session request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hw.sku import GpuSku

MALI_MMIO_BASE = 0xE82C_0000
MALI_IRQ_NUMBERS = {"job": 33, "mmu": 34, "gpu": 35}

FAMILY_COMPATIBLE = {
    "mali-bifrost": "arm,mali-bifrost",
    "mali-midgard": "arm,mali-midgard",
    "adreno": "qcom,adreno",
    "powervr": "img,powervr",
}


@dataclass
class DeviceTreeNode:
    """One device-tree node: name, properties, children."""

    name: str
    properties: Dict[str, object] = field(default_factory=dict)
    children: List["DeviceTreeNode"] = field(default_factory=list)

    @property
    def compatible(self) -> Optional[str]:
        return self.properties.get("compatible")

    def find(self, name: str) -> Optional["DeviceTreeNode"]:
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def find_compatible(self, compatible: str) -> Optional["DeviceTreeNode"]:
        if self.compatible == compatible:
            return self
        for child in self.children:
            found = child.find_compatible(compatible)
            if found is not None:
                return found
        return None

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "properties": dict(self.properties),
            "children": [c.to_dict() for c in self.children],
        }

    @staticmethod
    def from_dict(doc: Dict) -> "DeviceTreeNode":
        return DeviceTreeNode(
            name=doc["name"],
            properties=dict(doc["properties"]),
            children=[DeviceTreeNode.from_dict(c) for c in doc["children"]],
        )


def gpu_device_node(sku: GpuSku) -> DeviceTreeNode:
    """The GPU node a client ships to the cloud to describe its hardware."""
    return DeviceTreeNode(
        name=f"gpu@{MALI_MMIO_BASE:x}",
        properties={
            "compatible": FAMILY_COMPATIBLE[sku.family],
            "model": sku.name,
            "reg": [MALI_MMIO_BASE, 0x4000],
            "interrupts": dict(MALI_IRQ_NUMBERS),
            "gpu-id": sku.gpu_id,
            "core-count": sku.core_count,
            "clock-frequency": sku.clock_mhz * 1_000_000,
        },
    )


def board_device_tree(sku: GpuSku, board: str = "hikey960") -> DeviceTreeNode:
    """A minimal board tree: cpus, memory, and the GPU node."""
    return DeviceTreeNode(
        name="/",
        properties={"model": board},
        children=[
            DeviceTreeNode("cpus", {"cpu-count": 8}),
            DeviceTreeNode("memory@80000000",
                           {"reg": [0x8000_0000, 0x2000_0000]}),
            gpu_device_node(sku),
        ],
    )
