"""A deterministic, cooperative model of the kernel environment.

The GPU driver does not run in a vacuum: register access deferral commits
at kernel-API boundaries, release consistency is anchored on lock/unlock,
explicit ``udelay`` calls are commit barriers, and speculation must stall
before any state is externalized (§4.1-4.2).  This package provides that
environment:

* :class:`~repro.kernel.env.KernelEnv` — the clock-bound kernel with
  thread contexts, ``printk``, delays, event waits, and an observer hook
  interface that DriverShim attaches to;
* :mod:`repro.kernel.locks` — mutexes/spinlocks whose acquire/release
  notify the hooks (commit-before-unlock);
* :mod:`repro.kernel.devicetree` — device-tree nodes the cloud VM uses to
  run a GPU driver with no physical GPU present (§6).
"""

from repro.kernel.env import KernelEnv, KernelHooks, ThreadContext, WaitTimeout
from repro.kernel.locks import Mutex, SpinLock, LockError
from repro.kernel.devicetree import DeviceTreeNode, gpu_device_node

__all__ = [
    "KernelEnv",
    "KernelHooks",
    "ThreadContext",
    "WaitTimeout",
    "Mutex",
    "SpinLock",
    "LockError",
    "DeviceTreeNode",
    "gpu_device_node",
]
