"""The cloud recording service (§3.2, §6).

Manages lean VM images containing GPU-stack variants, provisions one
dedicated VM per client session (never shared, never reused across
clients), installs the client's GPU device tree so the right driver binds
with no physical GPU present, and signs recordings with the service key.
"""

from repro.cloud.vm import VmImage, VmInstance, DEFAULT_IMAGES
from repro.cloud.service import CloudService, SessionTicket, ServiceError

__all__ = [
    "VmImage",
    "VmInstance",
    "DEFAULT_IMAGES",
    "CloudService",
    "SessionTicket",
    "ServiceError",
]
