"""Cloud VM images and instances (§3.2, §6).

A VM image bundles a kernel plus one GPU-stack variant (framework,
runtime, and the family drivers it carries).  "A single VM image can
incorporate multiple GPU drivers, which are dynamically loaded depending
on the specific client GPU model" — modelled by matching the client's
device-tree ``compatible`` string against the image's driver list at boot.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.kernel.devicetree import DeviceTreeNode

VM_BOOT_COST_S = 1.2
DRIVER_BIND_COST_S = 0.15


class VmError(RuntimeError):
    """VM provisioning/boot failure."""


@dataclass(frozen=True)
class VmImage:
    """One GPU-stack variant: name + the driver `compatible`s it carries."""

    name: str
    framework: str  # e.g. "acl-20.05"
    runtime: str    # e.g. "libmali"
    driver_compatibles: Tuple[str, ...]

    def measurement_blob(self) -> bytes:
        """Stable bytes whose hash is the attestation measurement."""
        return "|".join((self.name, self.framework, self.runtime,
                         *self.driver_compatibles)).encode()

    def measurement(self) -> bytes:
        return hashlib.sha256(self.measurement_blob()).digest()

    def supports(self, compatible: str) -> bool:
        return compatible in self.driver_compatibles


DEFAULT_IMAGES: Dict[str, VmImage] = {
    "acl-opencl": VmImage(
        name="acl-opencl",
        framework="acl-20.05",
        runtime="libmali",
        driver_compatibles=("arm,mali-bifrost", "arm,mali-midgard"),
    ),
    "tflite-gles": VmImage(
        name="tflite-gles",
        framework="tflite-2.3",
        runtime="libmali",
        driver_compatibles=("arm,mali-bifrost",),
    ),
}


@dataclass
class VmInstance:
    """A booted, single-tenant VM serving exactly one client session."""

    image: VmImage
    device_tree: DeviceTreeNode
    client_id: str
    booted: bool = False
    bound_driver: Optional[str] = None

    def boot(self, clock) -> None:
        """Boot the kernel and bind the GPU driver named by the device
        tree.  There is no GPU hardware behind the MMIO range (§6) — the
        driver's accesses will be tunnelled by DriverShim."""
        if self.booted:
            raise VmError("VM already booted")
        gpu_node = self._gpu_node()
        compatible = gpu_node.compatible
        if not self.image.supports(compatible):
            raise VmError(
                f"image {self.image.name!r} has no driver for {compatible!r}")
        clock.advance(VM_BOOT_COST_S, label="cpu")
        clock.advance(DRIVER_BIND_COST_S, label="cpu")
        self.bound_driver = compatible
        self.booted = True

    def _gpu_node(self) -> DeviceTreeNode:
        found = self._find_gpu(self.device_tree)
        if found is None:
            raise VmError("client device tree has no GPU node")
        return found

    @staticmethod
    def _find_gpu(node: DeviceTreeNode) -> Optional[DeviceTreeNode]:
        """Depth-first search for the GPU node: real trees nest it under
        a bus (e.g. ``soc/gpu@...``), not at the root."""
        if node.name.startswith("gpu@"):
            return node
        for child in node.children:
            found = VmInstance._find_gpu(child)
            if found is not None:
                return found
        return None

    @property
    def gpu_model(self) -> str:
        return self._gpu_node().properties.get("model", "unknown")
