"""The cloud service front door: sessions, attestation, signing keys.

Security posture per §3.1/§7.1: one VM per authenticated client, never
shared and never reused; recordings are never cached across clients even
for identical GPU SKUs; every session gets an attestation report the
client verifies before sending anything.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cloud.vm import DEFAULT_IMAGES, VmImage, VmInstance
from repro.kernel.devicetree import DeviceTreeNode
from repro.tee.attestation import AttestationReport, CloudRootOfTrust
from repro.tee.crypto import SigningKey


class ServiceError(RuntimeError):
    """Cloud service refused the request."""


@dataclass(frozen=True)
class CostModel:
    """VM cost accounting (§3.3: long record runs make GR-T "less
    cost-effective" because each run holds a dedicated VM).

    The default rate approximates a small burstable cloud VM.
    """

    vm_usd_per_hour: float = 0.05

    def record_run_usd(self, vm_seconds: float) -> float:
        return self.vm_usd_per_hour * vm_seconds / 3600.0


@dataclass
class SessionTicket:
    """Everything the client gets back when opening a session."""

    session_id: str
    vm: VmInstance
    attestation: AttestationReport
    recording_key_name: str
    opened_at: float = 0.0
    closed_at: Optional[float] = None

    @property
    def vm_seconds(self) -> float:
        if self.closed_at is None:
            return 0.0
        return self.closed_at - self.opened_at


class CloudService:
    """The multi-tenant service; tenants never share VMs or recordings."""

    def __init__(self, images: Optional[Dict[str, VmImage]] = None,
                 root: Optional[CloudRootOfTrust] = None,
                 cost_model: Optional[CostModel] = None) -> None:
        self.images = dict(images or DEFAULT_IMAGES)
        self.root = root or CloudRootOfTrust()
        self.cost_model = cost_model or CostModel()
        # The key recordings are signed with; clients pin its verifier.
        self.recording_key = SigningKey.generate("grt-recording-service")
        self._session_counter = 0
        self.active_sessions: Dict[str, SessionTicket] = {}
        self.recordings_served = 0
        self.sessions_opened = 0
        self.sessions_aborted = 0
        self._vm_seconds_total = 0.0

    # ------------------------------------------------------------------
    def open_session(self, client_id: str, image_name: str,
                     device_tree: DeviceTreeNode,
                     nonce: bytes, clock=None) -> SessionTicket:
        """Open an attested session; ``clock`` (a
        :class:`~repro.sim.clock.VirtualClock`) stamps ``opened_at`` so
        the service's own ledger can bill VM lifetime at close."""
        if image_name not in self.images:
            raise ServiceError(f"no VM image named {image_name!r}")
        image = self.images[image_name]
        self._session_counter += 1
        session_id = (
            f"grt-{self._session_counter}-"
            f"{hashlib.sha256(client_id.encode()).hexdigest()[:8]}")
        vm = VmInstance(image=image, device_tree=device_tree,
                        client_id=client_id)
        report = self.root.attest(image.measurement_blob(), nonce)
        ticket = SessionTicket(session_id=session_id, vm=vm,
                               attestation=report,
                               recording_key_name=self.recording_key.name,
                               opened_at=clock.now if clock else 0.0)
        self.active_sessions[session_id] = ticket
        self.sessions_opened += 1
        return ticket

    def close_session(self, session_id: str, clock=None) -> None:
        # The VM is destroyed with the session: no reuse across clients.
        ticket = self.active_sessions.pop(session_id, None)
        if ticket is None:
            return
        ticket.closed_at = clock.now if clock else ticket.opened_at
        self._vm_seconds_total += max(0.0, ticket.vm_seconds)

    def abort_session(self, session_id: str, clock=None) -> None:
        """Close the ledger for a session whose VM died mid-run.

        Billing is identical to a clean close (the VM existed until it
        died), but the abnormal termination is counted separately so the
        fleet report can distinguish failures from completions."""
        if session_id in self.active_sessions:
            self.sessions_aborted += 1
        self.close_session(session_id, clock=clock)

    @property
    def total_vm_seconds(self) -> float:
        """VM lifetime billed across all closed sessions."""
        return self._vm_seconds_total

    @property
    def total_cost_usd(self) -> float:
        return self.cost_model.record_run_usd(self._vm_seconds_total)

    def sign_recording(self, body: bytes) -> bytes:
        self.recordings_served += 1
        return self.recording_key.sign(body)

    def image_for_family(self, compatible: str) -> str:
        for name, image in self.images.items():
            if image.supports(compatible):
                return name
        raise ServiceError(f"no image supports driver {compatible!r}")
