"""The two-call public API: ``repro.record`` and ``repro.replay``.

The constructor-level API (:class:`~repro.core.recorder.RecordSession`,
:class:`~repro.core.replayer.Replayer`) stays fully supported — this
module is a facade over it for the common single-session path::

    import repro

    result = repro.record("mnist")                 # RecordResult
    out = repro.replay(result, seed=0)             # ReplayResult
    out = repro.replay(result, engine="legacy")    # pin the engine
    out = repro.replay("mnist.grt")                # from a file on disk

Every knob accepts either the plain-string spelling used by the CLI
(``recorder="OursMDS"``, ``network="wifi"``, ``sku="mali-g71-mp8"``) or
the underlying object (:class:`RecorderConfig`, :class:`LinkProfile`,
:class:`GpuSku`).  ``trace=`` takes a :class:`repro.obs.Tracer` to
append into, or a filesystem path — then a tracer is created for the
call and a Chrome-trace JSON (chrome://tracing, Perfetto) is written
when it finishes.

``record`` warms the speculation history automatically (§4.2 predicts
from the last ``spec_window`` identical commits, so a cold history
records like OursMD): ``warm=`` overrides the number of warm-up record
runs; only the final, traced run is returned.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.core.recorder import (
    HIKEY960_G71,
    OURS_MDS,
    RecorderConfig,
    RecordResult,
    RecordSession,
)
from repro.core.recording import Recording
from repro.core.replayer import Replayer, ReplayError, ReplayResult
from repro.core.speculation import CommitHistory
from repro.core.testbed import ClientDevice
from repro.hw.sku import SKU_DATABASE, GpuSku, find_sku
from repro.ml.models import build_model
from repro.ml.runner import generate_weights
from repro.obs import Tracer, write_chrome_trace
from repro.sim.network import CELLULAR, WIFI, LinkProfile
from repro.tee.crypto import SigningKey

_NETWORKS = {"wifi": WIFI, "cellular": CELLULAR}


# ----------------------------------------------------------------------
# knob resolution: CLI-string spellings or the underlying objects
# ----------------------------------------------------------------------
def _resolve_recorder(recorder: Union[str, RecorderConfig]) -> RecorderConfig:
    if isinstance(recorder, RecorderConfig):
        return recorder
    from repro.core.recorder import RECORDER_VARIANTS
    by_name = {c.name: c for c in RECORDER_VARIANTS}
    if recorder not in by_name:
        raise ValueError(f"unknown recorder {recorder!r}; "
                         f"choose from {sorted(by_name)}")
    return by_name[recorder]


def _resolve_network(network: Union[str, LinkProfile]) -> LinkProfile:
    if isinstance(network, LinkProfile):
        return network
    if network not in _NETWORKS:
        raise ValueError(f"unknown network {network!r}; "
                         f"choose from {sorted(_NETWORKS)}")
    return _NETWORKS[network]


def _resolve_sku(sku: Union[None, str, GpuSku],
                 default: Optional[GpuSku] = None) -> Optional[GpuSku]:
    if sku is None:
        return default
    if isinstance(sku, GpuSku):
        return sku
    return find_sku(sku)


def _resolve_trace(trace: Union[None, str, Tracer], domain: str):
    """(tracer, path-to-write-or-None) for a ``trace=`` argument."""
    if trace is None:
        return None, None
    if isinstance(trace, Tracer):
        return trace, None
    return Tracer(domain=domain), str(trace)


def _finish_trace(tracer: Optional[Tracer], out_path: Optional[str]) -> None:
    if tracer is not None:
        tracer.finish_open()
    if out_path is not None:
        write_chrome_trace(tracer, out_path)


def _resolve_compiled_cache(store, tracer):
    """A store-backed registry for ``store=`` (or ``REPRO_STORE``), or
    ``None`` for the plain per-recording compile path."""
    from repro.store import resolve_store
    resolved = resolve_store(store, tracer=tracer)
    if resolved is None:
        return None
    from repro.fleet.registry import RecordingRegistry
    return RecordingRegistry(store=resolved)


# ----------------------------------------------------------------------
# record
# ----------------------------------------------------------------------
def record(workload, *,
           recorder: Union[str, RecorderConfig] = OURS_MDS,
           sku: Union[None, str, GpuSku] = None,
           network: Union[str, LinkProfile] = WIFI,
           seed: int = 0,
           warm: Optional[int] = None,
           history: Optional[CommitHistory] = None,
           store=None,
           tenant_id: str = "local",
           trace: Union[None, str, Tracer] = None,
           **session_kwargs) -> RecordResult:
    """Record ``workload`` through the cloud dry-run and return the
    signed recording plus its statistics.

    ``workload`` is a model name (``"mnist"``, ``"alexnet"``, ...) or a
    built :class:`~repro.ml.graph.Graph`.  Extra keyword arguments
    (``fault_plan=``, ``sanitizer=``, ``service=``...) pass through to
    :class:`~repro.core.recorder.RecordSession`.

    ``store=`` (a directory path or a :class:`repro.DiskStore`-shaped
    object) pre-publishes the compiled form of the fresh recording into
    the artifact store under ``tenant_id`` — when the cost model judges
    compilation worthwhile — so the first ``replay(store=...)`` opens
    the program instead of lowering it.

    The returned :class:`RecordResult` carries ``verify_key`` so it can
    be handed straight to :func:`replay`.
    """
    config = _resolve_recorder(recorder)
    link = _resolve_network(network)
    sku_obj = _resolve_sku(sku, default=HIKEY960_G71)
    tracer, trace_out = _resolve_trace(trace, domain="record")
    if history is None:
        history = CommitHistory(config.spec_window)
    if warm is None:
        warm = config.spec_window if config.speculate else 0
    try:
        for _ in range(warm):
            RecordSession(workload, config=config, sku=sku_obj,
                          link_profile=link, seed=seed,
                          history=history, **session_kwargs).run()
        result = RecordSession(workload, config=config, sku=sku_obj,
                               link_profile=link, seed=seed,
                               history=history, tracer=tracer,
                               **session_kwargs).run()
        _publish_recording(store, tenant_id, result, tracer)
    finally:
        _finish_trace(tracer, trace_out)
    return result


def _publish_recording(store, tenant_id: str, result: RecordResult,
                       tracer) -> None:
    """Publish the compiled artifact of a fresh recording, when a store
    is attached and the cost model approves the compile."""
    from repro.store import resolve_store
    resolved = resolve_store(store, tracer=tracer)
    if resolved is None:
        return
    rec = result.recording
    if not rec.compile_decision().use_compiled:
        return
    from repro.core.compiled import to_artifact
    from repro.store.base import ArtifactKey
    digest = rec.digest()
    blob = to_artifact(rec.compile(), tenant_id=tenant_id, recording=rec,
                       recording_digest=digest)
    resolved.put(tenant_id, ArtifactKey.current(digest), blob)


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def _resolve_recording(recording, verify_key):
    """(Recording, verify_key) from a RecordResult, Recording, bytes
    blob, or filesystem path (with its CLI-written ``.key`` sibling)."""
    if isinstance(recording, RecordResult):
        return recording.recording, verify_key or recording.verify_key
    if isinstance(recording, Recording):
        return recording, verify_key
    if isinstance(recording, (bytes, bytearray)):
        return Recording.from_bytes(bytes(recording),
                                    verify_key=verify_key), verify_key
    path = str(recording)
    with open(path, "rb") as fh:
        blob = fh.read()
    if verify_key is None:
        try:
            with open(path + ".key") as fh:
                verify_key = SigningKey("grt-recording-service",
                                        bytes.fromhex(fh.read().strip()))
        except FileNotFoundError:
            raise ReplayError(
                f"no verify key: pass verify_key= or keep {path}.key "
                f"(written by `repro record`) next to the recording")
    return Recording.from_bytes(blob, verify_key=verify_key), verify_key


def _sku_for_recording(recording: Recording) -> GpuSku:
    fp = tuple(recording.sku_fingerprint)
    for sku in SKU_DATABASE:
        if sku.fingerprint() == fp:
            return sku
    raise ReplayError(
        f"recording's SKU fingerprint {fp} matches no SKU in the "
        f"database; pass sku= explicitly")


def replay(recording, input_array: Optional[np.ndarray] = None, *,
           weights: Optional[Dict[str, np.ndarray]] = None,
           seed: int = 0,
           sku: Union[None, str, GpuSku] = None,
           engine: str = "auto",
           runs: int = 1,
           store=None,
           tenant_id: str = "local",
           trace: Union[None, str, Tracer] = None,
           verify_key=None) -> ReplayResult:
    """Replay a recording inside the simulated client TEE.

    ``recording`` is a :class:`RecordResult` (from :func:`record`), a
    parsed :class:`Recording`, the raw signed bytes, or a path written
    by ``python -m repro record``.  ``weights`` defaults to the
    deterministic parameters for ``seed`` (the confidential model the
    dry run never saw); ``input_array`` defaults to zeros in the
    recorded input shape.  ``engine`` picks the replay engine
    (``"auto"``/``"compiled"``/``"legacy"``); ``runs`` repeats the
    inference on one opened session (later runs skip weight install —
    Table 2's steady state) and the last result is returned.

    ``store=`` attaches a compiled-artifact store (a directory path, a
    :class:`repro.DiskStore`/:class:`repro.MemoryStore`, or anything
    with the same ``get``/``put`` surface): compiled programs are
    opened from it instead of rebuilt, and fresh compiles are published
    back, so a later process replays the same recording without paying
    the lowering again.  Entries are namespaced by ``tenant_id``
    (§7.1: nothing derived from a recording crosses tenants).
    """
    rec, key = _resolve_recording(recording, verify_key)
    if key is None:
        raise ReplayError("no verify key: pass verify_key= or replay a "
                          "RecordResult / recorded file")
    graph = build_model(rec.workload)
    sku_obj = _resolve_sku(sku) or _sku_for_recording(rec)
    device = ClientDevice.for_workload(graph, sku=sku_obj)
    tracer, trace_out = _resolve_trace(trace, domain="replay")
    if tracer is not None:
        # Switch the trace to the replay clock/process row, so a tracer
        # shared with record() keeps the two virtual timelines apart.
        tracer.set_clock(device.clock, domain="replay")
    compiled_cache = _resolve_compiled_cache(store, tracer)
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=key, engine=engine, tracer=tracer,
                        compiled_cache=compiled_cache, tenant_id=tenant_id)
    if weights is None:
        weights = generate_weights(graph, seed=seed)
    if input_array is None:
        input_array = np.zeros(graph.input_shape, dtype=np.float32)
    try:
        session = replayer.open(rec, weights)
        result = None
        for _ in range(max(1, runs)):
            result = session.run(input_array)
    finally:
        _finish_trace(tracer, trace_out)
    return result
