"""Multiprocessing shard pool: compiled replays across all cores.

Everything else in the serving engine is asyncio inside one process;
replay itself is CPU-bound numpy + Python, so real throughput needs real
processes.  A *shard* is one worker process holding warmed
:class:`~repro.core.compiled.CompiledRecording` programs — parsed,
signature-verified, compiled and opened once at warm time — and
executing request batches against them.

The warm cache inside each worker is keyed ``(tenant_id, digest)``,
mirroring :meth:`repro.fleet.registry.RecordingRegistry.compiled_for`:
two tenants serving bit-identical recordings still get separate entries,
and a task is only ever served from its own tenant's entry (§7.1 —
nothing derived from a recording is shared across clients).

Worker death is a first-class event, not a crash: a watchdog thread
waits on the process sentinels, respawns a replacement, replays the
recorded warm-set into it, and requeues the dead worker's in-flight
tasks — each retry counted against ``max_retries`` exactly like the
fleet failover ledger bounds VM-death retries (PR 4).  Replay is
deterministic and side-effect-free outside the worker, so re-executing
a task on another shard yields bit-identical output.

Wall-clock timing here is intentional (this layer *measures* serving
latency); nothing it measures ever feeds the virtual clock or a
recording artifact.
"""
# repro-check: module-allow[determinism] -- wall-clock service timing is
# this module's purpose; measured times never enter recordings.

from __future__ import annotations

import hashlib
import multiprocessing
from multiprocessing import connection as mp_connection
import os
import queue as queue_mod
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import StatsBase

_WARM, _BATCH, _STOP = "warm", "batch", "stop"

#: How long ``close()`` waits for a worker to drain its stop message
#: before escalating to ``terminate()``.
_STOP_GRACE_S = 5.0

#: Shards are process-parallel; per-process BLAS threading only
#: oversubscribes the cores (it measurably hurts replay latency even
#: with a single worker on this workload's matrix sizes), so worker
#: processes are spawned with these pinned to one thread.
_CHILD_THREAD_VARS = ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
                      "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS")


class ShardError(RuntimeError):
    """The pool could not serve a task (not a modelled rejection)."""


class ShardAborted(ShardError):
    """A task exhausted its retry budget across worker deaths."""


class ShardIsolationError(ShardError):
    """A task asked a shard for another tenant's warmed program."""


@dataclass(frozen=True)
class WarmSpec:
    """Everything a worker needs to warm one (tenant, recording) entry.

    The recording travels as its signed wire bytes plus the service
    verification key, so the worker re-runs the §7.1 signature check
    before compiling — a shard never executes an unverified program.

    ``store_path`` (optional) points every worker at one shared on-disk
    artifact store: the first worker to warm a (tenant, recording)
    compiles and publishes, every later worker — including respawns and
    whole restarted pools — opens the published artifact instead of
    lowering it again.
    """

    tenant_id: str
    workload: str
    recording_blob: bytes
    key_secret_hex: str
    weight_seed: int = 0
    store_path: str = ""

    def digest(self) -> str:
        return hashlib.sha256(self.recording_blob).hexdigest()


@dataclass(frozen=True)
class ShardTask:
    """One replay request as it crosses the process boundary."""

    task_id: str
    tenant_id: str
    digest: str
    input_seed: int = 0
    runs: int = 1


@dataclass
class ShardResult:
    """What a worker sends back for one completed task."""

    task_id: str
    tenant_id: str
    output: np.ndarray
    output_sha256: str
    delay_s: float
    energy_j: float
    wall_s: float
    worker_pid: int
    batch_size: int
    attempts: int = 1


@dataclass
class ShardPoolStats(StatsBase):
    """Pool-level counters the serve report surfaces."""

    SCHEMA = "repro.shards"

    workers: int = 0
    warms: int = 0
    batches: int = 0
    tasks_done: int = 0
    tasks_failed: int = 0
    worker_deaths: int = 0
    failover_requeues: int = 0
    respawns: int = 0


# ----------------------------------------------------------------------
# Worker side (runs in the child process)
# ----------------------------------------------------------------------

#: One store-backed registry per store path, per worker process: every
#: warm against the same store shares one DiskStore handle (and its
#: in-memory first tier), so a worker warming N tenants opens the store
#: once and a respawned worker re-warms from published artifacts.
_WORKER_REGISTRIES: Dict[str, object] = {}


def _registry_for(store_path: str):
    registry = _WORKER_REGISTRIES.get(store_path)
    if registry is None:
        from repro.fleet.registry import RecordingRegistry
        from repro.store import DiskStore
        registry = RecordingRegistry(store=DiskStore(store_path))
        _WORKER_REGISTRIES[store_path] = registry
    return registry


class _WarmedProgram:
    """One opened replay session + its reproducible input generator."""

    def __init__(self, spec: WarmSpec) -> None:
        from repro.core.recording import Recording
        from repro.core.replayer import Replayer
        from repro.core.testbed import ClientDevice
        from repro.ml.models import build_model
        from repro.ml.runner import generate_weights
        from repro.tee.crypto import SigningKey

        key = SigningKey("grt-recording-service",
                         bytes.fromhex(spec.key_secret_hex))
        recording = Recording.from_bytes(spec.recording_blob,
                                         verify_key=key)
        self.tenant_id = spec.tenant_id
        self.digest = spec.digest()
        self.graph = build_model(recording.workload)
        device = ClientDevice.for_workload(self.graph)
        compiled_cache = (_registry_for(spec.store_path)
                          if spec.store_path else None)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, verify_key=key,
                            tenant_id=spec.tenant_id, engine="compiled",
                            compiled_cache=compiled_cache)
        self.session = replayer.open(
            recording, generate_weights(self.graph, seed=spec.weight_seed))

    def input_for(self, seed: int) -> np.ndarray:
        rng = np.random.RandomState(seed)
        return rng.rand(*self.graph.input_shape).astype(np.float32)

    def execute(self, task: ShardTask, batch_size: int) -> ShardResult:
        if task.tenant_id != self.tenant_id:
            raise ShardIsolationError(
                f"task for {task.tenant_id!r} reached "
                f"{self.tenant_id!r}'s warmed program")
        inp = self.input_for(task.input_seed)
        t0 = time.perf_counter()
        out = None
        for _ in range(max(1, task.runs)):
            out = self.session.run(inp)
        wall = time.perf_counter() - t0
        return ShardResult(
            task_id=task.task_id, tenant_id=task.tenant_id,
            output=out.output,
            output_sha256=hashlib.sha256(out.output.tobytes()).hexdigest(),
            delay_s=out.delay_s, energy_j=out.energy_j, wall_s=wall,
            worker_pid=os.getpid(), batch_size=batch_size)


def execute_inline(warm_specs: List[WarmSpec],
                   tasks: List[ShardTask]) -> List[ShardResult]:
    """Run ``tasks`` in this process through the exact worker code path.

    This is the single-process reference the bit-identity gate compares
    the pool against: same warm path, same input generation, same
    session reuse — only the process boundary removed.
    """
    cache: Dict[Tuple[str, str], _WarmedProgram] = {}
    for spec in warm_specs:
        entry = _WarmedProgram(spec)
        cache[(spec.tenant_id, entry.digest)] = entry
    results = []
    for task in tasks:
        entry = cache.get((task.tenant_id, task.digest))
        if entry is None:
            raise ShardError(f"task {task.task_id}: no warmed program for "
                             f"({task.tenant_id}, {task.digest[:12]})")
        results.append(entry.execute(task, batch_size=1))
    return results


def _shard_worker(worker_id: int, task_q, result_q) -> None:
    """Worker main loop: warm programs, execute batches, until stop."""
    cache: Dict[Tuple[str, str], _WarmedProgram] = {}
    while True:
        message = task_q.get()
        kind = message[0]
        if kind == _STOP:
            result_q.put(("stopped", worker_id, None, None))
            return
        if kind == _WARM:
            warm_id, spec = message[1], message[2]
            try:
                t0 = time.perf_counter()
                entry = _WarmedProgram(spec)
                warm_s = time.perf_counter() - t0
                # Calibration: one timed steady-state replay, so the
                # planning oracle predicts from a measured service time
                # rather than a guess.
                calib = entry.execute(
                    ShardTask(task_id="__calibrate__",
                              tenant_id=spec.tenant_id,
                              digest=entry.digest, input_seed=0),
                    batch_size=1)
                cache[(spec.tenant_id, entry.digest)] = entry
                result_q.put(("warmed", worker_id, warm_id, {
                    "tenant_id": spec.tenant_id,
                    "digest": entry.digest,
                    "warm_s": warm_s,
                    "calibrate_wall_s": calib.wall_s,
                }))
            except Exception as exc:  # noqa: BLE001 - crosses process
                result_q.put(("warmfail", worker_id, warm_id, repr(exc)))
        elif kind == _BATCH:
            tasks: List[ShardTask] = message[1]
            for task in tasks:
                try:
                    entry = cache.get((task.tenant_id, task.digest))
                    if entry is None:
                        raise ShardError(
                            f"no warmed program for ({task.tenant_id}, "
                            f"{task.digest[:12]})")
                    result = entry.execute(task, batch_size=len(tasks))
                    result_q.put(("result", worker_id, task.task_id,
                                  result))
                except Exception as exc:  # noqa: BLE001 - crosses process
                    result_q.put(("taskfail", worker_id, task.task_id,
                                  repr(exc)))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass
class _InFlight:
    task: ShardTask
    future: Future
    attempts: int = 1


@dataclass
class _WarmWait:
    """One caller blocked on one worker acking one warm spec.

    Holding the spec lets the watchdog re-attach the waiter to a
    replacement worker when the original dies mid-warm, so ``warm()``
    rides through a death instead of raising.
    """

    spec: WarmSpec
    event: threading.Event = field(default_factory=threading.Event)
    error: Optional[str] = None


class _WorkerHandle:
    """Parent-side bookkeeping for one shard process."""

    def __init__(self, index: int, process, task_q) -> None:
        self.index = index
        self.process = process
        self.task_q = task_q
        self.inflight: Dict[str, _InFlight] = {}
        self.tasks_done = 0
        self.alive = True


class ShardPool:
    """N worker processes behind per-worker task queues.

    Thread-safe from the parent side: ``submit``/``warm`` may be called
    from the asyncio loop thread while the collector and watchdog
    threads resolve futures and handle deaths.  All returned futures are
    :class:`concurrent.futures.Future` — the asyncio engine bridges them
    with ``asyncio.wrap_future``.
    """

    def __init__(self, workers: int = 2, max_retries: int = 2,
                 mp_context: str = "spawn", sanitizer=None) -> None:
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        self._ctx = multiprocessing.get_context(mp_context)
        self.n_workers = workers
        self.max_retries = max_retries
        self.sanitizer = sanitizer
        self.stats = ShardPoolStats(workers=workers)
        self._workers: List[_WorkerHandle] = []
        # _result_q stays the raw mp queue: it is pickled into every
        # child's Process args.  The parent's own gets/puts go through
        # _result_view, which the sanitizer may wrap.
        self._result_q = self._ctx.Queue()
        self._result_view = self._result_q
        self._lock = threading.RLock()
        if sanitizer is not None:
            self._lock = sanitizer.wrap_lock(self._lock, "ShardPool._lock")
            self._result_view = sanitizer.wrap_queue(
                self._result_q, "ShardPool._result_q")
        self._warm_specs: List[WarmSpec] = []
        self._warm_waits: Dict[Tuple[int, int], _WarmWait] = {}
        self._warm_info: Dict[Tuple[str, str], Dict] = {}
        self._next_warm_id = 0
        self._rr = 0
        self._started = False
        self._closing = False
        self._closed = threading.Event()
        self._collector: Optional[threading.Thread] = None
        self._watchdog: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def _note(self, tag: str, write: bool) -> None:
        """Tag one shared-state access for the happens-before sanitizer."""
        if self.sanitizer is not None:
            self.sanitizer.note("ShardPool." + tag, write)

    def _publish(self, channel: str) -> None:
        if self.sanitizer is not None:
            self.sanitizer.publish(channel)

    def _thread_target(self, target, name: str):
        """Thread target, fork-edge-wrapped when sanitizing."""
        if self.sanitizer is not None:
            return self.sanitizer.fork(target, name)
        return target

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            self._note("workers", write=True)
            for index in range(self.n_workers):
                self._workers.append(self._spawn(index))
            self._collector = threading.Thread(
                target=self._thread_target(self._collect, "collector"),
                name="shard-collector", daemon=True)
            self._watchdog = threading.Thread(
                target=self._thread_target(self._watch, "watchdog"),
                name="shard-watchdog", daemon=True)
        self._collector.start()
        self._watchdog.start()

    def _spawn(self, index: int) -> _WorkerHandle:
        task_q = self._ctx.Queue()
        process = self._ctx.Process(
            target=_shard_worker, args=(index, task_q, self._result_q),
            name=f"shard-{index}", daemon=True)
        saved = {var: os.environ.get(var) for var in _CHILD_THREAD_VARS}
        for var in _CHILD_THREAD_VARS:
            os.environ[var] = "1"
        try:
            process.start()
        finally:
            for var, value in saved.items():
                if value is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = value
        return _WorkerHandle(index, process, task_q)

    def close(self) -> None:
        """Stop workers and service threads.  Idempotent and safe to
        call concurrently (from ``__del__``, atexit, a second caller):
        exactly one caller tears down; every other caller blocks until
        the teardown it lost the race to has finished."""
        with self._lock:
            if not self._started:
                # Never started: nothing to reap.
                self._closing = True
                self._closed.set()
                return
            already_closing = self._closing
            self._closing = True
            self._note("closing", write=True)
        if already_closing:
            self._closed.wait(timeout=2 * _STOP_GRACE_S)
            return
        # Retire the watchdog *before* snapshotting the worker list: a
        # watchdog mid-respawn after the snapshot would leak the
        # replacement process past close().  The loop polls _closing
        # every sentinel-wait tick, so this join is bounded.
        if (self._watchdog is not None
                and self._watchdog is not threading.current_thread()):
            self._watchdog.join(timeout=_STOP_GRACE_S)
        with self._lock:
            self._note("workers", write=False)
            workers = list(self._workers)
        for handle in workers:
            if handle.alive:
                try:
                    handle.task_q.put((_STOP,))
                except Exception:  # noqa: BLE001 - queue may be gone
                    pass
        for handle in workers:
            handle.process.join(timeout=_STOP_GRACE_S)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=_STOP_GRACE_S)
        # Unblock the collector thread, then reap both service threads
        # and the queues so nothing races interpreter teardown.
        self._result_view.put(("__closed__", -1, None, None))
        if (self._collector is not None
                and self._collector is not threading.current_thread()):
            self._collector.join(timeout=_STOP_GRACE_S)
        for handle in workers:
            handle.task_q.close()
            handle.task_q.cancel_join_thread()
        self._result_q.close()
        self._result_q.cancel_join_thread()
        self._closed.set()

    def __del__(self) -> None:
        try:
            if self._started and not self._closed.is_set():
                self.close()
        except Exception:  # noqa: BLE001 - interpreter may be tearing down
            pass

    # ------------------------------------------------------------------
    def _is_closing(self) -> bool:
        with self._lock:
            self._note("closing", write=False)
            return self._closing

    @property
    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers if w.alive)

    def warm_info(self, tenant_id: str, digest: str) -> Optional[Dict]:
        """Calibration data recorded when (tenant, digest) was warmed."""
        return self._warm_info.get((tenant_id, digest))

    # ------------------------------------------------------------------
    def warm(self, spec: WarmSpec, timeout_s: float = 120.0) -> str:
        """Warm ``spec`` into every worker; returns the content digest.

        Blocks until every live worker acks (parse + verify + compile +
        open + calibration replay), so by the time ``warm`` returns the
        pool serves this (tenant, digest) at steady-state cost.
        """
        if not self._started:
            raise ShardError("pool not started")
        with self._lock:
            self._warm_specs.append(spec)
            targets = [w for w in self._workers if w.alive]
            waits = []
            for handle in targets:
                warm_id = self._next_warm_id
                self._next_warm_id += 1
                wait = _WarmWait(spec)
                self._warm_waits[(handle.index, warm_id)] = wait
                waits.append(wait)
                # repro-check: allow[conc-await-holding-lock] -- mp queue put never blocks
                handle.task_q.put((_WARM, warm_id, spec))
        deadline = time.perf_counter() + timeout_s
        for wait in waits:
            remaining = deadline - time.perf_counter()
            if not wait.event.wait(timeout=max(0.0, remaining)):
                raise ShardError(
                    f"a worker did not warm {spec.workload!r} within "
                    f"{timeout_s:g}s")
            if wait.error is not None:
                raise ShardError(f"worker failed to warm: {wait.error}")
        with self._lock:
            self._note("stats", write=True)
            self.stats.warms += 1
        return spec.digest()

    # ------------------------------------------------------------------
    def submit(self, tasks: List[ShardTask]) -> List[Future]:
        """Dispatch one batch (same tenant) to the least-loaded worker."""
        if not tasks:
            return []
        with self._lock:
            live = [w for w in self._workers if w.alive]
            if not live:
                raise ShardError("no live workers")
            # Least-loaded, round-robin on ties, so batches spread
            # across shards instead of piling on worker 0.
            self._rr += 1
            handle = min(live, key=lambda w: (len(w.inflight),
                                              (w.index - self._rr)
                                              % len(self._workers)))
            futures = []
            for task in tasks:
                future: Future = Future()
                handle.inflight[task.task_id] = _InFlight(task, future)
                futures.append(future)
            # repro-check: allow[conc-await-holding-lock] -- mp queue put never blocks
            handle.task_q.put((_BATCH, tasks))
            self._note("stats", write=True)
            self.stats.batches += 1
        return futures

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        """Resolve futures from the shared result queue."""
        while True:
            try:
                kind, worker_id, ident, payload = self._result_view.get(
                    timeout=0.5)
            except queue_mod.Empty:
                if self._is_closing():
                    return
                continue
            if kind == "__closed__":
                return
            if kind == "warmed":
                with self._lock:
                    self._warm_info[(payload["tenant_id"],
                                     payload["digest"])] = payload
                    wait = self._warm_waits.pop((worker_id, ident), None)
                if wait is not None:
                    wait.event.set()
            elif kind == "warmfail":
                with self._lock:
                    wait = self._warm_waits.pop((worker_id, ident), None)
                if wait is not None:
                    wait.error = payload
                    wait.event.set()
            elif kind in ("result", "taskfail"):
                with self._lock:
                    handle = self._handle(worker_id)
                    entry = (handle.inflight.pop(ident, None)
                             if handle else None)
                    if handle:
                        handle.tasks_done += 1
                    if entry is not None:
                        self._note("stats", write=True)
                        if kind == "result":
                            self.stats.tasks_done += 1
                        else:
                            self.stats.tasks_failed += 1
                if entry is None:
                    continue
                # Future resolution happens outside the lock; the
                # explicit publish edge orders this thread's writes
                # before the loop-side consume in the engine.
                self._publish("future:{}".format(ident))
                if kind == "result":
                    payload.attempts = entry.attempts
                    entry.future.set_result(payload)
                else:
                    entry.future.set_exception(ShardError(payload))
            elif kind == "stopped":
                continue

    def _handle(self, worker_id: int) -> Optional[_WorkerHandle]:
        for handle in self._workers:
            if handle.index == worker_id and handle.alive:
                return handle
        return None

    # ------------------------------------------------------------------
    def _watch(self) -> None:
        """Respawn dead workers and requeue their in-flight tasks."""
        while not self._is_closing():
            with self._lock:
                sentinels = {w.process.sentinel: w
                             for w in self._workers if w.alive}
            if not sentinels:
                time.sleep(0.05)
                continue
            ready = mp_connection.wait(list(sentinels), timeout=0.25)
            if self._is_closing():
                return
            for sentinel in ready:
                self._on_death(sentinels[sentinel])

    def _on_death(self, handle: _WorkerHandle) -> None:
        with self._lock:
            self._note("closing", write=False)
            if not handle.alive or self._closing:
                return
            handle.alive = False
            self._note("stats", write=True)
            self.stats.worker_deaths += 1
            orphans = list(handle.inflight.values())
            handle.inflight.clear()
            # Callers blocked in warm() on this worker are re-attached
            # to the replacement below — a death mid-warm is absorbed,
            # not raised.
            pending = [self._warm_waits.pop(key)
                       for key in [k for k in self._warm_waits
                                   if k[0] == handle.index]]
            # The dead worker's queue: its feeder thread can block
            # forever on the full pipe (the child will never drain it),
            # so detach it from interpreter-exit joining.
            handle.task_q.cancel_join_thread()
            handle.task_q.close()
            # Replacement shard: same index, fresh process, re-warmed
            # from the recorded warm-set before it can take traffic.
            replacement = self._spawn(handle.index)
            self._workers[self._workers.index(handle)] = replacement
            self.stats.respawns += 1
            for spec in self._warm_specs:
                warm_id = self._next_warm_id
                self._next_warm_id += 1
                wait = next((w for w in pending if w.spec is spec), None)
                if wait is not None:
                    pending.remove(wait)
                else:
                    wait = _WarmWait(spec)
                self._warm_waits[(replacement.index, warm_id)] = wait
                # repro-check: allow[conc-await-holding-lock] -- mp queue put never blocks
                replacement.task_q.put((_WARM, warm_id, spec))
            for wait in pending:  # spec unknown to the pool (shouldn't
                wait.error = "worker died while warming"  # happen)
                wait.event.set()
        # Requeue orphans outside the lock; each retry is a failover,
        # bounded like the fleet ledger's max_failovers.
        for orphan in orphans:
            if orphan.attempts > self.max_retries:
                with self._lock:
                    self._note("stats", write=True)
                    self.stats.tasks_failed += 1
                self._publish("future:{}".format(orphan.task.task_id))
                orphan.future.set_exception(ShardAborted(
                    f"task {orphan.task.task_id} lost to "
                    f"{orphan.attempts} worker death(s)"))
                continue
            with self._lock:
                self._note("stats", write=True)
                self.stats.failover_requeues += 1
                live = [w for w in self._workers if w.alive]
                if not live:
                    self.stats.tasks_failed += 1
                    abort: Optional[ShardAborted] = ShardAborted(
                        "no live workers for requeue")
                else:
                    abort = None
                    target = min(live, key=lambda w: len(w.inflight))
                    orphan.attempts += 1
                    target.inflight[orphan.task.task_id] = orphan
                    # repro-check: allow[conc-await-holding-lock] -- mp queue put never blocks
                    target.task_q.put((_BATCH, [orphan.task]))
            if abort is not None:
                self._publish("future:{}".format(orphan.task.task_id))
                orphan.future.set_exception(abort)

    # ------------------------------------------------------------------
    def kill_worker(self, index: int = 0) -> bool:
        """Hard-kill one worker (tests + chaos drills); the watchdog
        respawns it and requeues its in-flight tasks."""
        with self._lock:
            for handle in self._workers:
                if handle.index == index and handle.alive:
                    handle.process.kill()
                    return True
        return False

    def worker_pids(self) -> List[int]:
        with self._lock:
            return [w.process.pid for w in self._workers if w.alive]
