"""The live serving engine: asyncio front end over the shard pool.

Two runners share one implementation, the sync/async duality from the
hypergraph Runners spec (SNIPPETS.md §3):

* :class:`AsyncServeEngine` — the real engine.  ``await engine.run(...)``
  inside an existing event loop; ``await engine.submit(req)`` for
  open-ended traffic.
* :class:`SyncServeEngine` — the blocking facade: ``engine.run(...)``
  spins up the loop, serves the burst, tears down.  Scripts, the CLI and
  the benchmarks use this one.

Admission control is backpressure-aware and mirrors the fleet's
semantics (PR 1 pool + PR 4 failover ledger): each tenant gets a
*bounded* queue (over-limit arrivals are rejected immediately and
counted, like :class:`~repro.fleet.pool.PoolSaturated`), a global
dispatch semaphore caps shard-pool in-flight so a slow pool backs
pressure up into the tenant queues instead of ballooning memory, and
worker deaths burn a bounded retry budget per request (aborts are
ledgered, never raised through the loop).

Every completed request emits a ``serve`` span into :mod:`repro.obs`
carrying predicted-vs-measured latency, so a Chrome trace of a serve run
shows the planning oracle's error per request.
"""
# repro-check: module-allow[determinism] -- a wall-clock serving engine:
# arrival pacing and latency measurement are its purpose; measured times
# never enter recordings or the virtual clock.

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.serve.metrics import ServeMetrics, ServeStats
from repro.serve.session import (
    PlanningOracle,
    ServeCatalog,
    ServeRequest,
    ServeResult,
)
from repro.serve.shards import (
    ShardAborted,
    ShardPool,
    ShardPoolStats,
    execute_inline,
)


@dataclass
class ServeReport:
    """Everything one serve run produced."""

    results: List[ServeResult]
    summary: Dict
    pool_stats: ShardPoolStats
    identity_digest: str = ""
    warm_s: float = 0.0
    makespan_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)


@dataclass
class _Pending:
    request: ServeRequest
    submitted_wall: float
    done: "asyncio.Future[ServeResult]" = field(repr=False, default=None)


class AsyncServeEngine:
    """Per-tenant bounded queues -> batcher tasks -> shard pool."""

    def __init__(self, pool: ShardPool, catalog: ServeCatalog,
                 batch_max: int = 4, tenant_queue_limit: int = 32,
                 max_dispatch: Optional[int] = None,
                 tracer=None, sanitizer=None) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.pool = pool
        self.catalog = catalog
        # Engine and pool share one sanitizer: the engine consumes the
        # publish edges the pool's collector emits at future resolution.
        self.sanitizer = sanitizer if sanitizer is not None \
            else getattr(pool, "sanitizer", None)
        self.batch_max = batch_max
        self.tenant_queue_limit = tenant_queue_limit
        # Backpressure: at most this many tasks dispatched into the pool
        # at once (default: enough to keep every worker's batch slot
        # full without unbounded pile-up inside the mp queues).
        self.max_dispatch = max_dispatch or (pool.n_workers * batch_max * 2)
        self.tracer = tracer
        self.metrics = ServeMetrics()
        self.stats = ServeStats()
        self.oracle_predictions: Dict[str, float] = {}
        self._queues: Dict[str, asyncio.Queue] = {}
        self._batchers: Dict[str, asyncio.Task] = {}
        self._dispatch_sem: Optional[asyncio.Semaphore] = None
        self._t0 = 0.0

    # ------------------------------------------------------------------
    # submission path
    # ------------------------------------------------------------------
    async def submit(self, request: ServeRequest) -> ServeResult:
        """Admit, queue, batch, execute; resolves with the result.

        Rejections resolve (``status="rejected"``) rather than raise —
        overload is a modelled outcome, exactly like the fleet's
        admission control.
        """
        self.stats.offered += 1
        loop = asyncio.get_running_loop()
        if self._dispatch_sem is None:
            self._dispatch_sem = asyncio.Semaphore(self.max_dispatch)
        queue = self._queues.get(request.tenant_id)
        if queue is None:
            queue = asyncio.Queue(maxsize=self.tenant_queue_limit)
            self._queues[request.tenant_id] = queue
            self._batchers[request.tenant_id] = loop.create_task(
                self._batcher(request.tenant_id, queue))
        pending = _Pending(request, time.perf_counter(),
                           loop.create_future())
        try:
            queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.stats.rejected += 1
            result = ServeResult(
                request_id=request.request_id,
                tenant_id=request.tenant_id, workload=request.workload,
                link_name=request.link_name, ok=False, status="rejected",
                error=f"tenant queue full "
                      f"({self.tenant_queue_limit} waiting)")
            self.metrics.add(result)
            if self.tracer is not None:
                self.tracer.event("rejected", cat="serve",
                                  tid=request.request_id,
                                  args={"tenant": request.tenant_id})
            return result
        return await pending.done

    # ------------------------------------------------------------------
    async def _batcher(self, tenant_id: str,
                       queue: asyncio.Queue) -> None:
        """Drain one tenant's queue, grouping up to ``batch_max`` tasks
        per dispatch.  Batches are per-tenant by construction — requests
        from different tenants never share a shard dispatch."""
        loop = asyncio.get_running_loop()
        while True:
            first = await queue.get()
            batch = [first]
            while len(batch) < self.batch_max:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            for pending in batch:
                await self._dispatch_sem.acquire()
            tasks = [self.catalog.task_for(p.request) for p in batch]
            futures = self.pool.submit(tasks)
            for pending, future in zip(batch, futures):
                loop.create_task(self._finish(pending, future))

    def _consume_edge(self, task_id: str) -> None:
        """Join the collector thread's publish for this future, then tag
        the engine-side shared state the callback touches."""
        if self.sanitizer is not None:
            self.sanitizer.consume("future:{}".format(task_id))
            self.sanitizer.note("AsyncServeEngine.metrics", write=True)

    async def _finish(self, pending: _Pending, future) -> None:
        request = pending.request
        try:
            shard = await asyncio.wrap_future(future)
        except ShardAborted as exc:
            self._consume_edge(request.request_id)
            self._dispatch_sem.release()
            self.stats.aborted += 1
            result = ServeResult(
                request_id=request.request_id, tenant_id=request.tenant_id,
                workload=request.workload, link_name=request.link_name,
                ok=False, status="aborted", error=str(exc))
            self.metrics.add(result)
            pending.done.set_result(result)
            return
        except Exception as exc:  # noqa: BLE001 - surfaced as a result
            self._consume_edge(request.request_id)
            self._dispatch_sem.release()
            self.stats.aborted += 1
            result = ServeResult(
                request_id=request.request_id, tenant_id=request.tenant_id,
                workload=request.workload, link_name=request.link_name,
                ok=False, status="aborted", error=repr(exc))
            self.metrics.add(result)
            pending.done.set_result(result)
            return
        self._consume_edge(request.request_id)
        self._dispatch_sem.release()
        done_wall = time.perf_counter()
        latency = done_wall - pending.submitted_wall
        predicted = self.oracle_predictions.get(request.request_id, 0.0)
        result = ServeResult(
            request_id=request.request_id, tenant_id=request.tenant_id,
            workload=request.workload, link_name=request.link_name,
            ok=True, output_sha256=shard.output_sha256,
            output_class=int(shard.output.argmax()),
            delay_s=shard.delay_s, wall_service_s=shard.wall_s,
            latency_s=latency,
            queue_wait_s=max(0.0, latency - shard.wall_s),
            predicted_s=predicted, worker_pid=shard.worker_pid,
            batch_size=shard.batch_size, attempts=shard.attempts)
        self.stats.completed += 1
        self.metrics.add(result)
        if self.tracer is not None:
            start = pending.submitted_wall - self._t0
            self.tracer.add_span(
                "request", "serve", start, start + latency,
                tid=request.request_id,
                wall_start=pending.submitted_wall, wall_end=done_wall,
                args={"tenant": request.tenant_id,
                      "workload": request.workload,
                      "link": request.link_name,
                      "predicted_s": round(predicted, 6),
                      "measured_s": round(latency, 6),
                      "service_s": round(shard.wall_s, 6),
                      "worker_pid": shard.worker_pid,
                      "attempts": shard.attempts})
        pending.done.set_result(result)

    # ------------------------------------------------------------------
    # burst driver
    # ------------------------------------------------------------------
    async def run(self, requests: List[ServeRequest]) -> ServeReport:
        """Serve one request set to completion and report.

        Requests with ``arrival_offset_s`` are paced open-loop against
        the wall clock; a burst (all offsets 0) goes out immediately.
        The planning oracle runs first so every request's prediction is
        fixed before any measurement starts.
        """
        self._plan(requests)
        self._t0 = time.perf_counter()

        async def offered(request: ServeRequest) -> ServeResult:
            if request.arrival_offset_s > 0:
                delay = (self._t0 + request.arrival_offset_s
                         - time.perf_counter())
                if delay > 0:
                    await asyncio.sleep(delay)
            return await self.submit(request)

        results = list(await asyncio.gather(
            *[offered(r) for r in requests]))
        makespan = time.perf_counter() - self._t0
        self._sync_ledger()
        summary = self.metrics.summary(makespan, stats=self.stats)
        return ServeReport(
            results=results, summary=summary,
            pool_stats=self.pool.stats,
            identity_digest=summary["identity_digest"],
            makespan_s=makespan)

    def _plan(self, requests: List[ServeRequest]) -> None:
        service: Dict = {}
        for request in requests:
            digest = self.catalog.digest_for(request.workload)
            info = self.pool.warm_info(request.tenant_id, digest)
            if info is not None:
                service[(request.tenant_id, digest)] = (
                    info["calibrate_wall_s"])
        oracle = PlanningOracle(self.pool.n_workers, service)
        plan = oracle.plan(requests, self.catalog)
        self.oracle_predictions = {
            rid: timing.latency_s for rid, timing in plan.items()}

    def _sync_ledger(self) -> None:
        self.stats.batches = self.pool.stats.batches
        self.stats.worker_deaths = self.pool.stats.worker_deaths
        self.stats.failover_requeues = self.pool.stats.failover_requeues

    async def shutdown(self) -> None:
        for task in self._batchers.values():
            task.cancel()
        self._batchers.clear()
        self._queues.clear()


class SyncServeEngine:
    """Blocking facade: same engine, loop managed for you."""

    def __init__(self, pool: ShardPool, catalog: ServeCatalog,
                 **kwargs) -> None:
        self.engine = AsyncServeEngine(pool, catalog, **kwargs)

    def run(self, requests: List[ServeRequest]) -> ServeReport:
        async def _serve() -> ServeReport:
            try:
                return await self.engine.run(requests)
            finally:
                await self.engine.shutdown()
        return asyncio.run(_serve())


# ----------------------------------------------------------------------
# One-call driver (CLI, benchmarks, tests)
# ----------------------------------------------------------------------
def serve_burst(requests: List[ServeRequest],
                catalog: Optional[ServeCatalog] = None,
                workers: int = 2, batch_max: int = 4,
                tenant_queue_limit: int = 32,
                max_retries: int = 2, tracer=None,
                verify: bool = False,
                pool: Optional[ShardPool] = None,
                store=None,
                sanitizer=None) -> ServeReport:
    """Record + warm + serve ``requests``; optionally verify the pool's
    outputs bit-identical against the in-process single-path reference.

    ``warm_s`` on the report covers recording, worker start and warm
    (compile + open) — the cold-start cost a long-lived deployment pays
    once, excluded from throughput.  ``store=`` (a directory path or
    :class:`repro.DiskStore`) shares compiled artifacts across all
    workers and across pool restarts, so only the first warm of a
    (tenant, recording) pays the compile.
    """
    from repro.store import resolve_store_path
    store_path = resolve_store_path(store)
    if catalog is None:
        catalog = ServeCatalog(store_path=store_path)
    elif store_path:
        catalog.store_path = store_path
    warm_specs = catalog.warm_specs(requests)
    t0 = time.perf_counter()
    own_pool = pool is None
    if own_pool:
        pool = ShardPool(workers=workers, max_retries=max_retries,
                         sanitizer=sanitizer)
        pool.start()
    try:
        for spec in warm_specs:
            pool.warm(spec)
        warm_s = time.perf_counter() - t0
        engine = SyncServeEngine(pool, catalog, batch_max=batch_max,
                                 tenant_queue_limit=tenant_queue_limit,
                                 tracer=tracer, sanitizer=sanitizer)
        report = engine.run(requests)
        report.warm_s = warm_s
    finally:
        if own_pool:
            pool.close()
    if verify:
        # Compare only the requests the pool actually completed —
        # rejected/aborted requests have no output on either side.
        done_ids = {r.request_id for r in report.results if r.ok}
        reference = execute_inline(
            warm_specs, [catalog.task_for(r) for r in requests
                         if r.request_id in done_ids])
        ref_digest = _reference_digest(reference)
        report.summary["reference_digest"] = ref_digest
        report.summary["bit_identical"] = (
            ref_digest == report.identity_digest)
    return report


def _reference_digest(results) -> str:
    from repro.serve.metrics import IdentityDigest
    digest = IdentityDigest()
    for r in results:
        digest.add(r.task_id, r.output_sha256)
    return digest.hexdigest()
