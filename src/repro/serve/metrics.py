"""Serve metrics: wall-clock p50/p95/p99 rollup + oracle accuracy.

The fleet report (:mod:`repro.fleet.metrics`) reduces *virtual* session
records; this module is its wall-clock twin for the live engine.  On top
of the usual latency/throughput/queueing distributions it reports the
planning oracle's accuracy — predicted vs measured latency per link
class, and the error distribution — because a serving stack whose
planner drifts is a stack that will overload itself.

An :class:`IdentityDigest` rolls every request's output hash into one
order-independent digest, so two engine configurations (N-worker pool
vs single-process reference) can assert bit-identical service with a
single comparison.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fleet.metrics import percentile
from repro.obs.metrics import StatsBase
from repro.serve.session import ServeResult

PERCENTILES = (50, 95, 99)


def _dist(values: List[float]) -> Dict[str, float]:
    out = {f"p{q}": percentile(values, q) for q in PERCENTILES}
    out["mean"] = sum(values) / len(values) if values else 0.0
    out["count"] = len(values)
    return out


@dataclass
class ServeStats(StatsBase):
    """Ledger counters mirrored into the serve report."""

    SCHEMA = "repro.serve"

    offered: int = 0
    completed: int = 0
    rejected: int = 0
    aborted: int = 0
    batches: int = 0
    worker_deaths: int = 0
    failover_requeues: int = 0


class IdentityDigest:
    """Order-independent digest over (request_id, output_sha256) pairs."""

    def __init__(self) -> None:
        self._pairs: List[str] = []

    def add(self, request_id: str, output_sha256: str) -> None:
        self._pairs.append(f"{request_id}:{output_sha256}")

    def hexdigest(self) -> str:
        h = hashlib.sha256()
        for pair in sorted(self._pairs):
            h.update(pair.encode())
        return h.hexdigest()


@dataclass
class ServeMetrics:
    """Accumulates :class:`ServeResult` rows, reduces to the report."""

    results: List[ServeResult] = field(default_factory=list)

    def add(self, result: ServeResult) -> None:
        self.results.append(result)

    # ------------------------------------------------------------------
    @property
    def completed(self) -> List[ServeResult]:
        return [r for r in self.results if r.ok]

    def identity_digest(self) -> str:
        digest = IdentityDigest()
        for r in self.completed:
            digest.add(r.request_id, r.output_sha256)
        return digest.hexdigest()

    # ------------------------------------------------------------------
    def _prediction_section(self, rows: List[ServeResult]) -> Dict:
        predicted = [r.predicted_s for r in rows]
        measured = [r.latency_s for r in rows]
        errors = [abs(r.latency_s - r.predicted_s) for r in rows]
        # Ratio of measured to predicted: 1.0 = a perfect plan; the p95
        # of this is the planner's tail honesty.
        ratios = [r.latency_s / r.predicted_s for r in rows
                  if r.predicted_s > 0]
        return {
            "predicted_s": _dist(predicted),
            "measured_s": _dist(measured),
            "abs_error_s": _dist(errors),
            "measured_over_predicted": _dist(ratios),
        }

    def summary(self, makespan_s: float,
                stats: Optional[ServeStats] = None) -> Dict:
        done = self.completed
        links = sorted({r.link_name for r in done})
        doc: Dict = {
            "requests": {
                "offered": len(self.results),
                "completed": len(done),
                "rejected": sum(1 for r in self.results
                                if r.status == "rejected"),
                "aborted": sum(1 for r in self.results
                               if r.status == "aborted"),
                "retried": sum(1 for r in done if r.attempts > 1),
            },
            "throughput_rps": (len(done) / makespan_s
                               if makespan_s > 0 else 0.0),
            "makespan_s": makespan_s,
            "latency_s": {
                "overall": _dist([r.latency_s for r in done]),
                "by_link": {link: _dist([r.latency_s for r in done
                                         if r.link_name == link])
                            for link in links},
            },
            "service_s": _dist([r.wall_service_s for r in done]),
            "queue_wait_s": _dist([r.queue_wait_s for r in done]),
            "virtual_delay_s": _dist([r.delay_s for r in done]),
            "oracle": {
                "overall": self._prediction_section(done),
                "by_link": {link: self._prediction_section(
                    [r for r in done if r.link_name == link])
                    for link in links},
            },
            "batching": {
                "mean_batch": (sum(r.batch_size for r in done) / len(done)
                               if done else 0.0),
                "max_batch": max((r.batch_size for r in done), default=0),
            },
            "workers": {
                "distinct_pids": len({r.worker_pid for r in done}),
                "tasks_by_pid": _tasks_by_pid(done),
            },
            "identity_digest": self.identity_digest(),
        }
        if stats is not None:
            doc["ledger"] = stats.as_dict()
        return _round_floats(doc)


def _tasks_by_pid(done: List[ServeResult]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for r in done:
        counts[str(r.worker_pid)] = counts.get(str(r.worker_pid), 0) + 1
    return counts


def _round_floats(doc, digits: int = 9):
    if isinstance(doc, dict):
        return {k: _round_floats(v, digits) for k, v in doc.items()}
    if isinstance(doc, list):
        return [_round_floats(v, digits) for v in doc]
    if isinstance(doc, float):
        return round(doc, digits)
    return doc
