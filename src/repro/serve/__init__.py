"""repro.serve — the live serving engine (wall clock, real concurrency).

The fleet layer (:mod:`repro.fleet`) *simulates* a recording service
over the virtual clock; this package *serves* replay traffic for real:
an asyncio front end with bounded per-tenant queues and backpressure-
aware admission control, a multiprocessing shard pool executing
pre-compiled recordings across cores, and the simulated scheduler
retained as a planning oracle whose predictions are scored against
measured latency in every report.

    from repro.serve import ServeCatalog, make_burst, serve_burst

    requests = make_burst(["alexnet"], requests=16, tenants=2, seed=0)
    report = serve_burst(requests, workers=2, verify=True)
    print(report.summary["throughput_rps"],
          report.summary["latency_s"]["overall"]["p99"])
"""

from repro.serve.engine import (
    AsyncServeEngine,
    ServeReport,
    SyncServeEngine,
    serve_burst,
)
from repro.serve.metrics import IdentityDigest, ServeMetrics, ServeStats
from repro.serve.session import (
    PlanningOracle,
    PredictedTiming,
    ServeCatalog,
    ServeRequest,
    ServeResult,
    make_burst,
)
from repro.serve.shards import (
    ShardAborted,
    ShardError,
    ShardIsolationError,
    ShardPool,
    ShardPoolStats,
    ShardResult,
    ShardTask,
    WarmSpec,
    execute_inline,
)

__all__ = [
    "AsyncServeEngine",
    "SyncServeEngine",
    "ServeReport",
    "serve_burst",
    "ServeMetrics",
    "ServeStats",
    "IdentityDigest",
    "PlanningOracle",
    "PredictedTiming",
    "ServeCatalog",
    "ServeRequest",
    "ServeResult",
    "make_burst",
    "ShardPool",
    "ShardPoolStats",
    "ShardTask",
    "ShardResult",
    "WarmSpec",
    "ShardError",
    "ShardAborted",
    "ShardIsolationError",
    "execute_inline",
]
