"""Serve requests, the recording catalog, and the planning oracle.

The engine serves *replay* traffic: each request names a tenant, a
workload (resolved to a warmed recording digest), a link class, and a
deterministic input seed.  :class:`ServeCatalog` owns the record-once
step — one signed recording per workload, produced by the real
:class:`~repro.core.recorder.RecordSession` — and the per-tenant warm
specs derived from it (each tenant warms its own shard entry even for
bit-identical recordings, §7.1).

:class:`PlanningOracle` is the simulated scheduler retained as a
planning layer: it runs the same request set through the PR 1
discrete-event kernel (:mod:`repro.fleet.scheduler`) with ``n_workers``
server slots and the calibrated per-digest service time, producing a
*predicted* latency per request.  The engine then reports predicted vs
measured per link — the planning error is itself a serving metric.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.recorder import RecorderConfig, RecordSession, OURS_MDS
from repro.fleet.scheduler import Event, Scheduler, Timeout
from repro.serve.shards import ShardTask, WarmSpec

DEFAULT_LINKS = ("wifi", "cellular")


@dataclass(frozen=True)
class ServeRequest:
    """One replay request offered to the serving engine."""

    request_id: str
    tenant_id: str
    workload: str
    link_name: str = "wifi"
    input_seed: int = 0
    runs: int = 1
    #: Wall-clock offset from engine start at which the request arrives
    #: (0.0 everywhere = a closed burst).
    arrival_offset_s: float = 0.0


@dataclass
class ServeResult:
    """The engine's answer for one request (rejections included)."""

    request_id: str
    tenant_id: str
    workload: str
    link_name: str
    ok: bool
    status: str = "completed"      # completed | rejected | aborted
    output_sha256: str = ""
    output_class: int = -1
    delay_s: float = 0.0           # virtual replay delay (oracle side)
    wall_service_s: float = 0.0    # shard execution wall time
    latency_s: float = 0.0         # submit -> result, queueing included
    queue_wait_s: float = 0.0
    predicted_s: float = 0.0       # oracle latency for this request
    worker_pid: int = 0
    batch_size: int = 0
    attempts: int = 0
    error: str = ""


# ----------------------------------------------------------------------
# Workload generation (seeded, deterministic)
# ----------------------------------------------------------------------
def make_burst(workloads: List[str], requests: int, tenants: int = 2,
               seed: int = 0, arrival_rate_hz: float = 0.0,
               links: Tuple[str, ...] = DEFAULT_LINKS,
               runs: int = 1) -> List[ServeRequest]:
    """A reproducible request burst: tenants round-robin, workloads and
    links drawn from a seeded RNG, Poisson arrival offsets when
    ``arrival_rate_hz`` > 0 (else a closed burst at t=0)."""
    if requests < 0:
        raise ValueError("requests must be >= 0")
    if tenants < 1:
        raise ValueError("need at least one tenant")
    rng = random.Random(seed)
    offset = 0.0
    out: List[ServeRequest] = []
    for i in range(requests):
        if arrival_rate_hz > 0:
            offset += rng.expovariate(arrival_rate_hz)
        out.append(ServeRequest(
            request_id=f"req-{i:04d}",
            tenant_id=f"tenant-{i % tenants}",
            workload=rng.choice(workloads),
            link_name=rng.choice(list(links)),
            input_seed=seed * 10007 + i,
            runs=runs,
            arrival_offset_s=offset if arrival_rate_hz > 0 else 0.0))
    return out


# ----------------------------------------------------------------------
# Recording catalog: record once, warm per tenant
# ----------------------------------------------------------------------
class ServeCatalog:
    """Record-once store feeding the shard pool's warm phase.

    A recording is input-independent, so one dry run per workload feeds
    every tenant's traffic; the *warm specs* stay per-tenant because the
    shard cache (like the fleet registry) never shares derived state
    across tenants.

    ``store_path`` rides into every warm spec: when set, workers warm
    through a shared on-disk artifact store at that path (compile once,
    open everywhere — including across pool restarts).
    """

    def __init__(self, recorder: Optional[RecorderConfig] = None,
                 seed: int = 0, weight_seed: int = 0,
                 store_path: str = "") -> None:
        self.recorder = recorder or OURS_MDS
        self.seed = seed
        self.weight_seed = weight_seed
        self.store_path = store_path
        self._recordings: Dict[str, Tuple[bytes, str]] = {}
        self._digests: Dict[str, str] = {}

    def record(self, workload: str) -> str:
        """Record ``workload`` (idempotent); returns the content digest."""
        if workload not in self._recordings:
            session = RecordSession(workload, config=self.recorder,
                                    seed=self.seed)
            result = session.run()
            blob = result.recording.to_bytes()
            key_hex = session.service.recording_key.secret.hex()
            self._recordings[workload] = (blob, key_hex)
            self._digests[workload] = WarmSpec(
                tenant_id="", workload=workload, recording_blob=blob,
                key_secret_hex=key_hex).digest()
        return self._digests[workload]

    def digest_for(self, workload: str) -> str:
        return self.record(workload)

    def warm_spec(self, tenant_id: str, workload: str) -> WarmSpec:
        self.record(workload)
        blob, key_hex = self._recordings[workload]
        return WarmSpec(tenant_id=tenant_id, workload=workload,
                        recording_blob=blob, key_secret_hex=key_hex,
                        weight_seed=self.weight_seed,
                        store_path=self.store_path)

    def warm_specs(self, requests: List[ServeRequest]) -> List[WarmSpec]:
        """One spec per distinct (tenant, workload) in ``requests``."""
        pairs = sorted({(r.tenant_id, r.workload) for r in requests})
        return [self.warm_spec(tenant, workload)
                for tenant, workload in pairs]

    def task_for(self, request: ServeRequest) -> ShardTask:
        return ShardTask(task_id=request.request_id,
                         tenant_id=request.tenant_id,
                         digest=self.digest_for(request.workload),
                         input_seed=request.input_seed,
                         runs=request.runs)


# ----------------------------------------------------------------------
# Planning oracle: the discrete-event scheduler predicts latency
# ----------------------------------------------------------------------
class _SlotPool:
    """FIFO admission over N server slots — the VmPool's admission core
    with the VM lifecycle stripped (shards are long-lived, not
    single-use)."""

    def __init__(self, scheduler: Scheduler, slots: int) -> None:
        self.scheduler = scheduler
        self.slots = slots
        self.busy = 0
        self.queue: List[Event] = []

    def acquire(self) -> Event:
        ev = self.scheduler.event()
        if self.busy < self.slots:
            self.busy += 1
            ev.succeed(None)
        else:
            self.queue.append(ev)
        return ev

    def release(self) -> None:
        if self.queue:
            self.queue.pop(0).succeed(None)
        else:
            self.busy -= 1


@dataclass
class PredictedTiming:
    """What the oracle expects one request to experience."""

    queue_wait_s: float
    service_s: float

    @property
    def latency_s(self) -> float:
        return self.queue_wait_s + self.service_s


class PlanningOracle:
    """Discrete-event plan of a request set across ``n_workers`` shards.

    ``service_s_for`` maps (tenant, digest) to the calibrated
    steady-state replay wall time (measured once per warm, see
    :meth:`repro.serve.shards.ShardPool.warm`); requests multiply it by
    their ``runs``.  The simulation yields per-request queueing + service
    predictions that the metrics rollup compares against measurement.
    """

    def __init__(self, n_workers: int,
                 service_s_for: Dict[Tuple[str, str], float],
                 default_service_s: float = 0.05) -> None:
        self.n_workers = max(1, n_workers)
        self.service_s_for = dict(service_s_for)
        self.default_service_s = default_service_s

    def plan(self, requests: List[ServeRequest],
             catalog: ServeCatalog) -> Dict[str, PredictedTiming]:
        scheduler = Scheduler()
        slots = _SlotPool(scheduler, self.n_workers)
        predictions: Dict[str, PredictedTiming] = {}

        def session(request: ServeRequest, service_s: float):
            arrived = scheduler.clock.now
            grant = slots.acquire()
            yield grant
            wait = scheduler.clock.now - arrived
            yield Timeout(service_s, label="serve")
            slots.release()
            predictions[request.request_id] = PredictedTiming(
                queue_wait_s=wait, service_s=service_s)

        for request in requests:
            key = (request.tenant_id, catalog.digest_for(request.workload))
            service = (self.service_s_for.get(key, self.default_service_s)
                       * max(1, request.runs))
            scheduler.spawn(session(request, service),
                            at=request.arrival_offset_s,
                            name=request.request_id)
        scheduler.run()
        return predictions
