"""Shared AST infrastructure for the static rules.

Loads each module once into a :class:`ModuleInfo` (parsed tree, source
lines, suppression pragmas, class hierarchy hints) that every rule then
consumes.  Suppressions are comment pragmas::

    # repro-check: allow[sym-force] -- reason the site is sound
    # repro-check: module-allow[bus-confinement] -- reason

``allow`` applies to findings on its own line or the line directly
below (so a long statement can carry the pragma on the preceding
line); ``module-allow`` applies to the whole file.  A pragma without a
``-- reason`` is itself reported (``bad-suppression``): the analyzer
accepts escape hatches but not silent ones.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

_PRAGMA_RE = re.compile(
    r"#\s*repro-check:\s*(?P<kind>module-allow|allow)"
    r"\[(?P<rules>[a-z0-9_,\- ]+)\]"
    r"\s*(?:--\s*(?P<reason>\S.*))?"
)
# A comment that starts like a pragma but fails the full grammar above is
# reported, not silently ignored.
_PRAGMA_PREFIX_RE = re.compile(r"#\s*repro-check:")

#: classes allowed to touch raw device registers: they *are* the bus.
BUS_CLASS_NAMES = ("RegisterBus",)


@dataclass
class Suppression:
    rule: str
    reason: str
    line: int  # 0 for module-level


@dataclass
class ModuleInfo:
    """One parsed source module plus rule-relevant metadata."""

    path: str  # absolute
    relpath: str  # repo-relative, forward slashes
    package: str  # e.g. "driver", "core", "" for corpus files
    source: str
    tree: ast.Module
    line_suppressions: Dict[int, List[Suppression]] = field(default_factory=dict)
    module_suppressions: List[Suppression] = field(default_factory=list)
    bad_pragmas: List[int] = field(default_factory=list)  # lines lacking a reason
    #: class name -> base-name strings, for bus-subclass exemption
    class_bases: Dict[str, List[str]] = field(default_factory=dict)
    #: module-level integer constants (NAME = <int literal>)
    int_consts: Dict[str, int] = field(default_factory=dict)

    def suppression_for(self, rule: str, line: int) -> Optional[Suppression]:
        for sup in self.module_suppressions:
            if sup.rule == rule:
                return sup
        # pragma on the finding's line, or on the line directly above it
        for candidate in (line, line - 1):
            for sup in self.line_suppressions.get(candidate, []):
                if sup.rule == rule:
                    return sup
        return None

    def class_is_bus(self, class_name: str) -> bool:
        """True if *class_name* (transitively, within this module) derives
        from the RegisterBus interface — such classes implement MMIO and
        are exempt from bus-confinement and poll-loop discovery."""
        seen = set()
        stack = [class_name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if name in BUS_CLASS_NAMES:
                return True
            for base in self.class_bases.get(name, []):
                stack.append(base)
        return False


def parse_module(path: str, relpath: str, package: str) -> ModuleInfo:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=relpath)
    info = ModuleInfo(
        path=path, relpath=relpath, package=package, source=source, tree=tree
    )
    _collect_pragmas(info)
    _collect_classes(info)
    _collect_consts(info)
    return info


def _collect_pragmas(info: ModuleInfo) -> None:
    for lineno, text in enumerate(info.source.splitlines(), start=1):
        m = _PRAGMA_RE.search(text)
        if m is None:
            if _PRAGMA_PREFIX_RE.search(text):
                info.bad_pragmas.append(lineno)
            continue
        reason = (m.group("reason") or "").strip()
        rules = [r.strip() for r in m.group("rules").split(",") if r.strip()]
        if not reason:
            info.bad_pragmas.append(lineno)
            continue
        for rule in rules:
            sup = Suppression(rule=rule, reason=reason, line=lineno)
            if m.group("kind") == "module-allow":
                info.module_suppressions.append(sup)
            else:
                info.line_suppressions.setdefault(lineno, []).append(sup)


def _collect_classes(info: ModuleInfo) -> None:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.ClassDef):
            bases = []
            for base in node.bases:
                chain = attr_chain(base)
                if chain:
                    bases.append(chain.split(".")[-1])
            info.class_bases[node.name] = bases


def _collect_consts(info: ModuleInfo) -> None:
    for node in info.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                value = literal_int(node.value)
                if value is not None:
                    info.int_consts[target.id] = value


# ---------------------------------------------------------------------------
# AST helpers


def attr_chain(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains as a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if isinstance(node, ast.Call):
        inner = attr_chain(node.func)
        if inner is not None:
            parts.append(inner + "()")
            return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str:
    """Last component of the called function's name (``bus.read32`` -> ``read32``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def literal_int(node: ast.AST, consts: Optional[Dict[str, int]] = None):
    """Evaluate *node* to an int when it is a literal/const-name/simple
    arithmetic over those; otherwise None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name) and consts is not None:
        return consts.get(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = literal_int(node.operand, consts)
        return None if inner is None else -inner
    if isinstance(node, ast.BinOp):
        left = literal_int(node.left, consts)
        right = literal_int(node.right, consts)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.LShift):
                return left << right
            if isinstance(node.op, ast.BitOr):
                return left | right
        except (ValueError, OverflowError):
            return None
    return None


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Optional[ast.ClassDef]]]:
    """Yield every (function, enclosing class) pair, including methods of
    nested classes; module-level statements are not yielded."""

    def visit(node: ast.AST, cls: Optional[ast.ClassDef]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                # nested defs keep the same enclosing class for exemptions
                for item in visit(child, cls):
                    yield item
            elif isinstance(child, ast.ClassDef):
                for item in visit(child, child):
                    yield item

    return visit(tree, None)


def qualname(func: Optional[ast.AST], cls: Optional[ast.ClassDef]) -> str:
    parts: List[str] = []
    if cls is not None:
        parts.append(cls.name)
    if func is not None:
        parts.append(func.name)  # type: ignore[attr-defined]
    return ".".join(parts)


def names_in(node: ast.AST) -> List[str]:
    return [n.id for n in ast.walk(node) if isinstance(n, ast.Name)]


def source_segment(info: ModuleInfo, node: ast.AST) -> str:
    try:
        segment = ast.get_source_segment(info.source, node)
    except Exception:
        segment = None
    if segment is None:
        return "<expr>"
    return " ".join(segment.split())
