"""Shared AST infrastructure for the static rules.

Loads each module once into a :class:`ModuleInfo` (parsed tree, source
lines, suppression pragmas, class hierarchy hints) that every rule then
consumes.  Suppressions are comment pragmas::

    # repro-check: allow[sym-force] -- reason the site is sound
    # repro-check: module-allow[bus-confinement] -- reason

``allow`` applies to findings on its own line or the line directly
below (so a long statement can carry the pragma on the preceding
line); ``module-allow`` applies to the whole file.  A pragma without a
``-- reason`` is itself reported (``bad-suppression``): the analyzer
accepts escape hatches but not silent ones.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

_PRAGMA_RE = re.compile(
    r"#\s*repro-check:\s*(?P<kind>module-allow|allow)"
    r"\[(?P<rules>[a-z0-9_,\- ]+)\]"
    r"\s*(?:--\s*(?P<reason>\S.*))?"
)
# A comment that starts like a pragma but fails the full grammar above is
# reported, not silently ignored.
_PRAGMA_PREFIX_RE = re.compile(r"#\s*repro-check:")

#: classes allowed to touch raw device registers: they *are* the bus.
BUS_CLASS_NAMES = ("RegisterBus",)


@dataclass
class Suppression:
    rule: str
    reason: str
    line: int  # 0 for module-level


@dataclass
class ModuleInfo:
    """One parsed source module plus rule-relevant metadata."""

    path: str  # absolute
    relpath: str  # repo-relative, forward slashes
    package: str  # e.g. "driver", "core", "" for corpus files
    source: str
    tree: ast.Module
    line_suppressions: Dict[int, List[Suppression]] = field(default_factory=dict)
    module_suppressions: List[Suppression] = field(default_factory=list)
    bad_pragmas: List[int] = field(default_factory=list)  # lines lacking a reason
    #: class name -> base-name strings, for bus-subclass exemption
    class_bases: Dict[str, List[str]] = field(default_factory=dict)
    #: module-level integer constants (NAME = <int literal>)
    int_consts: Dict[str, int] = field(default_factory=dict)

    def suppression_for(self, rule: str, line: int) -> Optional[Suppression]:
        for sup in self.module_suppressions:
            if sup.rule == rule:
                return sup
        # pragma on the finding's line, or on the line directly above it
        for candidate in (line, line - 1):
            for sup in self.line_suppressions.get(candidate, []):
                if sup.rule == rule:
                    return sup
        return None

    def class_is_bus(self, class_name: str) -> bool:
        """True if *class_name* (transitively, within this module) derives
        from the RegisterBus interface — such classes implement MMIO and
        are exempt from bus-confinement and poll-loop discovery."""
        seen = set()
        stack = [class_name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if name in BUS_CLASS_NAMES:
                return True
            for base in self.class_bases.get(name, []):
                stack.append(base)
        return False


def parse_module(path: str, relpath: str, package: str) -> ModuleInfo:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=relpath)
    info = ModuleInfo(
        path=path, relpath=relpath, package=package, source=source, tree=tree
    )
    _collect_pragmas(info)
    _collect_classes(info)
    _collect_consts(info)
    return info


def _collect_pragmas(info: ModuleInfo) -> None:
    for lineno, text in enumerate(info.source.splitlines(), start=1):
        m = _PRAGMA_RE.search(text)
        if m is None:
            if _PRAGMA_PREFIX_RE.search(text):
                info.bad_pragmas.append(lineno)
            continue
        reason = (m.group("reason") or "").strip()
        rules = [r.strip() for r in m.group("rules").split(",") if r.strip()]
        if not reason:
            info.bad_pragmas.append(lineno)
            continue
        for rule in rules:
            sup = Suppression(rule=rule, reason=reason, line=lineno)
            if m.group("kind") == "module-allow":
                info.module_suppressions.append(sup)
            else:
                info.line_suppressions.setdefault(lineno, []).append(sup)


def _collect_classes(info: ModuleInfo) -> None:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.ClassDef):
            bases = []
            for base in node.bases:
                chain = attr_chain(base)
                if chain:
                    bases.append(chain.split(".")[-1])
            info.class_bases[node.name] = bases


def _collect_consts(info: ModuleInfo) -> None:
    for node in info.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                value = literal_int(node.value)
                if value is not None:
                    info.int_consts[target.id] = value


# ---------------------------------------------------------------------------
# AST helpers


def attr_chain(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains as a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if isinstance(node, ast.Call):
        inner = attr_chain(node.func)
        if inner is not None:
            parts.append(inner + "()")
            return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str:
    """Last component of the called function's name (``bus.read32`` -> ``read32``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def literal_int(node: ast.AST, consts: Optional[Dict[str, int]] = None):
    """Evaluate *node* to an int when it is a literal/const-name/simple
    arithmetic over those; otherwise None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name) and consts is not None:
        return consts.get(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = literal_int(node.operand, consts)
        return None if inner is None else -inner
    if isinstance(node, ast.BinOp):
        left = literal_int(node.left, consts)
        right = literal_int(node.right, consts)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.LShift):
                return left << right
            if isinstance(node.op, ast.BitOr):
                return left | right
        except (ValueError, OverflowError):
            return None
    return None


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Optional[ast.ClassDef]]]:
    """Yield every (function, enclosing class) pair, including methods of
    nested classes; module-level statements are not yielded."""

    def visit(node: ast.AST, cls: Optional[ast.ClassDef]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                # nested defs keep the same enclosing class for exemptions
                for item in visit(child, cls):
                    yield item
            elif isinstance(child, ast.ClassDef):
                for item in visit(child, child):
                    yield item

    return visit(tree, None)


def qualname(func: Optional[ast.AST], cls: Optional[ast.ClassDef]) -> str:
    parts: List[str] = []
    if cls is not None:
        parts.append(cls.name)
    if func is not None:
        parts.append(func.name)  # type: ignore[attr-defined]
    return ".".join(parts)


def names_in(node: ast.AST) -> List[str]:
    return [n.id for n in ast.walk(node) if isinstance(n, ast.Name)]


# ---------------------------------------------------------------------------
# Concurrency helpers: lock-scope CFG walk + thread-entry escape analysis
#
# The concurrency rules need two structural facts the other rules don't:
# (1) which statements execute while which locks are held (a lexical
# scope walk over ``with``-statements — precise enough because every
# sanctioned lock in this codebase is scope-held), and (2) which methods
# of a class run on which thread — the *escape* analysis: a method
# passed as a ``threading.Thread`` target escapes the caller's thread,
# and everything it calls through ``self`` escapes with it.


def lockish(name: str) -> bool:
    """True when an attribute/variable name denotes a mutual-exclusion
    lock.  Matches the repo's naming convention (``_lock``, ``hwaccess_
    lock``, ``mutex``); semaphores and asyncio primitives are *not*
    locks for ordering purposes."""
    tail = name.split(".")[-1].lower()
    return "lock" in tail or "mutex" in tail or tail == "mu" or tail.endswith("_mu")


def with_lock_names(stmt: ast.AST) -> List[str]:
    """Lock names acquired by a ``with``/``async with``, in item order."""
    if not isinstance(stmt, (ast.With, ast.AsyncWith)):
        return []
    names: List[str] = []
    for item in stmt.items:
        chain = attr_chain(item.context_expr)
        if chain is not None and lockish(chain):
            names.append(chain)
    return names


class LockScopeWalker:
    """Walk one function body tracking the lexically-held lock set.

    Yields ``(node, held)`` for every statement and expression node,
    where ``held`` is the tuple of lock names (outermost first) whose
    ``with`` scope encloses the node.  Nested function/class definitions
    are not entered — they execute later, on whatever thread calls them.
    Additionally records every nested acquisition as an *order edge*
    ``(outer, inner, node)`` for the lock-order graph.
    """

    def __init__(self) -> None:
        self.order_edges: List[Tuple[str, str, ast.AST]] = []

    def walk(self, func: ast.AST) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
        return self._visit_body(getattr(func, "body", []), ())

    def _visit_body(self, body, held: Tuple[str, ...]):
        for stmt in body:
            for item in self._visit_stmt(stmt, held):
                yield item

    def _visit_stmt(self, stmt: ast.AST, held: Tuple[str, ...]):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # deferred execution: not part of this scope
        yield stmt, held
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            locks = with_lock_names(stmt)
            inner = held
            for lock in locks:
                for outer in inner:
                    if outer != lock:  # re-entry of an RLock is not an edge
                        self.order_edges.append((outer, lock, stmt))
                inner = inner + (lock,)
            for item in stmt.items:
                for sub in ast.walk(item.context_expr):
                    yield sub, held
            for item in self._visit_body(stmt.body, inner):
                yield item
            return
        # Compound statements: recurse into bodies with the same held
        # set; expression children are yielded flat.
        for field_name, value in ast.iter_fields(stmt):
            if isinstance(value, list) and value and isinstance(value[0], ast.AST):
                if all(isinstance(v, ast.stmt) for v in value):
                    for item in self._visit_body(value, held):
                        yield item
                else:
                    for v in value:
                        for sub in ast.walk(v):
                            yield sub, held
            elif isinstance(value, ast.AST):
                for sub in ast.walk(value):
                    yield sub, held


#: methods whose call mutates the receiver in place
MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "discard", "add", "clear",
    "update", "setdefault", "pop", "popitem", "popleft", "appendleft",
}

#: identity tag for code reachable from the object's public surface —
#: the caller's thread.  asyncio callbacks run here too: tasks on one
#: event loop are mutually exclusive outside ``await`` points, so the
#: loop is a single identity for data-race purposes.
CALLER_THREAD = "caller"


@dataclass
class ThreadEntry:
    """One place a class hands a callable to another thread of control."""

    kind: str  # "thread" | "process" | "task"
    method: str  # method name, or "" when the target is not self.<m>
    node: ast.AST


@dataclass
class AttrAccess:
    """One ``self.<attr>`` touch inside a method."""

    attr: str
    write: bool
    line: int
    locked: bool
    method: str
    identities: frozenset = frozenset()


class ClassConcurrencyModel:
    """Escape analysis for one class: which methods run on which thread,
    which ``self`` attributes they touch, and under which locks.

    Thread identities are ``caller`` (public methods, dunders, asyncio
    callbacks) plus one ``thread:<target>`` per ``threading.Thread``
    target method.  ``multiprocessing`` targets are recorded as entries
    (for the unjoined-thread rule) but contribute **no** shared-memory
    identity: spawn children share nothing, so cross-process accesses
    are out of scope by construction (documented in DESIGN.md).
    """

    THREAD_CTORS = ("Thread",)
    PROCESS_CTORS = ("Process",)
    TASK_FNS = ("create_task", "ensure_future", "call_soon",
                "call_soon_threadsafe", "call_later", "run_in_executor")

    def __init__(self, cls: ast.ClassDef) -> None:
        self.cls = cls
        self.methods: Dict[str, ast.AST] = {}
        for node in cls.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[node.name] = node
        self.entries: List[ThreadEntry] = []
        self._find_entries()
        self.identities = self._propagate_identities()
        self.accesses = self._collect_accesses()

    # -- entry discovery ---------------------------------------------------
    def _find_entries(self) -> None:
        for method in self.methods.values():
            for node in ast.walk(method):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name in self.THREAD_CTORS + self.PROCESS_CTORS:
                    kind = "thread" if name in self.THREAD_CTORS else "process"
                    self.entries.append(
                        ThreadEntry(kind, self._target_method(node), node))
                elif name in self.TASK_FNS:
                    target = ""
                    for arg in node.args:
                        target = self._self_method(arg) or target
                    if target:
                        self.entries.append(ThreadEntry("task", target, node))

    def _target_method(self, call: ast.Call) -> str:
        for kw in call.keywords:
            if kw.arg == "target":
                return self._self_method(kw.value) or ""
        return ""

    def _self_method(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call):
            node = node.func
        chain = attr_chain(node)
        if chain and chain.startswith("self.") and chain.count(".") == 1:
            name = chain.split(".", 1)[1]
            if name in self.methods:
                return name
        return None

    # -- identity propagation ----------------------------------------------
    def _propagate_identities(self) -> Dict[str, Set[str]]:
        identities: Dict[str, Set[str]] = {m: set() for m in self.methods}
        for name in self.methods:
            if name == "__init__":
                continue  # runs before any thread exists
            if not name.startswith("_") or (
                name.startswith("__") and name.endswith("__")):
                identities[name].add(CALLER_THREAD)
        for entry in self.entries:
            if entry.method and entry.kind == "thread":
                identities[entry.method].add("thread:" + entry.method)
            elif entry.method and entry.kind == "task":
                identities[entry.method].add(CALLER_THREAD)
        # flow identities along self.<m>() call edges to a fixpoint
        calls: Dict[str, Set[str]] = {}
        for name, method in self.methods.items():
            callees = set()
            for node in ast.walk(method):
                if isinstance(node, ast.Call):
                    callee = self._self_method(node.func)
                    if callee:
                        callees.add(callee)
            calls[name] = callees
        changed = True
        while changed:
            changed = False
            for name, callees in calls.items():
                for callee in callees:
                    if callee == "__init__":
                        continue
                    before = len(identities[callee])
                    identities[callee] |= identities[name]
                    changed = changed or len(identities[callee]) != before
        return identities

    # -- attribute access collection ----------------------------------------
    def _collect_accesses(self) -> List[AttrAccess]:
        accesses: List[AttrAccess] = []
        for name, method in self.methods.items():
            if name == "__init__":
                continue  # initialization happens-before every thread start
            idents = frozenset(self.identities[name])
            if not idents:
                continue  # unreachable private helper
            walker = LockScopeWalker()
            parents: Dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(method):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            seen: Set[Tuple[str, int, bool]] = set()
            for node, held in walker.walk(method):
                # expression nodes are yielded individually with the
                # correct held set; compound statements are containers
                # whose children arrive on their own, so classify only
                # the node itself.
                access = self._classify(node, parents)
                if access is None:
                    continue
                attr, write, line = access
                key = (attr, line, write)
                if key in seen:
                    continue
                seen.add(key)
                accesses.append(AttrAccess(
                    attr=attr, write=write, line=line,
                    locked=bool(held), method=name, identities=idents))
        return accesses

    def _classify(self, node: ast.AST, parents) -> Optional[Tuple[str, bool, int]]:
        """(attr, is_write, line) when *node* is a ``self.<attr>`` touch."""
        if not (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return None
        attr, line = node.attr, node.lineno
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            return attr, True, line
        # climb value chains: self.stats.tasks_done += 1 writes "stats";
        # self._waits[k] = v writes "_waits"; self._workers.append(...)
        # mutates "_workers".
        top: ast.AST = node
        while True:
            parent = parents.get(top)
            if isinstance(parent, (ast.Attribute, ast.Subscript)) and (
                    parent.value is top):
                top = parent
                continue
            break
        if isinstance(top, (ast.Attribute, ast.Subscript)) and isinstance(
                top.ctx, (ast.Store, ast.Del)):
            return attr, True, line
        parent = parents.get(top)
        if (isinstance(parent, ast.Attribute)
                and parent.attr in MUTATOR_METHODS
                and isinstance(parents.get(parent), ast.Call)
                and parents[parent].func is parent):
            return attr, True, line
        return attr, False, line

    # -- the shared-state verdict -------------------------------------------
    def shared_attrs(self) -> Dict[str, Set[str]]:
        """Attrs accessed from >= 2 thread identities with >= 1 write
        outside ``__init__`` — the race-prone inventory."""
        by_attr: Dict[str, Set[str]] = {}
        written: Set[str] = set()
        for access in self.accesses:
            by_attr.setdefault(access.attr, set()).update(access.identities)
            if access.write:
                written.add(access.attr)
        return {attr: idents for attr, idents in by_attr.items()
                if len(idents) >= 2 and attr in written}


def source_segment(info: ModuleInfo, node: ast.AST) -> str:
    try:
        segment = ast.get_source_segment(info.source, node)
    except Exception:
        segment = None
    if segment is None:
        return "<expr>"
    return " ".join(segment.split())
