"""repro.check — static driver-conformance analysis + runtime sanitizer.

GR-T's prototype leans on static analysis twice: a Clang AST plugin
instruments every driver register access (§4.1), and DriverShim
*statically discovers* simple polling loops eligible for offload (§4.3).
This package is the reproduction's analogue, in two halves:

* The **static analyzer** (``python -m repro check``) walks the Python
  AST of ``repro.driver``, ``repro.core``, ``repro.runtime`` and
  ``repro.fleet`` and enforces the interposition-boundary contract the
  rest of the system silently assumes:

  - ``bus-confinement`` — every MMIO access flows through the
    :class:`~repro.driver.bus.RegisterBus` interface (§4.1);
  - ``poll-undeclared`` / ``poll-spec`` — §4.3 polling-loop discovery:
    busy-wait loops that meet the paper's offloadability criteria must
    be declared as :class:`~repro.driver.bus.PollSpec`, and every
    declared spec must be well-formed and actually executed;
  - ``sym-force`` — no :class:`~repro.core.symbolic.SymVal` is forced
    concrete outside the sanctioned commit triggers (§4.1/§4.2);
  - ``release-consistency`` — commits must precede ``unlock()``; lock
    use must be structured so that holds (§4.1);
  - ``determinism`` — no wall clock, no unseeded randomness anywhere
    in ``repro`` (§2.3);
  - the **concurrency rules** (``--concurrency``) — lock discipline
    over thread-shared state: ``conc-unlocked-shared``,
    ``conc-lock-order``, ``conc-await-holding-lock``,
    ``conc-unjoined-thread`` (see :mod:`repro.check.rules_conc`).

* The **runtime sanitizer** (:class:`~repro.check.specsan.SpecSan`)
  taint-tracks speculative state through a live record run and asserts
  §4.2's no-externalization-before-validation, §4.1's release
  consistency, and §5's meta-only traffic;
  :class:`~repro.check.specsan.FleetSpecSan` does the same for fleet
  tenant isolation (§7.1); :class:`~repro.check.racesan.RaceSan` is the
  concurrency counterpart — a vector-clock happens-before and lock-order
  sanitizer the serve layer opts into (``repro serve --racesan``).

Suppressions are inline and must carry a justification::

    # repro-check: allow[sym-force] -- why this site is sound

An ``allow`` without a reason is itself a finding.
"""

from repro.check.findings import CheckReport, Finding, PollSite, RULES
from repro.check.racesan import RaceSan, RaceSanViolation
from repro.check.runner import main, run_check
from repro.check.specsan import FleetSpecSan, SpecSan, SpecSanViolation

__all__ = [
    "CheckReport",
    "Finding",
    "FleetSpecSan",
    "PollSite",
    "RULES",
    "RaceSan",
    "RaceSanViolation",
    "SpecSan",
    "SpecSanViolation",
    "main",
    "run_check",
]
