"""Interposition-boundary rules: bus confinement and release consistency.

**bus-confinement (§4.1).**  GR-T's Clang pass rewrites every driver
register access into a DriverShim call; the reproduction's equivalent
contract is that driver/core/runtime/fleet code performs MMIO *only*
through the :class:`~repro.driver.bus.RegisterBus` interface
(``read32``/``write32``/``poll``).  Calling the device model's
``read_reg``/``write_reg`` directly, or indexing a raw register file
(``gpu.regs[...]``), bypasses deferral, speculation and recording —
the access would be invisible to the register log.  Classes that
*implement* the bus (``RegisterBus`` subclasses such as ``LocalBus``
and ``DriverShim``) are exempt: they are the boundary.

**release-consistency (§4.1).**  DriverShim flushes the deferred-write
queue from the ``on_unlock`` hook, which ``Mutex.unlock`` fires
*before* releasing the lock.  That guarantee only holds when lock use
is structured (``with mutex:``): a manual ``.lock()``/``.unlock()``
pair can leak the lock — and leave deferred accesses pending — on any
exception raised between the two calls, so bare pairs are flagged.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.check.astpass import ModuleInfo, attr_chain, iter_functions, qualname
from repro.check.findings import Finding

RAW_ACCESS_METHODS = ("read_reg", "write_reg")
LOCK_METHODS = ("lock", "unlock")


def _enclosing(info: ModuleInfo, node: ast.AST):
    """(function, class, qualname) of the innermost def containing *node*."""
    target_line = getattr(node, "lineno", 0)
    best = (None, None)
    best_span = None
    for func, cls in iter_functions(info.tree):
        start = func.lineno
        end = max(
            (getattr(n, "lineno", start) for n in ast.walk(func)), default=start
        )
        if start <= target_line <= end:
            span = end - start
            if best_span is None or span <= best_span:
                best = (func, cls)
                best_span = span
    return best[0], best[1], qualname(best[0], best[1])


def _emit(
    info: ModuleInfo,
    rule: str,
    node: ast.AST,
    message: str,
    symbol: str,
) -> Finding:
    line = getattr(node, "lineno", 0)
    finding = Finding(
        rule=rule, path=info.relpath, line=line, message=message, symbol=symbol
    )
    sup = info.suppression_for(rule, line)
    if sup is not None:
        finding.suppressed = True
        finding.suppress_reason = sup.reason
    return finding


def check_bus_confinement(info: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(info.tree):
        target: Optional[ast.AST] = None
        message = ""
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in RAW_ACCESS_METHODS:
                chain = attr_chain(node.func) or node.func.attr
                message = (
                    "raw device access '{}()' bypasses the RegisterBus "
                    "interface; route MMIO through bus.read32/write32 so the "
                    "shim can defer, speculate and record it (§4.1)".format(chain)
                )
                target = node
        elif isinstance(node, ast.Subscript):
            value = node.value
            if isinstance(value, ast.Attribute) and value.attr == "regs":
                chain = attr_chain(value) or "?.regs"
                message = (
                    "direct register-file poke '{}[...]' bypasses the "
                    "RegisterBus interface (§4.1)".format(chain)
                )
                target = node
        if target is None:
            continue
        func, cls, symbol = _enclosing(info, target)
        if cls is not None and info.class_is_bus(cls.name):
            continue  # RegisterBus implementations are the boundary itself
        findings.append(
            _emit(info, "bus-confinement", target, message, symbol)
        )
    return findings


def check_release_consistency(info: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(info.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in LOCK_METHODS or node.args or node.keywords:
            continue
        chain = attr_chain(node.func) or node.func.attr
        receiver = chain.rsplit(".", 1)[0] if "." in chain else ""
        # Only flag receivers that look like locks; `registry.lock()` on an
        # unrelated API would otherwise false-positive.
        if not _lockish(receiver):
            continue
        func, cls, symbol = _enclosing(info, node)
        if cls is not None and cls.name in ("Mutex", "SpinLock"):
            continue  # the lock primitives themselves
        message = (
            "bare '{}()' call: manual lock/unlock pairs can release — or "
            "leak — the lock with deferred accesses still pending on an "
            "exception path; use 'with {}:' so on_unlock always flushes "
            "commits first (§4.1)".format(chain, receiver or "lock")
        )
        findings.append(_emit(info, "release-consistency", node, message, symbol))
    return findings


def _lockish(receiver: str) -> bool:
    tail = receiver.split(".")[-1].lower() if receiver else ""
    return (
        "lock" in tail
        or "mutex" in tail
        or tail.endswith("_mu")
        or tail in ("hwaccess", "jsctx")
    )
