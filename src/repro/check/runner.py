"""Analyzer driver: module discovery, rule dispatch, baseline, CLI entry.

Scope mirrors the paper's instrumentation boundary:

* ``driver``/``core``/``runtime``/``fleet`` get the interposition rules
  (bus-confinement, release-consistency, sym-force);
* ``driver`` additionally gets the §4.3 poll rules — polling loops live
  below the runtime and above the bus;
* **every** module under ``src/repro`` (including this package) gets
  the determinism rule;
* explicitly-passed paths (the lint corpus, ad-hoc files) get all
  rules.

Suppressed findings are reported but never fail the run; ``bad
suppressions`` (no justification) always do.  A committed baseline file
(fingerprint list) accepts known findings without editing source.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.check.astpass import ModuleInfo, parse_module
from repro.check.findings import (
    CheckReport,
    Finding,
    load_baseline,
    write_baseline,
)
from repro.check.rules_bus import check_bus_confinement, check_release_consistency
from repro.check.rules_conc import LockOrderGraph, check_concurrency
from repro.check.rules_flow import (
    check_determinism,
    check_env_read,
    check_sym_force,
)
from repro.check.rules_poll import check_poll

#: packages under src/repro that get the interposition-boundary rules
CONFORMANCE_PACKAGES = ("driver", "core", "runtime", "fleet")
#: packages that get §4.3 poll-loop discovery
POLL_PACKAGES = ("driver",)
#: packages where reading os.environ outside core/config.py is flagged
ENV_PACKAGES = ("core",)
DEFAULT_BASELINE = "check_baseline.json"


def _package_root() -> str:
    """Absolute path of the installed ``repro`` package."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _repo_root() -> str:
    """Best-effort repository root (two levels above the package)."""
    return os.path.dirname(os.path.dirname(_package_root()))


def _relpath(path: str) -> str:
    path = os.path.abspath(path)
    root = _repo_root()
    if path.startswith(root + os.sep):
        rel = os.path.relpath(path, root)
    else:
        rel = path
    return rel.replace(os.sep, "/")


def _discover() -> Iterable[Tuple[str, str]]:
    """Yield (abs_path, package) for every module under src/repro."""
    root = _package_root()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root)
            package = rel.split(os.sep)[0] if os.sep in rel else ""
            yield path, package


def _rules_for(package: str, explicit: bool):
    interposition = explicit or package in CONFORMANCE_PACKAGES
    poll = explicit or package in POLL_PACKAGES
    env = explicit or package in ENV_PACKAGES
    return interposition, poll, env


def _timed(profile: Dict, key: str, fn, *args):
    """Run one rule pass, accumulating wall seconds + file count into
    the report's profile (the JSON envelope's analyzer-cost section)."""
    # repro-check: allow[determinism] -- analyzer self-profiling, never enters a recording
    t0 = time.perf_counter()
    out = fn(*args)
    entry = profile.setdefault(key, {"seconds": 0.0, "files": 0})
    # repro-check: allow[determinism] -- analyzer self-profiling (above).
    entry["seconds"] += time.perf_counter() - t0
    entry["files"] += 1
    return out


def _scan_module(
    info: ModuleInfo, report: CheckReport, interposition: bool, poll: bool,
    env: bool, conc_graph: Optional[LockOrderGraph] = None
) -> List[Finding]:
    findings: List[Finding] = []
    profile = report.profile
    if interposition:
        findings.extend(_timed(profile, "bus-confinement",
                               check_bus_confinement, info))
        findings.extend(_timed(profile, "release-consistency",
                               check_release_consistency, info))
        findings.extend(_timed(profile, "sym-force", check_sym_force, info))
    if poll:
        poll_findings, sites = _timed(profile, "poll", check_poll, info)
        findings.extend(poll_findings)
        report.poll_sites.extend(sites)
    if env:
        findings.extend(_timed(profile, "env-read", check_env_read, info))
    findings.extend(_timed(profile, "determinism", check_determinism, info))
    if conc_graph is not None:
        findings.extend(_timed(profile, "concurrency",
                               check_concurrency, info, conc_graph))
    for line in info.bad_pragmas:
        findings.append(
            Finding(
                rule="bad-suppression",
                path=info.relpath,
                line=line,
                message=(
                    "repro-check pragma without a '-- reason' "
                    "justification: suppressions must say why the site "
                    "is sound"
                ),
            )
        )
    return findings


def run_check(
    paths: Optional[List[str]] = None,
    baseline: Optional[str] = None,
    concurrency: bool = False,
) -> CheckReport:
    """Run the analyzer; over ``paths`` if given, else the whole tree.

    ``concurrency=True`` adds the lock-discipline pass
    (:mod:`repro.check.rules_conc`) over every scanned module: the
    shared-state and unjoined-thread rules only bite where threads are
    actually created, and the lock-order graph is accumulated across
    modules so a pool-vs-registry ordering inversion is visible even
    when the two acquisitions live in different files.
    """
    report = CheckReport()
    modules: List[Tuple[str, str, bool]] = []
    if paths:
        modules = [(os.path.abspath(p), "", True) for p in paths]
    else:
        modules = [(p, pkg, False) for p, pkg in _discover()]

    conc_graph = LockOrderGraph() if concurrency else None
    for path, package, explicit in modules:
        info = parse_module(path, _relpath(path), package)
        interposition, poll, env = _rules_for(package, explicit)
        findings = _scan_module(info, report, interposition, poll, env,
                                conc_graph)
        report.modules_scanned += 1
        for finding in findings:
            if finding.suppressed:
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    if conc_graph is not None:
        for finding in _timed(report.profile, "lock-order",
                              conc_graph.finalize):
            if finding.suppressed:
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)

    if baseline is not None and os.path.exists(baseline):
        report.apply_baseline(load_baseline(baseline))
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Static driver-conformance analyzer (see repro.check).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="specific files to check (default: the whole src/repro tree)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file of accepted finding fingerprints "
        "(default: <repo>/check_baseline.json when present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="also run the concurrency/lock-discipline pass "
        "(conc-unlocked-shared, conc-lock-order, "
        "conc-await-holding-lock, conc-unjoined-thread)",
    )
    args = parser.parse_args(argv)

    baseline = args.baseline
    if baseline is None and not args.paths:
        candidate = os.path.join(_repo_root(), DEFAULT_BASELINE)
        if os.path.exists(candidate):
            baseline = candidate

    report = run_check(paths=args.paths or None, baseline=baseline,
                       concurrency=args.concurrency)

    if args.write_baseline:
        target = args.baseline or os.path.join(_repo_root(), DEFAULT_BASELINE)
        write_baseline(target, report)
        print("wrote {} fingerprint(s) to {}".format(len(report.findings)
                                                     + len(report.baselined),
                                                     target))
        return 0

    if args.fmt == "json":
        print(report.to_json())
    else:
        print(report.to_text())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
