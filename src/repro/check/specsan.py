"""SpecSan: the opt-in runtime invariant sanitizer.

The static rules prove structural properties of the *source*; SpecSan
checks the corresponding dynamic invariants on a *live run*.  It
installs as a second :class:`~repro.kernel.env.KernelHooks` observer
appended **after** DriverShim, so every hook fires on it with the
shim's work already done — SpecSan asserts post-conditions:

* **release consistency (§4.1)** — at every ``on_unlock`` /
  ``on_delay`` / ``on_kernel_api`` the current thread's deferral queue
  must be empty: the commit trigger the shim just handled may not
  leave deferred accesses pending;
* **no externalization before validation (§4.2)** — at ``printk`` time
  there must be no outstanding (unvalidated) speculative commit: the
  shim is required to stall and validate before a value escapes;
* **no speculative spill to the client (§4.2 taint)** — wraps
  ``GpuShim.apply_commit``: a commit carrying tainted (speculation-
  derived) state may never be applied to the client GPU while
  unvalidated speculation is outstanding;
* **meta-only traffic (§5)** — wraps ``MemorySynchronizer.push/pull``:
  under the META_ONLY policy every transferred page must be declared
  metastate (shader/command/page-table pages) — zero program-data
  bytes on the wire at the job-start push and post-IRQ pull.

:class:`FleetSpecSan` is the fleet-layer counterpart (§7.1): it shadows
the per-tenant recording registry with an independent owner map and
verifies every lookup/store against it, then sweeps both at the end.

Both sanitizers are togglable: ``strict=True`` raises
:class:`SpecSanViolation` at the violating event; ``strict=False``
records violations for later inspection.  ``checks_performed`` counts
every assertion evaluated so tests can prove the sanitizer actually
ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.memsync import SyncPolicy
from repro.kernel.env import KernelEnv, KernelHooks


class SpecSanViolation(AssertionError):
    """A runtime invariant of the recorder was violated."""


@dataclass
class SanitizerState:
    checks_performed: int = 0
    violations: List[str] = field(default_factory=list)
    checks_by_rule: Dict[str, int] = field(default_factory=dict)


class SpecSan(KernelHooks):
    """Runtime sanitizer for one record run (install once per attempt)."""

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.state = SanitizerState()
        self.shim = None
        self.env: Optional[KernelEnv] = None

    # ------------------------------------------------------------------
    @property
    def checks_performed(self) -> int:
        return self.state.checks_performed

    @property
    def violations(self) -> List[str]:
        return self.state.violations

    def _check(self, rule: str, ok: bool, message: str) -> None:
        self.state.checks_performed += 1
        self.state.checks_by_rule[rule] = (
            self.state.checks_by_rule.get(rule, 0) + 1
        )
        if ok:
            return
        detail = "[{}] {}".format(rule, message)
        self.state.violations.append(detail)
        if self.strict:
            raise SpecSanViolation(detail)

    # ------------------------------------------------------------------
    def install(self, env: KernelEnv, shim) -> "SpecSan":
        """Attach to a (env, DriverShim) pair.

        Must be called after ``shim.attach(env)`` so this observer runs
        *after* the shim on every hook.  Safe to call once per recovery
        attempt: state accumulates, wrappers rebind.
        """
        if shim not in env.hooks:
            raise RuntimeError(
                "install SpecSan after DriverShim.attach(env): the "
                "sanitizer asserts post-conditions of the shim's hooks"
            )
        self.shim = shim
        self.env = env
        env.hooks.append(self)
        self._wrap_apply_commit(shim)
        self._wrap_memsync(shim.memsync)
        return self

    # ------------------------------------------------------------------
    # Hook post-conditions (§4.1 / §4.2)
    # ------------------------------------------------------------------
    def _pending_ops(self, env: KernelEnv) -> int:
        queue = self.shim._queues.get(env.current.name)
        return len(queue) if queue else 0

    def on_unlock(self, env: KernelEnv, lock_name: str) -> None:
        pending = self._pending_ops(env)
        self._check(
            "release-consistency",
            pending == 0,
            "unlock({}) left {} deferred register access(es) pending in "
            "thread {!r} — release consistency requires commits to "
            "precede unlock (§4.1)".format(lock_name, pending, env.current.name),
        )

    def on_delay(self, env: KernelEnv, seconds: float) -> None:
        pending = self._pending_ops(env)
        self._check(
            "release-consistency",
            pending == 0,
            "explicit delay barrier left {} deferred access(es) pending "
            "(§4.1)".format(pending),
        )

    def on_kernel_api(self, env: KernelEnv, name: str) -> None:
        pending = self._pending_ops(env)
        self._check(
            "release-consistency",
            pending == 0,
            "kernel API {!r} ran with {} deferred access(es) still "
            "queued — every kernel API is a commit trigger (§4.1)".format(
                name, pending
            ),
        )
        if name == "printk":
            outstanding = len(self.shim._outstanding)
            self._check(
                "externalize-validated",
                outstanding == 0,
                "printk externalized state with {} speculative commit(s) "
                "still unvalidated (§4.2)".format(outstanding),
            )

    # ------------------------------------------------------------------
    # Checkpoint invariants (repro.resilience.checkpoint)
    # ------------------------------------------------------------------
    def on_checkpoint(self, shim, checkpoint) -> None:
        """A session checkpoint was captured: assert it is a quiescent,
        consistent watermark.  A checkpoint violating these would resume
        into a recording that diverges from the fault-free run."""
        outstanding = len(shim._outstanding)
        pending = sum(len(q) for q in shim._queues.values())
        self._check(
            "checkpoint-quiescent",
            outstanding == 0 and pending == 0,
            "checkpoint captured with {} unvalidated speculative "
            "commit(s) and {} deferred access(es) — a watermark must be "
            "quiescent (§4.2)".format(outstanding, pending),
        )
        self._check(
            "checkpoint-watermark",
            (checkpoint.position == shim.last_validated_position
             and checkpoint.position == len(checkpoint.entries)
             and checkpoint.position <= shim.gpushim.log_position()),
            "checkpoint watermark {} inconsistent with validated position "
            "{} / prefix length {} / log length {}".format(
                checkpoint.position, shim.last_validated_position,
                len(checkpoint.entries), shim.gpushim.log_position()),
        )
        self._check(
            "checkpoint-monotonic",
            all(checkpoint.position > earlier.position
                for earlier in shim.checkpointer.checkpoints[:-1]),
            "checkpoint watermark {} does not advance past earlier "
            "checkpoints".format(checkpoint.position),
        )

    # ------------------------------------------------------------------
    # Client-boundary taint check (§4.2)
    # ------------------------------------------------------------------
    def _wrap_apply_commit(self, shim) -> None:
        gpushim = shim.gpushim
        orig = gpushim.apply_commit

        def checked_apply_commit(request):
            env = shim.env
            if env is not None and not shim.ff_active:
                queue = shim._queues.get(env.current.name)
                tainted = (
                    (queue is not None and queue.any_tainted())
                    or env.current.name in shim._control_taint
                )
                self._check(
                    "no-speculative-spill",
                    not (tainted and shim._outstanding),
                    "a commit carrying speculation-tainted state reached "
                    "the client while {} speculative commit(s) were "
                    "unvalidated — mispredicted state must never spill "
                    "(§4.2)".format(len(shim._outstanding)),
                )
            return orig(request)

        gpushim.apply_commit = checked_apply_commit

    # ------------------------------------------------------------------
    # Meta-only traffic (§5)
    # ------------------------------------------------------------------
    def _wrap_memsync(self, memsync) -> None:
        orig_push = memsync.push
        orig_pull = memsync.pull

        def checked_push(metastate_pfns):
            meta = set(metastate_pfns)
            pages, wire = orig_push(meta)
            self._check_meta_only(memsync, "push", pages, meta)
            return pages, wire

        def checked_pull(metastate_pfns):
            meta = set(metastate_pfns)
            pages, wire = orig_pull(meta)
            self._check_meta_only(memsync, "pull", pages, meta)
            return pages, wire

        memsync.push = checked_push
        memsync.pull = checked_pull

    def _check_meta_only(
        self, memsync, direction: str, pages: Dict[int, bytes], meta: Set[int]
    ) -> None:
        if memsync.policy != SyncPolicy.META_ONLY:
            self._check("meta-only", True, "")  # policy FULL: nothing to assert
            return
        stray = set(pages) - meta
        self._check(
            "meta-only",
            not stray,
            "meta-only {} shipped {} non-metastate page(s) (e.g. pfn "
            "{:#x}) — §5 requires zero program-data bytes on the "
            "wire".format(
                direction, len(stray), min(stray) if stray else 0
            ),
        )


class FleetSpecSan:
    """§7.1 tenant-isolation sanitizer for a fleet run.

    Shadows the recording registry with an independent (tenant, key) ->
    owner map, verifies every lookup/store against it as the run
    proceeds, and re-audits both maps in :meth:`finish`.  The shadow map
    makes the check an *independent oracle*: even a registry whose
    internal buckets were corrupted cannot pass.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.state = SanitizerState()
        self.registry = None
        self.store = None
        self._owners: Dict[tuple, str] = {}
        self._store_owners: Dict[tuple, str] = {}

    @property
    def checks_performed(self) -> int:
        return self.state.checks_performed

    @property
    def violations(self) -> List[str]:
        return self.state.violations

    def _check(self, rule: str, ok: bool, message: str) -> None:
        self.state.checks_performed += 1
        self.state.checks_by_rule[rule] = (
            self.state.checks_by_rule.get(rule, 0) + 1
        )
        if ok:
            return
        detail = "[{}] {}".format(rule, message)
        self.state.violations.append(detail)
        if self.strict:
            raise SpecSanViolation(detail)

    # ------------------------------------------------------------------
    def install(self, registry) -> "FleetSpecSan":
        self.registry = registry
        orig_lookup = registry.lookup
        orig_store = registry.store

        def checked_lookup(tenant_id, key):
            entry = orig_lookup(tenant_id, key)
            if entry is not None:
                self._check(
                    "tenant-isolation",
                    entry.tenant_id == tenant_id,
                    "lookup by {!r} returned a recording owned by "
                    "{!r}".format(tenant_id, entry.tenant_id),
                )
                owner = self._owners.get((tenant_id,) + key.as_tuple())
                self._check(
                    "tenant-isolation",
                    owner == tenant_id,
                    "lookup by {!r} hit an entry the sanitizer saw "
                    "stored by {!r} (§7.1)".format(tenant_id, owner),
                )
            return entry

        def checked_store(tenant_id, entry):
            self._check(
                "tenant-isolation",
                entry.tenant_id == tenant_id,
                "store filed {!r}'s recording under {!r}".format(
                    entry.tenant_id, tenant_id
                ),
            )
            self._owners[(tenant_id,) + entry.key.as_tuple()] = entry.tenant_id
            return orig_store(tenant_id, entry)

        registry.lookup = checked_lookup
        registry.store = checked_store
        return self

    # ------------------------------------------------------------------
    def install_store(self, store) -> "FleetSpecSan":
        """Shadow an artifact store (§7.1 for *derived* state).

        Every ``put`` is decoded back to its embedded owner before it
        lands; every ``get`` hit is checked against the caller and the
        shadow map — the compiled-artifact tier gets the same
        independent oracle as the recording registry.
        """
        from repro.core.compiled import ArtifactError, artifact_meta

        self.store = store
        orig_get = store.get
        orig_put = store.put

        def checked_get(tenant_id, key):
            entry = orig_get(tenant_id, key)
            if entry is not None:
                meta = getattr(entry, "artifact_meta", None) or {}
                owner = meta.get("tenant_id", tenant_id)
                self._check(
                    "tenant-isolation",
                    owner == tenant_id,
                    "store get by {!r} returned an artifact owned by "
                    "{!r} (§7.1)".format(tenant_id, owner),
                )
                shadow = self._store_owners.get(
                    (tenant_id,) + key.as_tuple())
                if shadow is not None:
                    self._check(
                        "tenant-isolation",
                        shadow == tenant_id,
                        "store get by {!r} hit an artifact the sanitizer "
                        "saw published by {!r}".format(tenant_id, shadow),
                    )
            return entry

        def checked_put(tenant_id, key, blob):
            try:
                owner = artifact_meta(blob).get("tenant_id", "")
            except ArtifactError:
                owner = "<undecodable>"
            self._check(
                "tenant-isolation",
                owner == tenant_id,
                "store put filed {!r}'s artifact under {!r}".format(
                    owner, tenant_id
                ),
            )
            self._store_owners[(tenant_id,) + key.as_tuple()] = owner
            return orig_put(tenant_id, key, blob)

        store.get = checked_get
        store.put = checked_put
        return self

    def finish(self) -> int:
        """End-of-run sweep: the registry's own audit plus the shadow map
        (and the attached store's audit, when one is installed).

        Returns the total number of entries checked.
        """
        checked = 0
        if self.registry is not None:
            checked = self.registry.audit_isolation()
            self._check(
                "tenant-isolation",
                checked == len(self._owners),
                "registry audit saw {} entries but the sanitizer observed "
                "{} stores — entries appeared or vanished outside the "
                "store path".format(checked, len(self._owners)),
            )
            for (tenant_id, *_key), owner in self._owners.items():
                self._check(
                    "tenant-isolation",
                    owner == tenant_id,
                    "shadow map holds {!r}'s recording under {!r}".format(
                        owner, tenant_id
                    ),
                )
        if self.store is not None:
            checked += self.store.audit_isolation()
            for (tenant_id, *_key), owner in self._store_owners.items():
                self._check(
                    "tenant-isolation",
                    owner == tenant_id,
                    "store shadow map holds {!r}'s artifact under "
                    "{!r}".format(owner, tenant_id),
                )
        return checked
