"""Finding/report data model for ``repro.check``.

A :class:`Finding` is one rule violation at one source location.  A
:class:`CheckReport` aggregates findings, suppressed findings, and the
§4.3 poll-site inventory, and renders to text or JSON.  Baselines match
findings by *fingerprint* (rule + path + enclosing symbol + message),
deliberately excluding line numbers so unrelated edits above a
baselined site do not churn the baseline file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

#: rule-id -> (paper section, one-line description)
RULES: Dict[str, tuple] = {
    "bus-confinement": (
        "§4.1",
        "every MMIO access flows through the RegisterBus interface",
    ),
    "poll-undeclared": (
        "§4.3",
        "busy-wait loop meets the offload criteria but has no PollSpec",
    ),
    "poll-spec": (
        "§4.3",
        "declared PollSpec is malformed, unbounded, or never executed",
    ),
    "sym-force": (
        "§4.2",
        "symbolic register value forced outside a sanctioned commit point",
    ),
    "release-consistency": (
        "§4.1",
        "unstructured lock()/unlock() can release with commits pending",
    ),
    "determinism": (
        "§2.3",
        "wall-clock or unseeded randomness breaks record/replay equality",
    ),
    "env-read": (
        "-",
        "process-environment read in repro.core outside the sanctioned "
        "config module",
    ),
    "conc-unlocked-shared": (
        "§7.1",
        "read/write of thread-shared state outside any lock scope",
    ),
    "conc-lock-order": (
        "-",
        "inconsistent static lock acquisition order (deadlock cycle)",
    ),
    "conc-await-holding-lock": (
        "-",
        "await or blocking primitive while holding a sync lock",
    ),
    "conc-unjoined-thread": (
        "-",
        "thread/process created without a join path at teardown",
    ),
    "racesan-race": (
        "§7.1",
        "runtime: unordered conflicting access to tagged shared state "
        "(happens-before sanitizer)",
    ),
    "racesan-lock-cycle": (
        "-",
        "runtime: lock-order graph grew a cycle (potential deadlock)",
    ),
    "bad-suppression": (
        "-",
        "repro-check suppression without a justification",
    ),
}


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    symbol: str = ""  # enclosing ``Class.method`` / function, if any
    suppressed: bool = False
    suppress_reason: str = ""

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha256(self.message.encode("utf-8")).hexdigest()[:12]
        return "{}:{}:{}:{}".format(self.rule, self.path, self.symbol, digest)

    def render(self) -> str:
        where = "{}:{}".format(self.path, self.line)
        sym = " ({})".format(self.symbol) if self.symbol else ""
        return "{}: [{}]{} {}".format(where, self.rule, sym, self.message)


@dataclass
class PollSite:
    """One §4.3 polling loop discovered in driver source.

    Either a *declared* ``PollSpec(...)`` construction site, or a raw
    busy-wait loop the discovery pass judged offload-eligible.
    """

    path: str
    line: int
    symbol: str
    offset: str  # source text of the register-offset expression
    condition: str
    max_iters: Optional[int]
    tag: str = ""
    declared: bool = True
    executed: bool = False

    def render(self) -> str:
        bound = "n/a" if self.max_iters is None else str(self.max_iters)
        status = "declared" if self.declared else "UNDECLARED"
        return "{}:{} ({}) offset={} cond={} max_iters={} [{}{}]".format(
            self.path,
            self.line,
            self.symbol,
            self.offset,
            self.condition,
            bound,
            status,
            "+executed" if self.executed else "",
        )


@dataclass
class CheckReport:
    """Aggregate result of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    poll_sites: List[PollSite] = field(default_factory=list)
    modules_scanned: int = 0
    #: per-rule-pass analyzer cost: name -> {"seconds": s, "files": n}.
    #: Surfaced in the JSON envelope so BENCH-style tracking of analyzer
    #: cost is possible without re-instrumenting.
    profile: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    def apply_baseline(self, fingerprints) -> None:
        """Move findings whose fingerprint is baselined out of the live set."""
        accepted = set(fingerprints)
        live: List[Finding] = []
        for f in self.findings:
            if f.fingerprint in accepted:
                self.baselined.append(f)
            else:
                live.append(f)
        self.findings = live

    def to_json(self) -> str:
        payload = {
            "ok": self.ok,
            "modules_scanned": self.modules_scanned,
            "summary": self.counts_by_rule(),
            "profile": {
                name: {"seconds": round(entry["seconds"], 6),
                       "files": int(entry["files"])}
                for name, entry in sorted(self.profile.items())
            },
            "findings": [
                dict(asdict(f), fingerprint=f.fingerprint) for f in self.findings
            ],
            "suppressed": [
                dict(asdict(f), fingerprint=f.fingerprint) for f in self.suppressed
            ],
            "baselined": [
                dict(asdict(f), fingerprint=f.fingerprint) for f in self.baselined
            ],
            "poll_sites": [asdict(p) for p in self.poll_sites],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_text(self) -> str:
        lines: List[str] = []
        for f in sorted(self.findings, key=lambda f: (f.path, f.line)):
            lines.append(f.render())
        if self.poll_sites:
            lines.append("")
            lines.append(
                "poll sites (§4.3 discovery, {} declared / {} undeclared):".format(
                    sum(1 for p in self.poll_sites if p.declared),
                    sum(1 for p in self.poll_sites if not p.declared),
                )
            )
            for p in sorted(self.poll_sites, key=lambda p: (p.path, p.line)):
                lines.append("  " + p.render())
        lines.append("")
        lines.append(
            "{} finding(s), {} suppressed, {} baselined, {} module(s) scanned".format(
                len(self.findings),
                len(self.suppressed),
                len(self.baselined),
                self.modules_scanned,
            )
        )
        return "\n".join(lines)


def load_baseline(path) -> List[str]:
    """Read a baseline file, returning the accepted fingerprints."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    entries = data.get("findings", [])
    out: List[str] = []
    for entry in entries:
        if isinstance(entry, str):
            out.append(entry)
        else:
            out.append(entry["fingerprint"])
    return out


def write_baseline(path, report: CheckReport) -> None:
    """Persist the current unsuppressed findings as the accepted baseline."""
    entries = [
        {"fingerprint": f.fingerprint, "rule": f.rule, "path": f.path}
        for f in report.findings + report.baselined
    ]
    entries.sort(key=lambda e: e["fingerprint"])
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"findings": entries}, fh, indent=2, sort_keys=True)
        fh.write("\n")
