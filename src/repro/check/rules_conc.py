"""Concurrency rules: lock discipline for the live serving layer.

PR 7 made the codebase genuinely concurrent — the shard pool runs a
collector thread and a sentinel watchdog against state the asyncio loop
thread also touches, and the registry is shared across sessions.  The
safety argument ("the TEE replays exactly what was recorded") now rests
on locking *conventions*; these rules turn the conventions into checked
properties:

* ``conc-unlocked-shared`` — inventory shared mutable state (module
  globals written from functions, ``self`` attributes reachable from
  more than one thread identity) and flag every read/write of it
  outside a ``with <lock>`` scope.  Identities come from the escape
  analysis in :mod:`repro.check.astpass`: ``threading.Thread`` targets
  each get their own identity; public methods and asyncio callbacks
  share the caller/loop identity; ``multiprocessing`` spawn children
  share no memory and are out of scope by construction.
* ``conc-lock-order`` — build the static lock-acquisition graph across
  every scanned module (nested ``with`` scopes; ``self.X`` normalized
  to ``Class.X``) and flag any cycle: two code paths acquiring the same
  locks in different orders can deadlock under the right interleaving.
* ``conc-await-holding-lock`` — an ``await``, or a blocking primitive
  (queue ``get``/``put``, ``Event.wait``, bare ``join``, ``sleep``),
  executed while a sync lock is held stalls every other thread
  contending for that lock — and on the event loop it stalls *all*
  tasks, inviting lock-order inversions through the scheduler.
* ``conc-unjoined-thread`` — a ``threading.Thread``/``Process`` created
  without any ``join`` path in the class leaks at close: work can still
  be mutating shared state while teardown (or interpreter exit) runs.

Known precision limits (documented in DESIGN.md): lock scopes are
lexical (manual ``acquire``/``release`` pairs are the release-
consistency rule's problem); aliasing is name-based, so a lock bound to
a local escapes the order graph; there is no alias analysis across
processes — spawn children are excluded by construction, which is also
what makes the model sound for them.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.check.astpass import (
    ClassConcurrencyModel,
    LockScopeWalker,
    ModuleInfo,
    attr_chain,
    iter_functions,
    qualname,
)
from repro.check.findings import Finding

#: queue-ish receiver name tails for the blocking-op rule
_QUEUEISH_TAILS = ("queue", "_q")
#: event/condition-ish receiver tails whose ``wait`` blocks
_EVENTISH = ("event", "cond", "condition", "done", "ready", "closed",
             "barrier")


def _suppressed(info: ModuleInfo, finding: Finding) -> Finding:
    sup = info.suppression_for(finding.rule, finding.line)
    if sup is not None:
        finding.suppressed = True
        finding.suppress_reason = sup.reason
    return finding


def _finding(info: ModuleInfo, rule: str, line: int, symbol: str,
             message: str) -> Finding:
    return _suppressed(info, Finding(
        rule=rule, path=info.relpath, line=line, symbol=symbol,
        message=message))


# ---------------------------------------------------------------------------
# conc-unlocked-shared


def check_unlocked_shared(info: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    findings.extend(_check_global_writes(info))
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        model = ClassConcurrencyModel(node)
        shared = model.shared_attrs()
        if not shared:
            continue
        for access in model.accesses:
            if access.attr not in shared or access.locked:
                continue
            idents = shared[access.attr]
            kind = "write to" if access.write else "read of"
            findings.append(_finding(
                info, "conc-unlocked-shared", access.line,
                "{}.{}".format(node.name, access.method),
                "{} '{}.{}' outside any lock scope, but the attribute "
                "is shared between {} — an unordered conflicting access "
                "races the recording-service state".format(
                    kind, node.name, access.attr,
                    ", ".join(sorted(idents)))))
    return findings


def _check_global_writes(info: ModuleInfo) -> List[Finding]:
    """Module globals written from functions, in a module that spawns
    threads: the cheapest shared state there is, with no lock at all."""
    spawns_threads = any(
        isinstance(node, ast.Call)
        and attr_chain(node.func) in ("threading.Thread", "Thread")
        for node in ast.walk(info.tree))
    if not spawns_threads:
        return []
    findings: List[Finding] = []
    for func, cls in iter_functions(info.tree):
        declared: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared.update(node.names)
        if not declared:
            continue
        walker = LockScopeWalker()
        for node, held in walker.walk(func):
            if held or not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [
                node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    findings.append(_finding(
                        info, "conc-unlocked-shared", node.lineno,
                        qualname(func, cls),
                        "unlocked write to module global '{}' in a "
                        "module that spawns threads".format(target.id)))
    return findings


# ---------------------------------------------------------------------------
# conc-lock-order


class LockOrderGraph:
    """Lock-acquisition order accumulated across every scanned module.

    Nodes are normalized lock names (``self.X`` inside class ``C``
    becomes ``C.X`` so the pool's lock is one node no matter which
    method acquires it); an edge ``a -> b`` records "``b`` acquired
    while ``a`` is held" with its source site.  After the scan,
    :meth:`finalize` flags every cycle once, anchored at the edge that
    closed it (the lexically-latest site in the cycle).
    """

    def __init__(self) -> None:
        #: edge -> first (info, node, symbol) that produced it
        self.edges: Dict[Tuple[str, str],
                         Tuple[ModuleInfo, ast.AST, str]] = {}

    def scan_module(self, info: ModuleInfo) -> None:
        for func, cls in iter_functions(info.tree):
            walker = LockScopeWalker()
            for _ in walker.walk(func):
                pass
            for outer, inner, node in walker.order_edges:
                edge = (_normalize(outer, cls), _normalize(inner, cls))
                if edge[0] != edge[1]:
                    self.edges.setdefault(
                        edge, (info, node, qualname(func, cls)))

    def finalize(self) -> List[Finding]:
        adjacency: Dict[str, Set[str]] = {}
        for (a, b) in self.edges:
            adjacency.setdefault(a, set()).add(b)
        findings: List[Finding] = []
        seen_cycles: Set[Tuple[str, ...]] = set()
        for a, b in sorted(self.edges):
            path = self._path(b, a, adjacency)
            if path is None:
                continue
            cycle = [a] + path  # a -> b -> ... -> a
            canon = tuple(sorted(set(cycle)))
            if canon in seen_cycles:
                continue
            seen_cycles.add(canon)
            sites = []
            for outer, inner in zip(cycle, cycle[1:] + cycle[:1]):
                entry = self.edges.get((outer, inner))
                if entry is not None:
                    sites.append("{} then {} at {}:{} ({})".format(
                        outer, inner, entry[0].relpath,
                        entry[1].lineno, entry[2]))
            anchor_info, anchor_node, anchor_symbol = max(
                (self.edges[(o, i)] for o, i in zip(
                    cycle, cycle[1:] + cycle[:1]) if (o, i) in self.edges),
                key=lambda e: (e[0].relpath, e[1].lineno))
            findings.append(_finding(
                anchor_info, "conc-lock-order", anchor_node.lineno,
                anchor_symbol,
                "inconsistent lock acquisition order — {} form a cycle "
                "({}); two threads taking opposite paths deadlock".format(
                    " -> ".join(cycle + [cycle[0]]), "; ".join(sites))))
        return findings

    def _path(self, start: str, goal: str,
              adjacency: Dict[str, Set[str]]) -> Optional[List[str]]:
        """Shortest node path start..goal along edges, else None."""
        frontier = [[start]]
        visited = {start}
        while frontier:
            path = frontier.pop(0)
            if path[-1] == goal:
                return path
            for nxt in sorted(adjacency.get(path[-1], ())):
                if nxt not in visited:
                    visited.add(nxt)
                    frontier.append(path + [nxt])
        return None


def _normalize(lock: str, cls: Optional[ast.ClassDef]) -> str:
    if lock.startswith("self.") and cls is not None:
        return cls.name + lock[len("self"):]
    return lock


# ---------------------------------------------------------------------------
# conc-await-holding-lock


def check_await_holding_lock(info: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    for func, cls in iter_functions(info.tree):
        symbol = qualname(func, cls)
        walker = LockScopeWalker()
        seen: Set[int] = set()
        for node, held in walker.walk(func):
            if not held:
                continue
            line = getattr(node, "lineno", 0)
            if line in seen:
                continue
            if isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
                seen.add(line)
                findings.append(_finding(
                    info, "conc-await-holding-lock", line, symbol,
                    "'await' while holding {} suspends the coroutine "
                    "with the lock held — every contending thread (and "
                    "every task on this loop) stalls until the "
                    "scheduler resumes it".format(", ".join(held))))
            elif isinstance(node, ast.Call):
                blocked = _blocking_call(node)
                if blocked:
                    seen.add(line)
                    findings.append(_finding(
                        info, "conc-await-holding-lock", line, symbol,
                        "blocking call '{}' while holding {} — the op "
                        "can wait indefinitely with every contender "
                        "stalled behind the lock".format(
                            blocked, ", ".join(held))))
    return findings


def _blocking_call(call: ast.Call) -> Optional[str]:
    """Render the call when it can block the thread, else None."""
    chain = attr_chain(call.func)
    if chain is None:
        return None
    parts = chain.split(".")
    method = parts[-1]
    receiver_tail = parts[-2].lower() if len(parts) >= 2 else ""
    if chain in ("time.sleep",):
        return chain + "()"
    queueish = any(receiver_tail == t or receiver_tail.endswith(t)
                   for t in _QUEUEISH_TAILS)
    if method in ("get", "put") and queueish:
        return chain + "()"
    if method == "join" and not call.args and len(parts) >= 2:
        return chain + "()"
    if method == "wait" and (
            not call.args
            or any(e in receiver_tail for e in _EVENTISH)):
        return chain + "()"
    return None


# ---------------------------------------------------------------------------
# conc-unjoined-thread


def check_unjoined_thread(info: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    join_receivers = _join_receivers(info)
    known_ctors, mp_imported = _concurrency_ctors(info)
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        ctor = attr_chain(node.func) or ""
        tail = ctor.split(".")[-1]
        if ctor not in known_ctors:
            # mp context objects carry the same ctor: ctx.Process(...)
            # counts whenever the module imports multiprocessing.  A
            # bare local class merely *named* Process does not.
            if not (mp_imported and tail == "Process" and "." in ctor):
                continue
        binding = _binding_name(info, node)
        if binding is None and join_receivers:
            # Not bound to a simple name (comprehension element, call
            # argument, collection): with join() calls present in the
            # module we cannot prove the leak — stay quiet over guess.
            continue
        joined = binding is not None and any(
            binding in receiver.split(".") for receiver in join_receivers)
        if joined:
            continue
        func, cls = _enclosing_func(info, node)
        bound = "as '{}' without".format(binding) if binding else "without"
        findings.append(_finding(
            info, "conc-unjoined-thread", node.lineno,
            qualname(func, cls),
            "{} created {} a join path — close()/teardown cannot "
            "prove the {} has stopped touching shared state".format(
                ctor, bound, tail.lower())))
    return findings


def _concurrency_ctors(info: ModuleInfo) -> Tuple[Set[str], bool]:
    """Call chains that construct real OS threads/processes here, from
    the module's own imports; plus whether multiprocessing is imported
    at all (for ``get_context()`` objects' ``.Process``)."""
    ctors: Set[str] = set()
    mp_imported = False
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name
                if alias.name == "threading":
                    ctors.add(bound + ".Thread")
                elif alias.name == "multiprocessing":
                    mp_imported = True
                    ctors.add(bound + ".Process")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "threading":
                for alias in node.names:
                    if alias.name == "Thread":
                        ctors.add(alias.asname or "Thread")
            elif node.module == "multiprocessing":
                mp_imported = True
                for alias in node.names:
                    if alias.name == "Process":
                        ctors.add(alias.asname or "Process")
    return ctors, mp_imported


def _join_receivers(info: ModuleInfo) -> Set[str]:
    """Receivers of every ``X.join(...)`` call in the module (kwargs
    allowed; positional args mean ``str.join`` and are excluded)."""
    receivers: Set[str] = set()
    for node in ast.walk(info.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join" and not node.args):
            chain = attr_chain(node.func.value)
            if chain:
                receivers.add(chain.replace("self.", ""))
    return receivers


def _binding_name(info: ModuleInfo, ctor: ast.Call) -> Optional[str]:
    """The name a Thread/Process construction is bound to: ``self.X =
    Thread(...)`` gives ``X``; ``p = Process(...)`` gives ``p``."""
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Assign) and node.value is ctor:
            target = node.targets[0]
            if isinstance(target, ast.Attribute):
                return target.attr
            if isinstance(target, ast.Name):
                return target.id
    return None


def _enclosing_func(info: ModuleInfo, node: ast.AST):
    target_line = getattr(node, "lineno", 0)
    best = (None, None)
    best_span = None
    for func, cls in iter_functions(info.tree):
        start = func.lineno
        end = max((getattr(n, "lineno", start) for n in ast.walk(func)),
                  default=start)
        if start <= target_line <= end:
            span = end - start
            if best_span is None or span <= best_span:
                best = (func, cls)
                best_span = span
    return best


# ---------------------------------------------------------------------------
# rule entry point


def check_concurrency(info: ModuleInfo,
                      graph: Optional[LockOrderGraph] = None
                      ) -> List[Finding]:
    """Run the module-local concurrency rules; lock-order edges are fed
    into ``graph`` (cycle findings come from ``graph.finalize()`` after
    every module has been scanned)."""
    findings: List[Finding] = []
    findings.extend(check_unlocked_shared(info))
    findings.extend(check_await_holding_lock(info))
    findings.extend(check_unjoined_thread(info))
    if graph is not None:
        graph.scan_module(info)
    return findings
