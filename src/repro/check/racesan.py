"""RaceSan: the opt-in happens-before sanitizer for the serve layer.

The static rules in :mod:`repro.check.rules_conc` prove lock discipline
over the *source*; RaceSan checks the corresponding dynamic property on
a *live run*.  It mirrors :class:`~repro.check.specsan.SpecSan`: opt-in,
``strict=True`` raises at the violating event, ``strict=False`` records,
and ``checks_performed`` proves the sanitizer actually ran.

Model
-----
Every thread carries a vector clock.  The sanitizer wraps the real
synchronization primitives the serve layer already uses:

* :meth:`wrap_lock` — a lock proxy.  *Acquire* joins the clock the last
  release stored on the lock (the release-acquire edge) and records a
  lock-order edge from every lock the thread already holds; a cycle in
  that order graph is a ``racesan-lock-cycle`` finding at the moment the
  inverting acquire happens, whether or not the schedule deadlocks.
  *Release* ticks the thread's clock and stores it on the lock.  RLock
  re-entry is depth-tracked and contributes no edges or joins.
* :meth:`wrap_queue` — a queue proxy.  ``put`` ticks and stores the
  sender's clock on the channel; ``get`` joins the oldest stored clock
  (FIFO, matching the queue).  Items that originate in *another
  process* carry no clock — cross-process transfer is by value, the
  child shares no memory with the parent, so there is nothing to order
  (spawn children are out of scope by construction, same as the static
  model).
* :meth:`fork` — wraps a thread target: snapshots the creator's clock
  at wrap time and joins it when the new thread first runs, giving the
  standard fork edge.
* :meth:`publish` / :meth:`consume` — an explicit edge for handoffs
  that bypass a wrapped primitive (e.g. collector thread -> event-loop
  callback via ``Future.set_result``).

:meth:`note` tags one access to one shared object.  The sanitizer keeps
the last write and the per-thread last reads for each tag and flags any
*conflicting* pair (two accesses, at least one write, different threads)
that the clocks do not order — a data race by the happens-before
definition, independent of whether this schedule corrupted anything.

Limits: no alias analysis — a tag covers exactly the accesses that
``note`` it; unwrapped primitives contribute no edges, so an edge the
program really has but RaceSan cannot see yields a false positive (fix:
publish/consume), never a false negative on ordering it *was* shown.
"""

from __future__ import annotations

import sys
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.check.findings import Finding
from repro.check.specsan import SanitizerState

VectorClock = Dict[int, int]


class RaceSanViolation(AssertionError):
    """A happens-before or lock-order invariant was violated."""


def _leq(a: VectorClock, b: VectorClock) -> bool:
    """a happens-before-or-equals b."""
    return all(v <= b.get(k, 0) for k, v in a.items())


def _site(depth: int = 2) -> str:
    frame = sys._getframe(depth)
    return "{}:{}".format(frame.f_code.co_filename.rsplit("/", 1)[-1],
                          frame.f_lineno)


class _Access:
    __slots__ = ("tid", "thread_name", "clock", "site")

    def __init__(self, tid: int, clock: VectorClock, site: str) -> None:
        self.tid = tid
        self.thread_name = threading.current_thread().name
        self.clock = clock
        self.site = site


class RaceSan:
    """One sanitizer instance per pool/engine run (parent process only)."""

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.state = SanitizerState()
        # The sanitizer's own metadata lock.  Deliberately never held
        # across an acquire of a *wrapped* lock (see _SanLock.acquire),
        # so it cannot extend the application's lock-order graph.
        self._meta = threading.Lock()
        self._clocks: Dict[int, VectorClock] = {}
        self._held: Dict[int, List[str]] = {}          # tid -> lock stack
        self._depth: Dict[Tuple[int, str], int] = {}   # re-entrancy
        self._lock_clocks: Dict[str, VectorClock] = {}
        self._order: Dict[str, Set[str]] = {}          # lock-order edges
        self._order_sites: Dict[Tuple[str, str], str] = {}
        self._channels: Dict[str, Deque[VectorClock]] = {}
        self._last: Dict[str, Dict] = {}               # tag -> accesses

    # ------------------------------------------------------------------
    @property
    def checks_performed(self) -> int:
        return self.state.checks_performed

    @property
    def violations(self) -> List[str]:
        return self.state.violations

    def _check(self, rule: str, ok: bool, message: str) -> None:
        self.state.checks_performed += 1
        self.state.checks_by_rule[rule] = (
            self.state.checks_by_rule.get(rule, 0) + 1
        )
        if ok:
            return
        detail = "[{}] {}".format(rule, message)
        self.state.violations.append(detail)
        if self.strict:
            raise RaceSanViolation(detail)

    def findings(self) -> List[Finding]:
        """Render recorded violations as check findings (rule = the
        ``[rule]`` prefix each violation message carries)."""
        out: List[Finding] = []
        for detail in self.state.violations:
            rule, _, message = detail.partition("] ")
            out.append(Finding(rule=rule.lstrip("["), path="<runtime>",
                               line=0, message=message, symbol="racesan"))
        return out

    def summary(self) -> Dict:
        return {
            "checks_performed": self.state.checks_performed,
            "checks_by_rule": dict(self.state.checks_by_rule),
            "violations": list(self.state.violations),
        }

    # ------------------------------------------------------------------
    # clock plumbing (callers hold self._meta)
    # ------------------------------------------------------------------
    def _clock(self, tid: int) -> VectorClock:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = {tid: 1}
            self._clocks[tid] = clock
        return clock

    def _tick(self, tid: int) -> None:
        clock = self._clock(tid)
        clock[tid] = clock.get(tid, 0) + 1

    def _join(self, tid: int, other: VectorClock) -> None:
        clock = self._clock(tid)
        for k, v in other.items():
            if v > clock.get(k, 0):
                clock[k] = v

    # ------------------------------------------------------------------
    # lock-order graph
    # ------------------------------------------------------------------
    def _reaches(self, src: str, dst: str) -> Optional[List[str]]:
        """Path src -> dst in the order graph, or None."""
        stack = [(src, [src])]
        seen = {src}
        while stack:
            node, path = stack.pop()
            if node == dst:
                return path
            for nxt in self._order.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    # ------------------------------------------------------------------
    # wrappers
    # ------------------------------------------------------------------
    def wrap_lock(self, lock, name: str) -> "_SanLock":
        if isinstance(lock, _SanLock):
            return lock
        return _SanLock(self, lock, name)

    def wrap_queue(self, q, name: str) -> "_SanQueue":
        if isinstance(q, _SanQueue):
            return q
        return _SanQueue(self, q, name)

    def fork(self, target, name: str):
        """Wrap a thread target with the creator->child fork edge."""
        with self._meta:
            tid = threading.get_ident()
            self._tick(tid)
            snapshot = dict(self._clock(tid))

        def forked(*args, **kwargs):
            with self._meta:
                self._join(threading.get_ident(), snapshot)
            return target(*args, **kwargs)

        forked.__name__ = "racesan_fork_{}".format(name)
        return forked

    def publish(self, channel: str) -> None:
        """Record an explicit happens-before edge source."""
        with self._meta:
            tid = threading.get_ident()
            self._tick(tid)
            self._channels.setdefault(channel, deque()).append(
                dict(self._clock(tid)))

    def consume(self, channel: str) -> None:
        """Join the oldest unconsumed :meth:`publish` on ``channel``."""
        with self._meta:
            pending = self._channels.get(channel)
            if pending:
                self._join(threading.get_ident(), pending.popleft())

    # ------------------------------------------------------------------
    # the race check itself
    # ------------------------------------------------------------------
    def note(self, tag: str, write: bool) -> None:
        """One access to the shared object ``tag`` from this thread."""
        site = _site()
        with self._meta:
            tid = threading.get_ident()
            cur = self._clock(tid)
            entry = self._last.setdefault(tag, {"write": None, "reads": {}})
            conflicts: List[Tuple[str, _Access]] = []
            prior = entry["write"]
            if prior is not None and prior.tid != tid:
                conflicts.append(("write", prior))
            if write:
                for rtid, access in entry["reads"].items():
                    if rtid != tid:
                        conflicts.append(("read", access))
            for kind_name, access in conflicts:
                self._check(
                    "racesan-race",
                    _leq(access.clock, cur),
                    "unordered {} of {!r}: {} by {!r} at {} vs prior "
                    "{} by {!r} at {} — no happens-before edge orders "
                    "them (§7.1)".format(
                        "write" if write else "read", tag,
                        "write" if write else "read",
                        threading.current_thread().name, site,
                        kind_name, access.thread_name, access.site),
                )
            if not conflicts:
                # Count the evaluation even when nothing conflicts, so
                # clean runs still prove the sanitizer executed.
                self.state.checks_performed += 1
                self.state.checks_by_rule["racesan-race"] = (
                    self.state.checks_by_rule.get("racesan-race", 0) + 1)
            access = _Access(tid, dict(cur), site)
            if write:
                entry["write"] = access
                entry["reads"] = {}
            else:
                entry["reads"][tid] = access

    # ------------------------------------------------------------------
    # primitive hooks (called by the proxies)
    # ------------------------------------------------------------------
    def _pre_acquire(self, name: str, site: str) -> None:
        """Record lock-order edges and run the cycle check.

        Runs *before* blocking on the inner lock: in a real deadlock the
        acquire never returns, so reporting afterwards would report
        nothing.  Edges are recorded once; the cycle check fires at the
        acquisition that first closes the cycle.
        """
        with self._meta:
            tid = threading.get_ident()
            if self._depth.get((tid, name), 0):
                return  # re-entrant: no new ordering information
            held = self._held.get(tid, [])
            for outer in held:
                if outer == name:
                    continue
                if name in self._order.setdefault(outer, set()):
                    continue  # edge already known, already checked
                cycle = self._reaches(name, outer)
                self._order[outer].add(name)
                self._order_sites[(outer, name)] = site
                self._check(
                    "racesan-lock-cycle",
                    cycle is None,
                    "acquiring {!r} while holding {!r} at {} closes the "
                    "cycle {} (reverse edge first seen at {}) — two "
                    "threads taking opposite paths deadlock".format(
                        name, outer, site,
                        " -> ".join(cycle + [name]) if cycle else "",
                        self._order_sites.get(
                            (cycle[0], cycle[1]), "?")
                        if cycle and len(cycle) > 1 else "?"),
                )

    def _on_acquired(self, name: str, site: str) -> None:
        with self._meta:
            tid = threading.get_ident()
            depth_key = (tid, name)
            depth = self._depth.get(depth_key, 0)
            self._depth[depth_key] = depth + 1
            if depth:  # re-entrant: no join, already on the held stack
                return
            self._held.setdefault(tid, []).append(name)
            stored = self._lock_clocks.get(name)
            if stored is not None:
                self._join(tid, stored)

    def _on_released(self, name: str) -> None:
        with self._meta:
            tid = threading.get_ident()
            depth_key = (tid, name)
            depth = self._depth.get(depth_key, 1) - 1
            self._depth[depth_key] = depth
            if depth:
                return
            self._tick(tid)
            self._lock_clocks[name] = dict(self._clock(tid))
            held = self._held.get(tid, [])
            if name in held:
                held.remove(name)

    def _on_put(self, name: str) -> None:
        with self._meta:
            tid = threading.get_ident()
            self._tick(tid)
            self._channels.setdefault("queue:" + name, deque()).append(
                dict(self._clock(tid)))

    def _on_get(self, name: str) -> None:
        with self._meta:
            pending = self._channels.get("queue:" + name)
            if pending:
                self._join(threading.get_ident(), pending.popleft())


class _SanLock:
    """Lock proxy: release-acquire clock edges + lock-order graph."""

    def __init__(self, san: RaceSan, inner, name: str) -> None:
        self._san = san
        self._inner = inner
        self._name = name

    def acquire(self, blocking: bool = True, timeout: float = -1):
        site = _site()
        self._san._pre_acquire(self._name, site)
        if timeout == -1:
            got = self._inner.acquire(blocking)
        else:
            got = self._inner.acquire(blocking, timeout)
        if got:
            self._san._on_acquired(self._name, site)
        return got

    def release(self) -> None:
        self._san._on_released(self._name)
        self._inner.release()

    def __enter__(self):
        site = _site()
        self._san._pre_acquire(self._name, site)
        self._inner.acquire()
        self._san._on_acquired(self._name, site)
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class _SanQueue:
    """Queue proxy: put/get transfer the sender's clock (parent-side
    puts only — items from another process carry no clock)."""

    def __init__(self, san: RaceSan, inner, name: str) -> None:
        self._san = san
        self._inner = inner
        self._name = name

    def put(self, item, *args, **kwargs):
        self._san._on_put(self._name)
        return self._inner.put(item, *args, **kwargs)

    def put_nowait(self, item):
        self._san._on_put(self._name)
        return self._inner.put_nowait(item)

    def get(self, *args, **kwargs):
        item = self._inner.get(*args, **kwargs)
        self._san._on_get(self._name)
        return item

    def get_nowait(self):
        item = self._inner.get_nowait()
        self._san._on_get(self._name)
        return item

    def __getattr__(self, attr):
        # close/cancel_join_thread/empty/qsize/... pass through.
        return getattr(self._inner, attr)
