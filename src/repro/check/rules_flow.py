"""Dataflow rules: symbolic-forcing hazards (§4.2) and determinism (§2.3).

**sym-force.**  ``bus.read32``/``read64`` return lazy symbolic values
(:class:`~repro.core.symbolic.SymVal`) so DriverShim can defer and
speculate on them (§4.1/§4.2).  Forcing one concrete — ``int()``,
``bool()``, string-formatting — triggers a synchronous commit, so it is
only sanctioned at the paper's commit points:

* a **control dependency**: the value decides a branch
  (``if``/``while``/``assert`` test — Listing 1(b));
* **externalization**: the value is passed *bare* to ``printk``-style
  kernel APIs, whose hook validates speculation and flushes the queue
  *before* the value is formatted;
* a value that was **already forced** by one of the above (re-coercing
  a committed value is free).

Anything else — ``int(bus.read32(...))`` at the read site, ``int(x)``
on a never-branched register value, f-string/%%-format on a lazy value,
coercion *inside* printk's argument list (arguments evaluate before the
call, i.e. before the externalization hook fires) — is a hazard: it
forces a round-trip the shim never got a chance to defer, speculate, or
even observe as a commit trigger.  The sanctioned programmatic escape
hatch is :func:`repro.core.symbolic.concrete`, which this rule
deliberately does not flag.  ``RegisterBus`` implementations are exempt
— below the boundary, forcing is how values reach the wire.

The analysis is function-local and name-based: it tracks names assigned
from bus reads (and expressions over them), in statement order, with a
set of already-forced names.  Attribute loads (``self.props.x``) are
not tracked — that precision limit is documented in DESIGN.md.

**determinism.**  Record/replay equality (§2.3, §6) requires the whole
stack to be a deterministic function of (workload, seed): any wall
clock read, unseeded RNG, ``os.urandom``/``uuid4`` anywhere in
``repro`` lets a record run diverge from its replay.  The virtual
clock (``env.clock``) and explicitly-seeded ``random.Random(seed)`` /
``np.random.RandomState(seed)`` instances are the sanctioned sources.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.check.astpass import (
    ModuleInfo,
    attr_chain,
    call_name,
    iter_functions,
    names_in,
    qualname,
)
from repro.check.findings import Finding

BUS_READS = ("read32", "read64")
FORCE_BUILTINS = ("int", "bool", "str", "hex", "oct", "format")
EXTERNALIZERS = ("printk",)


def _suppressed(info: ModuleInfo, finding: Finding) -> Finding:
    sup = info.suppression_for(finding.rule, finding.line)
    if sup is not None:
        finding.suppressed = True
        finding.suppress_reason = sup.reason
    return finding


# ---------------------------------------------------------------------------
# sym-force


def check_sym_force(info: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    for func, cls in iter_functions(info.tree):
        if cls is not None and info.class_is_bus(cls.name):
            continue  # bus implementations force by design
        visitor = _ForceVisitor(info, qualname(func, cls))
        visitor.run_body(func.body)
        findings.extend(_suppressed(info, f) for f in visitor.findings)
    return findings


def _is_bus_read(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and call_name(node) in BUS_READS


def _contains_bus_read(node: ast.AST) -> bool:
    return any(_is_bus_read(n) for n in ast.walk(node))


class _ForceVisitor:
    """Statement-ordered, function-local taint walk."""

    def __init__(self, info: ModuleInfo, symbol: str) -> None:
        self.info = info
        self.symbol = symbol
        self.sources: Set[str] = set()
        self.forced: Set[str] = set()
        self.findings: List[Finding] = []

    # -- statements --------------------------------------------------------
    def run_body(self, body) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.AST) -> None:
        if isinstance(stmt, (ast.If, ast.While)):
            self.visit_test(stmt.test)
            self.run_body(stmt.body)
            self.run_body(getattr(stmt, "orelse", []) or [])
        elif isinstance(stmt, ast.Assert):
            self.visit_test(stmt.test)
        elif isinstance(stmt, ast.Assign):
            self.visit_expr(stmt.value)
            self.propagate(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.visit_expr(stmt.value)
            self.propagate([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self.visit_expr(stmt.value)
            self.propagate([stmt.target], stmt.value)
        elif isinstance(stmt, ast.For):
            self.visit_expr(stmt.iter)
            self.run_body(stmt.body)
            self.run_body(stmt.orelse or [])
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.visit_expr(item.context_expr)
            self.run_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run_body(stmt.body)
            for handler in stmt.handlers:
                self.run_body(handler.body)
            self.run_body(stmt.orelse or [])
            self.run_body(stmt.finalbody or [])
        elif isinstance(stmt, (ast.Expr, ast.Return, ast.Raise)):
            value = getattr(stmt, "value", None) or getattr(stmt, "exc", None)
            if value is not None:
                self.visit_expr(value)
        # nested defs/classes are visited separately by iter_functions

    def propagate(self, targets, value: ast.AST) -> None:
        tainted = _contains_bus_read(value) or any(
            n in self.sources for n in names_in(value)
        )
        already_forced = not _contains_bus_read(value) and all(
            n in self.forced for n in names_in(value) if n in self.sources
        )
        for target in targets:
            if isinstance(target, ast.Name):
                if tainted:
                    self.sources.add(target.id)
                    if already_forced or self.is_forcing_call(value):
                        self.forced.add(target.id)
                else:
                    self.sources.discard(target.id)
                    self.forced.discard(target.id)

    def is_forcing_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in FORCE_BUILTINS
        )

    # -- tests: the sanctioned control-dependency commit trigger -----------
    def visit_test(self, test: ast.AST) -> None:
        for name in names_in(test):
            if name in self.sources:
                self.forced.add(name)
        # direct reads forced by the branch are sanctioned too; nothing to flag

    # -- expressions -------------------------------------------------------
    def visit_expr(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            if self.is_externalizer(node):
                self.visit_printk(node)
                return
            if self.is_forcing_call(node) and node.args:
                self.check_force(node, node.args[0], context="value context")
            for child in ast.iter_child_nodes(node):
                self.visit_expr(child)
            return
        if isinstance(node, ast.JoinedStr):
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    self.check_format(part.value, "f-string")
            return
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Mod)
            and isinstance(node.left, ast.Constant)
            and isinstance(node.left.value, str)
        ):
            self.check_format(node.right, "%-format")
            return
        if isinstance(node, ast.IfExp):
            self.visit_test(node.test)
        for child in ast.iter_child_nodes(node):
            self.visit_expr(child)

    def is_externalizer(self, call: ast.Call) -> bool:
        return call_name(call) in EXTERNALIZERS

    def visit_printk(self, call: ast.Call) -> None:
        # Coercions inside the argument list evaluate BEFORE the call, i.e.
        # before printk's hook validates + flushes: flag them.
        for arg in call.args:
            if self.is_forcing_call(arg) and arg.args:
                self.check_force(
                    arg,
                    arg.args[0],
                    context=(
                        "printk argument (evaluated before the "
                        "externalization hook fires)"
                    ),
                )
            else:
                self.visit_expr(arg)
        # Bare lazy args are the sanctioned path: the hook commits, then
        # printk itself coerces for formatting.
        for arg in call.args:
            for name in names_in(arg):
                if name in self.sources:
                    self.forced.add(name)

    def check_force(self, call: ast.Call, arg: ast.AST, context: str) -> None:
        fn = call.func.id  # type: ignore[union-attr]
        if _contains_bus_read(arg):
            self.emit(
                call,
                "{}() forces the register value at the read site in {} — "
                "the shim never gets to defer or speculate on it; keep the "
                "value lazy or use concrete() at a sanctioned commit "
                "point".format(fn, context),
            )
            return
        hazardous = [
            n
            for n in names_in(arg)
            if n in self.sources and n not in self.forced
        ]
        if hazardous:
            self.emit(
                call,
                "{}({}) forces a bus-read-derived value in {} with no "
                "prior control-dependency or externalization commit "
                "(§4.2)".format(fn, ", ".join(sorted(set(hazardous))), context),
            )

    def check_format(self, value: ast.AST, kind: str) -> None:
        if _contains_bus_read(value):
            self.emit(
                value,
                "{} forces a register value at the read site (§4.2)".format(kind),
            )
            return
        hazardous = [
            n
            for n in names_in(value)
            if n in self.sources and n not in self.forced
        ]
        if hazardous:
            self.emit(
                value,
                "{} on bus-read-derived value(s) {} forces them outside a "
                "sanctioned commit point (§4.2)".format(
                    kind, ", ".join(sorted(set(hazardous)))
                ),
            )

    def emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule="sym-force",
                path=self.info.relpath,
                line=getattr(node, "lineno", 0),
                symbol=self.symbol,
                message=message,
            )
        )


# ---------------------------------------------------------------------------
# determinism

WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.sleep",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "date.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

MODULE_RNG_FNS = {
    "random",
    "randint",
    "randrange",
    "getrandbits",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "uniform",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "seed",
}

NP_RNG_FNS = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "uniform",
    "poisson",
    "exponential",
    "standard_normal",
    "seed",
}

SEEDED_CTORS = {"Random", "RandomState", "default_rng", "Generator", "SeedSequence"}


def check_determinism(info: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = attr_chain(node.func)
        if chain is None:
            continue
        message = _determinism_message(chain, node)
        if message is None:
            continue
        symbol = _enclosing_symbol(info, node)
        finding = Finding(
            rule="determinism",
            path=info.relpath,
            line=node.lineno,
            symbol=symbol,
            message=message,
        )
        findings.append(_suppressed(info, finding))
    return findings


def _determinism_message(chain: str, node: ast.Call) -> Optional[str]:
    parts = chain.split(".")
    tail = parts[-1]
    if chain in WALLCLOCK_CALLS:
        return (
            "'{}()' reads the wall clock / OS entropy — record and replay "
            "would diverge; use the virtual clock (env.clock) or a seeded "
            "RNG (§2.3)".format(chain)
        )
    if chain.startswith("secrets."):
        return (
            "'{}()' draws OS entropy — nondeterministic across record and "
            "replay (§2.3)".format(chain)
        )
    if tail in SEEDED_CTORS and not node.args and not node.keywords:
        receiver = ".".join(parts[:-1])
        if receiver in ("random", "np.random", "numpy.random", "") and (
            tail != "Generator"
        ):
            return (
                "'{}()' constructed without a seed falls back to OS "
                "entropy; pass an explicit seed so the run is a function "
                "of (workload, seed) (§2.3)".format(chain)
            )
    if len(parts) == 2 and parts[0] == "random" and tail in MODULE_RNG_FNS:
        return (
            "'{}()' uses the process-global RNG whose state is shared and "
            "unseeded; construct random.Random(seed) instead (§2.3)".format(chain)
        )
    if (
        len(parts) >= 3
        and ".".join(parts[:-1]) in ("np.random", "numpy.random")
        and tail in NP_RNG_FNS
    ):
        return (
            "'{}()' uses numpy's process-global RNG; construct "
            "np.random.RandomState(seed) instead (§2.3)".format(chain)
        )
    return None


# os.environ entry points that read (or read-and-mutate) the process
# environment.  Writes alone (os.environ[k] = v in a test fixture) are
# out of scope: the rule targets *behavior keyed on* ambient state.
ENV_READ_CALLS = {
    "os.getenv",
    "os.environ.get",
    "os.environ.pop",
    "os.environ.setdefault",
}
# The one module allowed to read the environment for repro.core: every
# env-derived knob must surface there as an explicit, documented API.
ENV_SANCTIONED = ("core/config.py",)


def check_env_read(info: ModuleInfo) -> List[Finding]:
    """Flag direct environment reads (§2.3 adjacent: an env toggle makes
    a run a function of shell state, not (workload, seed)).

    ``repro.core.config`` is the sanctioned module: knobs read there are
    forwarded as explicit parameters (e.g. the ``engine=`` argument that
    replaced the ``REPRO_LEGACY_REPLAY`` toggle)."""
    if any(info.relpath.endswith(allowed) for allowed in ENV_SANCTIONED):
        return []
    findings: List[Finding] = []
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain not in ENV_READ_CALLS:
                continue
            what = chain
        elif isinstance(node, ast.Subscript):
            chain = attr_chain(node.value)
            if chain != "os.environ":
                continue
            if isinstance(getattr(node, "ctx", None), ast.Store):
                continue
            what = "os.environ[...]"
        else:
            continue
        finding = Finding(
            rule="env-read",
            path=info.relpath,
            line=node.lineno,
            symbol=_enclosing_symbol(info, node),
            message=(
                "'{}' reads the process environment — behavior keyed on "
                "ambient shell state is an invisible knob; route it "
                "through repro.core.config and expose an explicit "
                "parameter".format(what)
            ),
        )
        findings.append(_suppressed(info, finding))
    return findings


def _enclosing_symbol(info: ModuleInfo, node: ast.AST) -> str:
    target_line = getattr(node, "lineno", 0)
    best = ""
    best_span = None
    for func, cls in iter_functions(info.tree):
        start = func.lineno
        end = max(
            (getattr(n, "lineno", start) for n in ast.walk(func)), default=start
        )
        if start <= target_line <= end:
            span = end - start
            if best_span is None or span <= best_span:
                best = qualname(func, cls)
                best_span = span
    return best
