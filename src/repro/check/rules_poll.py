"""§4.3 polling-loop discovery — the paper's static analysis, for real.

GR-T offloads "simple busy-wait loops" to the GPU-side shim so a poll
costs one RTT instead of one RTT per iteration.  A loop qualifies when
(criteria from §4.3):

1. **idempotent single-register read** — each iteration reads one
   register whose offset is loop-invariant, and performs no writes;
2. **loop-local bounded iteration** — the trip count is bounded by a
   loop-local constant (``range(N)`` / counter-vs-literal), so the
   offloaded loop provably terminates on the client;
3. **no externally-visible kernel APIs** — nothing in the body
   (``printk``, ``kernel_api``, ``wait_event``, job submission) forces
   an early commit or has effects the remote loop could not replay.
   Inter-iteration ``delay``/``udelay`` is fine — it *is* the poll
   cadence.

The reproduction declares such loops explicitly as
:class:`~repro.driver.bus.PollSpec`.  This pass closes the loop the
honest docstring in ``driver/bus.py`` left open: it rediscovers
offload-eligible raw loops from the AST and cross-checks them against
the declared specs.

* ``poll-undeclared`` — a raw busy-wait loop meets all three criteria
  but is not expressed as a ``PollSpec`` (it would silently eat one
  RTT per iteration when recorded over the network);
* ``poll-spec`` — a declared ``PollSpec`` is malformed: unknown
  condition kind, unbounded/unresolvable ``max_iters`` (breaking
  criterion 2), or never actually passed to ``poll()`` /
  ``watchdog_poll()`` (a stale spec that instruments nothing).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.check.astpass import (
    ModuleInfo,
    attr_chain,
    call_name,
    iter_functions,
    literal_int,
    names_in,
    qualname,
    source_segment,
)
from repro.check.findings import Finding, PollSite

POLL_EXECUTORS = ("poll", "watchdog_poll", "execute_poll")
EXTERNAL_KERNEL_APIS = (
    "printk",
    "kernel_api",
    "wait_event",
    "submit",
    "schedule",
    "copy_to_user",
)
BUS_READS = ("read32", "read64")
BUS_WRITES = ("write32", "write64")
KNOWN_CONDITIONS = ("BITS_CLEAR", "BITS_SET", "EQUALS")


def _suppressed(info: ModuleInfo, finding: Finding) -> Finding:
    sup = info.suppression_for(finding.rule, finding.line)
    if sup is not None:
        finding.suppressed = True
        finding.suppress_reason = sup.reason
    return finding


def check_poll(info: ModuleInfo) -> Tuple[List[Finding], List[PollSite]]:
    findings: List[Finding] = []
    sites: List[PollSite] = []
    executed_nodes, executed_names = _executed_specs(info.tree)

    for func, cls in iter_functions(info.tree):
        symbol = qualname(func, cls)
        in_bus_class = cls is not None and info.class_is_bus(cls.name)
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and call_name(node) == "PollSpec":
                site, site_findings = _declared_site(
                    info, node, symbol, executed_nodes, executed_names
                )
                sites.append(site)
                findings.extend(_suppressed(info, f) for f in site_findings)
            elif isinstance(node, (ast.While, ast.For)) and not in_bus_class:
                found = _raw_loop(info, node, symbol)
                if found is not None:
                    site, finding = found
                    sites.append(site)
                    findings.append(_suppressed(info, finding))
    return findings, sites


# ---------------------------------------------------------------------------
# Declared PollSpec sites


def _executed_specs(tree: ast.Module) -> Tuple[Set[int], Set[str]]:
    """(ids of PollSpec call nodes passed directly to an executor,
    names of variables holding a spec that reach an executor)."""
    direct: Set[int] = set()
    fed_names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if call_name(node) in POLL_EXECUTORS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Call) and call_name(arg) == "PollSpec":
                    direct.add(id(arg))
                elif isinstance(arg, ast.Name):
                    fed_names.add(arg.id)
    return direct, fed_names


def _kwarg(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _declared_site(
    info: ModuleInfo,
    call: ast.Call,
    symbol: str,
    executed_nodes: Set[int],
    executed_names: Set[str],
) -> Tuple[PollSite, List[Finding]]:
    findings: List[Finding] = []
    line = call.lineno

    offset_node = _kwarg(call, "offset")
    if offset_node is None and call.args:
        offset_node = call.args[0]
    offset = source_segment(info, offset_node) if offset_node is not None else "?"

    condition = "?"
    cond_node = _kwarg(call, "condition")
    if cond_node is not None:
        chain = attr_chain(cond_node) or source_segment(info, cond_node)
        condition = chain.split(".")[-1]
    if condition not in KNOWN_CONDITIONS:
        findings.append(
            Finding(
                rule="poll-spec",
                path=info.relpath,
                line=line,
                symbol=symbol,
                message=(
                    "PollSpec condition {!r} is not a known PollCondition "
                    "({}) — the offloaded loop body would be "
                    "uninterpretable on the client (§4.3)".format(
                        condition, "/".join(KNOWN_CONDITIONS)
                    )
                ),
            )
        )

    max_iters: Optional[int] = None
    iters_node = _kwarg(call, "max_iters")
    if iters_node is not None:
        max_iters = literal_int(iters_node, info.int_consts)
    if max_iters is None or max_iters <= 0:
        findings.append(
            Finding(
                rule="poll-spec",
                path=info.relpath,
                line=line,
                symbol=symbol,
                message=(
                    "PollSpec max_iters is not a positive loop-local "
                    "constant — §4.3 requires bounded iteration so the "
                    "offloaded loop provably terminates"
                ),
            )
        )

    tag = ""
    tag_node = _kwarg(call, "tag")
    if tag_node is not None:
        if isinstance(tag_node, ast.Constant) and isinstance(tag_node.value, str):
            tag = tag_node.value
        else:
            tag = source_segment(info, tag_node)

    executed = id(call) in executed_nodes
    if not executed:
        # spec assigned to a name that later reaches an executor?
        parent_assign = _assigned_name(info.tree, call)
        if parent_assign is not None and parent_assign in executed_names:
            executed = True
    if not executed:
        findings.append(
            Finding(
                rule="poll-spec",
                path=info.relpath,
                line=line,
                symbol=symbol,
                message=(
                    "declared PollSpec never reaches poll()/watchdog_poll() "
                    "— a stale spec instruments nothing; delete it or wire "
                    "it to the bus"
                ),
            )
        )

    site = PollSite(
        path=info.relpath,
        line=line,
        symbol=symbol,
        offset=offset,
        condition=condition,
        max_iters=max_iters,
        tag=tag,
        declared=True,
        executed=executed,
    )
    return site, findings


def _assigned_name(tree: ast.Module, call: ast.Call) -> Optional[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and node.value is call:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                return target.id
    return None


# ---------------------------------------------------------------------------
# Raw busy-wait loop discovery


def _raw_loop(info: ModuleInfo, loop: ast.AST, symbol: str):
    """Return (PollSite, Finding) if *loop* meets the §4.3 criteria."""
    reads = []
    writes = 0
    external = 0
    for node in ast.walk(loop):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in BUS_READS:
                reads.append(node)
            elif name in BUS_WRITES:
                writes += 1
            elif name in EXTERNAL_KERNEL_APIS:
                external += 1
    if not reads:
        return None

    assigned = _loop_assigned_names(loop)

    # Criterion 1: idempotent single-register read.
    offsets = set()
    for read in reads:
        offset_node = read.args[0] if read.args else None
        if offset_node is None:
            return None
        if any(n in assigned for n in names_in(offset_node)):
            return None  # offset varies per iteration: not a poll
        offsets.add(source_segment(info, offset_node))
    if len(offsets) != 1 or writes:
        return None

    # Criterion 3: no externally-visible kernel APIs in the body.
    if external:
        return None

    # Criterion 2: loop-local bounded iteration.
    bound = _loop_bound(info, loop, assigned)
    if bound is None:
        return None

    offset = next(iter(offsets))
    site = PollSite(
        path=info.relpath,
        line=loop.lineno,
        symbol=symbol,
        offset=offset,
        condition="(inferred)",
        max_iters=bound,
        declared=False,
        executed=True,
    )
    finding = Finding(
        rule="poll-undeclared",
        path=info.relpath,
        line=loop.lineno,
        symbol=symbol,
        message=(
            "busy-wait loop on {} meets the §4.3 offload criteria "
            "(single loop-invariant register read, bounded by {}, no "
            "external kernel APIs) but is not declared as a PollSpec — "
            "recorded over the network it costs one RTT per iteration; "
            "declare it and run it through bus.poll()".format(offset, bound)
        ),
    )
    return site, finding


def _loop_assigned_names(loop: ast.AST) -> Set[str]:
    assigned: Set[str] = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                assigned.update(names_in(target))
        elif isinstance(node, ast.AugAssign):
            assigned.update(names_in(node.target))
        elif isinstance(node, ast.For):
            assigned.update(names_in(node.target))
    return assigned


def _loop_bound(
    info: ModuleInfo, loop: ast.AST, assigned: Set[str]
) -> Optional[int]:
    """Trip-count bound if the loop is loop-locally bounded, else None."""
    if isinstance(loop, ast.For):
        it = loop.iter
        if isinstance(it, ast.Call) and call_name(it) == "range":
            bound_arg = it.args[-1] if len(it.args) <= 2 else it.args[1]
            if it.args:
                return literal_int(bound_arg, info.int_consts)
        return None
    if isinstance(loop, ast.While):
        # `while counter < N:` (or N > counter) with counter mutated in body.
        for node in ast.walk(loop.test):
            if not isinstance(node, ast.Compare) or len(node.ops) != 1:
                continue
            op = node.ops[0]
            left, right = node.left, node.comparators[0]
            if isinstance(op, (ast.Lt, ast.LtE)):
                counter, limit = left, right
            elif isinstance(op, (ast.Gt, ast.GtE)):
                counter, limit = right, left
            else:
                continue
            bound = literal_int(limit, info.int_consts)
            if bound is None:
                continue
            if any(n in assigned for n in names_in(counter)):
                return bound
        return None
    return None
