"""Remote attestation of cloud recording VMs (§3.1, §7.1).

Before a client TEE sends anything to a cloud VM, it demands an
attestation report: a measurement of the VM image (the GPU stack the dry
run will execute) signed by the cloud's root of trust — the SGX/SEV
analogue.  The client pins the root key and the set of VM image
measurements it accepts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Set

from repro.tee.crypto import SigningKey, VerifyError


class AttestationError(Exception):
    """Attestation report rejected."""


@dataclass(frozen=True)
class AttestationReport:
    """Measurement + freshness nonce, signed by the cloud root key."""

    vm_image_measurement: bytes
    nonce: bytes
    signature: bytes

    def signed_payload(self) -> bytes:
        return self.vm_image_measurement + self.nonce


class CloudRootOfTrust:
    """The cloud provider's attestation signing authority."""

    def __init__(self, seed: bytes = b"cloud-root") -> None:
        self.key = SigningKey.generate("cloud-root", seed)

    def attest(self, vm_image: bytes, nonce: bytes) -> AttestationReport:
        measurement = hashlib.sha256(vm_image).digest()
        payload = measurement + nonce
        return AttestationReport(
            vm_image_measurement=measurement,
            nonce=nonce,
            signature=self.key.sign(payload),
        )


class AttestationVerifier:
    """Client-side policy: pinned root key + allow-listed measurements."""

    def __init__(self, root_key: SigningKey) -> None:
        self.root_key = root_key
        self.allowed_measurements: Set[bytes] = set()

    def allow_image(self, vm_image: bytes) -> None:
        self.allowed_measurements.add(hashlib.sha256(vm_image).digest())

    def verify(self, report: AttestationReport, expected_nonce: bytes) -> None:
        if report.nonce != expected_nonce:
            raise AttestationError("stale attestation report (nonce mismatch)")
        try:
            self.root_key.verify(report.signed_payload(), report.signature)
        except VerifyError as exc:
            raise AttestationError(f"bad attestation signature: {exc}") from exc
        if report.vm_image_measurement not in self.allowed_measurements:
            raise AttestationError(
                "cloud VM image measurement is not in the client's allow list")
