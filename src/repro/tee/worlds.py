"""TrustZone worlds and the address-space controller.

Models the hardware half of §7.1's integrity story: a TZASC-style
controller assigns physical memory ranges and the GPU MMIO region to one
world at a time.  While GPUShim holds the GPU for recording or replay, any
normal-world register access or protected-memory access raises
:class:`SecurityViolation` — the simulated equivalent of the bus fault the
real TZASC generates.

On Hikey960 the TZASC is undocumented, so the paper statically reserves
GPU memory and maps MMIO into the TEE (§6); :meth:`TrustZoneController.
static_reserve` models exactly that workaround.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


class World:
    NORMAL = "normal"
    SECURE = "secure"


class SecurityViolation(PermissionError):
    """An access the TZASC / secure monitor forbids."""


@dataclass
class _Range:
    base: int
    size: int
    owner: str

    def contains(self, pa: int) -> bool:
        return self.base <= pa < self.base + self.size


class TrustZoneController:
    """TZASC + secure-monitor state: who owns memory, MMIO, and IRQs."""

    def __init__(self) -> None:
        self.current_world = World.NORMAL
        self._protected: List[_Range] = []
        self.gpu_mmio_owner = World.NORMAL
        self.gpu_irq_routed_to = World.NORMAL
        self.violations = 0
        self._static_reservation: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    # World switching (SMC)
    # ------------------------------------------------------------------
    def smc_enter_secure(self) -> None:
        self.current_world = World.SECURE

    def smc_exit_secure(self) -> None:
        self.current_world = World.NORMAL

    # ------------------------------------------------------------------
    # Memory protection
    # ------------------------------------------------------------------
    def static_reserve(self, base: int, size: int) -> None:
        """The Hikey960 workaround: carve GPU memory out for the TEE at
        boot instead of reprogramming the (undocumented) TZASC."""
        self._static_reservation = (base, size)
        self._protected.append(_Range(base, size, World.SECURE))

    def protect_range(self, base: int, size: int) -> None:
        self._protected.append(_Range(base, size, World.SECURE))

    def release_range(self, base: int, size: int) -> None:
        if self._static_reservation == (base, size):
            raise SecurityViolation(
                "statically reserved TEE memory cannot be released at runtime")
        self._protected = [r for r in self._protected
                           if (r.base, r.size) != (base, size)]

    def check_memory_access(self, pa: int, world: str) -> None:
        for r in self._protected:
            if r.contains(pa) and world != r.owner:
                self.violations += 1
                raise SecurityViolation(
                    f"{world}-world access to protected pa={pa:#x}")

    # ------------------------------------------------------------------
    # GPU MMIO + IRQ routing
    # ------------------------------------------------------------------
    def lock_gpu_to_secure(self) -> None:
        self.gpu_mmio_owner = World.SECURE
        self.gpu_irq_routed_to = World.SECURE

    def release_gpu(self) -> None:
        self.gpu_mmio_owner = World.NORMAL
        self.gpu_irq_routed_to = World.NORMAL

    def check_gpu_access(self, world: str) -> None:
        if world != self.gpu_mmio_owner:
            self.violations += 1
            raise SecurityViolation(
                f"{world}-world GPU MMIO access while owned by "
                f"{self.gpu_mmio_owner}")


class ProtectedMemoryView:
    """A world-tagged view of physical memory.

    Models the TZASC sitting on the memory bus: every access from this
    view is checked against the protected ranges.  The normal-world OS
    (and devices DMA-ing on its behalf) reads TEE memory through views
    like this — and faults.
    """

    def __init__(self, mem, tzasc: TrustZoneController, world: str) -> None:
        self._mem = mem
        self._tzasc = tzasc
        self._world = world

    def read(self, pa: int, nbytes: int) -> bytes:
        self._tzasc.check_memory_access(pa, self._world)
        return self._mem.read(pa, nbytes)

    def write(self, pa: int, data: bytes) -> None:
        self._tzasc.check_memory_access(pa, self._world)
        self._mem.write(pa, data)

    def read_u32(self, pa: int) -> int:
        self._tzasc.check_memory_access(pa, self._world)
        return self._mem.read_u32(pa)

    def write_u32(self, pa: int, value: int) -> None:
        self._tzasc.check_memory_access(pa, self._world)
        self._mem.write_u32(pa, value)


class GpuMmioGuard:
    """A world-tagged view of the GPU's register file.

    Register accesses check MMIO ownership; everything else (event-queue
    introspection used by platforms) passes through.
    """

    def __init__(self, gpu, tzasc: TrustZoneController, world: str) -> None:
        self._gpu = gpu
        self._tzasc = tzasc
        self._world = world

    def read_reg(self, offset: int) -> int:
        self._tzasc.check_gpu_access(self._world)
        return self._gpu.read_reg(offset)

    def write_reg(self, offset: int, value: int) -> None:
        self._tzasc.check_gpu_access(self._world)
        self._gpu.write_reg(offset, value)

    def write_regs(self, offsets, values) -> None:
        # Explicit, not via __getattr__: a batch is still MMIO and must
        # pass the same ownership check (once per batch — ownership
        # cannot change mid-batch; no virtual time passes inside one).
        self._tzasc.check_gpu_access(self._world)
        self._gpu.write_regs(offsets, values)

    def read_regs(self, offsets) -> tuple:
        self._tzasc.check_gpu_access(self._world)
        return self._gpu.read_regs(offsets)

    def __getattr__(self, name: str):
        return getattr(self._gpu, name)
