"""TrustZone TEE model: worlds, memory/MMIO protection, crypto, attestation.

The security properties of §7.1 are *enforced* by this package rather than
narrated: a normal-world access to GPU MMIO or protected memory while the
TEE holds the GPU raises :class:`SecurityViolation`; replay accepts only
recordings whose signature verifies against the cloud service key; the
client refuses sessions with unattested cloud VMs.  Crypto is HMAC/SHA-256
from the standard library — the construction, key handling, and protocol
shape are what is being modelled, not cryptographic strength.
"""

from repro.tee.crypto import SigningKey, VerifyError, blob_digest
from repro.tee.attestation import (
    AttestationError,
    AttestationReport,
    CloudRootOfTrust,
)
from repro.tee.worlds import (
    GpuMmioGuard,
    SecurityViolation,
    TrustZoneController,
    World,
)
from repro.tee.optee import OpTeeOS, TeeModule, TeeSession

__all__ = [
    "SigningKey",
    "VerifyError",
    "blob_digest",
    "AttestationError",
    "AttestationReport",
    "CloudRootOfTrust",
    "GpuMmioGuard",
    "SecurityViolation",
    "TrustZoneController",
    "World",
    "OpTeeOS",
    "TeeModule",
    "TeeSession",
]
