"""A minimal OP-TEE-like trusted OS hosting TEE modules.

GPUShim is deployed as a TEE module (§3.2).  This model provides what it
needs from the trusted OS: module loading, GlobalPlatform-style sessions
with command invocation, access to the TZASC, and secure storage for
pinned keys and downloaded recordings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.tee.crypto import KeyStore
from repro.tee.worlds import SecurityViolation, TrustZoneController, World


class TeeModule:
    """Base class for trusted modules (GPUShim, the replayer service).

    Subclasses register command handlers; the normal world reaches them
    only through :class:`TeeSession` invocations.
    """

    name = "tee-module"

    def __init__(self) -> None:
        self._commands: Dict[str, Callable[..., Any]] = {}

    def register_command(self, name: str, handler: Callable[..., Any]) -> None:
        self._commands[name] = handler

    def invoke(self, command: str, **params) -> Any:
        if command not in self._commands:
            raise KeyError(f"{self.name}: unknown command {command!r}")
        return self._commands[command](**params)


@dataclass
class TeeSession:
    """A GlobalPlatform session from a normal-world client to a module."""

    os: "OpTeeOS"
    module: TeeModule
    session_id: int
    closed: bool = False

    def invoke(self, command: str, **params) -> Any:
        if self.closed:
            raise RuntimeError("session is closed")
        # Crossing into the secure world is an SMC round trip.
        self.os.tzasc.smc_enter_secure()
        try:
            return self.module.invoke(command, **params)
        finally:
            self.os.tzasc.smc_exit_secure()

    def close(self) -> None:
        self.closed = True


class OpTeeOS:
    """The trusted OS instance on one client device."""

    def __init__(self, tzasc: Optional[TrustZoneController] = None) -> None:
        self.tzasc = tzasc or TrustZoneController()
        self.keystore = KeyStore()
        self._modules: Dict[str, TeeModule] = {}
        self._secure_storage: Dict[str, bytes] = {}
        self._next_session = 1

    # ------------------------------------------------------------------
    def load_module(self, module: TeeModule) -> None:
        if module.name in self._modules:
            raise ValueError(f"module {module.name!r} already loaded")
        self._modules[module.name] = module

    def open_session(self, module_name: str) -> TeeSession:
        if module_name not in self._modules:
            raise KeyError(f"no TEE module named {module_name!r}")
        session = TeeSession(os=self, module=self._modules[module_name],
                             session_id=self._next_session)
        self._next_session += 1
        return session

    # ------------------------------------------------------------------
    # Secure storage (recordings, model weights)
    # ------------------------------------------------------------------
    def store(self, key: str, blob: bytes) -> None:
        self._secure_storage[key] = bytes(blob)

    def load(self, key: str) -> bytes:
        if key not in self._secure_storage:
            raise KeyError(f"secure storage has no object {key!r}")
        return self._secure_storage[key]

    def require_secure_world(self) -> None:
        if self.tzasc.current_world != World.SECURE:
            raise SecurityViolation(
                "operation requires execution in the secure world")
