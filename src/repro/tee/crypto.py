"""Keys and signatures for recordings and session authentication.

The cloud signs every recording before returning it (§3.2); the replayer
"only accepts recordings signed by the cloud" (§7.1).  HMAC-SHA256 stands
in for the production signature scheme: same API shape (sign/verify over a
digest), deterministic, and dependency-free.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict


class VerifyError(Exception):
    """Signature or digest verification failed."""


def blob_digest(blob: bytes) -> bytes:
    return hashlib.sha256(blob).digest()


@dataclass(frozen=True)
class SigningKey:
    """A symmetric signing identity (cloud service key, session key)."""

    name: str
    secret: bytes

    @staticmethod
    def generate(name: str, seed: bytes = b"") -> "SigningKey":
        # Deterministic derivation keeps record/replay tests reproducible.
        material = hashlib.sha256(b"repro-key:" + name.encode() + seed).digest()
        return SigningKey(name=name, secret=material)

    def sign(self, blob: bytes) -> bytes:
        return hmac.new(self.secret, blob, hashlib.sha256).digest()

    def verify(self, blob: bytes, signature: bytes) -> None:
        expected = self.sign(blob)
        if not hmac.compare_digest(expected, signature):
            raise VerifyError(
                f"signature by {self.name!r} does not verify")

    def derive(self, purpose: str) -> "SigningKey":
        """Derive a sub-key (e.g. a per-session key from a service key)."""
        material = hmac.new(self.secret, purpose.encode(),
                            hashlib.sha256).digest()
        return SigningKey(name=f"{self.name}/{purpose}", secret=material)


@dataclass
class KeyStore:
    """The TEE's pinned trust anchors (provisioned at manufacture)."""

    trusted: Dict[str, SigningKey] = field(default_factory=dict)

    def pin(self, key: SigningKey) -> None:
        self.trusted[key.name] = key

    def verify_with(self, key_name: str, blob: bytes, signature: bytes) -> None:
        if key_name not in self.trusted:
            raise VerifyError(f"no pinned key named {key_name!r}")
        self.trusted[key_name].verify(blob, signature)
