"""Command-stream emission into shared memory.

The runtime deposits three kinds of metastate into the command zone for
every job: a command ring entry (SET_SHADER / BIND_BUFFER / DISPATCH
words, as a real runtime would emit), and the job descriptor the GPU
fetches from ``JS_HEAD``.  All of it lands in FLAG_COMMAND_MEMORY pages,
so meta-only synchronization ships it to the client (§5).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.hw.memory import PhysicalMemory, align_up
from repro.hw.shader import JobBuffer, JobDescriptor
from repro.runtime.allocator import Buffer

CMD_SET_SHADER = 0x10
CMD_BIND_BUFFER = 0x20
CMD_DISPATCH = 0x30
CMD_BARRIER = 0x40

_WORD = struct.Struct("<IIQ")  # opcode, arg, payload


@dataclass
class EmittedJob:
    """Where a job's descriptor and ring words live."""

    descriptor_va: int
    descriptor_pa: int
    ring_words: int


class CommandStreamBuilder:
    """Bump-allocates descriptors and ring entries inside a command buffer."""

    def __init__(self, mem: PhysicalMemory, cmd_buffer: Buffer) -> None:
        self.mem = mem
        self.cmd_buffer = cmd_buffer
        self._cursor = 0
        self.jobs_emitted = 0

    def _emit_bytes(self, data: bytes, align: int = 64) -> Tuple[int, int]:
        """Write ``data`` into the command buffer; return (va, pa)."""
        start = align_up(self._cursor, align) if align else self._cursor
        if start + len(data) > self.cmd_buffer.size:
            raise MemoryError(
                f"command buffer overflow: need {start + len(data)} bytes, "
                f"have {self.cmd_buffer.size}"
            )
        pa = self.cmd_buffer.pa + start
        self.mem.write(pa, data)
        self._cursor = start + len(data)
        return self.cmd_buffer.va + start, pa

    def emit_job(self, shader_va: int, shader_len: int,
                 buffers: List[JobBuffer]) -> EmittedJob:
        """Emit ring words + descriptor for one job."""
        words = [_WORD.pack(CMD_SET_SHADER, shader_len, shader_va)]
        for buf in buffers:
            words.append(_WORD.pack(CMD_BIND_BUFFER, buf.role, buf.va))
        words.append(_WORD.pack(CMD_DISPATCH, len(buffers), 0))
        words.append(_WORD.pack(CMD_BARRIER, 0, 0))
        self._emit_bytes(b"".join(words), align=8)

        descriptor = JobDescriptor(shader_va=shader_va, shader_len=shader_len,
                                   buffers=tuple(buffers))
        desc_va, desc_pa = self._emit_bytes(descriptor.serialize())
        self.jobs_emitted += 1
        return EmittedJob(descriptor_va=desc_va, descriptor_pa=desc_pa,
                          ring_words=len(words))

    @property
    def bytes_used(self) -> int:
        return self._cursor
