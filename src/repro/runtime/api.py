"""The OpenCL-ish runtime API the ML framework calls.

A :class:`GpuContext` owns the GPU address space of one client: it
allocates tensor buffers, JIT-compiles shaders into executable memory,
emits job descriptors, and pushes jobs through the driver one at a time
(queue depth 1, §5).  It works identically whether the driver underneath
is native or GR-T's cloud DriverShim — the runtime is part of the dry-run
GPU stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.hw.memory import PhysicalMemory, align_up
from repro.hw.shader import (
    ROLE_BIAS,
    ROLE_INPUT,
    ROLE_OUTPUT,
    ROLE_WEIGHT,
    JobBuffer,
    ShaderBinary,
)
from repro.runtime.allocator import Buffer, BufferKind, GpuAddressSpace
from repro.runtime.commands import CommandStreamBuilder
from repro.runtime.compiler import CompilerTarget, JitCompiler

# Per-enqueue CPU cost of the userspace runtime + ioctl path (command
# emission, argument validation, syscall, scheduler).  This is the
# overhead replay removes (Table 2's "removal of the complex GPU stack").
RUNTIME_OP_OVERHEAD_S = 450e-6
CONTEXT_SETUP_OVERHEAD_S = 1.5e-3


class RuntimeError_(RuntimeError):
    """Runtime API misuse (name clash with builtin avoided by suffix)."""


@dataclass(frozen=True)
class BufferSlice:
    """A byte range inside a buffer, bindable to a job."""

    buffer: Buffer
    offset: int = 0
    length: Optional[int] = None

    @property
    def va(self) -> int:
        return self.buffer.va + self.offset

    @property
    def nbytes(self) -> int:
        return self.length if self.length is not None else self.buffer.size - self.offset


Bindable = Union[Buffer, BufferSlice]


def _as_slice(b: Bindable) -> BufferSlice:
    return b if isinstance(b, BufferSlice) else BufferSlice(buffer=b)


class GpuContext:
    """One app's GPU execution context."""

    def __init__(self, kbdev, mem: PhysicalMemory,
                 shader_zone_size: int = 1 << 20,
                 command_zone_size: int = 4 << 20,
                 flavor: Optional["RuntimeFlavor"] = None) -> None:
        from repro.runtime.flavors import ACL_OPENCL
        self.kbdev = kbdev
        self.mem = mem
        self.flavor = flavor if flavor is not None else ACL_OPENCL
        self.clock = kbdev.env.clock
        self.clock.advance(CONTEXT_SETUP_OVERHEAD_S, label="cpu")

        core_count = bin(int(kbdev.props.shader_present)).count("1")
        self.target = CompilerTarget(gpu_id=int(kbdev.props.gpu_id),
                                     core_count=core_count)
        self.compiler = JitCompiler(self.target, clock=self.clock,
                                    cost_scale=self.flavor.jit_cost_scale)

        self.aspace = GpuAddressSpace(mem, kbdev)
        self._shader_buf = self.aspace.alloc("shader-zone", shader_zone_size,
                                             BufferKind.SHADER)
        self._cmd_buf = self.aspace.alloc("command-zone", command_zone_size,
                                          BufferKind.COMMANDS)
        self.commands = CommandStreamBuilder(mem, self._cmd_buf)
        self._shader_cursor = 0
        self._shader_cache: Dict[str, Tuple[int, int]] = {}
        self.ops_enqueued = 0

    # ------------------------------------------------------------------
    # Buffers
    # ------------------------------------------------------------------
    def alloc_data(self, name: str, nbytes: int) -> Buffer:
        return self.aspace.alloc(name, nbytes, BufferKind.DATA)

    def upload(self, buffer: Buffer, array: np.ndarray, offset: int = 0) -> None:
        """CPU writes tensor data into a GPU buffer."""
        data = np.ascontiguousarray(array, dtype=np.float32)
        if offset + data.nbytes > buffer.size:
            raise RuntimeError_(
                f"upload of {data.nbytes} bytes overflows {buffer.name!r}")
        self.mem.write_array(buffer.pa + offset, data)

    def download(self, buffer: Buffer, shape: Tuple[int, ...],
                 offset: int = 0) -> np.ndarray:
        count = int(np.prod(shape))
        return self.mem.view(buffer.pa + offset, (count,),
                             np.float32).reshape(shape).copy()

    # ------------------------------------------------------------------
    # Shader placement
    # ------------------------------------------------------------------
    def _place_shader(self, binary: ShaderBinary, cache_key: Optional[str]) -> Tuple[int, int]:
        if cache_key is not None and cache_key in self._shader_cache:
            return self._shader_cache[cache_key]
        blob = binary.serialize()
        start = align_up(self._shader_cursor, 64)
        if start + len(blob) > self._shader_buf.size:
            raise MemoryError("shader zone exhausted")
        self.mem.write(self._shader_buf.pa + start, blob)
        self._shader_cursor = start + len(blob)
        placed = (self._shader_buf.va + start, len(blob))
        if cache_key is not None:
            self._shader_cache[cache_key] = placed
        return placed

    # ------------------------------------------------------------------
    # Job submission
    # ------------------------------------------------------------------
    def enqueue(self, op: str, params: Dict,
                inputs: Sequence[Bindable] = (),
                weights: Sequence[Bindable] = (),
                biases: Sequence[Bindable] = (),
                outputs: Sequence[Bindable] = (),
                cache_key: Optional[str] = None) -> None:
        """Compile (or reuse) a shader, emit a job, run it to completion."""
        self.clock.advance(RUNTIME_OP_OVERHEAD_S, label="cpu")
        cache_key = self.flavor.cache_key_for(cache_key)
        params = self.flavor.decorate_params(params)
        binary = self.compiler.compile(op, params, cache_key=cache_key)
        shader_va, shader_len = self._place_shader(binary, cache_key)

        job_buffers: List[JobBuffer] = []
        for role, group in ((ROLE_INPUT, inputs), (ROLE_WEIGHT, weights),
                            (ROLE_BIAS, biases), (ROLE_OUTPUT, outputs)):
            for bindable in group:
                s = _as_slice(bindable)
                job_buffers.append(JobBuffer(va=s.va, length=s.nbytes,
                                             role=role))
        emitted = self.commands.emit_job(shader_va, shader_len, job_buffers)
        self.kbdev.run_compute_job(emitted.descriptor_va)
        self.ops_enqueued += 1
