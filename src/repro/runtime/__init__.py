"""The userspace GPU runtime (the libmali/OpenCL analogue).

Sits between the ML framework (:mod:`repro.ml`) and the driver
(:mod:`repro.driver`): it JIT-compiles operators into SKU-specific shader
binaries, allocates GPU virtual memory with mmap-style protection flags,
emits command streams and job descriptors into shared memory, and submits
jobs one at a time through the driver.

GR-T records *below* this layer, so the runtime runs unmodified in the
cloud during a dry run.  Two of its artifacts matter to the recorder:
the protection flags on allocations (meta-only sync infers metastate from
them, §5) and the SKU-specific shader binaries (why recordings bind to a
GPU SKU, §2.4).
"""

from repro.runtime.allocator import Buffer, BufferKind, GpuAddressSpace, MapFlags
from repro.runtime.compiler import JitCompiler
from repro.runtime.commands import CommandStreamBuilder
from repro.runtime.api import GpuContext, RuntimeError_

__all__ = [
    "Buffer",
    "BufferKind",
    "GpuAddressSpace",
    "MapFlags",
    "JitCompiler",
    "CommandStreamBuilder",
    "GpuContext",
    "RuntimeError_",
]
