"""The JIT shader compiler: hardware-neutral ops -> SKU-specific binaries.

Developers ship GPU programs in hardware-neutral form (OpenCL/Metal-like);
the runtime JIT-compiles them on the target device for its exact GPU SKU
(§1's late binding).  The compiler here makes that binding concrete: the
probed ``gpu_id`` is stamped into each binary, and the tile size — the
main codegen decision — derives from the shader core count.  A binary
compiled against one SKU faults on another, which is precisely why GR-T
needs recordings produced against the client's own GPU (§2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hw.shader import ShaderBinary

# Compilation cost model (per shader): parse + codegen + register alloc.
JIT_BASE_COST_S = 2.5e-3
JIT_COST_PER_PARAM_S = 8e-6


@dataclass(frozen=True)
class CompilerTarget:
    """What the compiler knows about the GPU, learned from the driver's
    probed registers (not from any out-of-band SKU database)."""

    gpu_id: int
    core_count: int

    @property
    def tile_size(self) -> int:
        # Wider GPUs get larger tiles: the SKU-specific codegen decision.
        return 16 * max(1, self.core_count)


class JitCompiler:
    """Compiles operator descriptions into :class:`ShaderBinary` blobs."""

    def __init__(self, target: CompilerTarget, clock=None,
                 cost_scale: float = 1.0) -> None:
        self.target = target
        self.clock = clock
        self.cost_scale = cost_scale
        self.shaders_compiled = 0
        self.compile_time_s = 0.0
        self._cache: Dict[str, ShaderBinary] = {}

    def compile(self, op: str, params: Dict, cache_key: Optional[str] = None) -> ShaderBinary:
        """Lower one operator.  ``cache_key`` enables per-signature reuse
        (the runtime compiles each distinct kernel once per context)."""
        if cache_key is not None and cache_key in self._cache:
            return self._cache[cache_key]
        binary = ShaderBinary(
            op=op,
            params=dict(params),
            target_gpu_id=self.target.gpu_id,
            core_count=self.target.core_count,
            tile_size=self.target.tile_size,
        )
        cost = (JIT_BASE_COST_S
                + JIT_COST_PER_PARAM_S * len(params)) * self.cost_scale
        self.compile_time_s += cost
        if self.clock is not None:
            self.clock.advance(cost, label="cpu")
        self.shaders_compiled += 1
        if cache_key is not None:
            self._cache[cache_key] = binary
        return binary
