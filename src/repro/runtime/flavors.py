"""GPU-stack variants (§3.1: "the cloud ... can also host multiple GPU
stack variants, catering to different APIs and frameworks").

The cloud's VM images bundle different userspace stacks.  Two are
modelled, matching :data:`repro.cloud.vm.DEFAULT_IMAGES`:

* ``acl-opencl`` — ARM Compute Library over OpenCL (the paper's stack):
  kernels are JIT-compiled once per signature and shared across layers.
* ``tflite-gles`` — TFLite's GPU delegate over GLES: every node gets its
  own program object (no cross-node sharing), and program blobs carry
  extra GLES state.

Both produce *valid, replayable* recordings for the same workload; they
differ in shader-zone contents, JIT time, and metastate size — visible in
the recording, exactly as two real stacks would differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class RuntimeFlavor:
    """What distinguishes one userspace GPU stack from another here."""

    name: str
    api: str
    shader_cache: bool          # share compiled kernels across nodes?
    binary_overhead: int        # extra bytes per shader blob (API state)
    jit_cost_scale: float       # relative compilation cost

    def cache_key_for(self, key: Optional[str]) -> Optional[str]:
        return key if self.shader_cache else None

    def decorate_params(self, params: Dict) -> Dict:
        if not self.binary_overhead:
            return params
        decorated = dict(params)
        # GLES program state rides along in the binary (padding blob).
        decorated["api_state"] = "g" * self.binary_overhead
        return decorated


ACL_OPENCL = RuntimeFlavor(name="acl-opencl", api="opencl",
                           shader_cache=True, binary_overhead=0,
                           jit_cost_scale=1.0)

TFLITE_GLES = RuntimeFlavor(name="tflite-gles", api="gles",
                            shader_cache=False, binary_overhead=96,
                            jit_cost_scale=1.4)

FLAVORS: Dict[str, RuntimeFlavor] = {
    ACL_OPENCL.name: ACL_OPENCL,
    TFLITE_GLES.name: TFLITE_GLES,
}


def flavor_for_image(image_name: str) -> RuntimeFlavor:
    """Map a cloud VM image to the runtime flavor it hosts."""
    if image_name in FLAVORS:
        return FLAVORS[image_name]
    raise KeyError(f"no runtime flavor for VM image {image_name!r}")
