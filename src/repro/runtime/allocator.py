"""GPU virtual address space management and buffer allocation.

Allocations carry mmap-style protection flags.  The zones mirror how a
real runtime lays out a GPU address space: an executable zone for shader
code, a command zone for rings and job descriptors, and a data zone for
tensors.  Meta-only memory synchronization (§5) keys off exactly this
information: pages mapped executable hold shader code; pages the runtime
mapped through "ioctl" flags as command memory hold GPU commands; plain
read-write data pages are program data and are *not* synchronized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hw.memory import PhysicalMemory, align_up, pages_spanning
from repro.hw.mmu import PteFlags


class BufferKind:
    """What the allocation holds — determines zone and protection."""

    SHADER = "shader"      # executable: metastate
    COMMANDS = "commands"  # command ring + job descriptors: metastate
    DATA = "data"          # tensors: program data, never synced by OursM


class MapFlags:
    """The runtime's mmap/ioctl-visible protection flags (§5 inference)."""

    PROT_READ = 0x1
    PROT_WRITE = 0x2
    PROT_EXEC = 0x4
    FLAG_COMMAND_MEMORY = 0x100

    @staticmethod
    def to_pte_flags(flags: int) -> int:
        pte = 0
        if flags & MapFlags.PROT_READ:
            pte |= PteFlags.READ
        if flags & MapFlags.PROT_WRITE:
            pte |= PteFlags.WRITE
        if flags & MapFlags.PROT_EXEC:
            pte |= PteFlags.EXECUTE
        return pte


_KIND_TO_FLAGS = {
    BufferKind.SHADER: MapFlags.PROT_READ | MapFlags.PROT_EXEC,
    BufferKind.COMMANDS: (MapFlags.PROT_READ | MapFlags.PROT_WRITE
                          | MapFlags.FLAG_COMMAND_MEMORY),
    BufferKind.DATA: MapFlags.PROT_READ | MapFlags.PROT_WRITE,
}

_ZONE_BASE = {
    BufferKind.SHADER: 0x10_0000_0000 >> 8,    # 0x1000_0000
    BufferKind.COMMANDS: 0x2000_0000,
    BufferKind.DATA: 0x40_0000_0000 >> 4,      # 0x4_0000_0000
}


@dataclass(frozen=True)
class Buffer:
    """A GPU-visible allocation: VA + backing PA + protection."""

    name: str
    kind: str
    va: int
    pa: int
    size: int
    map_flags: int

    @property
    def is_metastate(self) -> bool:
        return self.kind in (BufferKind.SHADER, BufferKind.COMMANDS)

    def page_frames(self) -> range:
        return pages_spanning(self.pa, self.size)


class GpuAddressSpace:
    """Allocates VAs per zone and physical backing, and maps via the driver."""

    def __init__(self, mem: PhysicalMemory, kbdev) -> None:
        self.mem = mem
        self.kbdev = kbdev
        self._next_va = {
            BufferKind.SHADER: 0x1000_0000,
            BufferKind.COMMANDS: 0x2000_0000,
            BufferKind.DATA: 0x4000_0000,
        }
        self.buffers: List[Buffer] = []
        self._by_name: Dict[str, Buffer] = {}

    def alloc(self, name: str, size: int, kind: str) -> Buffer:
        if size <= 0:
            raise ValueError(f"buffer {name!r} has non-positive size")
        if name in self._by_name:
            raise ValueError(f"buffer name {name!r} already allocated")
        size = align_up(size)
        va = self._next_va[kind]
        self._next_va[kind] = va + size
        region = self.mem.alloc(size, label=f"{kind}:{name}")
        flags = _KIND_TO_FLAGS[kind]
        buffer = Buffer(name=name, kind=kind, va=va, pa=region.base,
                        size=size, map_flags=flags)
        self.kbdev.map_gpu_pages(va, region.base, size,
                                 MapFlags.to_pte_flags(flags))
        self.buffers.append(buffer)
        self._by_name[name] = buffer
        return buffer

    def get(self, name: str) -> Buffer:
        return self._by_name[name]

    # ------------------------------------------------------------------
    # Views the recorder consumes
    # ------------------------------------------------------------------
    def metastate_pfns(self) -> List[int]:
        """Page frames of all metastate buffers (shaders + commands)."""
        pfns: List[int] = []
        for buf in self.buffers:
            if buf.is_metastate:
                pfns.extend(buf.page_frames())
        return pfns

    def data_pfns(self) -> List[int]:
        pfns: List[int] = []
        for buf in self.buffers:
            if not buf.is_metastate:
                pfns.extend(buf.page_frames())
        return pfns

    def total_mapped_bytes(self) -> int:
        return sum(b.size for b in self.buffers)
