"""Driver-side GPU page table management.

The driver builds page tables *in shared memory* and points the GPU's
AS registers at the root.  This matters to GR-T twice over: page-table
snapshots ride inside memory dumps (completeness, §2.3), and page-table
pages are metastate that meta-only synchronization must always ship (§5).

The PTE format is chosen from the probed GPU family (Midgard vs Bifrost
layouts differ), one of the SKU variations that breaks cross-SKU replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from repro.hw.memory import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory, pages_spanning
from repro.hw.mmu import (
    ENTRY_INVALID,
    ENTRY_SIZE,
    ENTRY_TABLE,
    ENTRY_TYPE_MASK,
    LEVELS,
    entry_address,
    level_index,
    make_ate,
    make_table_entry,
)


class MmuMapError(RuntimeError):
    """Attempt to construct an invalid mapping."""


@dataclass
class MmuTables:
    """A page table hierarchy owned by the driver.

    Table pages are allocated from physical memory on demand.  All table
    page frames are tracked so memory synchronization can treat them as
    metastate, and so tests can verify snapshot completeness.
    """

    mem: PhysicalMemory
    pte_format: int
    root_pa: int = 0
    table_pfns: Set[int] = field(default_factory=set)
    mapped_bytes: int = 0

    def __post_init__(self) -> None:
        if self.root_pa == 0:
            self.root_pa = self._alloc_table_page()

    def _alloc_table_page(self) -> int:
        region = self.mem.alloc(PAGE_SIZE, label="gpu-pgtable")
        self.mem.fill(region.base, PAGE_SIZE, 0)
        self.table_pfns.add(region.base >> PAGE_SHIFT)
        return region.base

    # ------------------------------------------------------------------
    def insert_pages(self, va: int, pa: int, nbytes: int, flags: int) -> int:
        """Map [va, va+nbytes) -> [pa, pa+nbytes). Returns pages mapped."""
        if va % PAGE_SIZE or pa % PAGE_SIZE:
            raise MmuMapError(f"unaligned mapping va={va:#x} pa={pa:#x}")
        if nbytes <= 0:
            raise MmuMapError("empty mapping")
        npages = len(pages_spanning(va, nbytes))
        for i in range(npages):
            self._map_one(va + i * PAGE_SIZE, pa + i * PAGE_SIZE, flags)
        self.mapped_bytes += npages * PAGE_SIZE
        return npages

    def unmap_pages(self, va: int, nbytes: int) -> int:
        """Invalidate leaf entries for [va, va+nbytes)."""
        npages = len(pages_spanning(va, nbytes))
        removed = 0
        for i in range(npages):
            if self._unmap_one(va + i * PAGE_SIZE):
                removed += 1
        self.mapped_bytes -= removed * PAGE_SIZE
        return removed

    # ------------------------------------------------------------------
    def _walk_to_leaf(self, va: int, allocate: bool) -> int:
        table_pa = self.root_pa
        for level in range(LEVELS - 1):
            entry_pa = table_pa + level_index(va, level) * ENTRY_SIZE
            entry = self.mem.read_u64(entry_pa)
            if entry & ENTRY_TYPE_MASK != ENTRY_TABLE:
                if not allocate:
                    return 0
                child = self._alloc_table_page()
                self.mem.write_u64(entry_pa, make_table_entry(child))
                entry = make_table_entry(child)
            table_pa = entry_address(entry)
        return table_pa

    def _map_one(self, va: int, pa: int, flags: int) -> None:
        leaf = self._walk_to_leaf(va, allocate=True)
        entry_pa = leaf + level_index(va, LEVELS - 1) * ENTRY_SIZE
        existing = self.mem.read_u64(entry_pa)
        if existing & ENTRY_TYPE_MASK != ENTRY_INVALID:
            raise MmuMapError(f"va {va:#x} is already mapped")
        self.mem.write_u64(entry_pa, make_ate(pa, flags, self.pte_format))

    def _unmap_one(self, va: int) -> bool:
        leaf = self._walk_to_leaf(va, allocate=False)
        if leaf == 0:
            return False
        entry_pa = leaf + level_index(va, LEVELS - 1) * ENTRY_SIZE
        if self.mem.read_u64(entry_pa) & ENTRY_TYPE_MASK == ENTRY_INVALID:
            return False
        self.mem.write_u64(entry_pa, 0)
        return True

    # ------------------------------------------------------------------
    def metastate_pfns(self) -> Set[int]:
        """Table page frames — always part of a metastate dump (§5)."""
        return set(self.table_pfns)
